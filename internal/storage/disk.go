// Package storage implements the paged storage layer: 8 KB slotted pages,
// disk managers (file-backed and in-memory), an LRU buffer pool with
// pin/unpin and I/O accounting, and heap files with block-by-block
// iterators. The recommendation operators in the paper (Algorithms 1-3) are
// block-nested-loop algorithms over heap tables, so the page granularity
// here is what makes their cost model meaningful.
package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed size of every page, matching PostgreSQL's default.
const PageSize = 8192

// PageID identifies a page within one disk manager (i.e. one heap file).
type PageID uint32

// InvalidPageID is a sentinel for "no page".
const InvalidPageID = PageID(^uint32(0))

// DiskManager provides raw page I/O for one storage object.
type DiskManager interface {
	// ReadPage fills buf (len PageSize) with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the contents of page id.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the object by one zeroed page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() uint32
	// Sync flushes to stable storage (no-op for memory).
	Sync() error
	// Close releases resources.
	Close() error
}

// MemDisk is an in-memory DiskManager. It is the default substrate for the
// embeddable engine and for benchmarks (the paper's experiments all run
// with a warm buffer cache; MemDisk keeps the block-access structure while
// removing device variance).
type MemDisk struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// ReadPage implements DiskManager.
func (m *MemDisk) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements DiskManager.
func (m *MemDisk) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(m.pages[id], buf)
	return nil
}

// Allocate implements DiskManager.
func (m *MemDisk) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements DiskManager.
func (m *MemDisk) NumPages() uint32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint32(len(m.pages))
}

// Sync implements DiskManager.
func (m *MemDisk) Sync() error { return nil }

// Close implements DiskManager.
func (m *MemDisk) Close() error { return nil }

// FileDisk is a DiskManager backed by a single OS file.
type FileDisk struct {
	mu   sync.Mutex
	f    *os.File
	n    uint32
	path string
}

// OpenFileDisk opens (or creates) the file at path as a page store.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("storage: %s has size %d, not a multiple of the page size", path, st.Size())
	}
	return &FileDisk{f: f, n: uint32(st.Size() / PageSize), path: path}, nil
}

// ReadPage implements DiskManager.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint32(id) >= d.n {
		return fmt.Errorf("storage: read of unallocated page %d in %s", id, d.path)
	}
	// A short read means the file lost data (truncation, torn write): an
	// allocated page must come back whole, so io.EOF is an error here.
	// The io.ReaderAt contract does allow a full read ending exactly at
	// end-of-file to report io.EOF alongside n == len(p); that one is
	// success, not corruption.
	n, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err == io.EOF && n == PageSize {
		err = nil
	}
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("storage: read page %d of %s: %w: got %d of %d bytes",
				id, d.path, io.ErrUnexpectedEOF, n, PageSize)
		}
		return fmt.Errorf("storage: read page %d of %s: %w", id, d.path, err)
	}
	return nil
}

// WritePage implements DiskManager.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint32(id) >= d.n {
		return fmt.Errorf("storage: write of unallocated page %d in %s", id, d.path)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d of %s: %w", id, d.path, err)
	}
	return nil
}

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.n)
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: extend %s: %w", d.path, err)
	}
	d.n++
	return id, nil
}

// NumPages implements DiskManager.
func (d *FileDisk) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Sync implements DiskManager.
func (d *FileDisk) Sync() error { return d.f.Sync() }

// Close implements DiskManager.
func (d *FileDisk) Close() error { return d.f.Close() }
