package storage

import (
	"fmt"

	"recdb/internal/types"
)

// This file is the heap's multi-version machinery: snapshot handles,
// the page-version overlay, and the copy-on-write page-edit protocol.
//
// The design versions page *buffers*, never page identity: a page's id
// and on-disk location are immutable, so RIDs stay valid across
// versions, secondary indexes never need rewriting, and the crash-safety
// story (which counts and orders disk writes) is untouched. What changes
// under a writer is only which byte buffer backs a pool frame:
//
//   - With no live snapshot, a mutation edits the frame buffer in place —
//     exactly the pre-versioning behaviour, same disk-op sequence.
//   - With live snapshots, the mutation clones the buffer, edits the
//     clone, records the old buffer in the overlay (tagged with the last
//     sequence number it was current for), and swaps the clone in with
//     BufferPool.Publish. The old buffer is immutable from then on.
//
// A snapshot reader resolves page id → bytes by pinning the frame first
// and consulting the overlay second. Both sides cross verMu (and the
// frame's partition mutex), which makes the interleaving sound: if the
// reader finds no overlay entry covering its sequence, its pin happened
// before any swap, so the pinned buffer is the snapshot's version; if it
// finds one, that entry is the exact pre-edit buffer.
//
// Overlay entries are reclaimed when snapshots release: entries no live
// snapshot can select are dropped, and the whole overlay is cleared when
// the last snapshot closes. Overlay growth is therefore bounded by the
// write volume during the lifetime of the oldest open snapshot.

// heapState is the atomically published heap version: a generation
// (sequence) number plus the metadata a reader needs to interpret it.
// Writers build a new heapState for every mutation and publish it with a
// single pointer store; readers snapshot it with a single load.
type heapState struct {
	seq      uint64
	numPages uint32
	rowCount int64
}

// pageVersion preserves one superseded page buffer. data was the page's
// content for every sequence number up to and including validThrough.
type pageVersion struct {
	validThrough uint64
	data         []byte
}

// Snapshot pins one version of the heap: scans and gets through it see
// the rows exactly as of acquisition, regardless of concurrent writers.
// A snapshot holds no locks — it only keeps superseded page buffers
// reachable — but it must be Closed so those buffers can be reclaimed.
type Snapshot struct {
	h        *HeapFile
	seq      uint64
	numPages uint32
	rowCount int64
	released bool
}

// Snapshot acquires a handle on the heap's current version. The caller
// must Close it. Acquisition is a map increment under a mutex writers
// hold only for the duration of a page edit (never across I/O waits or
// WAL syncs), so it is cheap and effectively non-blocking.
func (h *HeapFile) Snapshot() *Snapshot {
	h.verMu.Lock()
	st := h.state.Load()
	h.live[st.seq]++
	h.verMu.Unlock()
	return &Snapshot{h: h, seq: st.seq, numPages: st.numPages, rowCount: st.rowCount}
}

// OpenSnapshots reports how many snapshot handles are currently held
// open on the heap. Tests use it to assert that transactions release
// their pins.
func (h *HeapFile) OpenSnapshots() int {
	h.verMu.Lock()
	defer h.verMu.Unlock()
	n := 0
	for _, c := range h.live {
		n += c
	}
	return n
}

// Seq returns the snapshot's generation number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// NumRows returns the row count as of the snapshot.
func (s *Snapshot) NumRows() int64 { return s.rowCount }

// NumPages returns the page count as of the snapshot.
func (s *Snapshot) NumPages() uint32 { return s.numPages }

// Close releases the snapshot and prunes page versions no remaining
// snapshot can read. Safe to call more than once.
func (s *Snapshot) Close() {
	if s.released {
		return
	}
	s.released = true
	s.h.releaseSnapshot(s.seq)
}

func (h *HeapFile) releaseSnapshot(seq uint64) {
	h.verMu.Lock()
	defer h.verMu.Unlock()
	if n := h.live[seq]; n > 1 {
		h.live[seq] = n - 1
		return
	}
	delete(h.live, seq)
	if len(h.live) == 0 {
		// Last reader out: no version but the live one is reachable.
		if len(h.overlay) > 0 {
			h.overlay = make(map[PageID][]pageVersion)
		}
		return
	}
	min := ^uint64(0)
	for q := range h.live {
		if q < min {
			min = q
		}
	}
	// An entry with validThrough < min satisfies no live snapshot (every
	// remaining q has q > validThrough, so the entry's range ended before
	// q). Entries are appended in increasing validThrough order, so the
	// stale ones form a prefix.
	for id, vs := range h.overlay {
		i := 0
		for i < len(vs) && vs[i].validThrough < min {
			i++
		}
		switch {
		case i == 0:
		case i == len(vs):
			delete(h.overlay, id)
		default:
			h.overlay[id] = vs[i:]
		}
	}
}

// versionLocked returns the preserved buffer that was current at seq, or
// nil if the live frame buffer is the right version. Caller holds verMu.
func (h *HeapFile) versionLocked(id PageID, seq uint64) []byte {
	for _, v := range h.overlay[id] {
		if v.validThrough >= seq {
			return v.data
		}
	}
	return nil
}

// pageBytes resolves a page to the byte buffer holding its content as of
// the snapshot. pinned reports whether the returned buffer is a pool
// frame the caller must Unpin; overlay buffers are immutable and
// unmanaged, so they come back unpinned.
//
// The pin-then-lookup order is load-bearing: a writer preserves the old
// buffer in the overlay before swapping the frame (both under verMu and
// the frame's partition mutex), so a reader that pinned the frame and
// then finds no covering overlay entry is guaranteed its pin predates
// any swap — the pinned buffer is the snapshot's version.
func (s *Snapshot) pageBytes(id PageID) (buf []byte, pinned bool, err error) {
	b, err := s.h.pool.Fetch(id)
	if err != nil {
		return nil, false, err
	}
	s.h.verMu.Lock()
	old := s.h.versionLocked(id, s.seq)
	s.h.verMu.Unlock()
	if old != nil {
		s.h.pool.Unpin(id, false)
		return old, false, nil
	}
	return b, true, nil
}

// Get decodes the row at rid as of the snapshot.
func (s *Snapshot) Get(rid RID) (types.Row, error) {
	if uint32(rid.Page) >= s.numPages {
		return nil, fmt.Errorf("storage: no tuple at %v", rid)
	}
	buf, pinned, err := s.pageBytes(rid.Page)
	if err != nil {
		return nil, err
	}
	if pinned {
		defer s.h.pool.Unpin(rid.Page, false)
	}
	tuple, ok := AsPage(buf).Get(rid.Slot)
	if !ok {
		return nil, fmt.Errorf("storage: no tuple at %v", rid)
	}
	row, _, err := types.DecodeRow(tuple)
	return row, err
}

// editPage is the copy-on-write page-edit protocol: it pins page id,
// decides in-place vs. clone under verMu, runs fn over the writable
// bytes, and either publishes the result as the heap's next version or
// abandons it.
//
// fn mutates the page freely and returns the row-count delta, whether to
// commit, and an error to surface. On commit=false the edit is dropped;
// an in-place (non-cloned) edit must then have left the page unmodified,
// while a clone may be scribbled on freely. fn runs with verMu held —
// which is what keeps a concurrent Snapshot() from observing a page
// mid-edit — so it must not block or re-enter the heap.
//
// The caller must hold h.mu exclusively, serializing edits against each
// other. verMu is acquired and released entirely inside this function:
// that span covers deciding whether live snapshots exist, the edit
// itself, preserving the pre-edit buffer in the overlay, and publishing
// the new state, so the decision can never go stale.
func (h *HeapFile) editPage(id PageID, fn func(p *Page) (rowDelta int64, commit bool, err error)) error {
	buf, err := h.pool.Fetch(id)
	if err != nil {
		return err
	}
	h.verMu.Lock()
	live := buf // the frame buffer as pinned; immutable once preserved
	cow := len(h.live) > 0
	if cow {
		clone := make([]byte, len(buf))
		copy(clone, buf)
		buf = clone
	}
	rowDelta, commit, err := fn(AsPage(buf))
	if !commit {
		h.verMu.Unlock()
		h.pool.Unpin(id, false)
		return err
	}
	st := h.state.Load()
	if cow {
		h.overlay[id] = append(h.overlay[id], pageVersion{validThrough: st.seq, data: live})
		if perr := h.pool.Publish(id, buf); perr != nil {
			h.verMu.Unlock()
			h.pool.Unpin(id, false)
			return perr
		}
	}
	h.state.Store(&heapState{seq: st.seq + 1, numPages: st.numPages, rowCount: st.rowCount + rowDelta})
	h.verMu.Unlock()
	h.pool.Unpin(id, true)
	return err
}

// bumpLocked publishes a new heap state. Caller holds verMu (and h.mu
// exclusively). Used by the fresh-page insert path, which edits a page
// no snapshot can reference (it lies beyond every snapshot's numPages).
func (h *HeapFile) bumpLocked(pageDelta uint32, rowDelta int64) {
	st := h.state.Load()
	h.state.Store(&heapState{seq: st.seq + 1, numPages: st.numPages + pageDelta, rowCount: st.rowCount + rowDelta})
}
