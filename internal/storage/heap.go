package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"recdb/internal/types"
)

// RID addresses a tuple: a page within the heap file plus a slot.
type RID struct {
	Page PageID
	Slot SlotID
}

// String renders the RID for debugging.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile stores rows in slotted pages through a buffer pool. Inserts
// append to the last page with room (the fill pattern the paper's bulk
// model loads produce); scans visit pages in order, block by block.
//
// The heap is multi-versioned at the page-buffer level: every mutation
// publishes a new generation (heapState) with an atomic pointer store,
// and Scan pins the generation current at its start — an in-flight scan
// keeps reading its version to completion while writers proceed (see
// version.go). Mutations are serialized by mu; plain point Gets share it.
type HeapFile struct {
	mu   sync.RWMutex
	pool *BufferPool
	// lastPage caches the page most likely to have free space.
	lastPage PageID

	// state is the published generation: sequence number, page count,
	// and row count. Readers snapshot it with one atomic load.
	state atomic.Pointer[heapState]

	// verMu guards the snapshot refcounts and the page-version overlay.
	// Writers hold it for the duration of a page edit; snapshot acquire,
	// release, and per-page version lookups hold it briefly.
	verMu   sync.Mutex
	live    map[uint64]int // snapshot seq → open handles
	overlay map[PageID][]pageVersion
}

// NewHeapFile creates a heap over the pool's disk. The disk may already
// contain pages (reopening an existing table), in which case the row count
// is rebuilt by scanning.
func NewHeapFile(pool *BufferPool) (*HeapFile, error) {
	h := &HeapFile{
		pool:     pool,
		lastPage: InvalidPageID,
		live:     make(map[uint64]int),
		overlay:  make(map[PageID][]pageVersion),
	}
	n := pool.Disk().NumPages()
	h.state.Store(&heapState{seq: 0, numPages: n, rowCount: 0})
	if n > 0 {
		h.lastPage = PageID(n - 1)
		if err := h.recount(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *HeapFile) recount() error {
	var count int64
	it := h.Scan()
	defer it.Close()
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		count++
	}
	h.verMu.Lock()
	st := h.state.Load()
	h.state.Store(&heapState{seq: st.seq, numPages: st.numPages, rowCount: count})
	h.verMu.Unlock()
	return nil
}

// Pool returns the heap's buffer pool.
func (h *HeapFile) Pool() *BufferPool { return h.pool }

// NumPages returns the number of pages in the heap.
func (h *HeapFile) NumPages() uint32 { return h.state.Load().numPages }

// NumRows returns the number of live rows.
func (h *HeapFile) NumRows() int64 { return h.state.Load().rowCount }

// Insert encodes row and stores it, returning its RID.
func (h *HeapFile) Insert(row types.Row) (RID, error) {
	tuple := types.EncodeRow(nil, row)
	if len(tuple) > PageSize-pageHeaderSize-slotSize {
		return RID{}, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(tuple))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.insertLocked(tuple)
}

// insertLocked stores an encoded tuple; the caller holds mu exclusively
// and has checked the tuple fits a page.
func (h *HeapFile) insertLocked(tuple []byte) (RID, error) {
	// Try the cached last page first.
	if h.lastPage != InvalidPageID {
		rid, ok, err := h.tryInsert(h.lastPage, tuple)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	// Allocate a fresh page. No snapshot can reference it (it lies past
	// every snapshot's page count), so it is initialized in place; verMu
	// is held so the page-count bump publishes atomically with the edit.
	h.verMu.Lock()
	id, buf, err := h.pool.NewPage()
	if err != nil {
		h.verMu.Unlock()
		return RID{}, err
	}
	p := InitPage(buf)
	slot, err := p.Insert(tuple)
	if err != nil {
		h.bumpLocked(1, 0)
		h.verMu.Unlock()
		h.pool.Unpin(id, true)
		return RID{}, err
	}
	h.bumpLocked(1, 1)
	h.verMu.Unlock()
	h.pool.Unpin(id, true)
	h.lastPage = id
	return RID{Page: id, Slot: slot}, nil
}

func (h *HeapFile) tryInsert(id PageID, tuple []byte) (RID, bool, error) {
	var slot SlotID
	inserted := false
	err := h.editPage(id, func(p *Page) (int64, bool, error) {
		s, err := p.Insert(tuple)
		if err == ErrPageFull {
			return 0, false, nil // page untouched; fall through to a fresh page
		}
		if err != nil {
			return 0, false, err
		}
		slot, inserted = s, true
		return 1, true, nil
	})
	if err != nil || !inserted {
		return RID{}, false, err
	}
	return RID{Page: id, Slot: slot}, true, nil
}

// Get decodes the row at rid (the current version).
func (h *HeapFile) Get(rid RID) (types.Row, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	buf, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	p := AsPage(buf)
	tuple, ok := p.Get(rid.Slot)
	if !ok {
		return nil, fmt.Errorf("storage: no tuple at %v", rid)
	}
	row, _, err := types.DecodeRow(tuple)
	return row, err
}

// Lookup decodes the row at rid; ok=false reports that no live tuple is
// there (it was deleted or relocated), which concurrent index scans
// treat as "skip", not corruption.
func (h *HeapFile) Lookup(rid RID) (types.Row, bool, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	buf, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer h.pool.Unpin(rid.Page, false)
	tuple, ok := AsPage(buf).Get(rid.Slot)
	if !ok {
		return nil, false, nil
	}
	row, _, err := types.DecodeRow(tuple)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// Delete removes the row at rid.
func (h *HeapFile) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.editPage(rid.Page, func(p *Page) (int64, bool, error) {
		if _, ok := p.Get(rid.Slot); !ok {
			return 0, false, fmt.Errorf("storage: delete of missing tuple at %v", rid)
		}
		if err := p.Delete(rid.Slot); err != nil {
			return 0, false, err
		}
		return -1, true, nil
	})
}

// Update replaces the row at rid in place when it fits in the page after
// compaction, otherwise deletes and re-inserts, returning the (possibly
// new) RID.
func (h *HeapFile) Update(rid RID, row types.Row) (RID, error) {
	tuple := types.EncodeRow(nil, row)
	if len(tuple) > PageSize-pageHeaderSize-slotSize {
		return RID{}, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(tuple))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := rid
	relocate := false
	err := h.editPage(rid.Page, func(p *Page) (int64, bool, error) {
		old, ok := p.Get(rid.Slot)
		if !ok {
			return 0, false, fmt.Errorf("storage: update of missing tuple at %v", rid)
		}
		if len(tuple) <= len(old) {
			// Fits in place (slot length shrinks are fine).
			off, _ := p.slot(rid.Slot)
			copy(p.buf[off:], tuple)
			p.setSlot(rid.Slot, off, uint16(len(tuple)))
			return 0, true, nil
		}
		// Try same page after dropping the old tuple and compacting.
		if err := p.Delete(rid.Slot); err != nil {
			return 0, false, err
		}
		p.Compact()
		if slot, err := p.Insert(tuple); err == nil {
			out = RID{Page: rid.Page, Slot: slot}
			return 0, true, nil
		}
		// Relocate: commit the delete; the re-insert elsewhere happens
		// below, under the same exclusive h.mu.
		relocate = true
		return -1, true, nil
	})
	if err != nil {
		return RID{}, err
	}
	if relocate {
		return h.insertLocked(tuple)
	}
	return out, nil
}

// Iterator walks all live rows of one heap snapshot in page order. It
// holds no pins between Next calls on different pages, so scans of
// arbitrarily large heaps work with a small pool — and it never blocks
// on (nor is blocked by) concurrent writers, which copy-on-write around
// the snapshot's pages.
type Iterator struct {
	snap    *Snapshot
	ownSnap bool // Close releases the snapshot too
	page    PageID
	slot    int
	buf     []byte
	pinned  bool
	closed  bool
}

// Scan returns an iterator over the heap's current version, positioned
// before the first row. Close it to release the pinned snapshot.
func (h *HeapFile) Scan() *Iterator {
	return &Iterator{snap: h.Snapshot(), ownSnap: true, page: 0, slot: -1}
}

// Scan returns an iterator over the snapshot, positioned before the
// first row. Closing the iterator does not close the snapshot.
func (s *Snapshot) Scan() *Iterator {
	return &Iterator{snap: s, page: 0, slot: -1}
}

// Next returns the next row and its RID. ok=false signals end of heap.
func (it *Iterator) Next() (types.Row, RID, bool, error) {
	if it.closed {
		return nil, RID{}, false, fmt.Errorf("storage: Next on closed iterator")
	}
	for {
		if uint32(it.page) >= it.snap.numPages {
			it.unpin()
			return nil, RID{}, false, nil
		}
		if it.buf == nil {
			buf, pinned, err := it.snap.pageBytes(it.page)
			if err != nil {
				return nil, RID{}, false, err
			}
			it.buf, it.pinned = buf, pinned
		}
		p := AsPage(it.buf)
		for it.slot+1 < p.NumSlots() {
			it.slot++
			tuple, ok := p.Get(SlotID(it.slot))
			if !ok {
				continue
			}
			row, _, err := types.DecodeRow(tuple)
			if err != nil {
				return nil, RID{}, false, err
			}
			return row, RID{Page: it.page, Slot: SlotID(it.slot)}, true, nil
		}
		it.unpin()
		it.page++
		it.slot = -1
	}
}

func (it *Iterator) unpin() {
	if it.pinned {
		it.snap.h.pool.Unpin(it.page, false)
		it.pinned = false
	}
	it.buf = nil
}

// Close releases any held pin (and the snapshot, for iterators from
// HeapFile.Scan). Safe to call multiple times.
func (it *Iterator) Close() {
	if !it.closed {
		it.unpin()
		if it.ownSnap {
			it.snap.Close()
		}
		it.closed = true
	}
}
