package storage

import (
	"fmt"
	"sync"

	"recdb/internal/types"
)

// RID addresses a tuple: a page within the heap file plus a slot.
type RID struct {
	Page PageID
	Slot SlotID
}

// String renders the RID for debugging.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile stores rows in slotted pages through a buffer pool. Inserts
// append to the last page with room (the fill pattern the paper's bulk
// model loads produce); scans visit pages in order, block by block.
type HeapFile struct {
	mu   sync.RWMutex
	pool *BufferPool
	// lastPage caches the page most likely to have free space.
	lastPage PageID
	rowCount int64
}

// NewHeapFile creates a heap over the pool's disk. The disk may already
// contain pages (reopening an existing table), in which case the row count
// is rebuilt by scanning.
func NewHeapFile(pool *BufferPool) (*HeapFile, error) {
	h := &HeapFile{pool: pool, lastPage: InvalidPageID}
	n := pool.Disk().NumPages()
	if n > 0 {
		h.lastPage = PageID(n - 1)
		if err := h.recount(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *HeapFile) recount() error {
	var count int64
	it := h.Scan()
	defer it.Close()
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		count++
	}
	h.mu.Lock()
	h.rowCount = count
	h.mu.Unlock()
	return nil
}

// Pool returns the heap's buffer pool.
func (h *HeapFile) Pool() *BufferPool { return h.pool }

// NumPages returns the number of pages in the heap.
func (h *HeapFile) NumPages() uint32 { return h.pool.Disk().NumPages() }

// NumRows returns the number of live rows.
func (h *HeapFile) NumRows() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rowCount
}

// Insert encodes row and stores it, returning its RID.
func (h *HeapFile) Insert(row types.Row) (RID, error) {
	tuple := types.EncodeRow(nil, row)
	if len(tuple) > PageSize-pageHeaderSize-slotSize {
		return RID{}, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(tuple))
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	// Try the cached last page first.
	if h.lastPage != InvalidPageID {
		rid, ok, err := h.tryInsert(h.lastPage, tuple)
		if err != nil {
			return RID{}, err
		}
		if ok {
			h.rowCount++
			return rid, nil
		}
	}
	// Allocate a fresh page.
	id, buf, err := h.pool.NewPage()
	if err != nil {
		return RID{}, err
	}
	p := InitPage(buf)
	slot, err := p.Insert(tuple)
	h.pool.Unpin(id, true)
	if err != nil {
		return RID{}, err
	}
	h.lastPage = id
	h.rowCount++
	return RID{Page: id, Slot: slot}, nil
}

func (h *HeapFile) tryInsert(id PageID, tuple []byte) (RID, bool, error) {
	buf, err := h.pool.Fetch(id)
	if err != nil {
		return RID{}, false, err
	}
	p := AsPage(buf)
	slot, err := p.Insert(tuple)
	if err == ErrPageFull {
		h.pool.Unpin(id, false)
		return RID{}, false, nil
	}
	h.pool.Unpin(id, err == nil)
	if err != nil {
		return RID{}, false, err
	}
	return RID{Page: id, Slot: slot}, true, nil
}

// Get decodes the row at rid.
func (h *HeapFile) Get(rid RID) (types.Row, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	buf, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	p := AsPage(buf)
	tuple, ok := p.Get(rid.Slot)
	if !ok {
		return nil, fmt.Errorf("storage: no tuple at %v", rid)
	}
	row, _, err := types.DecodeRow(tuple)
	return row, err
}

// Delete removes the row at rid.
func (h *HeapFile) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	buf, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	p := AsPage(buf)
	if _, ok := p.Get(rid.Slot); !ok {
		h.pool.Unpin(rid.Page, false)
		return fmt.Errorf("storage: delete of missing tuple at %v", rid)
	}
	err = p.Delete(rid.Slot)
	h.pool.Unpin(rid.Page, err == nil)
	if err == nil {
		h.rowCount--
	}
	return err
}

// Update replaces the row at rid in place when it fits in the page after
// compaction, otherwise deletes and re-inserts, returning the (possibly
// new) RID.
func (h *HeapFile) Update(rid RID, row types.Row) (RID, error) {
	tuple := types.EncodeRow(nil, row)
	h.mu.Lock()
	buf, err := h.pool.Fetch(rid.Page)
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	p := AsPage(buf)
	old, ok := p.Get(rid.Slot)
	if !ok {
		h.pool.Unpin(rid.Page, false)
		h.mu.Unlock()
		return RID{}, fmt.Errorf("storage: update of missing tuple at %v", rid)
	}
	if len(tuple) <= len(old) {
		// Fits in place (slot length shrinks are fine).
		off, _ := p.slot(rid.Slot)
		copy(p.buf[off:], tuple)
		p.setSlot(rid.Slot, off, uint16(len(tuple)))
		h.pool.Unpin(rid.Page, true)
		h.mu.Unlock()
		return rid, nil
	}
	// Try same page after dropping the old tuple and compacting.
	if err := p.Delete(rid.Slot); err != nil {
		h.pool.Unpin(rid.Page, false)
		h.mu.Unlock()
		return RID{}, err
	}
	p.Compact()
	if slot, err := p.Insert(tuple); err == nil {
		h.pool.Unpin(rid.Page, true)
		h.mu.Unlock()
		return RID{Page: rid.Page, Slot: slot}, nil
	}
	h.pool.Unpin(rid.Page, true)
	h.rowCount--
	h.mu.Unlock()
	return h.Insert(row)
}

// Iterator walks all live rows in page order. It holds no pins between
// Next calls on different pages, so scans of arbitrarily large heaps work
// with a small pool.
type Iterator struct {
	heap   *HeapFile
	page   PageID
	slot   int
	buf    []byte
	pinned bool
	closed bool
}

// Scan returns an iterator positioned before the first row.
func (h *HeapFile) Scan() *Iterator {
	return &Iterator{heap: h, page: 0, slot: -1}
}

// Next returns the next row and its RID. ok=false signals end of heap.
func (it *Iterator) Next() (types.Row, RID, bool, error) {
	if it.closed {
		return nil, RID{}, false, fmt.Errorf("storage: Next on closed iterator")
	}
	it.heap.mu.RLock()
	defer it.heap.mu.RUnlock()
	for {
		n := it.heap.pool.Disk().NumPages()
		if uint32(it.page) >= n {
			it.unpin()
			return nil, RID{}, false, nil
		}
		if !it.pinned {
			buf, err := it.heap.pool.Fetch(it.page)
			if err != nil {
				return nil, RID{}, false, err
			}
			it.buf = buf
			it.pinned = true
		}
		p := AsPage(it.buf)
		for it.slot+1 < p.NumSlots() {
			it.slot++
			tuple, ok := p.Get(SlotID(it.slot))
			if !ok {
				continue
			}
			row, _, err := types.DecodeRow(tuple)
			if err != nil {
				return nil, RID{}, false, err
			}
			return row, RID{Page: it.page, Slot: SlotID(it.slot)}, true, nil
		}
		it.unpin()
		it.page++
		it.slot = -1
	}
}

func (it *Iterator) unpin() {
	if it.pinned {
		it.heap.pool.Unpin(it.page, false)
		it.pinned = false
		it.buf = nil
	}
}

// Close releases any held pin. Safe to call multiple times.
func (it *Iterator) Close() {
	if !it.closed {
		it.unpin()
		it.closed = true
	}
}
