package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted page layout (all offsets little-endian uint16):
//
//	[0:2]  slot count
//	[2:4]  free-space lower bound (end of slot array)
//	[4:6]  free-space upper bound (start of tuple data, grows down)
//	[6:..] slot array: per slot {offset uint16, length uint16}
//	  ...  free space ...
//	[upper:PageSize] tuple data
//
// A slot with offset 0 is a dead (deleted) slot; live tuple offsets are
// always >= pageHeaderSize so 0 is unambiguous.
const (
	pageHeaderSize = 6
	slotSize       = 4
)

// SlotID indexes a tuple within a page.
type SlotID uint16

// Page is a PageSize-byte slotted page. Methods operate in place on the
// underlying buffer (typically a buffer-pool frame).
type Page struct {
	buf []byte
}

// AsPage wraps a PageSize buffer as a Page.
func AsPage(buf []byte) *Page {
	if len(buf) != PageSize {
		//lint:ignore nopanic all callers pass pool frames, which are PageSize by construction
		panic(fmt.Sprintf("storage: AsPage on %d-byte buffer", len(buf)))
	}
	return &Page{buf: buf}
}

// InitPage formats buf as an empty slotted page.
func InitPage(buf []byte) *Page {
	p := AsPage(buf)
	p.setSlotCount(0)
	p.setLower(pageHeaderSize)
	p.setUpper(PageSize)
	return p
}

func (p *Page) slotCount() uint16     { return binary.LittleEndian.Uint16(p.buf[0:2]) }
func (p *Page) setSlotCount(n uint16) { binary.LittleEndian.PutUint16(p.buf[0:2], n) }
func (p *Page) lower() uint16         { return binary.LittleEndian.Uint16(p.buf[2:4]) }
func (p *Page) setLower(v uint16)     { binary.LittleEndian.PutUint16(p.buf[2:4], v) }
func (p *Page) upper() uint16         { return binary.LittleEndian.Uint16(p.buf[4:6]) }
func (p *Page) setUpper(v uint16)     { binary.LittleEndian.PutUint16(p.buf[4:6], v) }

func (p *Page) slot(i SlotID) (off, ln uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.buf[base : base+2]),
		binary.LittleEndian.Uint16(p.buf[base+2 : base+4])
}

func (p *Page) setSlot(i SlotID, off, ln uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], ln)
}

// NumSlots returns the number of slots (live and dead).
func (p *Page) NumSlots() int { return int(p.slotCount()) }

// FreeSpace returns the bytes available for a new tuple (including its slot).
func (p *Page) FreeSpace() int {
	free := int(p.upper()) - int(p.lower())
	if free < slotSize {
		return 0
	}
	return free - slotSize
}

// Insert adds a tuple to the page and returns its slot. It fails with
// ErrPageFull when the tuple does not fit.
func (p *Page) Insert(tuple []byte) (SlotID, error) {
	if len(tuple) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	if len(tuple) == 0 || len(tuple) > PageSize {
		return 0, fmt.Errorf("storage: invalid tuple size %d", len(tuple))
	}
	upper := p.upper() - uint16(len(tuple))
	copy(p.buf[upper:], tuple)
	id := SlotID(p.slotCount())
	p.setSlot(id, upper, uint16(len(tuple)))
	p.setSlotCount(uint16(id) + 1)
	p.setLower(p.lower() + slotSize)
	p.setUpper(upper)
	return id, nil
}

// ErrPageFull is returned by Insert when the page has no room.
var ErrPageFull = fmt.Errorf("storage: page full")

// Get returns the tuple bytes at slot i, or ok=false if the slot is dead or
// out of range. The returned slice aliases the page buffer.
func (p *Page) Get(i SlotID) ([]byte, bool) {
	if int(i) >= p.NumSlots() {
		return nil, false
	}
	off, ln := p.slot(i)
	if off == 0 {
		return nil, false
	}
	return p.buf[off : off+ln], true
}

// Delete marks slot i dead. The tuple bytes become reclaimable by Compact.
func (p *Page) Delete(i SlotID) error {
	if int(i) >= p.NumSlots() {
		return fmt.Errorf("storage: delete of slot %d beyond count %d", i, p.NumSlots())
	}
	p.setSlot(i, 0, 0)
	return nil
}

// Compact rewrites live tuples contiguously at the end of the page,
// reclaiming space from deleted slots while preserving slot ids.
func (p *Page) Compact() {
	type live struct {
		id  SlotID
		dat []byte
	}
	var tuples []live
	for i := 0; i < p.NumSlots(); i++ {
		if d, ok := p.Get(SlotID(i)); ok {
			cp := make([]byte, len(d))
			copy(cp, d)
			tuples = append(tuples, live{SlotID(i), cp})
		}
	}
	upper := uint16(PageSize)
	for _, t := range tuples {
		upper -= uint16(len(t.dat))
		copy(p.buf[upper:], t.dat)
		p.setSlot(t.id, upper, uint16(len(t.dat)))
	}
	p.setUpper(upper)
}
