package storage

import (
	"fmt"
	"sync"
	"testing"

	"recdb/internal/types"
)

// versionedHeap builds a heap with nRows rows of the shape (i, "v0-i")
// over a striped pool of poolPages frames.
func versionedHeap(t *testing.T, nRows, poolPages int) (*HeapFile, []RID) {
	t.Helper()
	h, err := NewHeapFile(NewBufferPool(NewMemDisk(), poolPages, nil))
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]RID, nRows)
	for i := 0; i < nRows; i++ {
		rid, err := h.Insert(types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("v0-%04d", i))})
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	return h, rids
}

// TestSnapshotStability: a snapshot opened before a batch of same-size
// updates sees only the pre-update values to completion, while a scan
// opened after the updates sees only the new ones. Same-size updates
// rewrite tuples in place, so this exercises the copy-on-write overlay
// rather than delete/re-insert relocation.
func TestSnapshotStability(t *testing.T) {
	const n = 500
	h, rids := versionedHeap(t, n, 4)

	before := h.Snapshot()
	defer before.Close()

	for i, rid := range rids {
		// Same byte length as "v0-%04d": stays in place, same RID.
		nr, err := h.Update(rid, types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("v1-%04d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if nr != rid {
			t.Fatalf("same-size update relocated %v -> %v", rid, nr)
		}
	}

	seen := 0
	it := before.Scan()
	defer it.Close()
	for {
		row, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := row[1].Text(); got[:2] != "v0" {
			t.Fatalf("snapshot scan leaked post-snapshot value %q", got)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("snapshot scan saw %d rows, want %d", seen, n)
	}
	// Point reads through the snapshot see the old version too.
	row, err := before.Get(rids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := row[1].Text(); got != "v0-0000" {
		t.Fatalf("snapshot Get = %q, want v0-0000", got)
	}

	// A scan opened after the updates sees only new values.
	it2 := h.Scan()
	defer it2.Close()
	for {
		row, _, ok, err := it2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := row[1].Text(); got[:2] != "v1" {
			t.Fatalf("post-update scan saw stale value %q", got)
		}
	}
}

// TestSnapshotMidScanWrites opens a scan, consumes half of it, runs
// updates and fresh inserts, then finishes the scan: every row it yields
// must still be the snapshot's version, and the fresh inserts must be
// invisible (they lie past the snapshot's page count or behind the
// overlay).
func TestSnapshotMidScanWrites(t *testing.T) {
	const n = 400
	h, rids := versionedHeap(t, n, 4)

	it := h.Scan()
	defer it.Close()
	seen := 0
	for seen < n/2 {
		row, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("scan ended early at %d", seen)
		}
		if got := row[1].Text(); got[:2] != "v0" {
			t.Fatalf("pre-write scan half saw %q", got)
		}
		seen++
	}

	for i, rid := range rids {
		if _, err := h.Update(rid, types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("v1-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(int64(n + i)), types.NewText(fmt.Sprintf("nw-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	for {
		row, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := row[1].Text(); got[:2] != "v0" {
			t.Fatalf("mid-scan write leaked %q into an open snapshot", got)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("snapshot scan saw %d rows, want exactly %d (fresh inserts must be invisible)", seen, n)
	}
}

// TestOverlayReclamation: page versions preserved for a snapshot are
// dropped once the last snapshot closes, and never accumulate without
// open snapshots.
func TestOverlayReclamation(t *testing.T) {
	const n = 200
	h, rids := versionedHeap(t, n, 4)

	overlayLen := func() int {
		h.verMu.Lock()
		defer h.verMu.Unlock()
		return len(h.overlay)
	}

	// Writes with no snapshot open edit in place: no overlay growth.
	for i, rid := range rids[:50] {
		if _, err := h.Update(rid, types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("va-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := overlayLen(); got != 0 {
		t.Fatalf("overlay grew to %d entries with no snapshot open", got)
	}

	s := h.Snapshot()
	for i, rid := range rids {
		if _, err := h.Update(rid, types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("vb-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := overlayLen(); got == 0 {
		t.Fatal("updates under a live snapshot must preserve page versions")
	}
	s.Close()
	if got := overlayLen(); got != 0 {
		t.Fatalf("overlay holds %d entries after the last snapshot closed", got)
	}
}

// TestConcurrentSnapshotHammer drives concurrent scanning readers against
// a writer mutating the heap through a small striped buffer pool. Run
// with -race this is the torn-read check for the whole read path: pin
// ordering, overlay lookups, partition eviction, and the atomic state
// publish. The correctness invariant is that every scan sees exactly its
// snapshot's row count, and every row it yields decodes to a value the
// snapshot's generation could contain.
func TestConcurrentSnapshotHammer(t *testing.T) {
	const (
		n       = 300
		readers = 4
		rounds  = 25
	)
	h, rids := versionedHeap(t, n, 2) // 2 frames: constant eviction pressure

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				want := snap.NumRows()
				it := snap.Scan()
				var got int64
				for {
					row, _, ok, err := it.Next()
					if err != nil {
						errc <- err
						it.Close()
						snap.Close()
						return
					}
					if !ok {
						break
					}
					if len(row) != 2 {
						errc <- fmt.Errorf("torn row: %v", row)
						it.Close()
						snap.Close()
						return
					}
					got++
				}
				it.Close()
				snap.Close()
				if got != want {
					errc <- fmt.Errorf("scan of seq %d saw %d rows, snapshot says %d", snap.Seq(), got, want)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < rounds; round++ {
			for i, rid := range rids {
				if _, err := h.Update(rid, types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("v%d-%03d", round%9, i))}); err != nil {
					errc <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
