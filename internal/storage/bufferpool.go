package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats counts page-level I/O across the engine. One Stats instance is
// shared by all buffer pools of a database so experiments can report
// logical and physical page accesses.
type Stats struct {
	// PageReads counts logical page fetches (buffer pool lookups).
	PageReads atomic.Int64
	// PageMisses counts fetches that had to hit the disk manager.
	PageMisses atomic.Int64
	// PageWrites counts physical page write-backs.
	PageWrites atomic.Int64
	// Evictions counts frames evicted by LRU replacement.
	Evictions atomic.Int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() (reads, misses, writes int64) {
	return s.PageReads.Load(), s.PageMisses.Load(), s.PageWrites.Load()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.PageReads.Store(0)
	s.PageMisses.Store(0)
	s.PageWrites.Store(0)
	s.Evictions.Store(0)
}

type frame struct {
	id      PageID
	buf     []byte
	pins    int
	dirty   bool
	lruElem *list.Element // non-nil iff unpinned (eligible for eviction)
}

// BufferPool caches pages of one DiskManager with LRU replacement. Pages are
// pinned while in use; unpinned pages become eviction candidates.
type BufferPool struct {
	mu       sync.Mutex
	disk     DiskManager
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recently unpinned
	stats    *Stats
}

// NewBufferPool creates a pool of capacity pages over disk. stats may be
// nil, in which case a private Stats is used.
func NewBufferPool(disk DiskManager, capacity int, stats *Stats) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
		stats:    stats,
	}
}

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// Fetch pins page id and returns its buffer. Callers must Unpin when done.
func (bp *BufferPool) Fetch(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.PageReads.Add(1)
	if f, ok := bp.frames[id]; ok {
		bp.pinLocked(f)
		return f.buf, nil
	}
	bp.stats.PageMisses.Add(1)
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.ReadPage(id, f.buf); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	return f.buf, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns its id and a
// zeroed buffer.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.disk.Allocate()
	if err != nil {
		return InvalidPageID, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return InvalidPageID, nil, err
	}
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.dirty = true
	return id, f.buf, nil
}

// Unpin releases one pin on page id. dirty marks the page as modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		//lint:ignore nopanic unpin of an unpinned page is caller corruption; continuing would double-free the frame
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	f.dirty = f.dirty || dirty
	f.pins--
	if f.pins == 0 {
		f.lruElem = bp.lru.PushFront(id)
	}
}

// FlushAll writes back every dirty page.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.WritePage(id, f.buf); err != nil {
				return err
			}
			bp.stats.PageWrites.Add(1)
			f.dirty = false
		}
	}
	return bp.disk.Sync()
}

func (bp *BufferPool) pinLocked(f *frame) {
	if f.pins == 0 && f.lruElem != nil {
		bp.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
	f.pins++
}

func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, buf: make([]byte, PageSize), pins: 1}
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLocked() error {
	elem := bp.lru.Back()
	if elem == nil {
		return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.capacity)
	}
	victimID := elem.Value.(PageID)
	victim := bp.frames[victimID]
	if victim.dirty {
		if err := bp.disk.WritePage(victimID, victim.buf); err != nil {
			return err
		}
		bp.stats.PageWrites.Add(1)
	}
	bp.lru.Remove(elem)
	delete(bp.frames, victimID)
	bp.stats.Evictions.Add(1)
	return nil
}
