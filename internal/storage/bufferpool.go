package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// MaxPartitions bounds how many lock stripes a buffer pool may have (and
// sizes the per-partition counter array in Stats).
const MaxPartitions = 16

// PartitionStats counts page traffic through one pool partition. The
// counters live in Stats (shared across every pool of a database), so the
// metrics registry can expose per-stripe hit/miss/eviction rates.
type PartitionStats struct {
	// Hits counts fetches served from this partition's frames.
	Hits atomic.Int64
	// Misses counts fetches that had to hit the disk manager.
	Misses atomic.Int64
	// Evictions counts frames this partition evicted by LRU replacement.
	Evictions atomic.Int64
}

// Stats counts page-level I/O across the engine. One Stats instance is
// shared by all buffer pools of a database so experiments can report
// logical and physical page accesses.
type Stats struct {
	// PageReads counts logical page fetches (buffer pool lookups).
	PageReads atomic.Int64
	// PageMisses counts fetches that had to hit the disk manager.
	PageMisses atomic.Int64
	// PageWrites counts physical page write-backs.
	PageWrites atomic.Int64
	// Evictions counts frames evicted by LRU replacement.
	Evictions atomic.Int64
	// Partitions breaks reads and evictions down by pool partition.
	// Pools with fewer than MaxPartitions stripes use a prefix of the
	// array; all pools sharing this Stats aggregate into the same slots.
	Partitions [MaxPartitions]PartitionStats
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() (reads, misses, writes int64) {
	return s.PageReads.Load(), s.PageMisses.Load(), s.PageWrites.Load()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.PageReads.Store(0)
	s.PageMisses.Store(0)
	s.PageWrites.Store(0)
	s.Evictions.Store(0)
	for i := range s.Partitions {
		s.Partitions[i].Hits.Store(0)
		s.Partitions[i].Misses.Store(0)
		s.Partitions[i].Evictions.Store(0)
	}
}

type frame struct {
	id      PageID
	buf     []byte
	pins    int
	dirty   bool
	lruElem *list.Element // non-nil iff unpinned (eligible for eviction)
}

// partition is one lock stripe of the pool: a private frame table, LRU
// list, and capacity share. Pages map to partitions by id, so two scans
// touching different pages contend only when their pages share a stripe.
type partition struct {
	mu       sync.Mutex
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recently unpinned
	capacity int
	ps       *PartitionStats
}

// BufferPool caches pages of one DiskManager with LRU replacement, striped
// into power-of-two lock partitions keyed by page id. Pages are pinned
// while in use; unpinned pages become eviction candidates within their
// partition.
type BufferPool struct {
	disk     DiskManager
	capacity int
	parts    []*partition
	mask     uint32
	stats    *Stats
}

// partitionsFor picks the stripe count for a pool: one stripe per 32
// frames, clamped to [1, MaxPartitions] and rounded down to a power of
// two. Small pools (tests run with a handful of frames) keep a single
// stripe so "all pinned" exhaustion behaves exactly like the unstriped
// pool did; the default 512-frame table pool gets the full 16.
func partitionsFor(capacity int) int {
	n := capacity / 32
	if n < 1 {
		return 1
	}
	if n > MaxPartitions {
		n = MaxPartitions
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// NewBufferPool creates a pool of capacity pages over disk. stats may be
// nil, in which case a private Stats is used.
func NewBufferPool(disk DiskManager, capacity int, stats *Stats) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if stats == nil {
		stats = &Stats{}
	}
	n := partitionsFor(capacity)
	bp := &BufferPool{
		disk:     disk,
		capacity: capacity,
		parts:    make([]*partition, n),
		mask:     uint32(n - 1),
		stats:    stats,
	}
	for i := range bp.parts {
		// Split the capacity evenly; the first capacity%n stripes absorb
		// the remainder so the total is exact.
		share := capacity / n
		if i < capacity%n {
			share++
		}
		bp.parts[i] = &partition{
			frames:   make(map[PageID]*frame, share),
			lru:      list.New(),
			capacity: share,
			ps:       &stats.Partitions[i],
		}
	}
	return bp
}

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// NumPartitions returns the pool's lock-stripe count.
func (bp *BufferPool) NumPartitions() int { return len(bp.parts) }

func (bp *BufferPool) part(id PageID) *partition {
	return bp.parts[uint32(id)&bp.mask]
}

// Fetch pins page id and returns its buffer. Callers must Unpin when done.
func (bp *BufferPool) Fetch(id PageID) ([]byte, error) {
	p := bp.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	bp.stats.PageReads.Add(1)
	if f, ok := p.frames[id]; ok {
		p.ps.Hits.Add(1)
		p.pinLocked(f)
		return f.buf, nil
	}
	bp.stats.PageMisses.Add(1)
	p.ps.Misses.Add(1)
	f, err := bp.allocFrameLocked(p, id)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.ReadPage(id, f.buf); err != nil {
		delete(p.frames, id)
		return nil, err
	}
	return f.buf, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns its id and a
// zeroed buffer.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.disk.Allocate()
	if err != nil {
		return InvalidPageID, nil, err
	}
	p := bp.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := bp.allocFrameLocked(p, id)
	if err != nil {
		return InvalidPageID, nil, err
	}
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.dirty = true
	return id, f.buf, nil
}

// Publish replaces the frame buffer of page id with buf and marks it
// dirty. The page must be pinned by the caller. The previous buffer is
// left untouched for readers that captured it before the swap — this is
// the copy-on-write step of the heap's snapshot machinery: the writer
// edits a private clone, preserves the old buffer for live snapshots, and
// swaps the clone in here. Later fetches and write-backs see only the new
// buffer.
func (bp *BufferPool) Publish(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: Publish of %d-byte buffer for page %d", len(buf), id)
	}
	p := bp.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok || f.pins == 0 {
		return fmt.Errorf("storage: Publish of unpinned page %d", id)
	}
	f.buf = buf
	f.dirty = true
	return nil
}

// Unpin releases one pin on page id. dirty marks the page as modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	p := bp.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok || f.pins == 0 {
		//lint:ignore nopanic unpin of an unpinned page is caller corruption; continuing would double-free the frame
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	f.dirty = f.dirty || dirty
	f.pins--
	if f.pins == 0 {
		f.lruElem = p.lru.PushFront(id)
	}
}

// FlushAll writes back every dirty page.
func (bp *BufferPool) FlushAll() error {
	for _, p := range bp.parts {
		p.mu.Lock()
		for id, f := range p.frames {
			if f.dirty {
				if err := bp.disk.WritePage(id, f.buf); err != nil {
					p.mu.Unlock()
					return err
				}
				bp.stats.PageWrites.Add(1)
				f.dirty = false
			}
		}
		p.mu.Unlock()
	}
	return bp.disk.Sync()
}

func (p *partition) pinLocked(f *frame) {
	if f.pins == 0 && f.lruElem != nil {
		p.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
	f.pins++
}

func (bp *BufferPool) allocFrameLocked(p *partition, id PageID) (*frame, error) {
	if len(p.frames) >= p.capacity {
		if err := bp.evictLocked(p); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, buf: make([]byte, PageSize), pins: 1}
	p.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLocked(p *partition) error {
	elem := p.lru.Back()
	if elem == nil {
		return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", p.capacity)
	}
	victimID := elem.Value.(PageID)
	victim := p.frames[victimID]
	if victim.dirty {
		if err := bp.disk.WritePage(victimID, victim.buf); err != nil {
			return err
		}
		bp.stats.PageWrites.Add(1)
	}
	p.lru.Remove(elem)
	delete(p.frames, victimID)
	bp.stats.Evictions.Add(1)
	p.ps.Evictions.Add(1)
	return nil
}
