package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"recdb/internal/types"
)

func TestPageInsertGet(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	id1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	id2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if d, ok := p.Get(id1); !ok || string(d) != "hello" {
		t.Fatalf("Get(%d) = %q, %v", id1, d, ok)
	}
	if d, ok := p.Get(id2); !ok || string(d) != "world!" {
		t.Fatalf("Get(%d) = %q, %v", id2, d, ok)
	}
	if _, ok := p.Get(99); ok {
		t.Fatal("Get of out-of-range slot should fail")
	}
}

func TestPageDeleteCompact(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	var ids []SlotID
	for i := 0; i < 10; i++ {
		id, err := p.Insert(bytes.Repeat([]byte{byte('a' + i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	before := p.FreeSpace()
	if err := p.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Get(ids[3]); ok {
		t.Fatal("deleted slot should be dead")
	}
	p.Compact()
	if p.FreeSpace() <= before {
		t.Fatalf("compact should reclaim space: before=%d after=%d", before, p.FreeSpace())
	}
	// Survivors keep their ids and contents.
	for i, id := range ids {
		if i == 3 {
			continue
		}
		d, ok := p.Get(id)
		if !ok || len(d) != 100 || d[0] != byte('a'+i) {
			t.Fatalf("slot %d corrupted after compact", id)
		}
	}
}

func TestPageFull(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	big := make([]byte, 4000)
	if _, err := p.Insert(big); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(big); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(big); err != ErrPageFull {
		t.Fatalf("expected ErrPageFull, got %v", err)
	}
}

func TestMemDisk(t *testing.T) {
	d := NewMemDisk()
	id, err := d.Allocate()
	if err != nil || id != 0 {
		t.Fatalf("Allocate: %v %v", id, err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("read back wrong data")
	}
	if err := d.ReadPage(5, got); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if err := d.WritePage(5, buf); err == nil {
		t.Fatal("write of unallocated page should fail")
	}
}

func TestFileDiskPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pages")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "persist me")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", d2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("persist me")) {
		t.Fatal("data did not persist")
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	disk := NewMemDisk()
	stats := &Stats{}
	bp := NewBufferPool(disk, 2, stats)

	// Create 3 pages through a 2-frame pool; the first must be evicted and
	// written back.
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, buf, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i + 1)
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	// Page 0 should have been evicted; fetch it back and check contents.
	buf, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("evicted page lost data: %d", buf[0])
	}
	bp.Unpin(ids[0], false)
	if _, misses, writes := stats.Snapshot(); misses == 0 || writes == 0 {
		t.Fatalf("expected misses and write-backs, got misses=%d writes=%d", misses, writes)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 1, nil)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	// Pool is full of pinned pages; a second page must fail.
	if _, _, err := bp.NewPage(); err == nil {
		t.Fatal("expected pool-exhausted error")
	}
	bp.Unpin(id, false)
	if _, _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin, NewPage should succeed: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPool(disk, 4, nil)
	id, buf, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	buf[7] = 0x7F
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	if err := disk.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if raw[7] != 0x7F {
		t.Fatal("FlushAll did not persist dirty page")
	}
}

func newTestHeap(t *testing.T, poolPages int) *HeapFile {
	t.Helper()
	h, err := NewHeapFile(NewBufferPool(NewMemDisk(), poolPages, nil))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapInsertGetScan(t *testing.T) {
	h := newTestHeap(t, 8)
	const n = 1000
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(types.Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("row-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if h.NumRows() != n {
		t.Fatalf("NumRows = %d, want %d", h.NumRows(), n)
	}
	// Random access.
	row, err := h.Get(rids[123])
	if err != nil || row[0].Int() != 123 {
		t.Fatalf("Get: %v %v", row, err)
	}
	// Scan yields everything in insertion order.
	it := h.Scan()
	defer it.Close()
	for i := 0; i < n; i++ {
		row, rid, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
		if row[0].Int() != int64(i) || rid != rids[i] {
			t.Fatalf("row %d: got %v at %v", i, row, rid)
		}
	}
	if _, _, ok, _ := it.Next(); ok {
		t.Fatal("scan should be exhausted")
	}
}

func TestHeapScanWithTinyPool(t *testing.T) {
	// A 2-frame pool scanning a multi-page heap exercises eviction during
	// scans, the block-by-block pattern of the paper's operators.
	h := newTestHeap(t, 2)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(int64(i)), types.NewText("padding-padding-padding")}); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 3 {
		t.Fatalf("expected multi-page heap, got %d pages", h.NumPages())
	}
	it := h.Scan()
	defer it.Close()
	count := 0
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("scanned %d rows, want %d", count, n)
	}
}

func TestHeapDelete(t *testing.T) {
	h := newTestHeap(t, 8)
	rid1, _ := h.Insert(types.Row{types.NewInt(1)})
	rid2, _ := h.Insert(types.Row{types.NewInt(2)})
	if err := h.Delete(rid1); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid1); err == nil {
		t.Fatal("double delete should fail")
	}
	if h.NumRows() != 1 {
		t.Fatalf("NumRows = %d, want 1", h.NumRows())
	}
	it := h.Scan()
	defer it.Close()
	row, rid, ok, err := it.Next()
	if err != nil || !ok || rid != rid2 || row[0].Int() != 2 {
		t.Fatalf("scan after delete: %v %v %v %v", row, rid, ok, err)
	}
}

func TestHeapUpdateInPlaceAndRelocated(t *testing.T) {
	h := newTestHeap(t, 8)
	rid, _ := h.Insert(types.Row{types.NewText("a long enough initial value")})
	// Shrinking update stays in place.
	nrid, err := h.Update(rid, types.Row{types.NewText("short")})
	if err != nil || nrid != rid {
		t.Fatalf("in-place update: %v %v", nrid, err)
	}
	row, _ := h.Get(nrid)
	if row[0].Text() != "short" {
		t.Fatalf("got %q", row[0].Text())
	}
	// Fill the page so a growing update must relocate.
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	big := types.Row{types.NewText(string(bytes.Repeat([]byte("x"), 5000)))}
	nrid2, err := h.Update(nrid, big)
	if err != nil {
		t.Fatal(err)
	}
	row, err = h.Get(nrid2)
	if err != nil || len(row[0].Text()) != 5000 {
		t.Fatalf("relocated update lost data: %v", err)
	}
	if h.NumRows() != 2001 {
		t.Fatalf("NumRows = %d, want 2001", h.NumRows())
	}
}

func TestHeapReopenRecounts(t *testing.T) {
	disk := NewMemDisk()
	h, err := NewHeapFile(NewBufferPool(disk, 8, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	h2, err := NewHeapFile(NewBufferPool(disk, 8, nil))
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumRows() != 50 {
		t.Fatalf("reopened NumRows = %d, want 50", h2.NumRows())
	}
}

func TestHeapRoundTripProperty(t *testing.T) {
	h := newTestHeap(t, 4)
	f := func(i int64, s string, fl float64) bool {
		row := types.Row{types.NewInt(i), types.NewText(s), types.NewFloat(fl)}
		if len(s) > 7000 {
			return true
		}
		rid, err := h.Insert(row)
		if err != nil {
			return false
		}
		got, err := h.Get(rid)
		if err != nil || len(got) != 3 {
			return false
		}
		return got[0].Int() == i && got[1].Text() == s &&
			(got[2].Float() == fl || (fl != fl && got[2].Float() != got[2].Float()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentScanAndInsert(t *testing.T) {
	h := newTestHeap(t, 16)
	for i := 0; i < 500; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	// Writers keep appending while readers scan (read-uncommitted is fine;
	// the point is memory safety under -race).
	for w := 0; w < 2; w++ {
		go func(base int) {
			for i := 0; i < 300; i++ {
				if _, err := h.Insert(types.Row{types.NewInt(int64(base + i))}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(1000 * (w + 1))
	}
	for r := 0; r < 4; r++ {
		go func() {
			for pass := 0; pass < 3; pass++ {
				it := h.Scan()
				count := 0
				for {
					_, _, ok, err := it.Next()
					if err != nil {
						it.Close()
						done <- err
						return
					}
					if !ok {
						break
					}
					count++
				}
				it.Close()
				if count < 500 {
					done <- fmt.Errorf("scan saw %d rows, want >= 500", count)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if h.NumRows() != 1100 {
		t.Fatalf("final rows = %d", h.NumRows())
	}
}

func TestOpenFileDiskErrors(t *testing.T) {
	// A file whose size is not a multiple of the page size is rejected.
	path := filepath.Join(t.TempDir(), "bad.pages")
	if err := os.WriteFile(path, []byte("not a page"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(path); err == nil {
		t.Fatal("misaligned file should be rejected")
	}
	// An unopenable path errors.
	if _, err := OpenFileDisk(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("bad path should fail")
	}
}

func TestFileDiskBounds(t *testing.T) {
	d, err := OpenFileDisk(filepath.Join(t.TempDir(), "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if err := d.WritePage(0, buf); err == nil {
		t.Fatal("write of unallocated page should fail")
	}
}

func TestHeapFileOnFileDisk(t *testing.T) {
	// The heap works identically over the file-backed disk manager, and
	// survives a flush + reopen.
	path := filepath.Join(t.TempDir(), "heap.pages")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(d, 4, nil)
	h, err := NewHeapFile(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(int64(i)), types.NewText("file-backed")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	h2, err := NewHeapFile(NewBufferPool(d2, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumRows() != 300 {
		t.Fatalf("reopened rows: %d", h2.NumRows())
	}
	it := h2.Scan()
	defer it.Close()
	row, _, ok, err := it.Next()
	if err != nil || !ok || row[0].Int() != 0 || row[1].Text() != "file-backed" {
		t.Fatalf("reopened first row: %v %v %v", row, ok, err)
	}
}

func TestFileDiskShortReadIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pages")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0x5A
	}
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the file mid-page, as a crash during an extending write
	// would: the page is allocated but only half its bytes exist.
	if err := os.Truncate(path, PageSize/2); err != nil {
		t.Fatal(err)
	}
	err = d.ReadPage(id, buf)
	if err == nil {
		t.Fatal("short read must be an error, not a silently half-filled buffer")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read err = %v, want io.ErrUnexpectedEOF", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsPagePanicsOnWrongSize pins the sanctioned nopanic site in
// page.go: AsPage must reject a buffer that is not exactly PageSize.
// Every in-tree caller passes pool frames, which are PageSize by
// construction — this test is the tripwire for any future caller that
// is not.
func TestAsPagePanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsPage on a short buffer must panic")
		}
	}()
	AsPage(make([]byte, PageSize-1))
}

// TestAsPageAcceptsPoolFrames proves the invariant the suppression
// relies on: buffers handed out by the pool are always PageSize.
func TestAsPageAcceptsPoolFrames(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 2, nil)
	id, buf, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Unpin(id, false)
	if len(buf) != PageSize {
		t.Fatalf("pool frame is %d bytes, want PageSize", len(buf))
	}
	if p := AsPage(buf); p == nil {
		t.Fatal("AsPage rejected a pool frame")
	}
}

// TestUnpinOfUnpinnedPanics pins the sanctioned nopanic site in
// bufferpool.go: a double unpin is caller corruption (the frame would be
// double-freed into the LRU) and must fail loudly.
func TestUnpinOfUnpinnedPanics(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 2, nil)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	defer func() {
		if recover() == nil {
			t.Fatal("second Unpin of the same pin must panic")
		}
	}()
	bp.Unpin(id, false)
}
