package storage

import (
	"testing"

	"recdb/internal/types"
)

func BenchmarkHeapInsert(b *testing.B) {
	h, err := NewHeapFile(NewBufferPool(NewMemDisk(), 1024, nil))
	if err != nil {
		b.Fatal(err)
	}
	row := types.Row{types.NewInt(1), types.NewInt(2), types.NewFloat(4.5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	h, err := NewHeapFile(NewBufferPool(NewMemDisk(), 1024, nil))
	if err != nil {
		b.Fatal(err)
	}
	row := types.Row{types.NewInt(1), types.NewInt(2), types.NewFloat(4.5)}
	for i := 0; i < 10000; i++ {
		h.Insert(row)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := h.Scan()
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		it.Close()
	}
}

func BenchmarkBufferPoolFetchHit(b *testing.B) {
	bp := NewBufferPool(NewMemDisk(), 16, nil)
	id, _, err := bp.NewPage()
	if err != nil {
		b.Fatal(err)
	}
	bp.Unpin(id, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Fetch(id); err != nil {
			b.Fatal(err)
		}
		bp.Unpin(id, false)
	}
}

func BenchmarkEncodeDecodeRow(b *testing.B) {
	row := types.Row{types.NewInt(12345), types.NewInt(678), types.NewFloat(4.5), types.NewText("genre")}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = types.EncodeRow(buf[:0], row)
		if _, _, err := types.DecodeRow(buf); err != nil {
			b.Fatal(err)
		}
	}
}
