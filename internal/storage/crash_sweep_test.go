package storage_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"recdb/internal/fault"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// This file extends the crash sweep from the persist/WAL path (root
// crash_test.go) down to the paged storage layer: the same mode × point
// matrix is driven through fault.FaultDisk under a file-backed buffer
// pool, so evictions and flushes hit real page I/O mid-workload. The
// package is storage_test (not storage) because internal/fault imports
// storage. The invariants are the layer's contract: every injected fault
// surfaces as an error from the heap API — never a panic, never silently
// dropped — and a clean reopen of the same file can always scan whatever
// pages survived.

// runHeapWorkload drives inserts, updates, deletes, and a full scan
// through a 4-frame pool over disk, forcing evictions (and therefore page
// writes) throughout. It returns the committed row count.
func runHeapWorkload(disk storage.DiskManager) (int64, error) {
	pool := storage.NewBufferPool(disk, 4, nil)
	h, err := storage.NewHeapFile(pool)
	if err != nil {
		return 0, err
	}
	pad := make([]byte, 400)
	for i := range pad {
		pad[i] = byte('a' + i%26)
	}
	var rids []storage.RID
	for i := int64(0); i < 250; i++ {
		rid, err := h.Insert(paddedRow(i, pad))
		if err != nil {
			return 0, err
		}
		rids = append(rids, rid)
	}
	for i := 0; i < len(rids); i += 10 {
		if _, err := h.Update(rids[i], paddedRow(int64(1000+i), pad)); err != nil {
			return 0, err
		}
	}
	for i := 7; i < len(rids); i += 17 {
		if i%10 == 0 {
			continue // updated rows may have moved
		}
		if err := h.Delete(rids[i]); err != nil {
			return 0, err
		}
	}
	if err := pool.FlushAll(); err != nil {
		return 0, err
	}
	if err := disk.Sync(); err != nil {
		return 0, err
	}
	return scanCount(h)
}

func paddedRow(i int64, pad []byte) types.Row {
	return types.Row{types.NewInt(i), types.NewText(string(pad))}
}

func scanCount(h *storage.HeapFile) (int64, error) {
	it := h.Scan()
	defer it.Close()
	var n int64
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// TestHeapCrashSweep injects every fault mode at every page-I/O operation
// of the workload (sampled by default, exhaustive under
// RECDB_FAULT_SWEEP=1) and asserts clean error propagation plus reopen
// behavior per mode.
func TestHeapCrashSweep(t *testing.T) {
	dir := t.TempDir()

	// Count the workload's page operations with an unarmed injector.
	cleanPath := filepath.Join(dir, "clean.heap")
	cleanDisk, err := storage.OpenFileDisk(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	fd := fault.NewDisk(cleanDisk)
	cleanRows, err := runHeapWorkload(fd)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := fd.Ops()
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	if total < 50 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}
	if cleanRows < 100 {
		t.Fatalf("clean workload rows = %d", cleanRows)
	}

	full := os.Getenv("RECDB_FAULT_SWEEP") == "1"
	stride := int64(1)
	if !full && total > 40 {
		stride = total/40 + 1
	}
	t.Logf("sweeping %d fault points (stride %d, full=%v)", total, stride, full)

	modes := []struct {
		mode fault.Mode
		name string
	}{
		{fault.ModeFail, "fail"},
		{fault.ModeTorn, "torn"},
		{fault.ModePowerCut, "powercut"},
		{fault.ModeFlip, "flip"},
	}
	for _, m := range modes {
		for n := int64(1); n <= total; n++ {
			if stride > 1 && n%stride != 1 && n != total {
				continue
			}
			tag := fmt.Sprintf("%s@%d", m.name, n)
			path := filepath.Join(dir, tag+".heap")
			inner, err := storage.OpenFileDisk(path)
			if err != nil {
				t.Fatal(err)
			}
			injected := fault.NewDisk(inner)
			injected.SetPlan(m.mode, n)
			rows, err := runHeapWorkload(injected)

			switch m.mode {
			case fault.ModeFail, fault.ModePowerCut:
				// The planned operation itself fails, so the workload
				// must abort with the injector's error — not succeed,
				// not fail with something unrelated.
				if err == nil {
					t.Fatalf("%s: workload succeeded past an injected failure", tag)
				}
				if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, fault.ErrCrashed) {
					t.Fatalf("%s: err = %v, want injected/crashed", tag, err)
				}
			case fault.ModeTorn:
				// A torn write reports failure; a torn non-write
				// power-cuts. Either way the workload must abort.
				if err == nil {
					t.Fatalf("%s: workload succeeded past a torn write", tag)
				}
			case fault.ModeFlip:
				// Silent corruption: the write "succeeds". The workload
				// may finish, or a later read of the flipped page may
				// surface a decode error — both are acceptable; a panic
				// is not (it would have crashed the test binary).
				if err == nil && rows != cleanRows {
					t.Fatalf("%s: silent row loss: %d != %d", tag, rows, cleanRows)
				}
			}
			_ = injected.Close()

			// Reopen the surviving file with a clean disk: whatever
			// pages were flushed must be scannable without a panic, and
			// with no injected error left behind. Decode errors are
			// legitimate only for modes that corrupt bytes on disk.
			reopened, err := storage.OpenFileDisk(path)
			if err != nil {
				t.Fatalf("%s: reopen: %v", tag, err)
			}
			pool := storage.NewBufferPool(reopened, 4, nil)
			h, err := storage.NewHeapFile(pool)
			if err == nil {
				_, err = scanCount(h)
			}
			if err != nil {
				if m.mode == fault.ModeFail || m.mode == fault.ModePowerCut {
					t.Fatalf("%s: reopen scan after non-corrupting fault: %v", tag, err)
				}
				if errors.Is(err, fault.ErrInjected) || errors.Is(err, fault.ErrCrashed) {
					t.Fatalf("%s: injected error leaked into clean reopen: %v", tag, err)
				}
			}
			if err := reopened.Close(); err != nil {
				t.Fatalf("%s: close: %v", tag, err)
			}
			_ = os.Remove(path)
		}
	}
}
