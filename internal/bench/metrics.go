package bench

import (
	"fmt"
	"time"

	"recdb/internal/dataset"
	"recdb/internal/metrics"
)

// RunMetricsOverhead measures what the observability layer costs: the same
// full-scan query timed with instruments idle (the normal query path, where
// instrumentation is a handful of atomic ops), with the idle instrumentation
// ops isolated in a microbenchmark, and under EXPLAIN ANALYZE (per-operator
// wrapping, the only mode that allocates). The emitted table backs the
// "instrumentation is near-free when idle" claim in DESIGN.md §9.
func RunMetricsOverhead(spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Metrics",
		Title:  fmt.Sprintf("Instrumentation overhead (%s)", spec.Name),
		Header: []string{"Mode", "Avg/query", "Overhead vs plain"},
	}
	env, err := Setup(spec, []string{"ItemCosCF"}, neighborhood)
	if err != nil {
		return t, err
	}
	q := fmt.Sprintf(`SELECT R.uid, R.iid, R.ratingval FROM ratings R WHERE R.uid = %d`, env.QueryUser)
	iters := 10 * Reps
	// Warm the buffer pool so both timed loops see the same cache state.
	if _, err := env.Eng.Query(q); err != nil {
		return t, err
	}
	plain, err := TimeN(iters, func() error {
		_, err := env.Eng.Query(q)
		return err
	})
	if err != nil {
		return t, err
	}
	analyze, err := TimeN(iters, func() error {
		_, err := env.Eng.Query("EXPLAIN ANALYZE " + q)
		return err
	})
	if err != nil {
		return t, err
	}
	idle := idleInstrumentCost()
	t.Rows = append(t.Rows,
		[]string{"plain query (instruments idle)", dur(plain), "baseline"},
		[]string{"idle instrumentation ops alone", dur(idle), pctOf(idle, plain)},
		[]string{"EXPLAIN ANALYZE (per-operator)", dur(analyze), pctOf(analyze-plain, plain)},
	)
	t.Metrics = env.MetricsSnapshot()
	return t, nil
}

// idleInstrumentCost times exactly the instrument operations the normal
// query path performs per query — two time.Now calls, two counter
// increments, a histogram observation, and a strategy-counter increment —
// against a live registry, returning the average per-query cost.
func idleInstrumentCost() time.Duration {
	reg := metrics.NewRegistry()
	queries := reg.Counter("bench.queries")
	rows := reg.Counter("bench.rows")
	strategy := reg.Counter("bench.strategy")
	lat := reg.Histogram("bench.query_ns")
	const iters = 200_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		s := time.Now()
		queries.Inc()
		rows.Add(64)
		strategy.Inc()
		lat.ObserveSince(s)
	}
	return time.Since(start) / iters
}

// pctOf renders d as a percentage of base ("<0.1%" under the threshold).
func pctOf(d, base time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	p := 100 * float64(d) / float64(base)
	if p < 0.1 && p > -0.1 {
		return "<0.1%"
	}
	return fmt.Sprintf("%.1f%%", p)
}
