// Package sharded benchmarks the horizontal-scale serving tier end to
// end: it builds the real recdb-server and recdb-router binaries,
// launches 1/2/4 shard processes plus a router on loopback, seeds
// through the router, and measures aggregate throughput as the shard
// count grows.
//
// Real processes — not in-process servers — are the point: each shard
// owns its own WAL and fsyncs independently, so the durable-insert
// workload measures the parallelism a sharded tier actually buys
// (disjoint logs), and the router pays its true process-hop cost. A
// "direct" row drives one recdb-server without the router, so the
// router's overhead on a single shard is measurable against it.
//
// It lives under internal/bench but, like bench/serve, is linked only
// by cmd/recdb-bench.
package sharded

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"recdb/client"
	"recdb/internal/bench"
)

// conns is how many client connections drive each cell; ops is the
// per-cell operation budget split across them.
const (
	conns = 8
	ops   = 480
)

// seedUsers/seedItems size the synthetic ratings table; small enough
// for CI, large enough that every shard owns a real partition and that
// scoring a user against the item-cosine model is real per-op work
// (so the routing hop is measured against a workload that does
// something, not against an empty round trip).
const (
	seedUsers      = 200
	seedItems      = 200
	ratingsPerUser = 20
)

// proc is one launched binary and the address it reported.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

// launch starts bin with args, waits for its "listening on ADDR" line,
// and keeps draining its stdout so the child never blocks on a full
// pipe.
func launch(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("%s: exited before reporting its address", filepath.Base(bin))
	}
	go func() { _, _ = io.Copy(io.Discard, out) }()
	return &proc{cmd: cmd, addr: addr}, nil
}

// stop drains the process with SIGTERM, escalating to SIGKILL after a
// grace period.
func (p *proc) stop() {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		_ = p.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}

// buildBinaries compiles recdb-server and recdb-router into dir.
func buildBinaries(dir string) (server, router string, err error) {
	server = filepath.Join(dir, "recdb-server")
	router = filepath.Join(dir, "recdb-router")
	for bin, pkg := range map[string]string{server: "recdb/cmd/recdb-server", router: "recdb/cmd/recdb-router"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return "", "", fmt.Errorf("building %s: %w", pkg, err)
		}
	}
	return server, router, nil
}

// cluster is n shard processes fronted by a router process.
type cluster struct {
	shards []*proc
	router *proc
}

func (c *cluster) stop() {
	if c.router != nil {
		c.router.stop()
	}
	for _, s := range c.shards {
		s.stop()
	}
}

// startCluster launches n durable shards and a router over them.
func startCluster(serverBin, routerBin, dir string, n int) (*cluster, error) {
	c := &cluster{}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p, err := launch(serverBin,
			"-addr", "127.0.0.1:0",
			"-dir", filepath.Join(dir, fmt.Sprintf("shard%d", i)))
		if err != nil {
			c.stop()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shards = append(c.shards, p)
		addrs = append(addrs, p.addr)
	}
	p, err := launch(routerBin,
		"-addr", "127.0.0.1:0",
		"-shards", strings.Join(addrs, ","))
	if err != nil {
		c.stop()
		return nil, fmt.Errorf("router: %w", err)
	}
	c.router = p
	return c, nil
}

// seed creates the schema and ratings through addr (the router, so
// seeding itself exercises DDL broadcast and split inserts).
func seed(addr string) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()
	ddl := `CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		CREATE INDEX ratings_uid ON ratings (uid)`
	if _, err := c.Exec(ctx, ddl); err != nil {
		return err
	}
	const batch = 40
	row := 0
	for row < seedUsers*ratingsPerUser {
		var sb strings.Builder
		sb.WriteString("INSERT INTO ratings VALUES ")
		for j := 0; j < batch; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			u := row % seedUsers
			fmt.Fprintf(&sb, "(%d, %d, %d.5)", u, (row*7)%seedItems, 1+row%4)
			row++
		}
		if _, err := c.Exec(ctx, sb.String()); err != nil {
			return err
		}
	}
	// Built after the data lands; the router broadcasts the build so
	// every shard trains its own replica of the model.
	_, err = c.Exec(ctx, `CREATE RECOMMENDER Rec ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	return err
}

// workload is one op shape driven through the tier.
type workload struct {
	name  string
	write bool
	sql   func(op int) string
}

func workloads() []workload {
	return []workload{
		{"point lookup", false, func(op int) string {
			return fmt.Sprintf(`SELECT iid, ratingval FROM ratings WHERE uid = %d`, op%seedUsers)
		}},
		{"recommend", false, func(op int) string {
			// Per-user top-10: the owner shard scores the user against its
			// item-cosine model, so per-op engine work dominates the hop.
			return fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 10`, op%seedUsers)
		}},
		{"durable insert", true, func(op int) string {
			// Owner-routed single-user writes; fresh item ids avoid
			// colliding with the seeded ratings. Each shard fsyncs its own
			// WAL, which is the parallelism sharding buys on any core count.
			return fmt.Sprintf(`INSERT INTO ratings VALUES (%d, %d, 3.0)`, op%seedUsers, 1_000_000+op)
		}},
	}
}

// drive runs one workload cell against addr: conns connections
// concurrently issuing their share of ops, after an untimed warmup
// that faults caches, pools, and scheduler state in. Returns the wall
// time of the timed pass.
func drive(addr string, w workload) (time.Duration, int, error) {
	per := ops / conns
	warm := 8 // untimed ops per connection
	errs := make([]error, conns)
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(conns)
	walls := make([]time.Duration, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				barrier.Done()
				errs[n] = err
				return
			}
			defer func() { _ = c.Close() }()
			ctx := context.Background()
			one := func(op int) error {
				if w.write {
					_, err := c.Exec(ctx, w.sql(op))
					return err
				}
				_, err := c.Query(ctx, w.sql(op))
				return err
			}
			for j := 0; j < warm; j++ {
				if err := one(ops + n*warm + j); err != nil {
					barrier.Done()
					errs[n] = fmt.Errorf("warmup op: %w", err)
					return
				}
			}
			// Start the clock only once every connection finished warming,
			// so a straggler's warmup doesn't count against the others.
			barrier.Done()
			barrier.Wait()
			start := time.Now()
			for j := 0; j < per; j++ {
				op := n*per + j
				if err := one(op); err != nil {
					errs[n] = fmt.Errorf("op %d: %w", op, err)
					return
				}
			}
			walls[n] = time.Since(start)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	var wall time.Duration
	for _, d := range walls {
		if d > wall {
			wall = d
		}
	}
	return wall, per * conns, nil
}

// Run measures aggregate throughput at each shard count, plus a
// router-less "direct" baseline on one shard.
func Run(shardCounts []int) (bench.Table, error) {
	t := bench.Table{
		ID:     "Sharded",
		Title:  "Sharded serving tier: aggregate throughput vs shard count (real processes over loopback)",
		Header: []string{"Workload", "Tier", "Shards", "Conns", "Ops", "Wall", "Ops/s"},
	}
	work, err := os.MkdirTemp("", "recdb-bench-sharded")
	if err != nil {
		return t, err
	}
	defer func() { _ = os.RemoveAll(work) }()
	serverBin, routerBin, err := buildBinaries(work)
	if err != nil {
		return t, err
	}

	type cell struct {
		workload, tier string
		shards, n      int
		wall           time.Duration
	}
	var cells []cell

	// Direct baseline: clients straight at one durable shard.
	direct, err := launch(serverBin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(work, "direct"))
	if err != nil {
		return t, err
	}
	if err := seed(direct.addr); err != nil {
		direct.stop()
		return t, fmt.Errorf("seeding direct baseline: %w", err)
	}
	for _, w := range workloads() {
		wall, n, err := drive(direct.addr, w)
		if err != nil {
			direct.stop()
			return t, fmt.Errorf("direct %s: %w", w.name, err)
		}
		cells = append(cells, cell{w.name, "direct", 1, n, wall})
	}
	direct.stop()

	for _, sc := range shardCounts {
		cl, err := startCluster(serverBin, routerBin, filepath.Join(work, fmt.Sprintf("n%d", sc)), sc)
		if err != nil {
			return t, err
		}
		if err := seed(cl.router.addr); err != nil {
			cl.stop()
			return t, fmt.Errorf("seeding %d-shard cluster: %w", sc, err)
		}
		for _, w := range workloads() {
			wall, n, err := drive(cl.router.addr, w)
			if err != nil {
				cl.stop()
				return t, fmt.Errorf("%d shards, %s: %w", sc, w.name, err)
			}
			cells = append(cells, cell{w.name, "routed", sc, n, wall})
		}
		cl.stop()
	}

	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.workload, c.tier,
			fmt.Sprintf("%d", c.shards),
			fmt.Sprintf("%d", conns),
			fmt.Sprintf("%d", c.n),
			fmtDur(c.wall),
			fmt.Sprintf("%.0f", float64(c.n)/c.wall.Seconds()),
		})
	}
	return t, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
