package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/persist"
	"recdb/internal/types"
	"recdb/internal/wal"
)

// durabilitySchema is the benchmark's working set: a plain ratings table,
// no recommender, so the timings isolate the durability machinery (WAL
// framing + fsync, snapshot write, replay) from model training.
const durabilitySchema = `
	CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
`

// RunDurability measures the cost of crash safety on the real filesystem:
// commit throughput under each WAL sync policy (per-commit fsync, group
// commit, no fsync), snapshot checkpoint time, and cold recovery
// (snapshot load + WAL replay + post-recovery checkpoint). Every phase
// runs in its own temp directory with real fsyncs, so the numbers reflect
// what durability actually charges the commit path.
func RunDurability(commits int) (Table, error) {
	t := Table{
		ID:     "Durability",
		Title:  fmt.Sprintf("Durable commit, checkpoint, and recovery (%d commits, OS filesystem)", commits),
		Header: []string{"Phase", "Ops", "Wall", "Ops/s"},
	}
	row := func(phase string, ops int, d time.Duration) {
		t.Rows = append(t.Rows, []string{
			phase, fmt.Sprintf("%d", ops), dur(d), fmt.Sprintf("%.0f", float64(ops)/d.Seconds()),
		})
	}

	policies := []struct {
		syncEvery int
		name      string
	}{
		{1, "commit, fsync every statement"},
		{8, "commit, group commit of 8"},
		{64, "commit, group commit of 64"},
		{-1, "commit, no fsync (checkpoint-only)"},
	}
	for _, p := range policies {
		d, err := timeCommits(p.syncEvery, commits)
		if err != nil {
			return t, err
		}
		row(p.name, commits, d)
	}

	// Checkpoint and recovery share one database: commit through the log,
	// time the snapshot that absorbs it, commit again, close, and time the
	// cold reopen (load + replay + post-recovery checkpoint — the same
	// sequence recdb.OpenDir performs).
	dir, err := os.MkdirTemp("", "recdb-durability-")
	if err != nil {
		return t, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	eng, l, err := durableEngine(dir, -1)
	if err != nil {
		return t, err
	}
	for i := 0; i < commits; i++ {
		if _, err := eng.Exec(insertStmt(i)); err != nil {
			return t, err
		}
	}
	start := time.Now()
	if _, err := persist.SaveFS(fault.OS, eng, dir, l.Seq()); err != nil {
		return t, err
	}
	if err := l.Reset(); err != nil {
		return t, err
	}
	row("checkpoint (snapshot + log reset)", commits, time.Since(start))

	for i := 0; i < commits; i++ {
		if _, err := eng.Exec(insertStmt(commits + i)); err != nil {
			return t, err
		}
	}
	if err := l.Sync(); err != nil {
		return t, err
	}
	if err := l.Close(); err != nil {
		return t, err
	}
	eng.Close()

	start = time.Now()
	eng2, info, err := persist.LoadFS(fault.OS, dir, engine.Config{})
	if err != nil {
		return t, err
	}
	replayed := 0
	seq, err := wal.Replay(fault.OS, filepath.Join(dir, "wal"), info.WALSeq, func(_ uint64, _ int, payload []byte) error {
		replayed++
		return applyLogical(eng2, payload)
	})
	if err != nil {
		return t, err
	}
	if _, err := persist.SaveFS(fault.OS, eng2, dir, seq); err != nil {
		return t, err
	}
	row("recover (load + replay + checkpoint)", replayed, time.Since(start))
	eng2.Close()
	if replayed != commits {
		return t, fmt.Errorf("bench: recovery replayed %d of %d commits", replayed, commits)
	}

	// Replay-format experiment: the same insert workload logged two ways —
	// as statement text (the pre-transactions WAL format, replayed through
	// parse + plan + execute) and as logical tuple records (replayed by
	// applying the encoded row straight to the heap). The gap is what the
	// logical WAL buys every recovery.
	for _, logical := range []bool{false, true} {
		name := "replay, statement-text records (re-parse + re-plan)"
		if logical {
			name = "replay, logical tuple records (direct apply)"
		}
		d, err := timeReplayFormat(commits, logical)
		if err != nil {
			return t, err
		}
		row(name, commits, d)
	}
	return t, nil
}

// timeReplayFormat writes commits insert records in one of the two WAL
// payload formats, then times replaying them into a fresh engine. Only
// the replay loop is timed; log writing and engine setup are not.
func timeReplayFormat(commits int, logical bool) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "recdb-durability-")
	if err != nil {
		return 0, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	l, err := wal.Open(fault.OS, filepath.Join(dir, "wal"), 0, wal.Options{SyncEvery: -1})
	if err != nil {
		return 0, err
	}
	for i := 0; i < commits; i++ {
		var rec wal.Record
		if logical {
			rec = wal.Record{Kind: wal.RecInsert, Table: "ratings",
				Row: types.EncodeRow(nil, insertRow(i))}
		} else {
			rec = wal.Record{Kind: wal.RecStmt, Text: insertStmt(i)}
		}
		//lint:ignore walorder the experiment fabricates a replay corpus; no engine is attached to diverge from
		if _, err := l.Append(wal.EncodeRecord(nil, rec)); err != nil {
			return 0, err
		}
	}
	if err := l.Close(); err != nil {
		return 0, err
	}

	eng := engine.New(engine.Config{})
	defer eng.Close()
	if _, err := eng.ExecScript(durabilitySchema); err != nil {
		return 0, err
	}
	start := time.Now()
	n := 0
	if _, err := wal.Replay(fault.OS, filepath.Join(dir, "wal"), 0, func(_ uint64, _ int, payload []byte) error {
		n++
		return applyLogical(eng, payload)
	}); err != nil {
		return 0, err
	}
	d := time.Since(start)
	if n != commits {
		return 0, fmt.Errorf("bench: replayed %d of %d records", n, commits)
	}
	return d, nil
}

// timeCommits measures committing n statements through the WAL under one
// sync policy, including the trailing flush that makes the tail durable
// (except under the never-sync policy, whose whole point is to skip it).
func timeCommits(syncEvery, n int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "recdb-durability-")
	if err != nil {
		return 0, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	eng, l, err := durableEngine(dir, syncEvery)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	defer l.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := eng.Exec(insertStmt(i)); err != nil {
			return 0, err
		}
	}
	if syncEvery >= 0 {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// durableEngine builds an engine whose commits append logical tuple
// records to a WAL in dir/wal, the same wiring recdb uses after SaveTo.
func durableEngine(dir string, syncEvery int) (*engine.Engine, *wal.Log, error) {
	eng := engine.New(engine.Config{})
	if _, err := eng.ExecScript(durabilitySchema); err != nil {
		eng.Close()
		return nil, nil, err
	}
	l, err := wal.Open(fault.OS, filepath.Join(dir, "wal"), 0, wal.Options{SyncEvery: syncEvery})
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	eng.SetCommitHook(func(txn uint64, muts []engine.Mutation) error {
		payloads := make([][]byte, 0, len(muts)+2)
		if txn != 0 {
			payloads = append(payloads, wal.EncodeRecord(nil, wal.Record{Kind: wal.RecTxnBegin, Txn: txn}))
		}
		for _, m := range muts {
			rec := wal.Record{Kind: m.Kind, Txn: txn, Table: m.Table, Text: m.Text}
			if m.Row != nil {
				rec.Row = types.EncodeRow(nil, m.Row)
			}
			if m.Old != nil {
				rec.Old = types.EncodeRow(nil, m.Old)
			}
			payloads = append(payloads, wal.EncodeRecord(nil, rec))
		}
		if txn != 0 {
			payloads = append(payloads, wal.EncodeRecord(nil, wal.Record{Kind: wal.RecTxnCommit, Txn: txn}))
		}
		var aerr error
		if len(payloads) == 1 {
			_, aerr = l.Append(payloads[0])
		} else {
			_, aerr = l.AppendBatch(payloads)
		}
		return aerr
	})
	return eng, l, nil
}

// applyLogical replays one logical WAL payload into an engine. The
// bench workload commits one row at a time, so every record is bare
// (no transaction framing to buffer).
func applyLogical(eng *engine.Engine, payload []byte) error {
	rec, err := wal.DecodeRecord(payload)
	if err != nil {
		return err
	}
	switch rec.Kind {
	case wal.RecInsert:
		row, _, derr := types.DecodeRow(rec.Row)
		if derr != nil {
			return derr
		}
		return eng.ApplyInsert(rec.Table, row)
	case wal.RecStmt:
		_, eerr := eng.Exec(rec.Text)
		return eerr
	}
	return fmt.Errorf("bench: unexpected record kind %q", rec.Kind)
}

func insertStmt(i int) string {
	return fmt.Sprintf("INSERT INTO ratings VALUES (%d, %d, %d.5)", i%997, i, i%4+1)
}

// insertRow is insertStmt's row in encoded-tuple form.
func insertRow(i int) types.Row {
	return types.Row{
		types.NewInt(int64(i % 997)),
		types.NewInt(int64(i)),
		types.NewFloat(float64(i%4) + 0.5),
	}
}
