package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/persist"
	"recdb/internal/wal"
)

// durabilitySchema is the benchmark's working set: a plain ratings table,
// no recommender, so the timings isolate the durability machinery (WAL
// framing + fsync, snapshot write, replay) from model training.
const durabilitySchema = `
	CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
`

// RunDurability measures the cost of crash safety on the real filesystem:
// commit throughput under each WAL sync policy (per-commit fsync, group
// commit, no fsync), snapshot checkpoint time, and cold recovery
// (snapshot load + WAL replay + post-recovery checkpoint). Every phase
// runs in its own temp directory with real fsyncs, so the numbers reflect
// what durability actually charges the commit path.
func RunDurability(commits int) (Table, error) {
	t := Table{
		ID:     "Durability",
		Title:  fmt.Sprintf("Durable commit, checkpoint, and recovery (%d commits, OS filesystem)", commits),
		Header: []string{"Phase", "Ops", "Wall", "Ops/s"},
	}
	row := func(phase string, ops int, d time.Duration) {
		t.Rows = append(t.Rows, []string{
			phase, fmt.Sprintf("%d", ops), dur(d), fmt.Sprintf("%.0f", float64(ops)/d.Seconds()),
		})
	}

	policies := []struct {
		syncEvery int
		name      string
	}{
		{1, "commit, fsync every statement"},
		{8, "commit, group commit of 8"},
		{64, "commit, group commit of 64"},
		{-1, "commit, no fsync (checkpoint-only)"},
	}
	for _, p := range policies {
		d, err := timeCommits(p.syncEvery, commits)
		if err != nil {
			return t, err
		}
		row(p.name, commits, d)
	}

	// Checkpoint and recovery share one database: commit through the log,
	// time the snapshot that absorbs it, commit again, close, and time the
	// cold reopen (load + replay + post-recovery checkpoint — the same
	// sequence recdb.OpenDir performs).
	dir, err := os.MkdirTemp("", "recdb-durability-")
	if err != nil {
		return t, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	eng, l, err := durableEngine(dir, -1)
	if err != nil {
		return t, err
	}
	for i := 0; i < commits; i++ {
		if _, err := eng.Exec(insertStmt(i)); err != nil {
			return t, err
		}
	}
	start := time.Now()
	if _, err := persist.SaveFS(fault.OS, eng, dir, l.Seq()); err != nil {
		return t, err
	}
	if err := l.Reset(); err != nil {
		return t, err
	}
	row("checkpoint (snapshot + log reset)", commits, time.Since(start))

	for i := 0; i < commits; i++ {
		if _, err := eng.Exec(insertStmt(commits+i)); err != nil {
			return t, err
		}
	}
	if err := l.Sync(); err != nil {
		return t, err
	}
	if err := l.Close(); err != nil {
		return t, err
	}
	eng.Close()

	start = time.Now()
	eng2, info, err := persist.LoadFS(fault.OS, dir, engine.Config{})
	if err != nil {
		return t, err
	}
	replayed := 0
	seq, err := wal.Replay(fault.OS, filepath.Join(dir, "wal"), info.WALSeq, func(_ uint64, payload []byte) error {
		replayed++
		_, eerr := eng2.Exec(string(payload))
		return eerr
	})
	if err != nil {
		return t, err
	}
	if _, err := persist.SaveFS(fault.OS, eng2, dir, seq); err != nil {
		return t, err
	}
	row("recover (load + replay + checkpoint)", replayed, time.Since(start))
	eng2.Close()
	if replayed != commits {
		return t, fmt.Errorf("bench: recovery replayed %d of %d commits", replayed, commits)
	}
	return t, nil
}

// timeCommits measures committing n statements through the WAL under one
// sync policy, including the trailing flush that makes the tail durable
// (except under the never-sync policy, whose whole point is to skip it).
func timeCommits(syncEvery, n int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "recdb-durability-")
	if err != nil {
		return 0, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	eng, l, err := durableEngine(dir, syncEvery)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	defer l.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := eng.Exec(insertStmt(i)); err != nil {
			return 0, err
		}
	}
	if syncEvery >= 0 {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// durableEngine builds an engine whose commits append to a WAL in
// dir/wal, the same wiring recdb uses after SaveTo.
func durableEngine(dir string, syncEvery int) (*engine.Engine, *wal.Log, error) {
	eng := engine.New(engine.Config{})
	if _, err := eng.ExecScript(durabilitySchema); err != nil {
		eng.Close()
		return nil, nil, err
	}
	l, err := wal.Open(fault.OS, filepath.Join(dir, "wal"), 0, wal.Options{SyncEvery: syncEvery})
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	eng.SetCommitHook(func(stmt string) error {
		_, aerr := l.Append([]byte(stmt))
		return aerr
	})
	return eng, l, nil
}

func insertStmt(i int) string {
	return fmt.Sprintf("INSERT INTO ratings VALUES (%d, %d, %d.5)", i%997, i, i%4+1)
}
