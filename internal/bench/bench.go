// Package bench is the shared harness behind the root bench_test.go and
// cmd/recdb-bench: it sets up the synthetic datasets, creates the in-DBMS
// recommenders and the OnTopDB baseline side by side, and issues the query
// shapes of every experiment in §VI (selectivity, join, and top-k), so the
// paper's tables and figures can be regenerated as timed runs.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"recdb/internal/dataset"
	"recdb/internal/engine"
	"recdb/internal/metrics"
	"recdb/internal/ontop"
	"recdb/internal/rec"
)

// Env is one prepared benchmark environment: a dataset loaded into an
// engine, with matching in-DBMS and OnTopDB recommenders.
type Env struct {
	Eng        *engine.Engine
	OnTop      *ontop.Client
	Data       *dataset.Data
	BuildTimes map[string]time.Duration // algo → in-DBMS model build time

	// QueryUser is a reproducible "typical" querying user: the user at the
	// median rating-count among users with at least one unseen item.
	QueryUser int64

	itemIDs []int64
}

// Algos are the algorithms the paper benchmarks (Figs. 6-12, Table II).
var Algos = []string{"ItemCosCF", "ItemPearCF", "SVD"}

// Setup loads spec into a fresh engine and creates one in-DBMS recommender
// and one OnTopDB recommender per algorithm. neighborhood truncates
// similarity lists (0 = full, the paper's setting; a cap like 64 mirrors
// library defaults and keeps full-scale OnTopDB runs tractable).
func Setup(spec dataset.Spec, algos []string, neighborhood int) (*Env, error) {
	opts := rec.BuildOptions{NeighborhoodSize: neighborhood, SVDSeed: 42}
	eng := engine.New(engine.Config{Rec: rec.Options{Build: opts}})
	d := dataset.Generate(spec)
	if err := dataset.Load(eng, d); err != nil {
		return nil, err
	}
	env := &Env{
		Eng:        eng,
		OnTop:      ontop.New(eng),
		Data:       d,
		BuildTimes: make(map[string]time.Duration),
	}
	for _, algo := range algos {
		start := time.Now()
		if _, err := eng.Exec(fmt.Sprintf(
			`CREATE RECOMMENDER Rec_%s ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING %s`,
			algo, algo)); err != nil {
			return nil, err
		}
		env.BuildTimes[algo] = time.Since(start)
		if err := env.OnTop.CreateRecommender("OnTop_"+algo, "ratings", "uid", "iid", "ratingval", algo, opts); err != nil {
			return nil, err
		}
	}
	env.pickQueryUser()
	for _, it := range d.Items {
		env.itemIDs = append(env.itemIDs, it.ID)
	}
	return env, nil
}

func (e *Env) pickQueryUser() {
	counts := map[int64]int{}
	for _, r := range e.Data.Ratings {
		counts[r.User]++
	}
	type uc struct {
		u int64
		n int
	}
	var list []uc
	for u, n := range counts {
		if n < len(e.Data.Items) { // must have unseen items
			list = append(list, uc{u, n})
		}
	}
	if len(list) == 0 {
		e.QueryUser = 1
		return
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].n != list[b].n {
			return list[a].n < list[b].n
		}
		return list[a].u < list[b].u
	})
	e.QueryUser = list[len(list)/2].u
}

// MetricsSnapshot copies the environment engine's instrument registry,
// for embedding into a Table's JSON output.
func (e *Env) MetricsSnapshot() *metrics.Snapshot {
	s := e.Eng.Metrics().Snapshot()
	return &s
}

// SelectivityItems returns a deterministic item-id list covering the given
// fraction of the item table (the selectivity factor of §VI-A).
func (e *Env) SelectivityItems(fraction float64) []int64 {
	n := int(fraction * float64(len(e.itemIDs)))
	if n < 1 {
		n = 1
	}
	if n > len(e.itemIDs) {
		n = len(e.itemIDs)
	}
	// Evenly spaced ids avoid clustering artifacts.
	out := make([]int64, 0, n)
	step := float64(len(e.itemIDs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, e.itemIDs[int(float64(i)*step)])
	}
	return out
}

func idList(ids []int64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, ", ")
}

// ---- Experiment queries (RecDB side) ----

// RecDBSelectivity runs the §VI-A query shape: recommendation restricted
// by uid and an iid IN list. It returns the row count.
func (e *Env) RecDBSelectivity(algo string, items []int64) (int, error) {
	q := fmt.Sprintf(`SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING %s
		WHERE R.uid = %d AND R.iid IN (%s)`, algo, e.QueryUser, idList(items))
	res, err := e.Eng.Query(q)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// RecDBJoin runs the §VI-B query shape: recommendation joined with the
// items table under a genre filter (one-way), optionally also joining the
// users table (two-way).
func (e *Env) RecDBJoin(algo string, twoWay bool) (int, error) {
	q := fmt.Sprintf(`SELECT R.uid, M.name, R.ratingval FROM ratings R, items M
		RECOMMEND R.iid TO R.uid ON R.ratingval USING %s
		WHERE R.uid = %d AND M.iid = R.iid AND M.genre = 'Action'`, algo, e.QueryUser)
	if twoWay {
		q = fmt.Sprintf(`SELECT R.uid, M.name, U.name, R.ratingval FROM ratings R, items M, users U
			RECOMMEND R.iid TO R.uid ON R.ratingval USING %s
			WHERE R.uid = %d AND M.iid = R.iid AND M.genre = 'Action' AND U.uid = R.uid`,
			algo, e.QueryUser)
	}
	res, err := e.Eng.Query(q)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// RecDBTopK runs the §VI-C query shape: top-k recommendation ordered by
// predicted rating. Call MaterializeQueryUser first for the warm
// (IndexRecommend) configuration the paper measures.
func (e *Env) RecDBTopK(algo string, k int) (int, string, error) {
	q := fmt.Sprintf(`SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING %s
		WHERE R.uid = %d
		ORDER BY R.ratingval DESC LIMIT %d`, algo, e.QueryUser, k)
	res, err := e.Eng.Query(q)
	if err != nil {
		return 0, "", err
	}
	return len(res.Rows), res.Explain.Strategy, nil
}

// MaterializeQueryUser pre-computes the query user's RecTree for every
// given algorithm (the pre-computation of §IV-C).
func (e *Env) MaterializeQueryUser(algos []string) error {
	for _, algo := range algos {
		if err := e.Eng.MaterializeUser("Rec_"+algo, e.QueryUser); err != nil {
			return err
		}
	}
	return nil
}

// ---- Experiment queries (OnTopDB side) ----

// OnTopSelectivity is the baseline counterpart of RecDBSelectivity.
func (e *Env) OnTopSelectivity(algo string, items []int64) (int, error) {
	q := fmt.Sprintf(`SELECT s.uid, s.iid, s.ratingval FROM %s s
		WHERE s.uid = %d AND s.iid IN (%s)`,
		ontop.ScoresTable, e.QueryUser, idList(items))
	res, err := e.OnTop.Query("OnTop_"+algo, []int64{e.QueryUser}, q)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// OnTopJoin is the baseline counterpart of RecDBJoin.
func (e *Env) OnTopJoin(algo string, twoWay bool) (int, error) {
	q := fmt.Sprintf(`SELECT s.uid, M.name, s.ratingval FROM %s s, items M
		WHERE s.uid = %d AND M.iid = s.iid AND M.genre = 'Action'`,
		ontop.ScoresTable, e.QueryUser)
	if twoWay {
		q = fmt.Sprintf(`SELECT s.uid, M.name, U.name, s.ratingval FROM %s s, items M, users U
			WHERE s.uid = %d AND M.iid = s.iid AND M.genre = 'Action' AND U.uid = s.uid`,
			ontop.ScoresTable, e.QueryUser)
	}
	res, err := e.OnTop.Query("OnTop_"+algo, []int64{e.QueryUser}, q)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// OnTopTopK is the baseline counterpart of RecDBTopK.
func (e *Env) OnTopTopK(algo string, k int) (int, error) {
	q := fmt.Sprintf(`SELECT s.uid, s.iid, s.ratingval FROM %s s
		WHERE s.uid = %d ORDER BY s.ratingval DESC LIMIT %d`,
		ontop.ScoresTable, e.QueryUser, k)
	res, err := e.OnTop.Query("OnTop_"+algo, []int64{e.QueryUser}, q)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// Time runs fn once and returns its duration, failing fast on error.
func Time(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// TimeN runs fn n times and returns the average duration.
func TimeN(n int, fn func() error) (time.Duration, error) {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}
