package bench

import (
	"strings"
	"testing"
	"time"

	"recdb/internal/dataset"
)

const testScale = 0.08

func TestSetupAndQueries(t *testing.T) {
	env, err := Setup(dataset.MovieLens.Scaled(testScale), Algos, 0)
	if err != nil {
		t.Fatal(err)
	}
	if env.QueryUser == 0 {
		t.Fatal("no query user chosen")
	}
	for _, algo := range Algos {
		if env.BuildTimes[algo] <= 0 {
			t.Fatalf("no build time for %s", algo)
		}
	}
	items := env.SelectivityItems(0.1)
	if len(items) < 1 {
		t.Fatal("no selectivity items")
	}
	n, err := env.RecDBSelectivity("ItemCosCF", items)
	if err != nil {
		t.Fatal(err)
	}
	m, err := env.OnTopSelectivity("ItemCosCF", items)
	if err != nil {
		t.Fatal(err)
	}
	if n != m {
		t.Fatalf("RecDB and OnTopDB disagree: %d vs %d rows", n, m)
	}
}

func TestJoinAgreement(t *testing.T) {
	env, err := Setup(dataset.LDOS.Scaled(0.5), Algos, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, twoWay := range []bool{false, true} {
		a, err := env.RecDBJoin("ItemCosCF", twoWay)
		if err != nil {
			t.Fatal(err)
		}
		b, err := env.OnTopJoin("ItemCosCF", twoWay)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("join rows differ (twoWay=%v): %d vs %d", twoWay, a, b)
		}
	}
}

func TestTopKUsesIndexWhenWarm(t *testing.T) {
	env, err := Setup(dataset.MovieLens.Scaled(testScale), []string{"ItemCosCF"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, strategy, err := env.RecDBTopK("ItemCosCF", 10)
	if err != nil {
		t.Fatal(err)
	}
	if strategy != "FilterRecommend" {
		t.Fatalf("cold strategy: %q", strategy)
	}
	if err := env.MaterializeQueryUser([]string{"ItemCosCF"}); err != nil {
		t.Fatal(err)
	}
	n, strategy, err := env.RecDBTopK("ItemCosCF", 10)
	if err != nil {
		t.Fatal(err)
	}
	if strategy != "IndexRecommend" {
		t.Fatalf("warm strategy: %q", strategy)
	}
	m, err := env.OnTopTopK("ItemCosCF", 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != m {
		t.Fatalf("top-k rows differ: %d vs %d", n, m)
	}
}

func TestSelectivityItemsShape(t *testing.T) {
	env, err := Setup(dataset.LDOS.Scaled(0.5), []string{"ItemCosCF"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tiny := env.SelectivityItems(0.0000001)
	if len(tiny) != 1 {
		t.Fatalf("tiny selectivity: %d items", len(tiny))
	}
	all := env.SelectivityItems(1.0)
	if len(all) != len(env.Data.Items) {
		t.Fatalf("full selectivity: %d of %d", len(all), len(env.Data.Items))
	}
	half := env.SelectivityItems(0.5)
	if len(half) < len(all)/3 || len(half) > len(all) {
		t.Fatalf("half selectivity: %d of %d", len(half), len(all))
	}
	seen := map[int64]bool{}
	for _, id := range half {
		if seen[id] {
			t.Fatalf("duplicate item %d", id)
		}
		seen[id] = true
	}
}

func TestExperimentTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	spec := dataset.LDOS.Scaled(0.6)
	checks := []struct {
		name string
		run  func() (Table, error)
	}{
		{"selectivity", func() (Table, error) { return RunSelectivity("Fig. 6", spec, 0) }},
		{"join", func() (Table, error) { return RunJoin("Fig. 8", spec, 0) }},
		{"topk", func() (Table, error) { return RunTopK("Fig. 10", spec, 0) }},
		{"pushdown", func() (Table, error) { return RunAblationFilterPushdown(spec, 0) }},
		{"joinrec", func() (Table, error) { return RunAblationJoinRecommend(spec, 0) }},
		{"recindex", func() (Table, error) { return RunAblationRecScoreIndex(spec, 0) }},
		{"hotness", func() (Table, error) { return RunAblationHotness(spec, 0) }},
	}
	for _, c := range checks {
		tab, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(tab.Rows) == 0 || len(tab.Header) == 0 {
			t.Fatalf("%s: empty table", c.name)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: ragged row %v vs header %v", c.name, row, tab.Header)
			}
		}
	}
}

func TestRunTable2Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab, err := RunTable2(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("table 2 rows: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if !strings.ContainsAny(cell, "sµm") {
				t.Fatalf("cell %q does not look like a duration", cell)
			}
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	d, err := Time(func() error { time.Sleep(time.Millisecond); return nil })
	if err != nil || d < time.Millisecond {
		t.Fatalf("Time: %v %v", d, err)
	}
	n := 0
	avg, err := TimeN(4, func() error { n++; return nil })
	if err != nil || n != 4 || avg < 0 {
		t.Fatalf("TimeN: %v %v n=%d", avg, err, n)
	}
}
