package bench

import (
	"fmt"
	"time"

	"recdb/internal/dataset"
	"recdb/internal/engine"
	"recdb/internal/rec"
)

// annQueryUsers is how many distinct users each ANN measurement cycles
// through (round-robin), so the numbers aren't one hot user's cache line.
const annQueryUsers = 32

// RunANN maps the IVF index's recall@k vs speedup frontier: for each
// dataset scale, it measures exact-scan top-k throughput (the vector path
// disabled), then sweeps nprobe from 1 to the full centroid count,
// reporting per-point recall@k against the exact results and throughput
// speedup. The frontier is the evidence for the index's contract: recall
// degrades gracefully and controllably with probe width while the exact
// setting (nprobe = all centroids) stays at recall 1.0 by construction.
func RunANN(base dataset.Spec, scales []float64, k int) (Table, error) {
	t := Table{
		ID:    "ANN",
		Title: fmt.Sprintf("IVF top-%d: recall vs speedup frontier (%s)", k, base.Name),
		Header: []string{
			"Dataset", "Items", "Centroids", "nprobe", fmt.Sprintf("recall@%d", k),
			"ops/s", "speedup",
		},
	}
	for _, scale := range scales {
		spec := base
		if scale != 1.0 {
			spec = base.Scaled(scale)
		}
		if err := runANNScale(&t, spec, k); err != nil {
			return t, err
		}
	}
	return t, nil
}

func runANNScale(t *Table, spec dataset.Spec, k int) error {
	eng := engine.New(engine.Config{Rec: rec.Options{Build: rec.BuildOptions{SVDSeed: 42}}})
	d := dataset.Generate(spec)
	if err := dataset.Load(eng, d); err != nil {
		return err
	}
	if _, err := eng.Exec(`CREATE RECOMMENDER Rec_SVD ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD`); err != nil {
		return err
	}

	users := make([]int64, 0, annQueryUsers)
	for i := 0; i < annQueryUsers && i < len(d.Users); i++ {
		users = append(users, d.Users[(i*len(d.Users))/annQueryUsers].ID)
	}
	query := func(u int64) (*engine.QueryResult, error) {
		return eng.Query(fmt.Sprintf(
			`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			 RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
			 WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT %d`, u, k))
	}

	// Exact ground truth per user, and the exact-scan throughput baseline.
	eng.Planner().DisableVectorRecommend = true
	truth := make(map[int64]map[int64]bool, len(users))
	for _, u := range users {
		res, err := query(u)
		if err != nil {
			return err
		}
		set := make(map[int64]bool, len(res.Rows))
		for _, r := range res.Rows {
			set[r[1].Int()] = true
		}
		truth[u] = set
	}
	exactOps, err := annThroughput(query, users)
	if err != nil {
		return err
	}
	eng.Planner().DisableVectorRecommend = false

	// Centroid count, read off the live plan.
	probe, err := query(users[0])
	if err != nil {
		return err
	}
	if probe.Explain.Strategy != "VectorRecommend" {
		return fmt.Errorf("bench: ann sweep not on the vector plan (strategy %s)", probe.Explain.Strategy)
	}
	rcmd, ok := eng.Recommenders().Get("Rec_SVD")
	if !ok {
		return fmt.Errorf("bench: recommender Rec_SVD missing")
	}
	index, err := rcmd.Store().ANN()
	if err != nil {
		return err
	}
	centroids := index.NumCentroids()

	t.Rows = append(t.Rows, []string{
		spec.Name, fmt.Sprintf("%d", spec.Items), fmt.Sprintf("%d", centroids),
		"exact scan", "1.000", fmt.Sprintf("%.0f", exactOps), "1.0x",
	})

	for nprobe := 1; ; nprobe *= 2 {
		if nprobe > centroids {
			nprobe = centroids
		}
		eng.Planner().VectorProbe = nprobe
		hits, want := 0, 0
		for _, u := range users {
			res, err := query(u)
			if err != nil {
				return err
			}
			for item := range truth[u] {
				want++
				for _, r := range res.Rows {
					if r[1].Int() == item {
						hits++
						break
					}
				}
			}
		}
		ops, err := annThroughput(query, users)
		if err != nil {
			return err
		}
		recall := 1.0
		if want > 0 {
			recall = float64(hits) / float64(want)
		}
		t.Rows = append(t.Rows, []string{
			spec.Name, fmt.Sprintf("%d", spec.Items), fmt.Sprintf("%d", centroids),
			fmt.Sprintf("%d", nprobe), fmt.Sprintf("%.3f", recall),
			fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.1fx", ops/exactOps),
		})
		if nprobe == centroids {
			break
		}
	}
	eng.Planner().VectorProbe = 0
	return nil
}

// annThroughput measures queries/second over the user set, repeated Reps
// times for stability.
func annThroughput(query func(int64) (*engine.QueryResult, error), users []int64) (float64, error) {
	n := 0
	start := time.Now()
	for rep := 0; rep < Reps; rep++ {
		for _, u := range users {
			if _, err := query(u); err != nil {
				return 0, err
			}
			n++
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds(), nil
}
