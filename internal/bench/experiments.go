package bench

import (
	"fmt"
	"time"

	"recdb/internal/dataset"
	"recdb/internal/metrics"
)

// Table is one regenerated paper table/figure, ready for text rendering.
type Table struct {
	ID     string // e.g. "Table II", "Fig. 6"
	Title  string
	Header []string
	Rows   [][]string
	// Metrics, when non-nil, embeds the engine's instrument snapshot taken
	// after the experiment ran (recdb-bench -json output carries it so a
	// run's buffer-pool/planner/executor counters are archived with its
	// timings).
	Metrics *metrics.Snapshot `json:",omitempty"`
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// Selectivities are the §VI-A selectivity factors.
var Selectivities = []float64{0.001, 0.01, 0.1}

// TopKs are the §VI-C k values.
var TopKs = []int{10, 100}

// Reps is how many times each RecDB-side query is repeated for averaging
// (OnTopDB queries run once; they are orders of magnitude slower).
var Reps = 3

// RunTable2 regenerates Table II: model build time per dataset × algorithm.
func RunTable2(scale float64, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Table II",
		Title:  "Recommender model building time",
		Header: []string{"Init. Time", "ItemCosCF", "ItemPearCF", "SVD"},
	}
	for _, spec := range []dataset.Spec{dataset.MovieLens, dataset.LDOS, dataset.Yelp} {
		if scale != 1 {
			spec = spec.Scaled(scale)
		}
		env, err := Setup(spec, Algos, neighborhood)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			dur(env.BuildTimes["ItemCosCF"]),
			dur(env.BuildTimes["ItemPearCF"]),
			dur(env.BuildTimes["SVD"]),
		})
	}
	return t, nil
}

// RunSelectivity regenerates Fig. 6 (MovieLens) or Fig. 7 (Yelp): query
// time vs selectivity factor for ItemCosCF and SVD, RecDB vs OnTopDB.
func RunSelectivity(figID string, spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     figID,
		Title:  fmt.Sprintf("Query time vs selectivity (%s)", spec.Name),
		Header: []string{"Selectivity", "Algo", "RecDB", "OnTopDB", "speedup"},
	}
	env, err := Setup(spec, []string{"ItemCosCF", "SVD"}, neighborhood)
	if err != nil {
		return t, err
	}
	for _, algo := range []string{"ItemCosCF", "SVD"} {
		for _, sel := range Selectivities {
			items := env.SelectivityItems(sel)
			recT, err := TimeN(Reps, func() error {
				_, err := env.RecDBSelectivity(algo, items)
				return err
			})
			if err != nil {
				return t, err
			}
			topT, err := Time(func() error {
				_, err := env.OnTopSelectivity(algo, items)
				return err
			})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f%%", sel*100), algo,
				dur(recT), dur(topT), speedup(recT, topT),
			})
		}
	}
	t.Metrics = env.MetricsSnapshot()
	return t, nil
}

// RunJoin regenerates Fig. 8 (MovieLens) or Fig. 9 (LDOS-CoMoDa): join
// query time per algorithm, one-way and two-way joins, RecDB vs OnTopDB.
func RunJoin(figID string, spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     figID,
		Title:  fmt.Sprintf("Join query time (%s)", spec.Name),
		Header: []string{"Join", "Algo", "RecDB", "OnTopDB", "speedup"},
	}
	env, err := Setup(spec, Algos, neighborhood)
	if err != nil {
		return t, err
	}
	for _, twoWay := range []bool{false, true} {
		label := "one-way"
		if twoWay {
			label = "two-way"
		}
		for _, algo := range Algos {
			recT, err := TimeN(Reps, func() error {
				_, err := env.RecDBJoin(algo, twoWay)
				return err
			})
			if err != nil {
				return t, err
			}
			topT, err := Time(func() error {
				_, err := env.OnTopJoin(algo, twoWay)
				return err
			})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				label, algo, dur(recT), dur(topT), speedup(recT, topT),
			})
		}
	}
	t.Metrics = env.MetricsSnapshot()
	return t, nil
}

// RunTopK regenerates Fig. 10 (MovieLens), Fig. 11 (LDOS-CoMoDa), or
// Fig. 12 (Yelp): top-k recommendation time with the RecScoreIndex warm
// for RecDB, per algorithm and k, vs OnTopDB.
func RunTopK(figID string, spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     figID,
		Title:  fmt.Sprintf("Top-K recommendation query time (%s)", spec.Name),
		Header: []string{"K", "Algo", "RecDB", "OnTopDB", "speedup", "RecDB plan"},
	}
	env, err := Setup(spec, Algos, neighborhood)
	if err != nil {
		return t, err
	}
	if err := env.MaterializeQueryUser(Algos); err != nil {
		return t, err
	}
	for _, k := range TopKs {
		for _, algo := range Algos {
			var strategy string
			recT, err := TimeN(Reps, func() error {
				_, s, err := env.RecDBTopK(algo, k)
				strategy = s
				return err
			})
			if err != nil {
				return t, err
			}
			topT, err := Time(func() error {
				_, err := env.OnTopTopK(algo, k)
				return err
			})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k), algo,
				dur(recT), dur(topT), speedup(recT, topT), strategy,
			})
		}
	}
	t.Metrics = env.MetricsSnapshot()
	return t, nil
}

func speedup(rec, top time.Duration) string {
	if rec <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(top)/float64(rec))
}

// ---- Ablations (DESIGN.md §4) ----

// RunAblationFilterPushdown measures the selectivity query with and
// without uid/iid pushdown into the RECOMMEND operator.
func RunAblationFilterPushdown(spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Ablation A1",
		Title:  fmt.Sprintf("FilterRecommend pushdown vs Recommend+Filter (%s)", spec.Name),
		Header: []string{"Selectivity", "pushdown on", "pushdown off", "speedup"},
	}
	env, err := Setup(spec, []string{"ItemCosCF"}, neighborhood)
	if err != nil {
		return t, err
	}
	for _, sel := range Selectivities {
		items := env.SelectivityItems(sel)
		on, err := TimeN(Reps, func() error {
			_, err := env.RecDBSelectivity("ItemCosCF", items)
			return err
		})
		if err != nil {
			return t, err
		}
		env.Eng.Planner().DisableFilterPushdown = true
		off, err := Time(func() error {
			_, err := env.RecDBSelectivity("ItemCosCF", items)
			return err
		})
		env.Eng.Planner().DisableFilterPushdown = false
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f%%", sel*100), dur(on), dur(off), speedup(on, off),
		})
	}
	return t, nil
}

// RunAblationJoinRecommend measures the join query with JOINRECOMMEND vs
// the FilterRecommend+HashJoin fallback.
func RunAblationJoinRecommend(spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Ablation A2",
		Title:  fmt.Sprintf("JoinRecommend vs Recommend+HashJoin (%s)", spec.Name),
		Header: []string{"Join", "JoinRecommend", "fallback", "speedup"},
	}
	env, err := Setup(spec, []string{"ItemCosCF"}, neighborhood)
	if err != nil {
		return t, err
	}
	for _, twoWay := range []bool{false, true} {
		label := "one-way"
		if twoWay {
			label = "two-way"
		}
		on, err := TimeN(Reps, func() error {
			_, err := env.RecDBJoin("ItemCosCF", twoWay)
			return err
		})
		if err != nil {
			return t, err
		}
		env.Eng.Planner().DisableJoinRecommend = true
		off, err := TimeN(Reps, func() error {
			_, err := env.RecDBJoin("ItemCosCF", twoWay)
			return err
		})
		env.Eng.Planner().DisableJoinRecommend = false
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{label, dur(on), dur(off), speedup(on, off)})
	}
	return t, nil
}

// RunAblationRecScoreIndex measures top-k with the RecScoreIndex
// (INDEXRECOMMEND) vs online prediction + sort.
func RunAblationRecScoreIndex(spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Ablation A3",
		Title:  fmt.Sprintf("IndexRecommend vs online prediction+sort (%s)", spec.Name),
		Header: []string{"K", "indexed", "online", "speedup"},
	}
	env, err := Setup(spec, []string{"ItemCosCF"}, neighborhood)
	if err != nil {
		return t, err
	}
	if err := env.MaterializeQueryUser([]string{"ItemCosCF"}); err != nil {
		return t, err
	}
	for _, k := range TopKs {
		on, err := TimeN(Reps, func() error {
			_, _, err := env.RecDBTopK("ItemCosCF", k)
			return err
		})
		if err != nil {
			return t, err
		}
		env.Eng.Planner().DisableIndexRecommend = true
		off, err := TimeN(Reps, func() error {
			_, _, err := env.RecDBTopK("ItemCosCF", k)
			return err
		})
		env.Eng.Planner().DisableIndexRecommend = false
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), dur(on), dur(off), speedup(on, off)})
	}
	return t, nil
}

// RunAblationNeighborhood measures model build and query time across
// neighborhood-size caps (0 = the paper's full lists).
func RunAblationNeighborhood(spec dataset.Spec) (Table, error) {
	t := Table{
		ID:     "Ablation A4",
		Title:  fmt.Sprintf("Neighborhood truncation (%s)", spec.Name),
		Header: []string{"size", "build", "top-10 query"},
	}
	for _, size := range []int{0, 200, 64, 16} {
		env, err := Setup(spec, []string{"ItemCosCF"}, size)
		if err != nil {
			return t, err
		}
		q, err := TimeN(Reps, func() error {
			_, _, err := env.RecDBTopK("ItemCosCF", 10)
			return err
		})
		if err != nil {
			return t, err
		}
		label := fmt.Sprintf("%d", size)
		if size == 0 {
			label = "full"
		}
		t.Rows = append(t.Rows, []string{label, dur(env.BuildTimes["ItemCosCF"]), dur(q)})
	}
	return t, nil
}

// RunAblationHotness sweeps HOTNESS-THRESHOLD from 0 to 1 and reports the
// materialized entry count (storage) against hot-user top-k latency.
func RunAblationHotness(spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Ablation A5",
		Title:  fmt.Sprintf("HOTNESS-THRESHOLD sweep (%s)", spec.Name),
		Header: []string{"threshold", "materialized entries", "hot-user top-10", "plan"},
	}
	for _, threshold := range []float64{0, 0.25, 0.5, 0.75, 1.01} {
		env, err := Setup(spec, []string{"ItemCosCF"}, neighborhood)
		if err != nil {
			return t, err
		}
		cache, err := env.Eng.CacheOf("Rec_ItemCosCF")
		if err != nil {
			return t, err
		}
		cache.Threshold = threshold
		// Drive demand and consumption with skew, so hotness spans the
		// whole (0, 1] range: the query user is the hottest, other users
		// trail off, and item consumption decays with rank.
		r, _ := env.Eng.Recommenders().Get("Rec_ItemCosCF")
		for i := 0; i < 16; i++ {
			cache.RecordQuery(env.QueryUser)
		}
		for rank, u := range env.Eng.Recommenders().List()[0].Store().UserIDs() {
			if rank >= 8 {
				break
			}
			for q := 0; q < 8-rank; q++ {
				cache.RecordQuery(u)
			}
		}
		for rank, it := range env.Data.Items {
			updates := 1 + 32/(rank+1) // harmonic decay: a few very hot items
			for q := 0; q < updates; q++ {
				cache.RecordUpdate(it.ID)
			}
		}
		if _, err := cache.Run(r.Store()); err != nil {
			return t, err
		}
		var strategy string
		q, err := TimeN(Reps, func() error {
			_, s, err := env.RecDBTopK("ItemCosCF", 10)
			strategy = s
			return err
		})
		if err != nil {
			return t, err
		}
		label := fmt.Sprintf("%.2f", threshold)
		if threshold > 1 {
			label = "1.00"
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprintf("%d", cache.Index().Len()), dur(q), strategy,
		})
	}
	return t, nil
}

// RunPageIO reports logical page reads per query for each recommendation
// strategy on the same top-10 workload — the I/O-cost view of §IV's
// operator cost model (the paper's latency claims are grounded in how many
// pages each plan touches).
func RunPageIO(spec dataset.Spec, neighborhood int) (Table, error) {
	t := Table{
		ID:     "Ablation A6",
		Title:  fmt.Sprintf("Logical page reads per top-10 query (%s)", spec.Name),
		Header: []string{"strategy", "page reads", "time"},
	}
	env, err := Setup(spec, []string{"ItemCosCF"}, neighborhood)
	if err != nil {
		return t, err
	}
	stats := env.Eng.Stats()

	measure := func(label string, setup func() error, fn func() error) error {
		if setup != nil {
			if err := setup(); err != nil {
				return err
			}
		}
		// Warm once so model-table pages are cached (steady state).
		if err := fn(); err != nil {
			return err
		}
		stats.Reset()
		d, err := Time(fn)
		if err != nil {
			return err
		}
		reads, _, _ := stats.Snapshot()
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", reads), dur(d)})
		return nil
	}

	planner := env.Eng.Planner()
	// Full Recommend (pushdown off): touches every user's vector and every
	// item's neighborhood.
	if err := measure("Recommend (no pushdown)",
		func() error { planner.DisableFilterPushdown = true; return nil },
		func() error { _, _, err := env.RecDBTopK("ItemCosCF", 10); return err },
	); err != nil {
		return t, err
	}
	planner.DisableFilterPushdown = false
	// FilterRecommend: one user's vector + candidate neighborhoods.
	if err := measure("FilterRecommend", nil,
		func() error { _, _, err := env.RecDBTopK("ItemCosCF", 10); return err },
	); err != nil {
		return t, err
	}
	// IndexRecommend: no model-table pages at all.
	if err := measure("IndexRecommend",
		func() error { return env.MaterializeQueryUser([]string{"ItemCosCF"}) },
		func() error { _, _, err := env.RecDBTopK("ItemCosCF", 10); return err },
	); err != nil {
		return t, err
	}
	t.Metrics = env.MetricsSnapshot()
	return t, nil
}
