// Package serve benchmarks the network serving layer: a real
// recdb-server on a loopback listener, driven by real client
// connections, measuring end-to-end throughput and latency (framing,
// session scheduling, and executor included) as the connection count
// grows.
//
// It lives apart from internal/bench because it needs the root recdb
// package (to open the served database), which internal/bench must not
// import: the root package's own bench_test.go imports internal/bench,
// and the cycle would break test compilation. Only cmd/recdb-bench
// links this package.
package serve

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"recdb"
	"recdb/client"
	"recdb/internal/bench"
	"recdb/internal/dataset"
	"recdb/internal/server"
)

// totalOps is the per-cell operation budget, split across the cell's
// connections. 960 divides evenly by every default connection count.
const totalOps = 960

// workload is one query shape driven through the server.
type workload struct {
	name string
	sql  func(user int64) string
}

func workloads() []workload {
	return []workload{
		{"point lookup", func(u int64) string {
			return fmt.Sprintf(`SELECT iid, ratingval FROM ratings WHERE uid = %d`, u)
		}},
		{"recommend top-10", func(u int64) string {
			return fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 10`, u)
		}},
	}
}

// Run serves a scaled MovieLens database and measures each workload at
// each connection count: total wall time, aggregate throughput, and
// client-observed p50/p99 latency.
func Run(scale float64, conns []int) (bench.Table, error) {
	t := bench.Table{
		ID:     "Serve",
		Title:  "Serving layer: end-to-end throughput and latency over loopback TCP",
		Header: []string{"Workload", "Conns", "Ops", "Wall", "Ops/s", "p50", "p99"},
	}

	db := recdb.Open()
	defer db.Close()
	spec := dataset.MovieLens.Scaled(scale)
	if err := dataset.Load(db.Engine(), dataset.Generate(spec)); err != nil {
		return t, err
	}
	if _, err := db.Exec(`CREATE RECOMMENDER Rec ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		return t, err
	}

	srv := server.New(db, server.Options{MaxConns: 128})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return t, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}()
	addr := ln.Addr().String()

	for _, w := range workloads() {
		for _, nc := range conns {
			wall, lats, err := runCell(addr, nc, w.sql, spec.Users)
			if err != nil {
				return t, fmt.Errorf("%s @ %d conns: %w", w.name, nc, err)
			}
			ops := len(lats)
			t.Rows = append(t.Rows, []string{
				w.name,
				fmt.Sprintf("%d", nc),
				fmt.Sprintf("%d", ops),
				fmtDur(wall),
				fmt.Sprintf("%.0f", float64(ops)/wall.Seconds()),
				fmtDur(quantile(lats, 0.50)),
				fmtDur(quantile(lats, 0.99)),
			})
		}
	}
	snap := db.Engine().Metrics().Snapshot()
	t.Metrics = &snap
	return t, nil
}

// runCell drives one workload cell: nc connections issuing the cell's
// share of totalOps queries each, all concurrently. It returns the wall
// time of the whole cell and every per-op latency.
func runCell(addr string, nc int, gen func(int64) string, users int) (time.Duration, []time.Duration, error) {
	per := totalOps / nc
	if per == 0 {
		per = 1
	}
	ctx := context.Background()
	perConn := make([][]time.Duration, nc)
	errs := make([]error, nc)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nc; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[n] = err
				return
			}
			defer func() { _ = c.Close() }()
			lats := make([]time.Duration, 0, per)
			for j := 0; j < per; j++ {
				user := int64((n*per+j)%users + 1)
				opStart := time.Now()
				if _, err := c.Query(ctx, gen(user)); err != nil {
					errs[n] = err
					return
				}
				lats = append(lats, time.Since(opStart))
			}
			perConn[n] = lats
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	var all []time.Duration
	for _, l := range perConn {
		all = append(all, l...)
	}
	return wall, all, nil
}

// quantile returns the q-th latency quantile (sorts a copy).
func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
