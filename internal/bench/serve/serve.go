// Package serve benchmarks the network serving layer: a real
// recdb-server on a loopback listener, driven by real client
// connections, measuring end-to-end throughput and latency (framing,
// session scheduling, and executor included) as the connection count
// grows.
//
// Each cell runs one read/write mix: pure-read mixes measure how far
// snapshot reads scale past one connection, and mixed cells measure
// whether reads stall behind writers (the WAL fsync sits inside the
// writer's critical section, so before snapshot reads existed a 90/10
// mix serialized everything behind the log).
//
// It lives apart from internal/bench because it needs the root recdb
// package (to open the served database), which internal/bench must not
// import: the root package's own bench_test.go imports internal/bench,
// and the cycle would break test compilation. Only cmd/recdb-bench
// links this package.
package serve

import (
	"context"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"recdb"
	"recdb/client"
	"recdb/internal/bench"
	"recdb/internal/dataset"
	"recdb/internal/server"
)

// totalOps is the per-cell operation budget, split across the cell's
// connections. 960 divides evenly by every default connection count.
const totalOps = 960

// Mix is a read/write traffic split in percent (Read + Write = 100).
type Mix struct {
	Read, Write int
}

// String renders the mix as "read/write".
func (m Mix) String() string { return fmt.Sprintf("%d/%d", m.Read, m.Write) }

// ParseMixes parses a comma-separated list of "read/write" percent
// pairs, e.g. "100/0,90/10".
func ParseMixes(s string) ([]Mix, error) {
	var out []Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rw := strings.Split(part, "/")
		if len(rw) != 2 {
			return nil, fmt.Errorf("mix %q is not read/write", part)
		}
		r, err1 := strconv.Atoi(rw[0])
		w, err2 := strconv.Atoi(rw[1])
		if err1 != nil || err2 != nil || r < 0 || w < 0 || r+w != 100 {
			return nil, fmt.Errorf("mix %q must be percentages summing to 100", part)
		}
		out = append(out, Mix{Read: r, Write: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mixes given")
	}
	return out, nil
}

// workload is one query shape driven through the server.
type workload struct {
	name string
	sql  func(user int64) string
}

func workloads() []workload {
	return []workload{
		{"point lookup", func(u int64) string {
			return fmt.Sprintf(`SELECT iid, ratingval FROM ratings WHERE uid = %d`, u)
		}},
		{"recommend top-10", func(u int64) string {
			return fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 10`, u)
		}},
	}
}

// Run serves a scaled MovieLens database and measures each workload at
// each connection count and mix: total wall time, aggregate throughput,
// and client-observed p50/p99 read latency.
//
// The served database is durable (WAL attached) whenever any mix
// writes, so the write path pays its real fsync cost; the ratings table
// gets an index on uid so the point lookup is an index probe rather
// than a heap scan, which keeps a single connection round-trip-bound
// and lets added connections pipeline. The recommend workload runs only
// under pure-read mixes (its cost dwarfs the read/write interference
// the mixed cells exist to expose).
func Run(scale float64, conns []int, mixes []Mix) (bench.Table, error) {
	t := bench.Table{
		ID:     "Serve",
		Title:  "Serving layer: end-to-end throughput and latency over loopback TCP",
		Header: []string{"Workload", "Mix", "Conns", "Ops", "Wall", "Ops/s", "p50", "p99"},
	}
	if len(mixes) == 0 {
		mixes = []Mix{{Read: 100, Write: 0}}
	}

	writes := false
	for _, m := range mixes {
		if m.Write > 0 {
			writes = true
		}
	}

	db := recdb.Open()
	defer db.Close()
	spec := dataset.MovieLens.Scaled(scale)
	if err := dataset.Load(db.Engine(), dataset.Generate(spec)); err != nil {
		return t, err
	}
	if _, err := db.Exec(`CREATE INDEX ratings_uid ON ratings (uid)`); err != nil {
		return t, err
	}
	if _, err := db.Exec(`CREATE RECOMMENDER Rec ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		return t, err
	}
	if writes {
		dir, err := os.MkdirTemp("", "recdb-bench-serve")
		if err != nil {
			return t, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
		if err := db.SaveTo(dir); err != nil {
			return t, err
		}
	}

	srv := server.New(db, server.Options{MaxConns: 128})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return t, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}()
	addr := ln.Addr().String()

	for _, m := range mixes {
		for _, w := range workloads() {
			if m.Write > 0 && w.name != "point lookup" {
				continue
			}
			for _, nc := range conns {
				wall, lats, err := runCell(addr, nc, m, w.sql, spec.Users)
				if err != nil {
					return t, fmt.Errorf("%s %s @ %d conns: %w", w.name, m, nc, err)
				}
				ops := len(lats)
				t.Rows = append(t.Rows, []string{
					w.name,
					m.String(),
					fmt.Sprintf("%d", nc),
					fmt.Sprintf("%d", ops),
					fmtDur(wall),
					fmt.Sprintf("%.0f", float64(ops)/wall.Seconds()),
					fmtDur(quantile(lats, 0.50)),
					fmtDur(quantile(lats, 0.99)),
				})
			}
		}
	}
	snap := db.Engine().Metrics().Snapshot()
	t.Metrics = &snap
	return t, nil
}

// runCell drives one workload cell: nc connections issuing the cell's
// share of totalOps operations each, all concurrently. Op j of a
// connection is a write when j mod 100 falls under the mix's write
// percentage, so writes interleave evenly instead of bursting. It
// returns the wall time of the whole cell and every per-op latency.
func runCell(addr string, nc int, m Mix, gen func(int64) string, users int) (time.Duration, []time.Duration, error) {
	per := totalOps / nc
	if per == 0 {
		per = 1
	}
	ctx := context.Background()
	perConn := make([][]time.Duration, nc)
	errs := make([]error, nc)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nc; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[n] = err
				return
			}
			defer func() { _ = c.Close() }()
			lats := make([]time.Duration, 0, per)
			for j := 0; j < per; j++ {
				op := n*per + j
				user := int64(op%users + 1)
				opStart := time.Now()
				if j%100 < m.Write {
					// Fresh item ids keep inserts from colliding with the
					// generated ratings.
					stmt := fmt.Sprintf(`INSERT INTO ratings VALUES (%d, %d, 3.0)`, user, 1_000_000+op)
					if _, err := c.Exec(ctx, stmt); err != nil {
						errs[n] = err
						return
					}
				} else if _, err := c.Query(ctx, gen(user)); err != nil {
					errs[n] = err
					return
				}
				lats = append(lats, time.Since(opStart))
			}
			perConn[n] = lats
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	var all []time.Duration
	for _, l := range perConn {
		all = append(all, l...)
	}
	return wall, all, nil
}

// quantile returns the q-th latency quantile (sorts a copy).
func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
