package bench

import (
	"fmt"
	"time"

	"recdb/internal/catalog"
	"recdb/internal/dataset"
	"recdb/internal/rec"
	"recdb/internal/reccache"
	"recdb/internal/recindex"
)

// RunScaling measures the three parallel kernels — neighborhood build, SVD
// training, and full RecScoreIndex materialization — at each worker count,
// reporting wall time and speedup over the single-worker serial path. The
// kernels are deterministic at every worker count (see DESIGN.md), so the
// experiment compares identical work.
func RunScaling(spec dataset.Spec, neighborhood int, workerCounts []int) (Table, error) {
	t := Table{
		ID:    "Scaling",
		Title: fmt.Sprintf("Model build time vs workers (%s)", spec.Name),
		Header: []string{
			"Workers", "ItemCosCF", "speedup", "SVD", "speedup", "MaterializeAll", "speedup",
		},
	}
	d := dataset.Generate(spec)
	ratings := d.Ratings

	var base [3]time.Duration
	for n, w := range workerCounts {
		opts := rec.BuildOptions{NeighborhoodSize: neighborhood, SVDSeed: 42, Workers: w}

		start := time.Now()
		model, err := rec.BuildNeighborhood(ratings, rec.ItemCosCF, opts)
		if err != nil {
			return t, err
		}
		dNeigh := time.Since(start)

		start = time.Now()
		if _, err := rec.TrainSVD(ratings, opts); err != nil {
			return t, err
		}
		dSVD := time.Since(start)

		cat := catalog.New(nil, 0)
		store, err := rec.Materialize(cat, "scaling", model)
		if err != nil {
			return t, err
		}
		cache := reccache.New(recindex.New(), 0, func() float64 { return 0 })
		cache.Workers = w
		start = time.Now()
		if err := cache.MaterializeAll(store); err != nil {
			return t, err
		}
		dMat := time.Since(start)

		timings := [3]time.Duration{dNeigh, dSVD, dMat}
		if n == 0 {
			base = timings
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			dur(dNeigh), speedup(dNeigh, base[0]),
			dur(dSVD), speedup(dSVD, base[1]),
			dur(dMat), speedup(dMat, base[2]),
		})
	}
	return t, nil
}
