// Package dataset generates the synthetic stand-ins for the paper's three
// evaluation datasets (§VI): MovieLens 100K, LDOS-CoMoDa, and the Yelp
// challenge subset. Real downloads are unavailable offline, so each
// generator reproduces the dataset's *shape* — user/item/rating counts, a
// 1-5 rating scale, skewed popularity, and latent-factor structure in the
// ratings (so collaborative filtering has signal to exploit) — which is
// what the paper's latency experiments depend on. The Yelp stand-in also
// places businesses in named city regions for the location-aware case
// study (§V).
package dataset

import (
	"fmt"
	"math"

	"recdb/internal/geo"
	"recdb/internal/rec"
)

// Spec describes a dataset's shape.
type Spec struct {
	Name    string
	Users   int
	Items   int
	Ratings int
	// Geo adds coordinates to items and city polygons (Yelp).
	Geo  bool
	Seed int64
}

// The paper's three datasets (§VI, Datasets).
var (
	// MovieLens: 100K ratings for 1,682 movies by 943 users.
	MovieLens = Spec{Name: "MovieLens", Users: 943, Items: 1682, Ratings: 100000, Seed: 1}
	// LDOS is LDOS-CoMoDa: 2,297 ratings for 785 movies by 185 users.
	LDOS = Spec{Name: "LDOS-CoMoDa", Users: 185, Items: 785, Ratings: 2297, Seed: 2}
	// Yelp: 126,747 reviews of 1,446 businesses by 3,403 users, with
	// locations.
	Yelp = Spec{Name: "Yelp", Users: 3403, Items: 1446, Ratings: 126747, Geo: true, Seed: 3}
)

// Scaled returns the spec with user and item counts multiplied by f and
// the rating count multiplied by f² — the user×item grid shrinks
// quadratically, so this keeps the rating-matrix *density* of the original
// dataset. Benchmarks use scaled-down datasets to keep `go test -bench`
// affordable; recdb-bench runs full scale.
func (s Spec) Scaled(f float64) Spec {
	out := s
	out.Name = fmt.Sprintf("%s(x%.2g)", s.Name, f)
	out.Users = maxInt(2, int(float64(s.Users)*f))
	out.Items = maxInt(2, int(float64(s.Items)*f))
	out.Ratings = maxInt(1, int(float64(s.Ratings)*f*f))
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// User is one row of the users table.
type User struct {
	ID     int64
	Name   string
	City   string
	Age    int64
	Gender string
}

// Item is one row of the items (movies/businesses) table.
type Item struct {
	ID       int64
	Name     string
	Genre    string
	Director string
	Loc      geo.Point // meaningful only when the spec has Geo
	City     string    // city the item lies in (Geo only)
}

// City is a named urban area (Geo datasets only).
type City struct {
	Name string
	Area geo.Polygon
}

// Data is one generated dataset.
type Data struct {
	Spec    Spec
	Users   []User
	Items   []Item
	Ratings []rec.Rating
	Cities  []City
}

var genres = []string{"Action", "Suspense", "Sci-Fi", "Drama", "Comedy", "Horror", "Romance", "Documentary"}
var cityNames = []string{"San Diego", "Minneapolis", "Austin"}
var firstNames = []string{"Alice", "Bob", "Carol", "Eve", "Mallory", "Trent", "Peggy", "Victor", "Walter", "Sybil"}

// rng is a splitmix64-style deterministic generator, independent of the
// Go runtime's rand sources so datasets are stable across Go versions.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng { return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds the dataset deterministically from its spec.
func Generate(spec Spec) *Data {
	rnd := newRNG(spec.Seed)
	d := &Data{Spec: spec}

	// Cities with disjoint square areas on a 0..300 plane.
	if spec.Geo {
		for i, name := range cityNames {
			x := float64(i * 100)
			d.Cities = append(d.Cities, City{
				Name: name,
				Area: geo.Rect(x, 0, x+80, 80),
			})
		}
	}

	// Latent factors give the ratings learnable structure.
	const k = 4
	userF := make([][k]float64, spec.Users)
	itemF := make([][k]float64, spec.Items)
	for u := range userF {
		for f := 0; f < k; f++ {
			userF[u][f] = rnd.float()
		}
	}
	for i := range itemF {
		for f := 0; f < k; f++ {
			itemF[i][f] = rnd.float()
		}
	}

	for u := 0; u < spec.Users; u++ {
		d.Users = append(d.Users, User{
			ID:     int64(u + 1),
			Name:   fmt.Sprintf("%s %d", firstNames[rnd.intn(len(firstNames))], u+1),
			City:   cityNames[rnd.intn(len(cityNames))],
			Age:    int64(18 + rnd.intn(60)),
			Gender: []string{"Female", "Male"}[rnd.intn(2)],
		})
	}
	for i := 0; i < spec.Items; i++ {
		item := Item{
			ID:       int64(i + 1),
			Genre:    genres[rnd.intn(len(genres))],
			Director: fmt.Sprintf("Director %d", rnd.intn(200)),
		}
		if spec.Geo {
			c := d.Cities[rnd.intn(len(d.Cities))]
			minX, minY, maxX, maxY := c.Area.Bounds()
			item.Name = fmt.Sprintf("Business %d", i+1)
			item.City = c.Name
			item.Loc = geo.Point{
				X: minX + rnd.float()*(maxX-minX),
				Y: minY + rnd.float()*(maxY-minY),
			}
		} else {
			item.Name = fmt.Sprintf("Movie %d", i+1)
		}
		d.Items = append(d.Items, item)
	}

	// Ratings: sample (user, item) pairs with quadratic popularity skew,
	// rating = latent dot product mapped to 1..5 plus noise.
	target := spec.Ratings
	if max := spec.Users * spec.Items; target > max {
		target = max
	}
	seen := make(map[[2]int64]bool, target)
	for len(d.Ratings) < target {
		u := skewIndex(rnd, spec.Users)
		i := skewIndex(rnd, spec.Items)
		key := [2]int64{int64(u), int64(i)}
		if seen[key] {
			continue
		}
		seen[key] = true
		var dot float64
		for f := 0; f < k; f++ {
			dot += userF[u][f] * itemF[i][f]
		}
		// dot ∈ [0, k); map to 1..5 with noise.
		raw := 1 + 4*(dot/k) + (rnd.float() - 0.5)
		rating := math.Round(math.Max(1, math.Min(5, raw)))
		d.Ratings = append(d.Ratings, rec.Rating{
			User:  int64(u + 1),
			Item:  int64(i + 1),
			Value: rating,
		})
	}
	return d
}

// skewIndex samples 0..n-1 with a mild popularity skew (square law), so a
// few users/items carry much of the rating mass, like the real datasets.
func skewIndex(r *rng, n int) int {
	f := r.float()
	return int(f * f * float64(n))
}
