package dataset

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"recdb/internal/engine"
	"recdb/internal/geo"
	"recdb/internal/rec"
)

// LoadCSVDir reads a dataset directory in the layout recdb-datagen writes
// (users.csv, items.csv, ratings.csv, and optionally cities.csv) and bulk
// loads it into the engine with Load. Real datasets exported to the same
// column layout load identically, so this is the import path for actual
// MovieLens/Yelp dumps when they are available.
func LoadCSVDir(e *engine.Engine, dir string) (*Data, error) {
	d := &Data{Spec: Spec{Name: filepath.Base(dir)}}

	users, err := readCSVFile(filepath.Join(dir, "users.csv"))
	if err != nil {
		return nil, err
	}
	for i, row := range users {
		if len(row) < 5 {
			return nil, fmt.Errorf("dataset: users.csv row %d has %d columns, want 5", i+2, len(row))
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: users.csv row %d: %w", i+2, err)
		}
		age, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: users.csv row %d: %w", i+2, err)
		}
		d.Users = append(d.Users, User{ID: id, Name: row[1], City: row[2], Age: age, Gender: row[4]})
	}

	items, err := readCSVFile(filepath.Join(dir, "items.csv"))
	if err != nil {
		return nil, err
	}
	for i, row := range items {
		if len(row) < 4 {
			return nil, fmt.Errorf("dataset: items.csv row %d has %d columns, want >= 4", i+2, len(row))
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: items.csv row %d: %w", i+2, err)
		}
		item := Item{ID: id, Name: row[1], Director: row[2], Genre: row[3]}
		if len(row) >= 7 { // geo layout: x, y, city
			x, errX := strconv.ParseFloat(row[4], 64)
			y, errY := strconv.ParseFloat(row[5], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("dataset: items.csv row %d: bad coordinates", i+2)
			}
			item.Loc = geo.Point{X: x, Y: y}
			item.City = row[6]
			d.Spec.Geo = true
		}
		d.Items = append(d.Items, item)
	}

	ratings, err := readCSVFile(filepath.Join(dir, "ratings.csv"))
	if err != nil {
		return nil, err
	}
	for i, row := range ratings {
		if len(row) < 3 {
			return nil, fmt.Errorf("dataset: ratings.csv row %d has %d columns, want 3", i+2, len(row))
		}
		u, errU := strconv.ParseInt(row[0], 10, 64)
		it, errI := strconv.ParseInt(row[1], 10, 64)
		v, errV := strconv.ParseFloat(row[2], 64)
		if errU != nil || errI != nil || errV != nil {
			return nil, fmt.Errorf("dataset: ratings.csv row %d: bad values", i+2)
		}
		d.Ratings = append(d.Ratings, rec.Rating{User: u, Item: it, Value: v})
	}

	if cities, err := readCSVFile(filepath.Join(dir, "cities.csv")); err == nil {
		for i, row := range cities {
			if len(row) < 2 {
				return nil, fmt.Errorf("dataset: cities.csv row %d has %d columns, want 2", i+2, len(row))
			}
			g, err := geo.Parse(row[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: cities.csv row %d: %w", i+2, err)
			}
			poly, ok := g.(geo.Polygon)
			if !ok {
				return nil, fmt.Errorf("dataset: cities.csv row %d: expected a polygon", i+2)
			}
			d.Cities = append(d.Cities, City{Name: row[0], Area: poly})
		}
		d.Spec.Geo = d.Spec.Geo || len(d.Cities) > 0
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	d.Spec.Users = len(d.Users)
	d.Spec.Items = len(d.Items)
	d.Spec.Ratings = len(d.Ratings)
	if e != nil {
		if err := Load(e, d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// readCSVFile reads a CSV and strips its header row.
func readCSVFile(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows[1:], nil
}
