package dataset

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"recdb/internal/engine"
)

// writeTestCSVs writes a tiny dataset in the datagen layout.
func writeTestCSVs(t *testing.T, dir string, geo bool) {
	t.Helper()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("users.csv", "uid,name,city,age,gender\n1,Alice,Austin,18,Female\n2,Bob,Austin,27,Male\n")
	if geo {
		write("items.csv", "iid,name,director,genre,x,y,city\n1,B1,D1,Action,5,5,Austin\n2,B2,D2,Drama,50,50,Austin\n")
		write("cities.csv", "name,wkt\nAustin,\"POLYGON((0 0, 100 0, 100 100, 0 100))\"\n")
	} else {
		write("items.csv", "iid,name,director,genre\n1,M1,D1,Action\n2,M2,D2,Drama\n")
	}
	write("ratings.csv", "uid,iid,ratingval\n1,1,4.5\n1,2,3\n2,1,5\n")
}

func TestLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	writeTestCSVs(t, dir, false)
	e := engine.New(engine.Config{})
	d, err := LoadCSVDir(e, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Users) != 2 || len(d.Items) != 2 || len(d.Ratings) != 3 || d.Spec.Geo {
		t.Fatalf("loaded: %s geo=%v", d.Describe(), d.Spec.Geo)
	}
	q, err := e.Query("SELECT COUNT(*) FROM ratings")
	if err != nil || q.Rows[0][0].Int() != 3 {
		t.Fatalf("engine load: %v %v", q, err)
	}
	// A recommender builds straight off the imported data.
	if _, err := e.Exec(`CREATE RECOMMENDER r ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval`); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCSVDirGeo(t *testing.T) {
	dir := t.TempDir()
	writeTestCSVs(t, dir, true)
	e := engine.New(engine.Config{})
	d, err := LoadCSVDir(e, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Spec.Geo || len(d.Cities) != 1 {
		t.Fatalf("geo load: %+v", d.Spec)
	}
	q, err := e.Query(`SELECT i.name FROM items i, cities c
		WHERE c.name = 'Austin' AND ST_Contains(c.geom, i.geom)`)
	if err != nil || len(q.Rows) != 2 {
		t.Fatalf("spatial query over csv data: %v %v", q, err)
	}
}

func TestLoadCSVDirErrors(t *testing.T) {
	// Missing directory contents.
	if _, err := LoadCSVDir(nil, t.TempDir()); err == nil {
		t.Fatal("empty dir should fail")
	}
	// Corrupt ratings.
	dir := t.TempDir()
	writeTestCSVs(t, dir, false)
	os.WriteFile(filepath.Join(dir, "ratings.csv"), []byte("uid,iid,ratingval\nx,y,z\n"), 0o644)
	if _, err := LoadCSVDir(nil, dir); err == nil {
		t.Fatal("corrupt ratings should fail")
	}
}

func TestDatagenRoundTrip(t *testing.T) {
	// Generate → (in-process equivalent of recdb-datagen) → LoadCSVDir
	// rebuilds the same dataset.
	spec := Yelp.Scaled(0.03)
	orig := Generate(spec)
	dir := t.TempDir()
	writeAll(t, dir, orig)

	loaded, err := LoadCSVDir(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users) != len(orig.Users) ||
		len(loaded.Items) != len(orig.Items) ||
		len(loaded.Ratings) != len(orig.Ratings) ||
		len(loaded.Cities) != len(orig.Cities) {
		t.Fatalf("round trip sizes: %s vs %s", loaded.Describe(), orig.Describe())
	}
	for i := range orig.Ratings {
		if loaded.Ratings[i] != orig.Ratings[i] {
			t.Fatalf("rating %d: %+v vs %+v", i, loaded.Ratings[i], orig.Ratings[i])
		}
	}
	for i := range orig.Items {
		if loaded.Items[i].Loc != orig.Items[i].Loc || loaded.Items[i].City != orig.Items[i].City {
			t.Fatalf("item %d geo: %+v vs %+v", i, loaded.Items[i], orig.Items[i])
		}
	}
}

// writeAll mirrors cmd/recdb-datagen's output format.
func writeAll(t *testing.T, dir string, d *Data) {
	t.Helper()
	var users, items, ratings, cities []byte
	users = append(users, "uid,name,city,age,gender\n"...)
	for _, u := range d.Users {
		users = appendCSVRow(users, i64(u.ID), u.Name, u.City, i64(u.Age), u.Gender)
	}
	items = append(items, "iid,name,director,genre,x,y,city\n"...)
	for _, it := range d.Items {
		items = appendCSVRow(items, i64(it.ID), it.Name, it.Director, it.Genre,
			f64(it.Loc.X), f64(it.Loc.Y), it.City)
	}
	ratings = append(ratings, "uid,iid,ratingval\n"...)
	for _, r := range d.Ratings {
		ratings = appendCSVRow(ratings, i64(r.User), i64(r.Item), f64(r.Value))
	}
	cities = append(cities, "name,wkt\n"...)
	for _, c := range d.Cities {
		cities = appendCSVRow(cities, c.Name, c.Area.WKT())
	}
	for name, blob := range map[string][]byte{
		"users.csv": users, "items.csv": items, "ratings.csv": ratings, "cities.csv": cities,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func i64(v int64) string   { return strconv.FormatInt(v, 10) }
func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// appendCSVRow appends one properly quoted CSV record.
func appendCSVRow(dst []byte, fields ...string) []byte {
	for i, f := range fields {
		if i > 0 {
			dst = append(dst, ',')
		}
		if strings.ContainsAny(f, ",\"\n") {
			dst = append(dst, '"')
			dst = append(dst, strings.ReplaceAll(f, "\"", "\"\"")...)
			dst = append(dst, '"')
		} else {
			dst = append(dst, f...)
		}
	}
	return append(dst, '\n')
}
