package dataset

import (
	"fmt"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/geo"
	"recdb/internal/rec"
)

func TestSpecShapes(t *testing.T) {
	cases := []struct {
		spec    Spec
		users   int
		items   int
		ratings int
	}{
		{MovieLens, 943, 1682, 100000},
		{LDOS, 185, 785, 2297},
		{Yelp, 3403, 1446, 126747},
	}
	for _, c := range cases {
		if c.spec.Users != c.users || c.spec.Items != c.items || c.spec.Ratings != c.ratings {
			t.Errorf("%s shape: %+v", c.spec.Name, c.spec)
		}
	}
}

func TestGenerateLDOSFullShape(t *testing.T) {
	d := Generate(LDOS)
	if len(d.Users) != 185 || len(d.Items) != 785 || len(d.Ratings) != 2297 {
		t.Fatalf("LDOS shape: %s", d.Describe())
	}
	// Ratings reference valid ids and values in 1..5; pairs unique.
	seen := map[[2]int64]bool{}
	for _, r := range d.Ratings {
		if r.User < 1 || r.User > 185 || r.Item < 1 || r.Item > 785 {
			t.Fatalf("rating out of range: %+v", r)
		}
		if r.Value < 1 || r.Value > 5 {
			t.Fatalf("rating value out of scale: %+v", r)
		}
		key := [2]int64{r.User, r.Item}
		if seen[key] {
			t.Fatalf("duplicate rating pair: %+v", r)
		}
		seen[key] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(LDOS)
	b := Generate(LDOS)
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a.Ratings[i], b.Ratings[i])
		}
	}
	if a.Users[0] != b.Users[0] || a.Items[0] != b.Items[0] {
		t.Fatal("non-deterministic metadata")
	}
}

func TestGenerateGeo(t *testing.T) {
	d := Generate(Yelp.Scaled(0.05))
	if len(d.Cities) == 0 {
		t.Fatal("geo dataset needs cities")
	}
	for _, it := range d.Items {
		placed := false
		for _, c := range d.Cities {
			if c.Name == it.City {
				if !geo.Contains(c.Area, it.Loc) {
					t.Fatalf("item %d outside its city %s: %v", it.ID, it.City, it.Loc)
				}
				placed = true
			}
		}
		if !placed {
			t.Fatalf("item %d has unknown city %q", it.ID, it.City)
		}
	}
}

func TestScaled(t *testing.T) {
	s := MovieLens.Scaled(0.1)
	if s.Users != 94 || s.Items != 168 || s.Ratings != 1000 {
		t.Fatalf("scaled: %+v", s)
	}
	// Density is preserved (both ≈ 6.3%).
	full := float64(MovieLens.Ratings) / float64(MovieLens.Users*MovieLens.Items)
	scaled := float64(s.Ratings) / float64(s.Users*s.Items)
	if scaled < full*0.8 || scaled > full*1.2 {
		t.Fatalf("density drifted: full=%.4f scaled=%.4f", full, scaled)
	}
	tiny := MovieLens.Scaled(0.0001)
	if tiny.Users < 2 || tiny.Items < 2 || tiny.Ratings < 1 {
		t.Fatalf("scaled floor: %+v", tiny)
	}
}

func TestRatingsHaveLearnableStructure(t *testing.T) {
	// An SVD trained on the generated data should beat the global-mean
	// predictor on held-out ratings — i.e. the data is not pure noise.
	d := Generate(MovieLens.Scaled(0.3))
	split := len(d.Ratings) * 9 / 10
	train, test := d.Ratings[:split], d.Ratings[split:]
	m, err := rec.TrainSVD(train, rec.BuildOptions{SVDFactors: 8, SVDEpochs: 120, SVDRate: 0.02, SVDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, r := range train {
		mean += r.Value
	}
	mean /= float64(len(train))
	var seSVD, seMean float64
	var n int
	for _, r := range test {
		p, ok := m.Predict(r.User, r.Item)
		if !ok {
			continue
		}
		seSVD += (p - r.Value) * (p - r.Value)
		seMean += (mean - r.Value) * (mean - r.Value)
		n++
	}
	if n < 20 {
		t.Skipf("too few scorable held-out ratings: %d", n)
	}
	if seSVD >= seMean {
		t.Fatalf("SVD (%.3f) does not beat global mean (%.3f) on %d held-out ratings",
			seSVD/float64(n), seMean/float64(n), n)
	}
}

func TestLoadIntoEngine(t *testing.T) {
	e := engine.New(engine.Config{})
	d := Generate(Yelp.Scaled(0.02))
	if err := Load(e, d); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("SELECT * FROM ratings")
	if err != nil || len(q.Rows) != len(d.Ratings) {
		t.Fatalf("ratings loaded: %d, %v", len(q.Rows), err)
	}
	q, err = e.Query("SELECT * FROM users")
	if err != nil || len(q.Rows) != len(d.Users) {
		t.Fatalf("users loaded: %d, %v", len(q.Rows), err)
	}
	// Spatial predicate works against loaded geometry.
	q, err = e.Query(`SELECT i.name FROM items i, cities c
		WHERE c.name = 'San Diego' AND ST_Contains(c.geom, i.geom)`)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, it := range d.Items {
		if it.City == "San Diego" {
			want++
		}
	}
	if len(q.Rows) != want {
		t.Fatalf("spatial filter: %d rows, want %d", len(q.Rows), want)
	}
	// Recommender builds over the loaded data end to end.
	if _, err := e.Exec(`CREATE RECOMMENDER YelpRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		t.Fatal(err)
	}
	// Scaling shrinks the user×item grid faster than the rating count, so
	// tiny datasets are dense; pick a user who still has unseen items.
	rated := map[int64]int{}
	for _, r := range d.Ratings {
		rated[r.User]++
	}
	queryUser := int64(-1)
	for _, u := range d.Users {
		if n := rated[u.ID]; n > 0 && n < len(d.Items) {
			queryUser = u.ID
			break
		}
	}
	if queryUser < 0 {
		t.Fatal("no user with unseen items in fixture")
	}
	q, err = e.Query(fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval
		WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 5`, queryUser))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) == 0 {
		t.Fatal("recommendation over loaded dataset returned nothing")
	}
}
