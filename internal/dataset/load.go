package dataset

import (
	"fmt"

	"recdb/internal/engine"
	"recdb/internal/types"
)

// Load creates the dataset's tables in the engine and bulk-inserts the
// generated rows: users(uid, name, city, age, gender),
// items(iid, name, director, genre[, geom, city]), and
// ratings(uid, iid, ratingval). Geo datasets also get a
// cities(name, geom) table.
func Load(e *engine.Engine, d *Data) error {
	cat := e.Catalog()

	users, err := cat.CreateTable("users", types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindText},
		types.Column{Name: "city", Kind: types.KindText},
		types.Column{Name: "age", Kind: types.KindInt},
		types.Column{Name: "gender", Kind: types.KindText},
	), 0)
	if err != nil {
		return err
	}
	for _, u := range d.Users {
		if _, err := users.Insert(types.Row{
			types.NewInt(u.ID), types.NewText(u.Name), types.NewText(u.City),
			types.NewInt(u.Age), types.NewText(u.Gender),
		}); err != nil {
			return err
		}
	}

	itemCols := []types.Column{
		{Name: "iid", Kind: types.KindInt},
		{Name: "name", Kind: types.KindText},
		{Name: "director", Kind: types.KindText},
		{Name: "genre", Kind: types.KindText},
	}
	if d.Spec.Geo {
		itemCols = append(itemCols,
			types.Column{Name: "geom", Kind: types.KindGeometry},
			types.Column{Name: "city", Kind: types.KindText},
		)
	}
	items, err := cat.CreateTable("items", types.NewSchema(itemCols...), 0)
	if err != nil {
		return err
	}
	for _, it := range d.Items {
		row := types.Row{
			types.NewInt(it.ID), types.NewText(it.Name),
			types.NewText(it.Director), types.NewText(it.Genre),
		}
		if d.Spec.Geo {
			row = append(row, types.NewGeometry(it.Loc), types.NewText(it.City))
		}
		if _, err := items.Insert(row); err != nil {
			return err
		}
	}

	ratings, err := cat.CreateTable("ratings", types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	), -1)
	if err != nil {
		return err
	}
	for _, r := range d.Ratings {
		if _, err := ratings.Insert(types.Row{
			types.NewInt(r.User), types.NewInt(r.Item), types.NewFloat(r.Value),
		}); err != nil {
			return err
		}
	}

	if d.Spec.Geo {
		cities, err := cat.CreateTable("cities", types.NewSchema(
			types.Column{Name: "name", Kind: types.KindText},
			types.Column{Name: "geom", Kind: types.KindGeometry},
		), -1)
		if err != nil {
			return err
		}
		for _, c := range d.Cities {
			if _, err := cities.Insert(types.Row{
				types.NewText(c.Name), types.NewGeometry(c.Area),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Describe returns a one-line summary of the dataset's shape.
func (d *Data) Describe() string {
	return fmt.Sprintf("%s: %d users, %d items, %d ratings",
		d.Spec.Name, len(d.Users), len(d.Items), len(d.Ratings))
}
