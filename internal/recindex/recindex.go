// Package recindex implements the RecScoreIndex of §IV-C (Fig. 4): a hash
// table from user id to a B+-tree (the user's RecTree) holding that user's
// pre-computed predicted rating scores, keyed so leaves read in rating
// order. The INDEXRECOMMEND operator (Algorithm 3) traverses it in three
// phases: user-id filtering on the hash table, rating-value filtering on
// the tree, and item-id filtering on the leaves.
package recindex

import (
	"sync"

	"recdb/internal/btree"
	"recdb/internal/types"
)

// Entry is one pre-computed prediction.
type Entry struct {
	Item  int64
	Score float64
}

// recTree is one user's RecTree plus the reverse map needed to evict by
// item id (the tree is keyed by (score, item)).
type recTree struct {
	tree  *btree.Tree
	items map[int64]float64 // item → score currently in the tree
}

// Index is the RecScoreIndex. It is safe for concurrent use.
type Index struct {
	mu    sync.RWMutex
	users map[int64]*recTree
}

// New returns an empty RecScoreIndex.
func New() *Index {
	return &Index{users: make(map[int64]*recTree)}
}

func key(score float64, item int64) types.Row {
	return types.Row{types.NewFloat(score), types.NewInt(item)}
}

// Put stores (or replaces) the pre-computed score for (user, item).
func (ix *Index) Put(user, item int64, score float64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	rt := ix.users[user]
	if rt == nil {
		rt = &recTree{tree: btree.New(0), items: make(map[int64]float64)}
		ix.users[user] = rt
	}
	if old, ok := rt.items[item]; ok {
		rt.tree.Delete(key(old, item))
	}
	rt.items[item] = score
	rt.tree.Insert(key(score, item), score)
}

// Remove evicts the entry for (user, item). It reports whether an entry
// existed.
func (ix *Index) Remove(user, item int64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	rt := ix.users[user]
	if rt == nil {
		return false
	}
	old, ok := rt.items[item]
	if !ok {
		return false
	}
	delete(rt.items, item)
	rt.tree.Delete(key(old, item))
	if len(rt.items) == 0 {
		delete(ix.users, user)
	}
	return true
}

// RemoveUser evicts every entry of a user (model rebuild invalidation).
func (ix *Index) RemoveUser(user int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.users, user)
}

// Clear evicts everything.
func (ix *Index) Clear() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.users = make(map[int64]*recTree)
}

// HasUser reports whether any entries are materialized for user (Phase I
// of Algorithm 3).
func (ix *Index) HasUser(user int64) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.users[user] != nil
}

// Get returns the materialized score for (user, item), if present.
func (ix *Index) Get(user, item int64) (float64, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rt := ix.users[user]
	if rt == nil {
		return 0, false
	}
	s, ok := rt.items[item]
	return s, ok
}

// UserLen returns the number of materialized entries for user.
func (ix *Index) UserLen(user int64) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rt := ix.users[user]
	if rt == nil {
		return 0
	}
	return len(rt.items)
}

// Len returns the total number of materialized entries.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, rt := range ix.users {
		n += len(rt.items)
	}
	return n
}

// Users returns the ids of all users with materialized entries.
func (ix *Index) Users() []int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]int64, 0, len(ix.users))
	for u := range ix.users {
		out = append(out, u)
	}
	return out
}

// Descend visits user's entries in descending score order (Phases II-III
// of Algorithm 3), stopping when fn returns false. Entries with score
// above maxScore are skipped when maxScore is non-nil, implementing the
// rating-value predicate pushdown of Phase II.
func (ix *Index) Descend(user int64, maxScore *float64, fn func(Entry) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rt := ix.users[user]
	if rt == nil {
		return
	}
	var from types.Row
	if maxScore != nil {
		// Items sort after score within a key, so start just past the
		// maximal item id at this score.
		from = types.Row{types.NewFloat(*maxScore), types.NewInt(int64(^uint64(0) >> 1))}
	}
	rt.tree.Descend(from, func(k types.Row, _ any) bool {
		return fn(Entry{Item: k[1].Int(), Score: k[0].Float()})
	})
}

// TopK returns user's k highest-scored entries that satisfy filter (nil
// admits all), in descending score order.
func (ix *Index) TopK(user int64, k int, filter func(Entry) bool) []Entry {
	out := make([]Entry, 0, k)
	ix.Descend(user, nil, func(e Entry) bool {
		if filter == nil || filter(e) {
			out = append(out, e)
		}
		return len(out) < k
	})
	return out
}
