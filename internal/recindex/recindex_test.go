package recindex

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetRemove(t *testing.T) {
	ix := New()
	ix.Put(1, 10, 4.5)
	ix.Put(1, 11, 3.0)
	ix.Put(2, 10, 2.0)

	if s, ok := ix.Get(1, 10); !ok || s != 4.5 {
		t.Fatalf("Get(1,10) = %v, %v", s, ok)
	}
	if _, ok := ix.Get(1, 99); ok {
		t.Fatal("missing item should not be found")
	}
	if _, ok := ix.Get(9, 10); ok {
		t.Fatal("missing user should not be found")
	}
	if ix.Len() != 3 || ix.UserLen(1) != 2 {
		t.Fatalf("Len=%d UserLen=%d", ix.Len(), ix.UserLen(1))
	}
	if !ix.Remove(1, 10) {
		t.Fatal("Remove should succeed")
	}
	if ix.Remove(1, 10) {
		t.Fatal("double Remove should fail")
	}
	if _, ok := ix.Get(1, 10); ok {
		t.Fatal("removed entry still present")
	}
}

func TestPutReplacesScore(t *testing.T) {
	ix := New()
	ix.Put(1, 10, 4.5)
	ix.Put(1, 10, 1.0) // replace: the old (4.5,10) key must vanish
	if ix.UserLen(1) != 1 {
		t.Fatalf("UserLen = %d, want 1", ix.UserLen(1))
	}
	top := ix.TopK(1, 10, nil)
	if len(top) != 1 || top[0].Score != 1.0 {
		t.Fatalf("TopK after replace: %v", top)
	}
}

func TestDescendOrder(t *testing.T) {
	ix := New()
	scores := []float64{3.5, 1.0, 4.5, 2.0, 4.5}
	for i, s := range scores {
		ix.Put(7, int64(100+i), s)
	}
	var got []float64
	ix.Descend(7, nil, func(e Entry) bool {
		got = append(got, e.Score)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("visited %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] > got[b] }) {
		t.Fatalf("not descending: %v", got)
	}
}

func TestDescendWithMaxScore(t *testing.T) {
	ix := New()
	for i := int64(0); i < 10; i++ {
		ix.Put(1, i, float64(i))
	}
	max := 5.0
	var got []float64
	ix.Descend(1, &max, func(e Entry) bool {
		got = append(got, e.Score)
		return true
	})
	if len(got) != 6 || got[0] != 5 {
		t.Fatalf("rating-predicate pushdown: %v", got)
	}
}

func TestTopKWithFilter(t *testing.T) {
	ix := New()
	for i := int64(0); i < 100; i++ {
		ix.Put(1, i, float64(i))
	}
	// Only even items (Phase III item-id filtering).
	top := ix.TopK(1, 3, func(e Entry) bool { return e.Item%2 == 0 })
	if len(top) != 3 || top[0].Item != 98 || top[1].Item != 96 || top[2].Item != 94 {
		t.Fatalf("filtered TopK: %v", top)
	}
	// K larger than available.
	all := ix.TopK(1, 1000, nil)
	if len(all) != 100 {
		t.Fatalf("TopK(1000) returned %d", len(all))
	}
}

func TestHasUserUsersClear(t *testing.T) {
	ix := New()
	ix.Put(1, 1, 1)
	ix.Put(2, 1, 1)
	if !ix.HasUser(1) || ix.HasUser(3) {
		t.Fatal("HasUser wrong")
	}
	if len(ix.Users()) != 2 {
		t.Fatalf("Users: %v", ix.Users())
	}
	ix.RemoveUser(1)
	if ix.HasUser(1) {
		t.Fatal("RemoveUser failed")
	}
	ix.Clear()
	if ix.Len() != 0 || ix.HasUser(2) {
		t.Fatal("Clear failed")
	}
}

func TestRemoveLastEntryDropsUser(t *testing.T) {
	ix := New()
	ix.Put(1, 1, 1)
	ix.Remove(1, 1)
	if ix.HasUser(1) {
		t.Fatal("user with no entries should not be materialized")
	}
}

func TestTiesOnScoreKeepAllItems(t *testing.T) {
	ix := New()
	for i := int64(0); i < 50; i++ {
		ix.Put(1, i, 3.0) // all tied
	}
	if ix.UserLen(1) != 50 {
		t.Fatalf("tied scores collapsed: %d", ix.UserLen(1))
	}
	top := ix.TopK(1, 50, nil)
	seen := map[int64]bool{}
	for _, e := range top {
		seen[e.Item] = true
	}
	if len(seen) != 50 {
		t.Fatalf("lost items on ties: %d", len(seen))
	}
}

func TestModelBasedProperty(t *testing.T) {
	type op struct {
		User   uint8
		Item   uint8
		Score  int8
		Remove bool
	}
	f := func(ops []op) bool {
		ix := New()
		model := map[[2]int64]float64{}
		for _, o := range ops {
			u, i := int64(o.User%4), int64(o.Item%16)
			if o.Remove {
				_, in := model[[2]int64{u, i}]
				if ix.Remove(u, i) != in {
					return false
				}
				delete(model, [2]int64{u, i})
			} else {
				ix.Put(u, i, float64(o.Score))
				model[[2]int64{u, i}] = float64(o.Score)
			}
		}
		if ix.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := ix.Get(k[0], k[1])
			if !ok || got != v {
				return false
			}
		}
		// Descend per user is sorted and complete.
		for u := int64(0); u < 4; u++ {
			var prev *float64
			count := 0
			okScan := true
			ix.Descend(u, nil, func(e Entry) bool {
				if prev != nil && e.Score > *prev {
					okScan = false
				}
				s := e.Score
				prev = &s
				count++
				return true
			})
			want := 0
			for k := range model {
				if k[0] == u {
					want++
				}
			}
			if !okScan || count != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
