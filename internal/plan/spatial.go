package plan

import (
	"strings"

	"recdb/internal/catalog"
	"recdb/internal/exec"
	"recdb/internal/expr"
	"recdb/internal/geo"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// trySpatialScan inspects one WHERE conjunct and, when it is a spatial
// predicate between a constant geometry and an R-tree-indexed geometry
// column of this table, returns a SpatialIndexScan implementing it:
//
//	ST_Contains(<const>, t.geom)       — rows inside a constant region
//	ST_Contains(t.geom, <const>)       — rows whose region covers a point
//	ST_DWithin(t.geom, <const>, d)     — rows within distance d
//	ST_DWithin(<const>, t.geom, d)
//
// Constant means the expression compiles against an empty schema (a
// literal, ST_Point(...), ST_GeomFromText(...), arithmetic over
// literals). Predicates joining two tables' geometry columns (Query 6's
// ST_Contains(C.geom, H.geom)) are not index-eligible and evaluate as
// ordinary filters.
func trySpatialScan(tab *catalog.Table, qualifier string, c sql.Expr) *exec.SpatialIndexScan {
	call, ok := c.(*sql.Call)
	if !ok {
		return nil
	}
	name := strings.ToLower(call.Name)
	switch name {
	case "st_contains":
		if len(call.Args) != 2 {
			return nil
		}
		// ST_Contains(const, col): query contains row.
		if q, idx := constGeom(call.Args[0]), geomIndex(tab, qualifier, call.Args[1]); q != nil && idx != nil {
			return exec.NewSpatialIndexScan(tab, idx, qualifier, q, exec.SpatialContainsQuery, 0)
		}
		// ST_Contains(col, const): row contains query.
		if q, idx := constGeom(call.Args[1]), geomIndex(tab, qualifier, call.Args[0]); q != nil && idx != nil {
			return exec.NewSpatialIndexScan(tab, idx, qualifier, q, exec.SpatialContainsRow, 0)
		}
	case "st_dwithin":
		if len(call.Args) != 3 {
			return nil
		}
		dist, ok := constFloat(call.Args[2])
		if !ok || dist < 0 {
			return nil
		}
		if q, idx := constGeom(call.Args[0]), geomIndex(tab, qualifier, call.Args[1]); q != nil && idx != nil {
			return exec.NewSpatialIndexScan(tab, idx, qualifier, q, exec.SpatialDWithin, dist)
		}
		if q, idx := constGeom(call.Args[1]), geomIndex(tab, qualifier, call.Args[0]); q != nil && idx != nil {
			return exec.NewSpatialIndexScan(tab, idx, qualifier, q, exec.SpatialDWithin, dist)
		}
	}
	return nil
}

var emptySchema = types.NewSchema()

// constGeom evaluates e as a constant geometry (accepting WKT text), or
// returns nil.
func constGeom(e sql.Expr) geo.Geometry {
	compiled, err := expr.Compile(e, emptySchema)
	if err != nil {
		return nil
	}
	v, err := compiled(nil)
	if err != nil {
		return nil
	}
	switch v.Kind() {
	case types.KindGeometry:
		return v.Geometry()
	case types.KindText:
		g, err := geo.Parse(v.Text())
		if err != nil {
			return nil
		}
		return g
	}
	return nil
}

func constFloat(e sql.Expr) (float64, bool) {
	compiled, err := expr.Compile(e, emptySchema)
	if err != nil {
		return 0, false
	}
	v, err := compiled(nil)
	if err != nil {
		return 0, false
	}
	return v.AsFloat()
}

// geomIndex resolves e as a reference to one of tab's geometry columns
// (visible under qualifier) that has a spatial index.
func geomIndex(tab *catalog.Table, qualifier string, e sql.Expr) *catalog.Index {
	ref, ok := e.(*sql.ColumnRef)
	if !ok {
		return nil
	}
	if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, qualifier) {
		return nil
	}
	col, err := tab.Schema.Resolve("", ref.Name)
	if err != nil || tab.Schema.Columns[col].Kind != types.KindGeometry {
		return nil
	}
	idx, ok := tab.IndexOn(ref.Name)
	if !ok || idx.Spatial == nil {
		return nil
	}
	return idx
}
