package plan

import (
	"fmt"
	"strings"

	"recdb/internal/exec"
	"recdb/internal/expr"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// aggregateInfo is the outcome of aggregate planning: the HashAggregate
// operator plus the rewritten projection/having/order expressions, which
// now reference the aggregate's output columns (__grp_N / __agg_N).
type aggregateInfo struct {
	op      *exec.HashAggregate
	items   []sql.SelectItem
	having  sql.Expr
	orderBy []sql.OrderItem
}

// needsAggregate reports whether the query uses GROUP BY, HAVING, or any
// aggregate function anywhere in its select list or ORDER BY.
func needsAggregate(stmt *sql.Select) bool {
	if len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return true
	}
	for _, item := range stmt.Items {
		if !item.Star && containsAggregate(item.Expr) {
			return true
		}
	}
	for _, o := range stmt.OrderBy {
		if containsAggregate(o.Expr) {
			return true
		}
	}
	return false
}

func containsAggregate(e sql.Expr) bool {
	found := false
	walkExpr(e, func(n sql.Expr) {
		if c, ok := n.(*sql.Call); ok {
			if _, isAgg := exec.ParseAggName(strings.ToLower(c.Name)); isAgg {
				found = true
			}
		}
	})
	return found
}

func walkExpr(e sql.Expr, fn func(sql.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *sql.Binary:
		walkExpr(v.L, fn)
		walkExpr(v.R, fn)
	case *sql.Unary:
		walkExpr(v.X, fn)
	case *sql.In:
		walkExpr(v.X, fn)
		for _, item := range v.List {
			walkExpr(item, fn)
		}
	case *sql.Call:
		for _, a := range v.Args {
			walkExpr(a, fn)
		}
	case *sql.IsNull:
		walkExpr(v.X, fn)
	case *sql.Like:
		walkExpr(v.X, fn)
		walkExpr(v.Pattern, fn)
	case *sql.Between:
		walkExpr(v.X, fn)
		walkExpr(v.Lo, fn)
		walkExpr(v.Hi, fn)
	}
}

// planAggregate builds the HashAggregate over input and rewrites the
// select list, HAVING, and ORDER BY to reference its output. Non-aggregate
// expressions must match a GROUP BY expression (by canonical rendering),
// the standard SQL rule.
func planAggregate(stmt *sql.Select, input exec.Operator) (*aggregateInfo, error) {
	inSchema := input.Schema()

	// Group keys.
	groupIdx := make(map[string]int, len(stmt.GroupBy))
	groupCompiled := make([]expr.Compiled, len(stmt.GroupBy))
	var outCols []types.Column
	for i, g := range stmt.GroupBy {
		c, err := expr.Compile(g, inSchema)
		if err != nil {
			return nil, err
		}
		groupCompiled[i] = c
		groupIdx[sql.ExprString(g)] = i
		outCols = append(outCols, types.Column{
			Name: fmt.Sprintf("__grp_%d", i),
			Kind: inferKind(g, inSchema),
		})
	}

	// Aggregate specs, deduplicated by canonical rendering.
	aggIdx := make(map[string]int)
	var specs []exec.AggSpec
	collect := func(e sql.Expr) error {
		var walkErr error
		walkExpr(e, func(n sql.Expr) {
			c, ok := n.(*sql.Call)
			if !ok {
				return
			}
			kind, isAgg := exec.ParseAggName(strings.ToLower(c.Name))
			if !isAgg {
				return
			}
			key := sql.ExprString(c)
			if _, seen := aggIdx[key]; seen {
				return
			}
			if len(c.Args) != 1 {
				walkErr = fmt.Errorf("plan: %s takes exactly one argument", strings.ToUpper(c.Name))
				return
			}
			spec := exec.AggSpec{Kind: kind}
			if _, star := c.Args[0].(*sql.Star); star {
				if kind != exec.AggCount {
					walkErr = fmt.Errorf("plan: * is only valid in COUNT(*)")
					return
				}
				spec.Kind = exec.AggCountStar
			} else {
				if containsAggregate(c.Args[0]) {
					walkErr = fmt.Errorf("plan: nested aggregates are not allowed")
					return
				}
				compiled, err := expr.Compile(c.Args[0], inSchema)
				if err != nil {
					walkErr = err
					return
				}
				spec.Arg = compiled
			}
			aggIdx[key] = len(specs)
			specs = append(specs, spec)
		})
		return walkErr
	}
	for _, item := range stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY or aggregates")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, err
		}
	}
	for i, spec := range specs {
		kind := types.KindFloat
		switch spec.Kind {
		case exec.AggCount, exec.AggCountStar:
			kind = types.KindInt
		}
		outCols = append(outCols, types.Column{Name: fmt.Sprintf("__agg_%d", i), Kind: kind})
		_ = i
	}

	info := &aggregateInfo{
		op: exec.NewHashAggregate(input, groupCompiled, specs, types.NewSchema(outCols...)),
	}

	// Rewrite the outer expressions against the aggregate output.
	rewrite := func(e sql.Expr) (sql.Expr, error) {
		return rewriteOverAggregate(e, groupIdx, aggIdx)
	}
	for _, item := range stmt.Items {
		re, err := rewrite(item.Expr)
		if err != nil {
			return nil, err
		}
		alias := item.Alias
		if alias == "" {
			// Preserve a friendly output name; the rewritten expression
			// references synthetic __grp_/__agg_ columns.
			switch v := item.Expr.(type) {
			case *sql.ColumnRef:
				alias = v.Name
			case *sql.Call:
				alias = strings.ToLower(v.Name)
			}
		}
		info.items = append(info.items, sql.SelectItem{Expr: re, Alias: alias})
	}
	if stmt.Having != nil {
		re, err := rewrite(stmt.Having)
		if err != nil {
			return nil, err
		}
		info.having = re
	}
	for _, o := range stmt.OrderBy {
		// ORDER BY may reference a select-list alias (ORDER BY n for
		// COUNT(*) AS n); resolve those against the rewritten items.
		if ref, ok := o.Expr.(*sql.ColumnRef); ok && ref.Qualifier == "" {
			resolved := false
			for i, orig := range stmt.Items {
				if strings.EqualFold(orig.Alias, ref.Name) {
					info.orderBy = append(info.orderBy, sql.OrderItem{Expr: info.items[i].Expr, Desc: o.Desc})
					resolved = true
					break
				}
			}
			if resolved {
				continue
			}
		}
		re, err := rewrite(o.Expr)
		if err != nil {
			return nil, err
		}
		info.orderBy = append(info.orderBy, sql.OrderItem{Expr: re, Desc: o.Desc})
	}
	return info, nil
}

// rewriteOverAggregate replaces group-by expressions and aggregate calls
// with references into the HashAggregate's output schema. Any bare column
// reference that survives to a leaf is an error: it is neither grouped nor
// aggregated.
func rewriteOverAggregate(e sql.Expr, groupIdx, aggIdx map[string]int) (sql.Expr, error) {
	if i, ok := groupIdx[sql.ExprString(e)]; ok {
		return &sql.ColumnRef{Name: fmt.Sprintf("__grp_%d", i)}, nil
	}
	if c, ok := e.(*sql.Call); ok {
		if _, isAgg := exec.ParseAggName(strings.ToLower(c.Name)); isAgg {
			if i, ok := aggIdx[sql.ExprString(c)]; ok {
				return &sql.ColumnRef{Name: fmt.Sprintf("__agg_%d", i)}, nil
			}
		}
	}
	switch v := e.(type) {
	case *sql.Literal:
		return v, nil
	case *sql.ColumnRef:
		return nil, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", v)
	case *sql.Binary:
		l, err := rewriteOverAggregate(v.L, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		r, err := rewriteOverAggregate(v.R, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: v.Op, L: l, R: r}, nil
	case *sql.Unary:
		x, err := rewriteOverAggregate(v.X, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		return &sql.Unary{Op: v.Op, X: x}, nil
	case *sql.In:
		x, err := rewriteOverAggregate(v.X, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		list := make([]sql.Expr, len(v.List))
		for i, item := range v.List {
			if list[i], err = rewriteOverAggregate(item, groupIdx, aggIdx); err != nil {
				return nil, err
			}
		}
		return &sql.In{X: x, List: list, Negate: v.Negate}, nil
	case *sql.Call:
		args := make([]sql.Expr, len(v.Args))
		var err error
		for i, a := range v.Args {
			if args[i], err = rewriteOverAggregate(a, groupIdx, aggIdx); err != nil {
				return nil, err
			}
		}
		return &sql.Call{Name: v.Name, Args: args}, nil
	case *sql.IsNull:
		x, err := rewriteOverAggregate(v.X, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{X: x, Negate: v.Negate}, nil
	case *sql.Like:
		x, err := rewriteOverAggregate(v.X, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		pat, err := rewriteOverAggregate(v.Pattern, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		return &sql.Like{X: x, Pattern: pat, Negate: v.Negate}, nil
	case *sql.Between:
		x, err := rewriteOverAggregate(v.X, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteOverAggregate(v.Lo, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteOverAggregate(v.Hi, groupIdx, aggIdx)
		if err != nil {
			return nil, err
		}
		return &sql.Between{X: x, Lo: lo, Hi: hi, Negate: v.Negate}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression in aggregate query: %T", e)
}
