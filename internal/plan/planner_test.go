package plan

import (
	"testing"

	"recdb/internal/catalog"
	"recdb/internal/exec"
	"recdb/internal/rec"
	"recdb/internal/recindex"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// fixture builds a catalog with ratings + movies, a recommender manager
// with an ItemCosCF recommender, and a planner.
func fixture(t *testing.T) (*Planner, *recindex.Index) {
	t.Helper()
	cat := catalog.New(nil, 0)
	ratings, err := cat.CreateTable("ratings", types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	), -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][3]float64{
		{1, 1, 1.5}, {2, 2, 3.5}, {2, 1, 4.5}, {2, 3, 2},
		{3, 2, 1}, {3, 1, 2}, {4, 2, 1},
	} {
		ratings.Insert(types.Row{
			types.NewInt(int64(r[0])), types.NewInt(int64(r[1])), types.NewFloat(r[2]),
		})
	}
	movies, _ := cat.CreateTable("movies", types.NewSchema(
		types.Column{Name: "mid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindText},
		types.Column{Name: "genre", Kind: types.KindText},
	), 0)
	for _, m := range []struct {
		id    int64
		name  string
		genre string
	}{
		{1, "Spartacus", "Action"}, {2, "Inception", "Suspense"}, {3, "The Matrix", "Sci-Fi"},
	} {
		movies.Insert(types.Row{types.NewInt(m.id), types.NewText(m.name), types.NewText(m.genre)})
	}
	mgr := rec.NewManager(cat, rec.Options{})
	if _, err := mgr.Create("GeneralRec", "ratings", "uid", "iid", "ratingval", "ItemCosCF"); err != nil {
		t.Fatal(err)
	}
	ix := recindex.New()
	p := &Planner{
		Catalog:  cat,
		Rec:      mgr,
		IndexFor: func(*rec.Recommender) *recindex.Index { return ix },
	}
	return p, ix
}

func planQuery(t *testing.T, p *Planner, q string) (exec.Operator, *Explain) {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	op, ex, err := p.PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return op, ex
}

func TestStrategySelection(t *testing.T) {
	p, ix := fixture(t)
	cases := []struct {
		q    string
		want string
	}{
		{`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval`, "Recommend"},
		{`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.uid = 1`, "FilterRecommend"},
		{`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.iid IN (1,2)`, "FilterRecommend"},
		{`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.ratingval > 2`, "FilterRecommend"},
		{`SELECT R.uid FROM ratings R, movies M RECOMMEND R.iid TO R.uid ON R.ratingval
		  WHERE R.uid = 1 AND M.mid = R.iid AND M.genre = 'Action'`, "JoinRecommend"},
		{`SELECT name FROM movies`, ""},
	}
	for _, c := range cases {
		_, ex := planQuery(t, p, c.q)
		if ex.Strategy != c.want {
			t.Errorf("%s\n  strategy %q, want %q", c.q, ex.Strategy, c.want)
		}
	}
	_ = ix
}

func TestIndexStrategyRequiresCoverage(t *testing.T) {
	p, ix := fixture(t)
	q := `SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval
	      WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5`
	_, ex := planQuery(t, p, q)
	if ex.Strategy != "FilterRecommend" {
		t.Fatalf("without coverage: %q", ex.Strategy)
	}
	ix.Put(1, 2, 4.0)
	ix.Put(1, 3, 2.0)
	_, ex = planQuery(t, p, q)
	if ex.Strategy != "IndexRecommend" || !ex.SortSkipped {
		t.Fatalf("with coverage: %+v", ex)
	}
	// Ascending order cannot skip the sort or use the limit pushdown, but
	// the index path still applies.
	q2 := `SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval
	       WHERE R.uid = 1 ORDER BY R.ratingval ASC LIMIT 5`
	_, ex = planQuery(t, p, q2)
	if ex.Strategy != "IndexRecommend" || ex.SortSkipped {
		t.Fatalf("ascending: %+v", ex)
	}
}

func TestAblationSwitches(t *testing.T) {
	p, ix := fixture(t)
	ix.Put(1, 2, 4.0)

	q := `SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.uid = 1`
	p.DisableIndexRecommend = true
	_, ex := planQuery(t, p, q)
	if ex.Strategy != "FilterRecommend" {
		t.Fatalf("index disabled: %q", ex.Strategy)
	}
	p.DisableFilterPushdown = true
	_, ex = planQuery(t, p, q)
	if ex.Strategy != "Recommend" {
		t.Fatalf("pushdown disabled: %q", ex.Strategy)
	}
	// The filter still applies above the operator: results only for user 1.
	op, _ := planQuery(t, p, q)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].Int() != 1 {
			t.Fatalf("pushdown-disabled plan leaked row %v", r)
		}
	}

	p.DisableFilterPushdown = false
	p.DisableJoinRecommend = true
	jq := `SELECT R.uid FROM ratings R, movies M RECOMMEND R.iid TO R.uid ON R.ratingval
	       WHERE R.uid = 1 AND M.mid = R.iid AND M.genre = 'Action'`
	_, ex = planQuery(t, p, jq)
	if ex.Strategy != "FilterRecommend" {
		t.Fatalf("join disabled: %q", ex.Strategy)
	}
}

func TestPlanEquivalenceAcrossStrategies(t *testing.T) {
	// The JoinRecommend plan and the disabled (FilterRecommend + HashJoin)
	// plan must produce the same rows.
	p, _ := fixture(t)
	q := `SELECT R.uid, M.name, R.ratingval FROM ratings R, movies M
	      RECOMMEND R.iid TO R.uid ON R.ratingval
	      WHERE R.uid = 3 AND M.mid = R.iid AND M.genre = 'Sci-Fi'`
	opA, exA := planQuery(t, p, q)
	rowsA, err := exec.Collect(opA)
	if err != nil {
		t.Fatal(err)
	}
	p.DisableJoinRecommend = true
	opB, exB := planQuery(t, p, q)
	rowsB, err := exec.Collect(opB)
	if err != nil {
		t.Fatal(err)
	}
	if exA.Strategy == exB.Strategy {
		t.Fatalf("expected different strategies, both %q", exA.Strategy)
	}
	if len(rowsA) != len(rowsB) {
		t.Fatalf("row counts: %d vs %d", len(rowsA), len(rowsB))
	}
	for i := range rowsA {
		if rowsA[i].String() != rowsB[i].String() {
			t.Fatalf("row %d: %v vs %v", i, rowsA[i], rowsB[i])
		}
	}
}

func TestConflictingUserPredicates(t *testing.T) {
	p, _ := fixture(t)
	op, _ := planQuery(t, p, `SELECT R.uid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval
		WHERE R.uid = 1 AND R.uid = 2`)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("contradictory predicates: %v", rows)
	}
}

func TestPlanErrors(t *testing.T) {
	p, _ := fixture(t)
	bad := []string{
		`SELECT x FROM ratings`,                                                               // unknown column
		`SELECT uid FROM nosuch`,                                                              // unknown table
		`SELECT uid FROM ratings LIMIT uid`,                                                   // non-literal limit
		`SELECT uid FROM ratings R LIMIT -1`,                                                  // negative limit
		`SELECT Q.uid FROM ratings R RECOMMEND Q.iid TO Q.uid ON Q.ratingval`,                 // bad qualifier
		`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval USING UserCosCF`, // no such recommender
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, _, err := p.PlanSelect(stmt.(*sql.Select)); err == nil {
			t.Errorf("PlanSelect(%q): expected error", q)
		}
	}
}

func TestStarExpansion(t *testing.T) {
	p, _ := fixture(t)
	op, _ := planQuery(t, p, `SELECT * FROM movies`)
	if op.Schema().Len() != 3 {
		t.Fatalf("star schema: %v", op.Schema().Columns)
	}
	// Star mixed with expressions.
	op, _ = planQuery(t, p, `SELECT mid + 1, * FROM movies`)
	if op.Schema().Len() != 4 {
		t.Fatalf("mixed star: %v", op.Schema().Columns)
	}
}

func TestRecordQueryHook(t *testing.T) {
	p, _ := fixture(t)
	var recorded []int64
	p.RecordQuery = func(_ *rec.Recommender, users []int64) {
		recorded = append(recorded, users...)
	}
	planQuery(t, p, `SELECT R.uid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.uid = 2`)
	if len(recorded) != 1 || recorded[0] != 2 {
		t.Fatalf("recorded: %v", recorded)
	}
}

// TestEqualityIndexSelection: an equality conjunct on a B-tree-indexed
// column becomes an IndexScan probe with the equality retained as a
// recheck filter; non-indexed columns and non-equality predicates keep
// the sequential scan.
func TestEqualityIndexSelection(t *testing.T) {
	p, _ := fixture(t)
	tab, err := p.Catalog.Get("ratings")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("ratings_uid", "uid"); err != nil {
		t.Fatal(err)
	}

	find := func(op exec.Operator) *exec.IndexScan {
		for {
			switch v := op.(type) {
			case *exec.IndexScan:
				return v
			case *exec.Filter:
				op = v.Child
			case *exec.Project:
				op = v.Child
			default:
				return nil
			}
		}
	}

	op, _ := planQuery(t, p, `SELECT iid FROM ratings WHERE uid = 2`)
	is := find(op)
	if is == nil {
		t.Fatalf("expected IndexScan under the plan, got %T", op)
	}
	if is.Index.Name != "ratings_uid" {
		t.Fatalf("picked index %q", is.Index.Name)
	}
	if _, ok := op.(*exec.Project); !ok {
		t.Fatalf("plan root: %T", op)
	}
	// The recheck filter must still be present above the scan.
	rows := runAll(t, op)
	if len(rows) != 3 {
		t.Fatalf("uid=2 returned %d rows, want 3", len(rows))
	}

	// Reversed operand order probes too.
	if find(mustPlan(t, p, `SELECT iid FROM ratings WHERE 2 = uid`)) == nil {
		t.Fatal("const = col should use the index")
	}
	// Int literal against a float-typed indexed column coerces.
	if _, err := tab.CreateIndex("ratings_rv", "ratingval"); err != nil {
		t.Fatal(err)
	}
	if find(mustPlan(t, p, `SELECT iid FROM ratings WHERE ratingval = 1`)) == nil {
		t.Fatal("int literal on float index should coerce and probe")
	}
	// Non-equality and non-indexed predicates stay sequential.
	if find(mustPlan(t, p, `SELECT iid FROM ratings WHERE iid = 1`)) != nil {
		t.Fatal("iid has no index; expected SeqScan")
	}
}

func mustPlan(t *testing.T, p *Planner, q string) exec.Operator {
	t.Helper()
	op, _ := planQuery(t, p, q)
	return op
}

func runAll(t *testing.T, op exec.Operator) []types.Row {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	var out []types.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}
