package plan

import (
	"fmt"

	"recdb/internal/exec"
)

// DescribePlan renders an operator tree as indented EXPLAIN lines.
func DescribePlan(op exec.Operator) []string {
	var out []string
	describe(op, 0, &out)
	return out
}

func describe(op exec.Operator, depth int, out *[]string) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := func(format string, args ...any) {
		*out = append(*out, indent+fmt.Sprintf(format, args...))
	}
	switch v := op.(type) {
	case *exec.SeqScan:
		line("SeqScan on %s as %s (%d pages)", v.Table.Name, v.Qualifier, v.Table.Heap.NumPages())
	case *exec.IndexScan:
		line("IndexScan on %s as %s using %s", v.Table.Name, v.Qualifier, v.Index.Name)
	case *exec.SpatialIndexScan:
		kind := "ST_Contains"
		if v.Pred == exec.SpatialDWithin {
			kind = "ST_DWithin"
		}
		line("SpatialIndexScan on %s as %s using %s (%s)", v.Table.Name, v.Qualifier, v.Index.Name, kind)
	case *exec.Filter:
		line("Filter")
		describe(v.Child, depth+1, out)
	case *exec.Project:
		line("Project (%d columns)", v.Schema().Len())
		describe(v.Child, depth+1, out)
	case *exec.NestedLoopJoin:
		line("NestedLoopJoin")
		describe(v.Left, depth+1, out)
		describe(v.Right, depth+1, out)
	case *exec.HashJoin:
		line("HashJoin")
		describe(v.Left, depth+1, out)
		describe(v.Right, depth+1, out)
	case *exec.Sort:
		line("Sort (%d keys)", len(v.Keys))
		describe(v.Child, depth+1, out)
	case *exec.Limit:
		if v.Skip > 0 {
			line("Limit %d offset %d", v.N, v.Skip)
		} else {
			line("Limit %d", v.N)
		}
		describe(v.Child, depth+1, out)
	case *exec.Distinct:
		line("Distinct")
		describe(v.Child, depth+1, out)
	case *exec.HashAggregate:
		line("HashAggregate (%d group keys, %d aggregates)", len(v.GroupBy), len(v.Specs))
		describe(v.Child, depth+1, out)
	case *exec.Recommend:
		scope := "all users, all items"
		switch {
		case v.Users != nil && v.Items != nil:
			scope = fmt.Sprintf("%d users, %d items", len(v.Users), len(v.Items))
		case v.Users != nil:
			scope = fmt.Sprintf("%d users, all items", len(v.Users))
		case v.Items != nil:
			scope = fmt.Sprintf("all users, %d items", len(v.Items))
		}
		name := "Recommend"
		if v.Users != nil || v.Items != nil || v.RatingPred != nil {
			name = "FilterRecommend"
		}
		line("%s [%s] (%s)", name, v.Store.Algo, scope)
	case *exec.JoinRecommend:
		users := "all users"
		if v.Users != nil {
			users = fmt.Sprintf("%d users", len(v.Users))
		}
		line("JoinRecommend [%s] (%s)", v.Store.Algo, users)
		describe(v.Outer, depth+1, out)
	case *exec.IndexRecommend:
		extra := ""
		if v.Limit > 0 {
			extra = fmt.Sprintf(", limit %d pushed down", v.Limit)
		}
		line("IndexRecommend on RecScoreIndex (%d users%s)", len(v.Users), extra)
	default:
		line("%T", op)
	}
}
