package plan

import (
	"fmt"
	"time"

	"recdb/internal/exec"
)

// DescribePlan renders an operator tree as indented EXPLAIN lines. A tree
// wrapped by exec.Instrument (EXPLAIN ANALYZE) renders the same shape with
// an "(actual ...)" annotation per operator: rows emitted, Open loops,
// inclusive wall time, and inclusive buffer-pool hits/misses.
func DescribePlan(op exec.Operator) []string {
	var out []string
	describe(op, 0, &out)
	return out
}

func describe(op exec.Operator, depth int, out *[]string) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	node := op
	suffix := ""
	if a, ok := op.(*exec.Analyzed); ok {
		node = a.Op
		suffix = analyzeSuffix(a)
	}
	*out = append(*out, indent+nodeLine(node)+suffix)
	for _, c := range children(node) {
		describe(c, depth+1, out)
	}
}

// analyzeSuffix renders one operator's runtime counters. Rows, time, and
// buffer counts are totals across all loops; time and buffers are
// inclusive of the operator's subtree (Postgres-style), while self is the
// exclusive share — inclusive time minus the direct children's inclusive
// time — which pinpoints the operator that actually burned the cycles.
func analyzeSuffix(a *exec.Analyzed) string {
	childNanos := int64(0)
	for _, c := range children(a.Op) {
		if ca, ok := c.(*exec.Analyzed); ok {
			childNanos += ca.Nanos
		}
	}
	self := a.Nanos - childNanos
	if self < 0 {
		// Clock skew between nested time.Now pairs can nudge the sum of
		// child inclusives past the parent's; clamp rather than render a
		// negative duration.
		self = 0
	}
	return fmt.Sprintf(" (actual rows=%d loops=%d time=%s self=%s buffers hit=%d miss=%d)",
		a.Rows, a.Loops, time.Duration(a.Nanos), time.Duration(self), a.Reads-a.Misses, a.Misses)
}

// children returns op's child operators in display order.
func children(op exec.Operator) []exec.Operator {
	switch v := op.(type) {
	case *exec.Filter:
		return []exec.Operator{v.Child}
	case *exec.Project:
		return []exec.Operator{v.Child}
	case *exec.NestedLoopJoin:
		return []exec.Operator{v.Left, v.Right}
	case *exec.HashJoin:
		return []exec.Operator{v.Left, v.Right}
	case *exec.Sort:
		return []exec.Operator{v.Child}
	case *exec.Limit:
		return []exec.Operator{v.Child}
	case *exec.Distinct:
		return []exec.Operator{v.Child}
	case *exec.HashAggregate:
		return []exec.Operator{v.Child}
	case *exec.JoinRecommend:
		return []exec.Operator{v.Outer}
	case *exec.VectorRecommend:
		if v.Outer != nil {
			return []exec.Operator{v.Outer}
		}
	}
	return nil
}

// nodeLine renders one operator's own describe line (no children).
func nodeLine(op exec.Operator) string {
	switch v := op.(type) {
	case *exec.SeqScan:
		return fmt.Sprintf("SeqScan on %s as %s (%d pages)", v.Table.Name, v.Qualifier, v.Table.Heap.NumPages())
	case *exec.IndexScan:
		return fmt.Sprintf("IndexScan on %s as %s using %s", v.Table.Name, v.Qualifier, v.Index.Name)
	case *exec.SpatialIndexScan:
		kind := "ST_Contains"
		if v.Pred == exec.SpatialDWithin {
			kind = "ST_DWithin"
		}
		return fmt.Sprintf("SpatialIndexScan on %s as %s using %s (%s)", v.Table.Name, v.Qualifier, v.Index.Name, kind)
	case *exec.Filter:
		return "Filter"
	case *exec.Project:
		return fmt.Sprintf("Project (%d columns)", v.Schema().Len())
	case *exec.NestedLoopJoin:
		return "NestedLoopJoin"
	case *exec.HashJoin:
		return "HashJoin"
	case *exec.Sort:
		return fmt.Sprintf("Sort (%d keys)", len(v.Keys))
	case *exec.Limit:
		if v.Skip > 0 {
			return fmt.Sprintf("Limit %d offset %d", v.N, v.Skip)
		}
		return fmt.Sprintf("Limit %d", v.N)
	case *exec.Distinct:
		return "Distinct"
	case *exec.HashAggregate:
		return fmt.Sprintf("HashAggregate (%d group keys, %d aggregates)", len(v.GroupBy), len(v.Specs))
	case *exec.Recommend:
		scope := "all users, all items"
		switch {
		case v.Users != nil && v.Items != nil:
			scope = fmt.Sprintf("%d users, %d items", len(v.Users), len(v.Items))
		case v.Users != nil:
			scope = fmt.Sprintf("%d users, all items", len(v.Users))
		case v.Items != nil:
			scope = fmt.Sprintf("all users, %d items", len(v.Items))
		}
		name := "Recommend"
		if v.Users != nil || v.Items != nil || v.RatingPred != nil {
			name = "FilterRecommend"
		}
		return fmt.Sprintf("%s [%s] (%s)", name, v.Store.Algo, scope)
	case *exec.JoinRecommend:
		users := "all users"
		if v.Users != nil {
			users = fmt.Sprintf("%d users", len(v.Users))
		}
		return fmt.Sprintf("JoinRecommend [%s] (%s)", v.Store.Algo, users)
	case *exec.IndexRecommend:
		extra := ""
		if v.Limit > 0 {
			extra = fmt.Sprintf(", limit %d pushed down", v.Limit)
		}
		return fmt.Sprintf("IndexRecommend on RecScoreIndex (%d users%s)", len(v.Users), extra)
	case *exec.VectorRecommend:
		line := fmt.Sprintf("VectorRecommend on IVF (%d users, %d centroids, nprobe %d, k %d)",
			len(v.Users), v.Index.NumCentroids(), v.EffectiveNProbe(), v.K)
		if v.Mode != "" {
			// Run stats: rendered by EXPLAIN ANALYZE once Open has probed.
			line += fmt.Sprintf(" (probed %d, candidates %d, mode %s)",
				v.ProbedCentroids, v.Candidates, v.Mode)
		}
		return line
	default:
		return fmt.Sprintf("%T", op)
	}
}
