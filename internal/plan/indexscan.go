package plan

import (
	"strings"

	"recdb/internal/catalog"
	"recdb/internal/exec"
	"recdb/internal/expr"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// tryIndexScan inspects one WHERE conjunct and, when it is an equality
// between a B-tree-indexed column of this table and a constant
// (<col> = <const> or <const> = <col>), returns an IndexScan probing
// exactly that key. The planner keeps the original conjunct as a filter
// above the scan: the index walk collects candidate RIDs and a candidate
// may be stale by the time its tuple is fetched (deleted and the slot
// reused by a concurrent writer), so the recheck is what makes the
// read path safe without table-level locking.
func tryIndexScan(tab *catalog.Table, qualifier string, c sql.Expr) *exec.IndexScan {
	b, ok := c.(*sql.Binary)
	if !ok || b.Op != sql.OpEq {
		return nil
	}
	if v, idx := constValue(b.R), treeIndex(tab, qualifier, b.L); idx != nil {
		if key, ok := indexKey(tab, idx, v); ok {
			return exec.NewIndexScan(tab, idx, qualifier, key, key)
		}
	}
	if v, idx := constValue(b.L), treeIndex(tab, qualifier, b.R); idx != nil {
		if key, ok := indexKey(tab, idx, v); ok {
			return exec.NewIndexScan(tab, idx, qualifier, key, key)
		}
	}
	return nil
}

// constValue evaluates e as a constant (a literal or arithmetic over
// literals), returning the null Value when it is not one.
func constValue(e sql.Expr) types.Value {
	compiled, err := expr.Compile(e, emptySchema)
	if err != nil {
		return types.Null()
	}
	v, err := compiled(nil)
	if err != nil {
		return types.Null()
	}
	return v
}

// treeIndex resolves e as a reference to one of tab's columns (visible
// under qualifier) that has a B-tree index.
func treeIndex(tab *catalog.Table, qualifier string, e sql.Expr) *catalog.Index {
	ref, ok := e.(*sql.ColumnRef)
	if !ok {
		return nil
	}
	if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, qualifier) {
		return nil
	}
	if _, err := tab.Schema.Resolve("", ref.Name); err != nil {
		return nil
	}
	idx, ok := tab.IndexOn(ref.Name)
	if !ok || idx.Tree == nil {
		return nil
	}
	return idx
}

// indexKey coerces a constant to the indexed column's kind so the B-tree
// probe compares like with like. NULL never matches an equality.
func indexKey(tab *catalog.Table, idx *catalog.Index, v types.Value) (types.Value, bool) {
	if v.Kind() == types.KindNull {
		return types.Value{}, false
	}
	want := tab.Schema.Columns[idx.Column].Kind
	if v.Kind() == want {
		return v, true
	}
	if v.Kind() == types.KindInt && want == types.KindFloat {
		return types.NewFloat(float64(v.Int())), true
	}
	return types.Value{}, false
}
