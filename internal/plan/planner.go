// Package plan turns parsed SELECT statements into operator trees. Its
// job, beyond ordinary scan/filter/join/sort planning, is the paper's
// recommendation-aware optimization (§IV-B): choosing between the plain
// RECOMMEND operator, FILTERRECOMMEND (uid/iid/ratingval predicate
// pushdown), JOINRECOMMEND (prediction driven by a filtered outer
// relation), and INDEXRECOMMEND (pre-computed scores in the
// RecScoreIndex), mirroring the plans of Fig. 3.
//
// Engine semantics note: the RECOMMEND clause returns predictions for
// items the querying users have not rated (the behaviour of the released
// RecDB system). Algorithm 1's emit-actual-rating-for-rated-pairs variant
// is available at the operator level (exec.Recommend.IncludeSeen).
package plan

import (
	"fmt"
	"strings"

	"recdb/internal/catalog"
	"recdb/internal/exec"
	"recdb/internal/expr"
	"recdb/internal/rec"
	"recdb/internal/recindex"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// Planner plans SELECT statements against a catalog and recommender state.
type Planner struct {
	Catalog *catalog.Catalog
	Rec     *rec.Manager
	// IndexFor returns the RecScoreIndex for a recommender, or nil when no
	// pre-computation exists. May itself be nil.
	IndexFor func(*rec.Recommender) *recindex.Index
	// RecordQuery, when set, feeds the cache manager's Users Histogram
	// with the users targeted by a recommendation query.
	RecordQuery func(r *rec.Recommender, users []int64)
	// DisableIndexRecommend turns off the INDEXRECOMMEND path (used by
	// ablation benchmarks).
	DisableIndexRecommend bool
	// DisableJoinRecommend turns off the JOINRECOMMEND path.
	DisableJoinRecommend bool
	// DisableFilterPushdown turns off uid/iid/ratingval pushdown into the
	// RECOMMEND operator.
	DisableFilterPushdown bool
	// DisableVectorRecommend turns off the IVF VECTORRECOMMEND path
	// (ablation benchmarks and exact-baseline comparisons).
	DisableVectorRecommend bool
	// VectorExact forces VECTORRECOMMEND to probe every centroid — the
	// equivalence-test mode whose output is byte-identical to the exact
	// scan.
	VectorExact bool
	// VectorProbe overrides the index's default probe width (0 = default).
	VectorProbe int
	// VectorExactThreshold overrides the candidate-count floor below which
	// VECTORRECOMMEND scores the universe exactly (0 = exec default).
	VectorExactThreshold int
	// VecMetrics receives VECTORRECOMMEND instrumentation; nil records
	// nothing.
	VecMetrics *exec.VectorMetrics
}

// Explain describes the chosen plan for observability and tests.
type Explain struct {
	Strategy    string // "Recommend", "FilterRecommend", "JoinRecommend", "IndexRecommend", "VectorRecommend", or "" for plain queries
	SortSkipped bool
}

// PlanSelect builds the operator tree for a SELECT statement.
func (p *Planner) PlanSelect(stmt *sql.Select) (exec.Operator, *Explain, error) {
	ex := &Explain{}
	conjuncts := splitConjuncts(stmt.Where)
	applied := make(map[sql.Expr]bool)

	var root exec.Operator
	var err error

	if stmt.Recommend != nil {
		root, err = p.planRecommend(stmt, conjuncts, applied, ex)
	} else {
		root, err = p.planPlain(stmt, conjuncts, applied)
	}
	if err != nil {
		return nil, nil, err
	}

	// Apply every remaining conjunct at the top (those referencing columns
	// from multiple tables, or not consumed by pushdown).
	root, err = applyFilters(root, conjuncts, applied)
	if err != nil {
		return nil, nil, err
	}
	for _, c := range conjuncts {
		if !applied[c] {
			return nil, nil, unresolvableConjunct(c, root.Schema())
		}
	}

	// GROUP BY / HAVING / aggregates. The select list and ORDER BY are
	// rewritten to reference the aggregate's output.
	items := stmt.Items
	orderBy := stmt.OrderBy
	if needsAggregate(stmt) {
		info, err := planAggregate(stmt, root)
		if err != nil {
			return nil, nil, err
		}
		root = info.op
		items = info.items
		orderBy = info.orderBy
		ex.SortSkipped = false // aggregation destroys any index order
		if info.having != nil {
			compiled, err := expr.Compile(info.having, root.Schema())
			if err != nil {
				return nil, nil, err
			}
			root = exec.NewFilter(root, compiled)
		}
	}

	limit := func(op exec.Operator) (exec.Operator, error) {
		if stmt.Limit == nil && stmt.Offset == nil {
			return op, nil
		}
		n := int64(-1)
		if stmt.Limit != nil {
			var err error
			if n, err = constInt(stmt.Limit); err != nil {
				return nil, err
			}
		}
		var skip int64
		if stmt.Offset != nil {
			var err error
			if skip, err = constInt(stmt.Offset); err != nil {
				return nil, err
			}
		}
		return exec.NewLimitOffset(op, n, skip), nil
	}
	sortBy := func(op exec.Operator) (exec.Operator, error) {
		if len(orderBy) == 0 || ex.SortSkipped {
			return op, nil
		}
		keys := make([]exec.SortKey, len(orderBy))
		for i, o := range orderBy {
			c, err := expr.Compile(o.Expr, op.Schema())
			if err != nil {
				return nil, err
			}
			keys[i] = exec.SortKey{Expr: c, Desc: o.Desc}
		}
		return exec.NewSort(op, keys), nil
	}

	// DISTINCT changes the evaluation order: project → dedup → sort (keys
	// resolve against the projected columns) → limit.
	if stmt.Distinct {
		root, err = p.project(root, items)
		if err != nil {
			return nil, nil, err
		}
		root = exec.NewDistinct(root)
		if root, err = sortBy(root); err != nil {
			return nil, nil, err
		}
		root, err = limit(root)
		return root, ex, err
	}

	// Default order: sort pre-projection (keys may reference columns that
	// are not selected), limit, then project. When a sort key only
	// resolves against the projected schema (an output alias), project
	// first instead.
	preSortOK := true
	for _, o := range orderBy {
		if _, err := expr.Compile(o.Expr, root.Schema()); err != nil {
			preSortOK = false
			break
		}
	}
	if preSortOK {
		if root, err = sortBy(root); err != nil {
			return nil, nil, err
		}
		if root, err = limit(root); err != nil {
			return nil, nil, err
		}
		root, err = p.project(root, items)
		return root, ex, err
	}
	if root, err = p.project(root, items); err != nil {
		return nil, nil, err
	}
	if root, err = sortBy(root); err != nil {
		return nil, nil, err
	}
	root, err = limit(root)
	return root, ex, err
}

func unresolvableConjunct(c sql.Expr, schema *types.Schema) error {
	if _, err := expr.Compile(c, schema); err != nil {
		return err
	}
	return fmt.Errorf("plan: internal error: conjunct not applied")
}

// ---- Plain (non-recommendation) planning ----

func (p *Planner) planPlain(stmt *sql.Select, conjuncts []sql.Expr, applied map[sql.Expr]bool) (exec.Operator, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("plan: SELECT requires FROM")
	}
	ops := make([]exec.Operator, len(stmt.From))
	for i, ref := range stmt.From {
		op, err := p.scanTable(ref, conjuncts, applied)
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	return p.joinAll(ops, conjuncts, applied)
}

// scanTable builds the access path for one FROM entry: a SpatialIndexScan
// when an R-tree-eligible spatial conjunct targets this table, an
// IndexScan when an equality conjunct probes a B-tree-indexed column,
// otherwise a sequential scan; remaining single-table conjuncts stack as
// filters.
func (p *Planner) scanTable(ref sql.TableRef, conjuncts []sql.Expr, applied map[sql.Expr]bool) (exec.Operator, error) {
	tab, err := p.Catalog.Get(ref.Table)
	if err != nil {
		return nil, err
	}
	var op exec.Operator
	for _, c := range conjuncts {
		if applied[c] {
			continue
		}
		if sscan := trySpatialScan(tab, ref.Name(), c); sscan != nil {
			applied[c] = true // the scan verifies the exact predicate
			op = sscan
			break
		}
		if iscan := tryIndexScan(tab, ref.Name(), c); iscan != nil {
			// Deliberately not applied: the equality stays as a recheck
			// filter above the scan (see tryIndexScan).
			op = iscan
			break
		}
	}
	if op == nil {
		op = exec.NewSeqScan(tab, ref.Name())
	}
	return applyFilters(op, conjuncts, applied)
}

// joinAll folds operators left-deep, using a hash join when an equi
// conjunct connects the sides.
func (p *Planner) joinAll(ops []exec.Operator, conjuncts []sql.Expr, applied map[sql.Expr]bool) (exec.Operator, error) {
	cur := ops[0]
	for _, right := range ops[1:] {
		joined, err := p.joinPair(cur, right, conjuncts, applied)
		if err != nil {
			return nil, err
		}
		cur, err = applyFilters(joined, conjuncts, applied)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (p *Planner) joinPair(left, right exec.Operator, conjuncts []sql.Expr, applied map[sql.Expr]bool) (exec.Operator, error) {
	// Look for an unapplied equi conjunct with one side in left's schema
	// and the other in right's.
	for _, c := range conjuncts {
		if applied[c] {
			continue
		}
		b, ok := c.(*sql.Binary)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		lc, err1 := expr.Compile(b.L, left.Schema())
		rc, err2 := expr.Compile(b.R, right.Schema())
		if err1 == nil && err2 == nil {
			applied[c] = true
			return exec.NewHashJoin(left, right, lc, rc, nil), nil
		}
		lc, err1 = expr.Compile(b.R, left.Schema())
		rc, err2 = expr.Compile(b.L, right.Schema())
		if err1 == nil && err2 == nil {
			applied[c] = true
			return exec.NewHashJoin(left, right, lc, rc, nil), nil
		}
	}
	return exec.NewNestedLoopJoin(left, right, nil), nil
}

// applyFilters wraps op with every not-yet-applied conjunct that compiles
// against its schema.
func applyFilters(op exec.Operator, conjuncts []sql.Expr, applied map[sql.Expr]bool) (exec.Operator, error) {
	for _, c := range conjuncts {
		if applied[c] {
			continue
		}
		compiled, err := expr.Compile(c, op.Schema())
		if err != nil {
			continue // not yet resolvable; try higher up
		}
		op = exec.NewFilter(op, compiled)
		applied[c] = true
	}
	return op, nil
}

// ---- Recommendation planning ----

func (p *Planner) planRecommend(stmt *sql.Select, conjuncts []sql.Expr, applied map[sql.Expr]bool, ex *Explain) (exec.Operator, error) {
	rc := stmt.Recommend

	// Locate the ratings table in FROM: the entry the clause's column
	// references are qualified by, or the only entry.
	recIdx := -1
	for i, ref := range stmt.From {
		q := rc.Item.Qualifier
		if q == "" {
			q = rc.User.Qualifier
		}
		if q == "" && len(stmt.From) == 1 {
			recIdx = 0
			break
		}
		if strings.EqualFold(ref.Name(), q) {
			recIdx = i
			break
		}
	}
	if recIdx < 0 {
		return nil, fmt.Errorf("plan: RECOMMEND clause references %q, which is not in FROM", rc.Item.Qualifier)
	}
	ratingsRef := stmt.From[recIdx]

	recommender, err := p.Rec.ForQuery(ratingsRef.Table, rc.Algorithm)
	if err != nil {
		return nil, err
	}
	store := recommender.Store()
	alias := ratingsRef.Name()
	recSchema := exec.RecSchema(alias, recommender.UserCol, recommender.ItemCol, recommender.RatingCol)

	// Extract pushdownable predicates.
	pd := extractRecPreds(conjuncts, alias, recommender, applied, p.DisableFilterPushdown)
	if p.RecordQuery != nil && len(pd.users) > 0 {
		p.RecordQuery(recommender, pd.users)
	}

	// Compile rating conjuncts against the bare rec schema for pushdown.
	var ratingPred expr.Compiled
	for _, c := range pd.ratingConjuncts {
		compiled, err := expr.Compile(c, recSchema)
		if err != nil {
			return nil, err
		}
		prev := ratingPred
		if prev == nil {
			ratingPred = compiled
		} else {
			cur := compiled
			ratingPred = func(row types.Row) (types.Value, error) {
				v, err := prev(row)
				if err != nil || !expr.Truthy(v) {
					return v, err
				}
				return cur(row)
			}
		}
	}

	// Other FROM tables.
	var others []tableOp
	for i, ref := range stmt.From {
		if i == recIdx {
			continue
		}
		op, err := p.scanTable(ref, conjuncts, applied)
		if err != nil {
			return nil, err
		}
		others = append(others, tableOp{ref, op})
	}

	// Strategy 1: INDEXRECOMMEND when every requested user is materialized.
	if !p.DisableIndexRecommend && pd.usersSet && len(pd.users) > 0 && p.IndexFor != nil {
		if ix := p.IndexFor(recommender); ix != nil && exec.CoversUsers(ix, pd.users) {
			op := exec.NewIndexRecommend(ix, pd.users, recSchema)
			op.RatingPred = ratingPred
			// Phase II of Algorithm 3: an upper bound on ratingval starts
			// the RecTree traversal below it.
			if bound, ok := ratingUpperBound(pd.ratingConjuncts, alias, recommender); ok {
				op.MaxScore = &bound
			}
			if pd.itemsSet {
				allowed := make(map[int64]bool, len(pd.items))
				for _, i := range pd.items {
					allowed[i] = true
				}
				op.ItemFilter = func(item int64) bool { return allowed[item] }
			}
			ex.Strategy = "IndexRecommend"
			// The index delivers descending rating order; when the query
			// asks exactly for that and joins nothing else, skip the sort
			// and push the limit into the traversal.
			if len(others) == 0 && orderIsRatingDesc(stmt, alias, recommender) {
				ex.SortSkipped = true
				if stmt.Limit != nil && stmt.Offset == nil && len(pd.users) == 1 {
					if n, err := constInt(stmt.Limit); err == nil {
						op.Limit = n
					}
				}
			}
			return p.joinOthers(op, others, conjuncts, applied)
		}
	}

	// Strategy 2: VECTORRECOMMEND — for SVD top-k queries, probe the IVF
	// index over item latent factors and re-rank exactly instead of
	// scoring every item.
	if op := p.tryVectorRecommend(stmt, alias, recommender, store, pd, ratingPred, others, conjuncts, applied, recSchema, ex); op != nil {
		return op, nil
	}

	// Strategy 3: JOINRECOMMEND when an equi conjunct joins the item column
	// to another table.
	if !p.DisableJoinRecommend && len(others) > 0 {
		for oi, other := range others {
			col, joinConj := findItemJoin(conjuncts, applied, alias, recommender, other.op.Schema())
			if joinConj == nil {
				continue
			}
			applied[joinConj] = true
			jr := exec.NewJoinRecommend(store, other.op, col, recSchema)
			jr.IncludeSeen = false
			if pd.usersSet {
				jr.Users = pd.users
			}
			var op exec.Operator = jr
			if ratingPred != nil {
				// Rating predicate applies to the rec side of the joined row;
				// compile against the joined schema instead.
				for _, c := range pd.ratingConjuncts {
					compiled, err := expr.Compile(c, jr.Schema())
					if err != nil {
						return nil, err
					}
					op = exec.NewFilter(op, compiled)
				}
			}
			if pd.itemsSet {
				op = filterItems(op, pd.items, 1)
			}
			ex.Strategy = "JoinRecommend"
			rest := append(append([]tableOp(nil), others[:oi]...), others[oi+1:]...)
			return p.joinOthers(op, rest, conjuncts, applied)
		}
	}

	// Strategy 4: RECOMMEND / FILTERRECOMMEND.
	op := exec.NewRecommend(store, recSchema)
	op.IncludeSeen = false
	if pd.usersSet {
		op.Users = pd.users
	}
	if pd.itemsSet {
		op.Items = pd.items
	}
	op.RatingPred = ratingPred
	if pd.usersSet || pd.itemsSet || ratingPred != nil {
		ex.Strategy = "FilterRecommend"
	} else {
		ex.Strategy = "Recommend"
	}
	return p.joinOthers(op, others, conjuncts, applied)
}

// tryVectorRecommend plans the VECTORRECOMMEND strategy, or returns nil
// when the query shape disqualifies it. The operator over-fetches K =
// LIMIT + OFFSET rows per user and the predicates it cannot absorb stay
// disqualifying: any conjunct that would land as a filter above it could
// eat past the per-user row target, so the strategy only fires when every
// conjunct is pushed down (uid/iid lists, rating predicates, and — for the
// joined/spatial shape — a single item equi-join whose outer side carries
// its own filters).
func (p *Planner) tryVectorRecommend(stmt *sql.Select, alias string, recommender *rec.Recommender, store *rec.ModelStore, pd recPreds, ratingPred expr.Compiled, others []tableOp, conjuncts []sql.Expr, applied map[sql.Expr]bool, recSchema *types.Schema, ex *Explain) exec.Operator {
	if p.DisableVectorRecommend || store.Algo != rec.SVD {
		return nil
	}
	if !pd.usersSet || len(pd.users) == 0 {
		return nil
	}
	if pd.itemsSet && len(pd.items) == 0 {
		return nil // contradictory IN-lists: the exact plan is already O(0)
	}
	// Top-k shape only: ORDER BY ratingval DESC LIMIT k, no aggregation or
	// dedup between the operator and the limit.
	if needsAggregate(stmt) || stmt.Distinct || stmt.Limit == nil || !orderIsRatingDesc(stmt, alias, recommender) {
		return nil
	}
	k, err := constInt(stmt.Limit)
	if err != nil {
		return nil
	}
	if stmt.Offset != nil {
		skip, err := constInt(stmt.Offset)
		if err != nil {
			return nil
		}
		k += skip
	}
	if k <= 0 {
		return nil
	}
	index, err := store.ANN()
	if err != nil {
		// Corrupt persisted index: count it and serve exact.
		p.VecMetrics.DecodeFailuresCounter().Inc()
		return nil
	}
	if index == nil || index.NumCentroids() == 0 {
		return nil
	}

	// Shape: the rec table alone, or composed with exactly one
	// item-joined relation (the spatial/polygon case).
	var outer exec.Operator
	outerCol := -1
	var joinConj sql.Expr
	switch len(others) {
	case 0:
	case 1:
		outerCol, joinConj = findItemJoin(conjuncts, applied, alias, recommender, others[0].op.Schema())
		if joinConj == nil {
			return nil
		}
		outer = others[0].op
	default:
		return nil
	}
	for _, c := range conjuncts {
		if !applied[c] && c != joinConj {
			return nil
		}
	}
	if joinConj != nil {
		applied[joinConj] = true
	}

	op := exec.NewVectorRecommend(store, index, pd.users, k, recSchema)
	op.RatingPred = ratingPred
	if pd.itemsSet {
		op.Allowed = pd.items
	}
	op.NProbe = p.VectorProbe
	op.Exact = p.VectorExact
	op.ExactThreshold = p.VectorExactThreshold
	op.Metrics = p.VecMetrics
	if outer != nil {
		op.Outer, op.OuterItemCol = outer, outerCol
	}
	ex.Strategy = "VectorRecommend"
	return op
}

// tableOp pairs a FROM entry with its (possibly filtered) scan.
type tableOp struct {
	ref sql.TableRef
	op  exec.Operator
}

func (p *Planner) joinOthers(cur exec.Operator, others []tableOp, conjuncts []sql.Expr, applied map[sql.Expr]bool) (exec.Operator, error) {
	ops := []exec.Operator{cur}
	for _, o := range others {
		ops = append(ops, o.op)
	}
	return p.joinAll(ops, conjuncts, applied)
}

// filterItems wraps op with an item-id membership filter on column col.
func filterItems(op exec.Operator, items []int64, col int) exec.Operator {
	allowed := make(map[int64]bool, len(items))
	for _, i := range items {
		allowed[i] = true
	}
	pred := func(row types.Row) (types.Value, error) {
		v, ok := row[col].AsInt()
		return types.NewBool(ok && allowed[v]), nil
	}
	return exec.NewFilter(op, pred)
}

// orderIsRatingDesc reports whether ORDER BY is exactly "ratingval DESC"
// on the recommender's rating column.
func orderIsRatingDesc(stmt *sql.Select, alias string, r *rec.Recommender) bool {
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		return false
	}
	ref, ok := stmt.OrderBy[0].Expr.(*sql.ColumnRef)
	if !ok {
		return false
	}
	if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, alias) {
		return false
	}
	return strings.EqualFold(ref.Name, r.RatingCol)
}

// recPreds is the pushdown analysis of a WHERE clause against a
// recommender's output columns.
type recPreds struct {
	users           []int64
	usersSet        bool
	items           []int64
	itemsSet        bool
	ratingConjuncts []sql.Expr
}

// extractRecPreds classifies WHERE conjuncts that reference only the
// recommender's columns: user-id equality/IN lists, item-id equality/IN
// lists, and rating-value predicates. Matching conjuncts for uid/iid are
// marked applied (enforced by restricting the operator's loops).
func extractRecPreds(conjuncts []sql.Expr, alias string, r *rec.Recommender, applied map[sql.Expr]bool, disabled bool) recPreds {
	var pd recPreds
	if disabled {
		return pd
	}
	for _, c := range conjuncts {
		if applied[c] {
			continue
		}
		if ids, ok := idListPred(c, alias, r.UserCol); ok {
			pd.users = intersect(pd.users, pd.usersSet, ids)
			pd.usersSet = true
			applied[c] = true
			continue
		}
		if ids, ok := idListPred(c, alias, r.ItemCol); ok {
			pd.items = intersect(pd.items, pd.itemsSet, ids)
			pd.itemsSet = true
			applied[c] = true
			continue
		}
		if refsOnly(c, alias, r.RatingCol) {
			pd.ratingConjuncts = append(pd.ratingConjuncts, c)
			applied[c] = true
		}
	}
	return pd
}

func intersect(cur []int64, curSet bool, add []int64) []int64 {
	if !curSet {
		return add
	}
	in := make(map[int64]bool, len(add))
	for _, v := range add {
		in[v] = true
	}
	// Never nil: an empty-but-set list means "no ids match", which the
	// operators must distinguish from nil ("no restriction").
	out := []int64{}
	for _, v := range cur {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// idListPred recognizes "<alias>.<col> = <int literal>" and
// "<alias>.<col> IN (<int literals>)".
func idListPred(c sql.Expr, alias, col string) ([]int64, bool) {
	switch v := c.(type) {
	case *sql.Binary:
		if v.Op != sql.OpEq {
			return nil, false
		}
		if ref, lit, ok := refAndLiteral(v.L, v.R); ok && refMatches(ref, alias, col) {
			if id, ok := lit.AsInt(); ok {
				return []int64{id}, true
			}
		}
		return nil, false
	case *sql.In:
		if v.Negate {
			return nil, false
		}
		ref, ok := v.X.(*sql.ColumnRef)
		if !ok || !refMatches(ref, alias, col) {
			return nil, false
		}
		ids := make([]int64, 0, len(v.List))
		for _, e := range v.List {
			lit, ok := e.(*sql.Literal)
			if !ok {
				return nil, false
			}
			id, ok := lit.Value.AsInt()
			if !ok {
				return nil, false
			}
			ids = append(ids, id)
		}
		return ids, true
	}
	return nil, false
}

func refAndLiteral(a, b sql.Expr) (*sql.ColumnRef, types.Value, bool) {
	if ref, ok := a.(*sql.ColumnRef); ok {
		if lit, ok := b.(*sql.Literal); ok {
			return ref, lit.Value, true
		}
	}
	if ref, ok := b.(*sql.ColumnRef); ok {
		if lit, ok := a.(*sql.Literal); ok {
			return ref, lit.Value, true
		}
	}
	return nil, types.Null(), false
}

func refMatches(ref *sql.ColumnRef, alias, col string) bool {
	if !strings.EqualFold(ref.Name, col) {
		return false
	}
	return ref.Qualifier == "" || strings.EqualFold(ref.Qualifier, alias)
}

// refsOnly reports whether every column reference in c is the given
// (alias, col).
func refsOnly(c sql.Expr, alias, col string) bool {
	ok := true
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch v := e.(type) {
		case *sql.ColumnRef:
			if !refMatches(v, alias, col) {
				ok = false
			}
		case *sql.Binary:
			walk(v.L)
			walk(v.R)
		case *sql.Unary:
			walk(v.X)
		case *sql.In:
			walk(v.X)
			for _, item := range v.List {
				walk(item)
			}
		case *sql.Call:
			for _, a := range v.Args {
				walk(a)
			}
		case *sql.IsNull:
			walk(v.X)
		case *sql.Like:
			walk(v.X)
			walk(v.Pattern)
		case *sql.Between:
			walk(v.X)
			walk(v.Lo)
			walk(v.Hi)
		}
	}
	walk(c)
	return ok
}

// findItemJoin locates an unapplied equi conjunct joining the
// recommender's item column to a column of the other schema. It returns
// the other-side column position and the conjunct.
func findItemJoin(conjuncts []sql.Expr, applied map[sql.Expr]bool, alias string, r *rec.Recommender, other *types.Schema) (int, sql.Expr) {
	for _, c := range conjuncts {
		if applied[c] {
			continue
		}
		b, ok := c.(*sql.Binary)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		sides := [][2]sql.Expr{{b.L, b.R}, {b.R, b.L}}
		for _, s := range sides {
			recRef, ok := s[0].(*sql.ColumnRef)
			if !ok || !refMatches(recRef, alias, r.ItemCol) || recRef.Qualifier == "" {
				continue
			}
			otherRef, ok := s[1].(*sql.ColumnRef)
			if !ok {
				continue
			}
			if idx, err := other.Resolve(otherRef.Qualifier, otherRef.Name); err == nil {
				return idx, c
			}
		}
	}
	return -1, nil
}

// ratingUpperBound extracts the tightest "ratingval <= x" / "ratingval < x"
// bound among rating conjuncts (also accepting the flipped "x >= ratingval"
// spelling). The residual RatingPred still enforces strictness for "<".
func ratingUpperBound(conjuncts []sql.Expr, alias string, r *rec.Recommender) (float64, bool) {
	best := 0.0
	found := false
	consider := func(v types.Value) {
		f, ok := v.AsFloat()
		if !ok {
			return
		}
		if !found || f < best {
			best = f
			found = true
		}
	}
	for _, c := range conjuncts {
		b, ok := c.(*sql.Binary)
		if !ok {
			continue
		}
		switch b.Op {
		case sql.OpLe, sql.OpLt:
			if ref, ok := b.L.(*sql.ColumnRef); ok && refMatches(ref, alias, r.RatingCol) {
				if lit, ok := b.R.(*sql.Literal); ok {
					consider(lit.Value)
				}
			}
		case sql.OpGe, sql.OpGt:
			if ref, ok := b.R.(*sql.ColumnRef); ok && refMatches(ref, alias, r.RatingCol) {
				if lit, ok := b.L.(*sql.Literal); ok {
					consider(lit.Value)
				}
			}
		}
	}
	return best, found
}

// splitConjuncts flattens a WHERE tree into AND-connected conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

func constInt(e sql.Expr) (int64, error) {
	lit, ok := e.(*sql.Literal)
	if !ok {
		return 0, fmt.Errorf("plan: LIMIT must be a literal")
	}
	n, ok := lit.Value.AsInt()
	if !ok || n < 0 {
		return 0, fmt.Errorf("plan: LIMIT must be a non-negative integer")
	}
	return n, nil
}

// project applies the SELECT list.
func (p *Planner) project(op exec.Operator, items []sql.SelectItem) (exec.Operator, error) {
	// SELECT * alone passes rows through.
	if len(items) == 1 && items[0].Star {
		return op, nil
	}
	var exprs []expr.Compiled
	var cols []types.Column
	in := op.Schema()
	for _, item := range items {
		if item.Star {
			for i := range in.Columns {
				idx := i
				exprs = append(exprs, func(row types.Row) (types.Value, error) {
					return row[idx], nil
				})
				cols = append(cols, in.Columns[i])
			}
			continue
		}
		compiled, err := expr.Compile(item.Expr, in)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, compiled)
		cols = append(cols, types.Column{
			Name: projectionName(item),
			Kind: inferKind(item.Expr, in),
		})
	}
	return exec.NewProject(op, exprs, types.NewSchema(cols...)), nil
}

func projectionName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(*sql.ColumnRef); ok {
		return ref.Name
	}
	if call, ok := item.Expr.(*sql.Call); ok {
		return strings.ToLower(call.Name)
	}
	return "?column?"
}

func inferKind(e sql.Expr, schema *types.Schema) types.Kind {
	switch v := e.(type) {
	case *sql.Literal:
		return v.Value.Kind()
	case *sql.ColumnRef:
		if idx, err := schema.Resolve(v.Qualifier, v.Name); err == nil {
			return schema.Columns[idx].Kind
		}
	case *sql.Binary:
		switch v.Op {
		case sql.OpAnd, sql.OpOr, sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return types.KindBool
		default:
			lk, rk := inferKind(v.L, schema), inferKind(v.R, schema)
			if lk == types.KindInt && rk == types.KindInt {
				return types.KindInt
			}
			return types.KindFloat
		}
	case *sql.In, *sql.IsNull:
		return types.KindBool
	case *sql.Unary:
		if v.Op == "NOT" {
			return types.KindBool
		}
		return inferKind(v.X, schema)
	case *sql.Call:
		return types.KindFloat // common case; values are self-describing anyway
	}
	return types.KindNull
}
