package plan

import (
	"strings"
	"testing"

	"recdb/internal/exec"
	"recdb/internal/geo"
	"recdb/internal/sql"
	"recdb/internal/types"
)

func planAndDescribe(t *testing.T, p *Planner, q string) string {
	t.Helper()
	op, _ := planQuery(t, p, q)
	return strings.Join(DescribePlan(op), "\n")
}

func TestDescribePlanCoversOperators(t *testing.T) {
	p, ix := fixture(t)
	cases := []struct {
		q    string
		want []string
	}{
		{`SELECT name FROM movies WHERE genre = 'Action'`,
			[]string{"Project", "Filter", "SeqScan on movies"}},
		{`SELECT u.uid FROM ratings u, movies m WHERE u.iid = m.mid`,
			[]string{"HashJoin", "SeqScan on ratings", "SeqScan on movies"}},
		{`SELECT r1.uid FROM ratings r1, ratings r2 WHERE r1.ratingval > r2.ratingval`,
			[]string{"NestedLoopJoin", "Filter"}},
		{`SELECT DISTINCT genre FROM movies ORDER BY genre LIMIT 2`,
			[]string{"Limit 2", "Sort", "Distinct", "Project"}},
		{`SELECT genre, COUNT(*) FROM movies GROUP BY genre`,
			[]string{"HashAggregate (1 group keys, 1 aggregates)"}},
		{`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval`,
			[]string{"Recommend [ItemCosCF] (all users, all items)"}},
		{`SELECT R.uid FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.uid = 1`,
			[]string{"FilterRecommend [ItemCosCF] (1 users, all items)"}},
		{`SELECT R.uid FROM ratings R, movies M RECOMMEND R.iid TO R.uid ON R.ratingval
		  WHERE R.uid = 1 AND M.mid = R.iid AND M.genre = 'Action'`,
			[]string{"JoinRecommend [ItemCosCF] (1 users)", "Filter", "SeqScan on movies"}},
	}
	for _, c := range cases {
		got := planAndDescribe(t, p, c.q)
		for _, want := range c.want {
			if !strings.Contains(got, want) {
				t.Errorf("%s\nplan missing %q:\n%s", c.q, want, got)
			}
		}
	}

	// IndexRecommend with limit pushdown.
	ix.Put(1, 2, 4.0)
	ix.Put(1, 3, 2.0)
	got := planAndDescribe(t, p, `SELECT R.uid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 7`)
	if !strings.Contains(got, "IndexRecommend on RecScoreIndex (1 users, limit 7 pushed down)") {
		t.Fatalf("index plan:\n%s", got)
	}
}

func TestDescribeIndexScan(t *testing.T) {
	p, _ := fixture(t)
	tab, _ := p.Catalog.Get("movies")
	idx, ok := tab.IndexOn("mid")
	if !ok {
		t.Fatal("pk index missing")
	}
	lines := DescribePlan(exec.NewIndexScan(tab, idx, "m", types.NewInt(1), types.NewInt(2)))
	if !strings.Contains(lines[0], "IndexScan on movies as m using movies_pkey") {
		t.Fatalf("%v", lines)
	}
}

func TestTrySpatialScanHelpers(t *testing.T) {
	p, _ := fixture(t)
	pois, err := p.Catalog.CreateTable("pois", types.NewSchema(
		types.Column{Name: "vid", Kind: types.KindInt},
		types.Column{Name: "geom", Kind: types.KindGeometry},
	), 0)
	if err != nil {
		t.Fatal(err)
	}
	pois.Insert(types.Row{types.NewInt(1), types.NewGeometry(geo.Point{X: 1, Y: 1})})
	if _, err := pois.CreateIndex("pois_geom", "geom"); err != nil {
		t.Fatal(err)
	}

	parseCond := func(cond string) sql.Expr {
		stmt, err := sql.Parse("SELECT vid FROM pois WHERE " + cond)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*sql.Select).Where
	}
	// Eligible forms.
	for _, cond := range []string{
		"ST_DWithin(geom, ST_Point(0,0), 5)",
		"ST_DWithin(ST_Point(0,0), geom, 5)",
		"ST_Contains(ST_GeomFromText('POLYGON((0 0,2 0,2 2,0 2))'), geom)",
		"ST_Contains(geom, ST_Point(1,1))",
	} {
		if trySpatialScan(pois, "pois", parseCond(cond)) == nil {
			t.Errorf("should be index-eligible: %s", cond)
		}
	}
	// Ineligible forms.
	for _, cond := range []string{
		"ST_DWithin(geom, ST_Point(0,0), -1)",  // negative distance
		"ST_DWithin(geom, geom, 5)",            // no constant side
		"ST_Contains(geom, geom)",              // no constant side
		"ST_Distance(geom, ST_Point(0,0)) < 5", // not a recognized call shape
		"vid = 1",                              // not spatial at all
	} {
		if trySpatialScan(pois, "pois", parseCond(cond)) != nil {
			t.Errorf("should not be index-eligible: %s", cond)
		}
	}
	// Wrong qualifier.
	if trySpatialScan(pois, "other", parseCond("ST_DWithin(pois.geom, ST_Point(0,0), 5)")) != nil {
		t.Error("wrong qualifier should not match")
	}
	// Geometry column without an index.
	noIdx, _ := p.Catalog.CreateTable("noidx", types.NewSchema(
		types.Column{Name: "geom", Kind: types.KindGeometry},
	), -1)
	if trySpatialScan(noIdx, "noidx", parseCond("ST_DWithin(geom, ST_Point(0,0), 5)")) != nil {
		t.Error("missing index should not match")
	}
}

func TestAggregatePlanDirect(t *testing.T) {
	p, _ := fixture(t)
	op, _ := planQuery(t, p, `SELECT genre, COUNT(*) AS n, MIN(mid), MAX(mid)
		FROM movies GROUP BY genre HAVING COUNT(*) >= 1 ORDER BY n DESC, genre ASC`)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups: %v", rows)
	}
	// Schema names come from the aliases / function names.
	names := make([]string, op.Schema().Len())
	for i, c := range op.Schema().Columns {
		names[i] = c.Name
	}
	if names[0] != "genre" || names[1] != "n" || names[2] != "min" {
		t.Fatalf("names: %v", names)
	}
}

func TestGroupByExpression(t *testing.T) {
	// Grouping by a computed expression, referenced identically in the
	// select list.
	p, _ := fixture(t)
	op, _ := planQuery(t, p, `SELECT uid * 10, COUNT(*) FROM ratings GROUP BY uid * 10 ORDER BY uid * 10`)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0][0].Int() != 10 {
		t.Fatalf("grouped by expression: %v", rows)
	}
}

func TestNeedsAggregate(t *testing.T) {
	mustSel := func(q string) *sql.Select {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*sql.Select)
	}
	if needsAggregate(mustSel("SELECT a FROM t")) {
		t.Error("plain select")
	}
	if !needsAggregate(mustSel("SELECT COUNT(*) FROM t")) {
		t.Error("count")
	}
	if !needsAggregate(mustSel("SELECT a FROM t GROUP BY a")) {
		t.Error("group by")
	}
	if !needsAggregate(mustSel("SELECT a FROM t ORDER BY SUM(b)")) {
		t.Error("aggregate in order by")
	}
}
