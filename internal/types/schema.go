package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation. Qualifier is the table name
// or alias it is visible under in a query (empty for anonymous columns).
type Column struct {
	Qualifier string
	Name      string
	Kind      Kind
}

// QualifiedName renders "qualifier.name" (or just "name").
func (c Column) QualifiedName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Schema is an ordered list of columns describing a row shape.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// WithQualifier returns a copy of the schema with every column's qualifier
// replaced by q. Used when a table is aliased in FROM.
func (s *Schema) WithQualifier(q string) *Schema {
	out := &Schema{Columns: make([]Column, len(s.Columns))}
	for i, c := range s.Columns {
		c.Qualifier = q
		out.Columns[i] = c
	}
	return out
}

// Concat returns a schema with s's columns followed by t's (join output).
func (s *Schema) Concat(t *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(s.Columns)+len(t.Columns))}
	out.Columns = append(out.Columns, s.Columns...)
	out.Columns = append(out.Columns, t.Columns...)
	return out
}

// Resolve finds the index of the column referenced by (qualifier, name).
// A reference with no qualifier matches any column with that name, but is
// ambiguous if several qualify.
func (s *Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("types: ambiguous column reference %q", ref(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("types: unknown column %q", ref(qualifier, name))
	}
	return found, nil
}

func ref(qualifier, name string) string {
	if qualifier == "" {
		return name
	}
	return qualifier + "." + name
}

// Row is a tuple of values positionally matching a schema.
type Row []Value

// Clone returns a copy of the row (values are immutable, so a shallow copy
// of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row with r's values followed by other's.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	out = append(out, other...)
	return out
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
