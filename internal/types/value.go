// Package types defines the value system shared by every layer of the
// engine: SQL values, rows, schemas, and the binary tuple encoding used by
// the heap storage layer.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"recdb/internal/geo"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
	KindGeometry
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindGeometry:
		return "GEOMETRY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName resolves a SQL type name (as written in CREATE TABLE) to a
// Kind. It accepts the common aliases.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return KindText, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "GEOMETRY":
		return KindGeometry, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	g    geo.Geometry
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{kind: KindText, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewGeometry returns a GEOMETRY value.
func NewGeometry(g geo.Geometry) Value { return Value{kind: KindGeometry, g: g} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the int64 payload; valid only for KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float64 payload; valid only for KindFloat.
func (v Value) Float() float64 { return v.f }

// Text returns the string payload; valid only for KindText.
func (v Value) Text() string { return v.s }

// Bool returns the bool payload; valid only for KindBool.
func (v Value) Bool() bool { return v.i != 0 }

// Geometry returns the geometry payload; valid only for KindGeometry.
func (v Value) Geometry() geo.Geometry { return v.g }

// AsFloat coerces numeric values to float64. It returns false for
// non-numeric kinds (including NULL).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64 (floats truncate). It returns false
// for non-numeric kinds.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	default:
		return 0, false
	}
}

// String renders the value the way the CLI prints it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindGeometry:
		if v.g == nil {
			return "GEOMETRY(nil)"
		}
		return v.g.WKT()
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float; text compares lexicographically;
// bool orders false < true. Comparing incompatible kinds (e.g. text vs int)
// returns an error so bugs surface instead of silently misordering.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
		return 0, incomparable(a, b)
	}
	switch a.kind {
	case KindText:
		if b.kind != KindText {
			return 0, incomparable(a, b)
		}
		return strings.Compare(a.s, b.s), nil
	case KindBool:
		if b.kind != KindBool {
			return 0, incomparable(a, b)
		}
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	case KindGeometry:
		if b.kind != KindGeometry {
			return 0, incomparable(a, b)
		}
		return strings.Compare(a.String(), b.String()), nil
	}
	return 0, incomparable(a, b)
}

func incomparable(a, b Value) error {
	return fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
}

// Equal reports whether two values compare equal. Incompatible kinds are
// simply unequal (no error), which matches SQL equality-predicate behaviour
// after planning-time type checks.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return a.kind == b.kind
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Hash returns a 64-bit hash of the value, consistent with Equal across the
// numeric kinds (1 and 1.0 hash identically).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch v.kind {
	case KindNull:
		mix(0)
	case KindInt, KindFloat, KindBool:
		var bits uint64
		if f, ok := v.AsFloat(); ok {
			if f == math.Trunc(f) && !math.IsInf(f, 0) {
				// Normalize integral floats so 1 and 1.0 collide.
				bits = uint64(int64(f))
				mix(1)
			} else {
				bits = math.Float64bits(f)
				mix(2)
			}
		} else {
			bits = uint64(v.i)
			mix(3)
		}
		for s := 0; s < 64; s += 8 {
			mix(byte(bits >> s))
		}
	case KindText:
		mix(4)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindGeometry:
		mix(5)
		s := v.String()
		for i := 0; i < len(s); i++ {
			mix(s[i])
		}
	}
	return h
}
