package types

import (
	"math"
	"testing"
	"testing/quick"

	"recdb/internal/geo"
)

func TestKindFromName(t *testing.T) {
	cases := []struct {
		name string
		want Kind
	}{
		{"INT", KindInt}, {"integer", KindInt}, {"BIGINT", KindInt},
		{"FLOAT", KindFloat}, {"double", KindFloat}, {"NUMERIC", KindFloat},
		{"TEXT", KindText}, {"varchar", KindText},
		{"BOOLEAN", KindBool}, {"bool", KindBool},
		{"GEOMETRY", KindGeometry},
	}
	for _, c := range cases {
		got, err := KindFromName(c.name)
		if err != nil || got != c.want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", c.name, got, err, c.want)
		}
	}
	if _, err := KindFromName("BLOB"); err == nil {
		t.Error("KindFromName(BLOB) should fail")
	}
}

func TestValueAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 || v.IsNull() {
		t.Errorf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: %v", v)
	}
	if v := NewText("hi"); v.Kind() != KindText || v.Text() != "hi" {
		t.Errorf("NewText: %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool: %v", v)
	}
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
}

func TestAsFloatAndAsInt(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("int AsFloat: %v %v", f, ok)
	}
	if f, ok := NewFloat(3.5).AsFloat(); !ok || f != 3.5 {
		t.Errorf("float AsFloat: %v %v", f, ok)
	}
	if _, ok := NewText("x").AsFloat(); ok {
		t.Error("text AsFloat should fail")
	}
	if i, ok := NewFloat(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("float AsInt should truncate: %v %v", i, ok)
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("null AsInt should fail")
	}
}

func TestCompare(t *testing.T) {
	mustCmp := func(a, b Value, want int) {
		t.Helper()
		got, err := Compare(a, b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", a, b, err)
		}
		if got != want {
			t.Fatalf("Compare(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
	mustCmp(NewInt(1), NewInt(2), -1)
	mustCmp(NewInt(2), NewInt(2), 0)
	mustCmp(NewInt(3), NewFloat(2.5), 1)
	mustCmp(NewFloat(1.5), NewInt(2), -1)
	mustCmp(NewText("a"), NewText("b"), -1)
	mustCmp(NewBool(false), NewBool(true), -1)
	mustCmp(Null(), NewInt(0), -1)
	mustCmp(NewInt(0), Null(), 1)
	mustCmp(Null(), Null(), 0)

	if _, err := Compare(NewInt(1), NewText("1")); err == nil {
		t.Error("int vs text should error")
	}
	if _, err := Compare(NewBool(true), NewInt(1)); err == nil {
		t.Error("bool vs int should error")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if Equal(NewInt(1), NewText("1")) {
		t.Error("1 should not equal '1'")
	}
	if !Equal(Null(), Null()) {
		t.Error("null equals null under our semantics")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7.0).Hash() {
		t.Error("7 and 7.0 must hash identically")
	}
	if NewText("abc").Hash() == NewText("abd").Hash() {
		t.Error("different strings should (almost surely) hash differently")
	}
}

func TestEncodeDecodeRowAllKinds(t *testing.T) {
	row := Row{
		NewInt(-123456789),
		NewFloat(math.Pi),
		NewText("hello, 世界"),
		NewBool(true),
		Null(),
		NewGeometry(geo.Point{X: 1.5, Y: -2.5}),
		NewGeometry(geo.Rect(0, 0, 4, 4)),
	}
	buf := EncodeRow(nil, row)
	got, n, err := DecodeRow(buf)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(row) {
		t.Fatalf("got %d values, want %d", len(got), len(row))
	}
	for i := range row {
		if row[i].Kind() == KindGeometry {
			if got[i].String() != row[i].String() {
				t.Errorf("value %d: got %v want %v", i, got[i], row[i])
			}
			continue
		}
		if !Equal(got[i], row[i]) || got[i].Kind() != row[i].Kind() {
			t.Errorf("value %d: got %v want %v", i, got[i], row[i])
		}
	}
}

func TestDecodeRowTruncated(t *testing.T) {
	row := Row{NewInt(1), NewText("abcdef"), NewFloat(1.25)}
	buf := EncodeRow(nil, row)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRow(buf[:cut]); err == nil {
			// Some prefixes decode as a shorter valid row only if the count
			// byte says so; with a 3-value count every cut must fail.
			t.Errorf("cut at %d decoded without error", cut)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		if math.IsNaN(fl) {
			return true
		}
		row := Row{NewInt(i), NewFloat(fl), NewText(s), NewBool(b), Null()}
		buf := EncodeRow(nil, row)
		got, n, err := DecodeRow(buf)
		if err != nil || n != len(buf) || len(got) != len(row) {
			return false
		}
		for j := range row {
			if got[j].Kind() != row[j].Kind() || !Equal(got[j], row[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaResolve(t *testing.T) {
	s := NewSchema(
		Column{Qualifier: "r", Name: "uid", Kind: KindInt},
		Column{Qualifier: "r", Name: "iid", Kind: KindInt},
		Column{Qualifier: "m", Name: "iid", Kind: KindInt},
		Column{Qualifier: "m", Name: "name", Kind: KindText},
	)
	if i, err := s.Resolve("r", "uid"); err != nil || i != 0 {
		t.Errorf("r.uid: %d, %v", i, err)
	}
	if i, err := s.Resolve("", "name"); err != nil || i != 3 {
		t.Errorf("name: %d, %v", i, err)
	}
	if _, err := s.Resolve("", "iid"); err == nil {
		t.Error("ambiguous iid should error")
	}
	if _, err := s.Resolve("r", "nope"); err == nil {
		t.Error("unknown column should error")
	}
	// Case-insensitive.
	if i, err := s.Resolve("R", "UID"); err != nil || i != 0 {
		t.Errorf("R.UID: %d, %v", i, err)
	}
}

func TestSchemaWithQualifierAndConcat(t *testing.T) {
	s := NewSchema(Column{Name: "a", Kind: KindInt}).WithQualifier("t")
	if s.Columns[0].Qualifier != "t" {
		t.Fatalf("qualifier = %q", s.Columns[0].Qualifier)
	}
	u := NewSchema(Column{Qualifier: "u", Name: "b", Kind: KindText})
	j := s.Concat(u)
	if j.Len() != 2 || j.Columns[1].QualifiedName() != "u.b" {
		t.Fatalf("concat: %+v", j.Columns)
	}
}

func TestRowCloneAndConcat(t *testing.T) {
	r := Row{NewInt(1), NewInt(2)}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone should not share backing array effects")
	}
	j := r.Concat(Row{NewText("x")})
	if len(j) != 3 || j[2].Text() != "x" {
		t.Errorf("concat: %v", j)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "BIGINT", KindFloat: "DOUBLE",
		KindText: "TEXT", KindBool: "BOOLEAN", KindGeometry: "GEOMETRY",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind: %q", Kind(99).String())
	}
}

func TestValueStringAllKinds(t *testing.T) {
	cases := map[string]Value{
		"NULL":          Null(),
		"42":            NewInt(42),
		"2.5":           NewFloat(2.5),
		"hi":            NewText("hi"),
		"true":          NewBool(true),
		"false":         NewBool(false),
		"POINT(1 2)":    NewGeometry(geo.Point{X: 1, Y: 2}),
		"GEOMETRY(nil)": Value{},
	}
	for want, v := range cases {
		if want == "NULL" && v.Kind() != KindNull {
			continue
		}
		if want == "GEOMETRY(nil)" {
			// A geometry value with a nil payload (only reachable through
			// decoding an empty geometry).
			continue
		}
		if v.String() != want {
			t.Errorf("String() = %q, want %q", v.String(), want)
		}
	}
}

func TestGeometryAccessor(t *testing.T) {
	p := geo.Point{X: 3, Y: 4}
	v := NewGeometry(p)
	if v.Geometry() != p {
		t.Fatalf("Geometry() = %v", v.Geometry())
	}
}

func TestCompareGeometryAndBoolEdge(t *testing.T) {
	a := NewGeometry(geo.Point{X: 1, Y: 2})
	b := NewGeometry(geo.Point{X: 1, Y: 3})
	c, err := Compare(a, b)
	if err != nil || c == 0 {
		t.Fatalf("geometry compare: %d %v", c, err)
	}
	if _, err := Compare(a, NewInt(1)); err == nil {
		t.Error("geometry vs int should error")
	}
	if c, _ := Compare(NewBool(true), NewBool(true)); c != 0 {
		t.Error("bool self-compare")
	}
	if c, _ := Compare(NewBool(true), NewBool(false)); c != 1 {
		t.Error("true > false")
	}
}

func TestHashKinds(t *testing.T) {
	vals := []Value{
		Null(), NewInt(1), NewFloat(1.5), NewFloat(math.Inf(1)),
		NewText(""), NewBool(true), NewBool(false),
		NewGeometry(geo.Point{X: 1, Y: 2}),
	}
	seen := map[uint64][]int{}
	for i, v := range vals {
		seen[v.Hash()] = append(seen[v.Hash()], i)
	}
	// All distinct values here should hash distinctly (no guarantees in
	// general, but collisions across these few would indicate a bug).
	for h, idxs := range seen {
		if len(idxs) > 1 {
			t.Errorf("hash collision %d between %v", h, idxs)
		}
	}
	// Hash of NaN-ish non-integral floats is stable.
	if NewFloat(2.5).Hash() != NewFloat(2.5).Hash() {
		t.Error("hash not deterministic")
	}
}

func TestRowStringAndSchemaQualified(t *testing.T) {
	r := Row{NewInt(1), NewText("x")}
	if r.String() != "(1, x)" {
		t.Errorf("Row.String() = %q", r.String())
	}
	c := Column{Name: "a"}
	if c.QualifiedName() != "a" {
		t.Errorf("unqualified: %q", c.QualifiedName())
	}
	c.Qualifier = "t"
	if c.QualifiedName() != "t.a" {
		t.Errorf("qualified: %q", c.QualifiedName())
	}
}

func TestAsIntNonNumeric(t *testing.T) {
	if _, ok := NewText("5").AsInt(); ok {
		t.Error("text AsInt should fail")
	}
	if _, ok := NewBool(true).AsInt(); ok {
		t.Error("bool AsInt should fail")
	}
}
