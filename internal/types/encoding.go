package types

import (
	"encoding/binary"
	"fmt"
	"math"

	"recdb/internal/geo"
)

// The binary tuple encoding used by heap pages:
//
//	row    := count:uvarint value*
//	value  := kind:byte payload
//	int    := zigzag varint
//	float  := 8 bytes big-endian IEEE 754 bits
//	text   := len:uvarint bytes
//	bool   := 1 byte
//	geom   := len:uvarint WKT bytes
//
// The format is self-describing so a heap tuple can be decoded without its
// schema (the schema is still used for validation at the access layer).

// EncodeRow appends the binary encoding of row to dst and returns it.
func EncodeRow(dst []byte, row Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindInt:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindText:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case KindBool:
			b := byte(0)
			if v.i != 0 {
				b = 1
			}
			dst = append(dst, b)
		case KindGeometry:
			w := ""
			if v.g != nil {
				w = v.g.WKT()
			}
			dst = binary.AppendUvarint(dst, uint64(len(w)))
			dst = append(dst, w...)
		}
	}
	return dst
}

// DecodeRow decodes one row from buf. It returns the row and the number of
// bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: truncated row header")
	}
	off := sz
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("types: truncated value %d", i)
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindNull:
			row = append(row, Null())
		case KindInt:
			v, sz := binary.Varint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("types: truncated int value %d", i)
			}
			off += sz
			row = append(row, NewInt(v))
		case KindFloat:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated float value %d", i)
			}
			bits := binary.BigEndian.Uint64(buf[off:])
			off += 8
			row = append(row, NewFloat(math.Float64frombits(bits)))
		case KindText, KindGeometry:
			ln, sz := binary.Uvarint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("types: truncated string header %d", i)
			}
			off += sz
			if off+int(ln) > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated string value %d", i)
			}
			s := string(buf[off : off+int(ln)])
			off += int(ln)
			if kind == KindText {
				row = append(row, NewText(s))
			} else if s == "" {
				row = append(row, Value{kind: KindGeometry})
			} else {
				g, err := geo.Parse(s)
				if err != nil {
					return nil, 0, fmt.Errorf("types: bad geometry value %d: %w", i, err)
				}
				row = append(row, NewGeometry(g))
			}
		case KindBool:
			if off >= len(buf) {
				return nil, 0, fmt.Errorf("types: truncated bool value %d", i)
			}
			row = append(row, NewBool(buf[off] != 0))
			off++
		default:
			return nil, 0, fmt.Errorf("types: unknown value kind %d", kind)
		}
	}
	return row, off, nil
}
