package types

import "fmt"

// ScanRow copies row into dest pointers: *int64, *float64, *string,
// *bool, or *Value. Numeric values coerce between int64 and float64.
// cols names the columns for error messages (it may be nil). This is the
// shared implementation behind recdb.Rows.Scan and the network client's
// Rows.Scan, so embedded and remote results scan identically.
func ScanRow(row Row, cols []string, dest ...any) error {
	if row == nil {
		return fmt.Errorf("types: Scan called without a current row")
	}
	if len(dest) != len(row) {
		return fmt.Errorf("types: Scan has %d targets for %d columns", len(dest), len(row))
	}
	name := func(i int) string {
		if i < len(cols) {
			return cols[i]
		}
		return fmt.Sprintf("#%d", i)
	}
	for i, d := range dest {
		v := row[i]
		switch p := d.(type) {
		case *Value:
			*p = v
		case *int64:
			n, ok := v.AsInt()
			if !ok {
				return fmt.Errorf("types: column %d (%s) is not numeric", i, name(i))
			}
			*p = n
		case *float64:
			f, ok := v.AsFloat()
			if !ok {
				return fmt.Errorf("types: column %d (%s) is not numeric", i, name(i))
			}
			*p = f
		case *string:
			*p = v.String()
		case *bool:
			if v.Kind() != KindBool {
				return fmt.Errorf("types: column %d (%s) is not boolean", i, name(i))
			}
			*p = v.Bool()
		default:
			return fmt.Errorf("types: unsupported Scan target %T", d)
		}
	}
	return nil
}
