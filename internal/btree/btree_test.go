package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"recdb/internal/types"
)

func intKey(i int64) types.Row { return types.Row{types.NewInt(i)} }

func TestInsertGet(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 100; i++ {
		if !tr.Insert(intKey(i), i*10) {
			t.Fatalf("Insert(%d) reported replacement", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 100; i++ {
		v, ok := tr.Get(intKey(i))
		if !ok || v.(int64) != i*10 {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get(intKey(1000)); ok {
		t.Fatal("Get of missing key should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New(4)
	tr.Insert(intKey(1), "a")
	if tr.Insert(intKey(1), "b") {
		t.Fatal("second insert of same key should replace, not add")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Get(intKey(1))
	if v.(string) != "b" {
		t.Fatalf("value = %v", v)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	tr := New(8)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(5000)
	for _, i := range perm {
		tr.Insert(intKey(int64(i)), i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ascend yields sorted order.
	var got []int64
	tr.Ascend(nil, func(k types.Row, v any) bool {
		got = append(got, k[0].Int())
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("ascend visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("ascend not sorted")
	}
}

func TestDescend(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 200; i++ {
		tr.Insert(intKey(i), nil)
	}
	var got []int64
	tr.Descend(nil, func(k types.Row, v any) bool {
		got = append(got, k[0].Int())
		return true
	})
	if len(got) != 200 {
		t.Fatalf("descend visited %d", len(got))
	}
	for i := range got {
		if got[i] != int64(199-i) {
			t.Fatalf("descend[%d] = %d", i, got[i])
		}
	}
}

func TestAscendFrom(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 100; i += 2 { // even keys only
		tr.Insert(intKey(i), nil)
	}
	var got []int64
	collect := func(k types.Row, v any) bool {
		got = append(got, k[0].Int())
		return len(got) < 5
	}
	tr.Ascend(intKey(50), collect) // exact match
	if got[0] != 50 || len(got) != 5 {
		t.Fatalf("from exact: %v", got)
	}
	got = nil
	tr.Ascend(intKey(51), collect) // between keys
	if got[0] != 52 {
		t.Fatalf("from gap: %v", got)
	}
	got = nil
	tr.Ascend(intKey(99), collect) // beyond all
	if len(got) != 0 {
		t.Fatalf("from beyond: %v", got)
	}
}

func TestDescendFrom(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 100; i += 2 {
		tr.Insert(intKey(i), nil)
	}
	var got []int64
	collect := func(k types.Row, v any) bool {
		got = append(got, k[0].Int())
		return len(got) < 5
	}
	tr.Descend(intKey(50), collect)
	if got[0] != 50 {
		t.Fatalf("from exact: %v", got)
	}
	got = nil
	tr.Descend(intKey(51), collect)
	if got[0] != 50 {
		t.Fatalf("from gap: %v", got)
	}
	got = nil
	tr.Descend(intKey(-1), collect)
	if len(got) != 0 {
		t.Fatalf("from below: %v", got)
	}
}

func TestRange(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 100; i++ {
		tr.Insert(intKey(i), nil)
	}
	var got []int64
	tr.Range(intKey(10), intKey(15), func(k types.Row, v any) bool {
		got = append(got, k[0].Int())
		return true
	})
	want := []int64{10, 11, 12, 13, 14, 15}
	if len(got) != len(want) {
		t.Fatalf("range: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range: %v", got)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 1000; i++ {
		tr.Insert(intKey(i), i)
	}
	// Delete every third key.
	for i := int64(0); i < 1000; i += 3 {
		if !tr.Delete(intKey(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(intKey(0)) {
		t.Fatal("double delete should return false")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		_, ok := tr.Get(intKey(i))
		if (i%3 == 0) == ok {
			t.Fatalf("Get(%d) after deletes = %v", i, ok)
		}
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 300; i++ {
		tr.Insert(intKey(i), nil)
	}
	for i := int64(0); i < 300; i++ {
		if !tr.Delete(intKey(i)) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		tr.Insert(intKey(i), nil)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.Ascend(nil, func(types.Row, any) bool { count++; return true })
	if count != 300 {
		t.Fatalf("reinserted count = %d", count)
	}
}

func TestCompositeKeys(t *testing.T) {
	// RecTree-style keys: (ratingval, itemID).
	tr := New(8)
	tr.Insert(types.Row{types.NewFloat(4.5), types.NewInt(10)}, nil)
	tr.Insert(types.Row{types.NewFloat(4.5), types.NewInt(3)}, nil)
	tr.Insert(types.Row{types.NewFloat(2.0), types.NewInt(99)}, nil)
	tr.Insert(types.Row{types.NewFloat(5.0), types.NewInt(1)}, nil)
	var got [][2]float64
	tr.Descend(nil, func(k types.Row, v any) bool {
		got = append(got, [2]float64{k[0].Float(), float64(k[1].Int())})
		return true
	})
	want := [][2]float64{{5, 1}, {4.5, 10}, {4.5, 3}, {2, 99}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descend order: %v", got)
		}
	}
}

func TestCompareRows(t *testing.T) {
	if CompareRows(intKey(1), intKey(2)) != -1 {
		t.Error("1 < 2")
	}
	if CompareRows(intKey(1), types.Row{types.NewInt(1), types.NewInt(0)}) != -1 {
		t.Error("prefix sorts first")
	}
	// Incomparable kinds fall back to kind ordering, never panic.
	if c := CompareRows(types.Row{types.NewInt(1)}, types.Row{types.NewText("a")}); c != -1 {
		t.Errorf("kind fallback: %d", c)
	}
}

func TestRandomOpsProperty(t *testing.T) {
	// Model-based check against a map.
	type op struct {
		Key    int16
		Val    int32
		Delete bool
	}
	f := func(ops []op) bool {
		tr := New(6)
		model := map[int64]int32{}
		for _, o := range ops {
			k := int64(o.Key)
			if o.Delete {
				_, inModel := model[k]
				if tr.Delete(intKey(k)) != inModel {
					return false
				}
				delete(model, k)
			} else {
				_, inModel := model[k]
				if tr.Insert(intKey(k), o.Val) != !inModel {
					return false
				}
				model[k] = o.Val
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		for k, v := range model {
			got, ok := tr.Get(intKey(k))
			if !ok || got.(int32) != v {
				return false
			}
		}
		// Ascend is sorted and complete.
		prev := int64(-1 << 62)
		count := 0
		okScan := true
		tr.Ascend(nil, func(key types.Row, _ any) bool {
			k := key[0].Int()
			if k <= prev {
				okScan = false
			}
			prev = k
			count++
			return true
		})
		return okScan && count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
