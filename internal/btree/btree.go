// Package btree implements an in-memory B+-tree over composite row keys.
// It backs two things: primary-key indexes on heap tables, and the per-user
// RecTrees inside the RecScoreIndex (Fig. 4 of the paper), whose leaves are
// scanned in descending predicted-rating order by the INDEXRECOMMEND
// operator (Algorithm 3).
//
// Deletion follows PostgreSQL's relaxed strategy: keys are removed from
// leaves, and a node is unlinked from its parent only when it becomes
// completely empty. The tree never rebalances on delete, which keeps the
// structure simple and is adequate for the batch admission/eviction pattern
// of the recommendation cache.
package btree

import (
	"fmt"
	"sort"

	"recdb/internal/types"
)

// CompareRows orders composite keys lexicographically. Values of different
// kinds that types.Compare refuses to order (e.g. TEXT vs BIGINT) fall back
// to ordering by kind, so the comparison is a total order over all rows.
func CompareRows(a, b types.Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		c, err := types.Compare(a[i], b[i])
		if err != nil {
			ka, kb := a[i].Kind(), b[i].Kind()
			switch {
			case ka < kb:
				return -1
			case ka > kb:
				return 1
			default:
				c = 0
			}
		}
		if c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

type node struct {
	// keys are sorted. For a leaf, vals[i] corresponds to keys[i]. For an
	// internal node, children[i] holds keys < keys[i], children[len(keys)]
	// holds the rest (children has len(keys)+1 entries).
	keys     []types.Row
	vals     []any
	children []*node
	next     *node // leaf chain, ascending
	prev     *node // leaf chain, descending
	leaf     bool
}

// Tree is a B+-tree from composite row keys to arbitrary values. Keys are
// unique; Insert on an existing key replaces its value. Tree is not safe
// for concurrent mutation; the engine serializes writers per index.
type Tree struct {
	root  *node
	order int // max keys per node
	size  int
}

// DefaultOrder is used when New is called with order < 4.
const DefaultOrder = 64

// New creates an empty tree. order is the maximum number of keys per node.
func New(order int) *Tree {
	if order < 4 {
		order = DefaultOrder
	}
	return &Tree{root: &node{leaf: true}, order: order}
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// searchNode returns the index of the first key >= k within n.
func searchNode(n *node, k types.Row) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return CompareRows(n.keys[i], k) >= 0
	})
}

func (t *Tree) findLeaf(k types.Row) *node {
	n := t.root
	for !n.leaf {
		i := searchNode(n, k)
		if i < len(n.keys) && CompareRows(n.keys[i], k) == 0 {
			i++ // equal separator keys route right
		}
		n = n.children[i]
	}
	return n
}

// Get returns the value stored at key k.
func (t *Tree) Get(k types.Row) (any, bool) {
	n := t.findLeaf(k)
	i := searchNode(n, k)
	if i < len(n.keys) && CompareRows(n.keys[i], k) == 0 {
		return n.vals[i], true
	}
	return nil, false
}

// Insert stores val at key k, replacing any previous value. It returns true
// when a new key was added (false on replacement).
func (t *Tree) Insert(k types.Row, val any) bool {
	key := k.Clone()
	added, split, sepKey, right := t.insert(t.root, key, val)
	if split {
		newRoot := &node{
			keys:     []types.Row{sepKey},
			children: []*node{t.root, right},
		}
		t.root = newRoot
	}
	if added {
		t.size++
	}
	return added
}

func (t *Tree) insert(n *node, k types.Row, val any) (added, split bool, sepKey types.Row, right *node) {
	if n.leaf {
		i := searchNode(n, k)
		if i < len(n.keys) && CompareRows(n.keys[i], k) == 0 {
			n.vals[i] = val
			return false, false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) > t.order {
			sep, r := t.splitLeaf(n)
			return true, true, sep, r
		}
		return true, false, nil, nil
	}
	i := searchNode(n, k)
	if i < len(n.keys) && CompareRows(n.keys[i], k) == 0 {
		i++
	}
	added, childSplit, childSep, childRight := t.insert(n.children[i], k, val)
	if childSplit {
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childSep
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childRight
		if len(n.keys) > t.order {
			sep, r := t.splitInternal(n)
			return added, true, sep, r
		}
	}
	return added, false, nil, nil
}

func (t *Tree) splitLeaf(n *node) (types.Row, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]types.Row(nil), n.keys[mid:]...),
		vals: append([]any(nil), n.vals[mid:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	right.next = n.next
	right.prev = n
	if n.next != nil {
		n.next.prev = right
	}
	n.next = right
	return right.keys[0].Clone(), right
}

func (t *Tree) splitInternal(n *node) (types.Row, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]types.Row(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key k. It returns false when the key was absent.
func (t *Tree) Delete(k types.Row) bool {
	removed := t.remove(t.root, k)
	if removed {
		t.size--
	}
	// Collapse a root that lost all its separators.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return removed
}

func (t *Tree) remove(n *node, k types.Row) bool {
	if n.leaf {
		i := searchNode(n, k)
		if i >= len(n.keys) || CompareRows(n.keys[i], k) != 0 {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := searchNode(n, k)
	if i < len(n.keys) && CompareRows(n.keys[i], k) == 0 {
		i++
	}
	child := n.children[i]
	removed := t.remove(child, k)
	if removed && t.emptyNode(child) {
		t.unlinkChild(n, i)
	}
	return removed
}

func (t *Tree) emptyNode(n *node) bool {
	if n.leaf {
		return len(n.keys) == 0
	}
	return len(n.children) == 0
}

func (t *Tree) unlinkChild(parent *node, i int) {
	child := parent.children[i]
	if child.leaf {
		if child.prev != nil {
			child.prev.next = child.next
		}
		if child.next != nil {
			child.next.prev = child.prev
		}
	}
	parent.children = append(parent.children[:i], parent.children[i+1:]...)
	switch {
	case len(parent.keys) == 0:
		// Parent had a single child; it is now empty and will be unlinked
		// by its own parent (or collapsed if it is the root).
	case i == len(parent.children):
		parent.keys = parent.keys[:len(parent.keys)-1]
	default:
		parent.keys = append(parent.keys[:maxInt(i-1, 0)], parent.keys[maxInt(i-1, 0)+1:]...)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (t *Tree) firstLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

func (t *Tree) lastLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	return n
}

// Ascend visits keys >= from in ascending order (all keys when from is
// nil), stopping when fn returns false.
func (t *Tree) Ascend(from types.Row, fn func(key types.Row, val any) bool) {
	var n *node
	var i int
	if from == nil {
		n = t.firstLeaf()
	} else {
		n = t.findLeaf(from)
		i = searchNode(n, from)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Descend visits keys <= from in descending order (all keys when from is
// nil), stopping when fn returns false. This is the access path of
// INDEXRECOMMEND: highest predicted rating first.
func (t *Tree) Descend(from types.Row, fn func(key types.Row, val any) bool) {
	var n *node
	var i int
	if from == nil {
		n = t.lastLeaf()
		i = len(n.keys) - 1
	} else {
		n = t.findLeaf(from)
		i = searchNode(n, from)
		if i >= len(n.keys) || CompareRows(n.keys[i], from) > 0 {
			i--
		}
	}
	for n != nil {
		for ; i >= 0; i-- {
			if i < len(n.keys) && !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.prev
		if n != nil {
			i = len(n.keys) - 1
		}
	}
}

// Range visits keys in [lo, hi] ascending; nil bounds are open.
func (t *Tree) Range(lo, hi types.Row, fn func(key types.Row, val any) bool) {
	t.Ascend(lo, func(k types.Row, v any) bool {
		if hi != nil && CompareRows(k, hi) > 0 {
			return false
		}
		return fn(k, v)
	})
}

// Validate checks structural invariants (sorted keys, key/child arity,
// leaf-chain consistency). Intended for tests.
func (t *Tree) Validate() error {
	count, err := t.validate(t.root, nil, nil)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d reachable keys", t.size, count)
	}
	return nil
}

func (t *Tree) validate(n *node, lo, hi types.Row) (int, error) {
	for i := 1; i < len(n.keys); i++ {
		if CompareRows(n.keys[i-1], n.keys[i]) >= 0 {
			return 0, fmt.Errorf("btree: keys out of order at %v", n.keys[i])
		}
	}
	for _, k := range n.keys {
		if lo != nil && CompareRows(k, lo) < 0 {
			return 0, fmt.Errorf("btree: key %v below lower bound %v", k, lo)
		}
		if hi != nil && CompareRows(k, hi) >= 0 {
			return 0, fmt.Errorf("btree: key %v above upper bound %v", k, hi)
		}
	}
	if n.leaf {
		if len(n.keys) != len(n.vals) {
			return 0, fmt.Errorf("btree: leaf arity mismatch")
		}
		return len(n.keys), nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, fmt.Errorf("btree: internal node with %d keys, %d children", len(n.keys), len(n.children))
	}
	total := 0
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		cnt, err := t.validate(c, clo, chi)
		if err != nil {
			return 0, err
		}
		total += cnt
	}
	return total, nil
}
