package btree

import (
	"testing"

	"recdb/internal/types"
)

func BenchmarkInsert(b *testing.B) {
	tr := New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(intKey(int64(i)), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New(0)
	const n = 100000
	for i := int64(0); i < n; i++ {
		tr.Insert(intKey(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(intKey(int64(i) % n))
	}
}

func BenchmarkDescendTop10(b *testing.B) {
	// The IndexRecommend access pattern: read the 10 highest keys.
	tr := New(0)
	for i := int64(0); i < 10000; i++ {
		tr.Insert(types.Row{types.NewFloat(float64(i) / 100), types.NewInt(i)}, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Descend(nil, func(types.Row, any) bool {
			count++
			return count < 10
		})
	}
}
