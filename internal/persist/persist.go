// Package persist implements crash-safe generational snapshots of a
// database. Save writes every user table (schema, rows, secondary
// indexes) plus every recommender definition into a fresh generation
// directory — each file via temp-file + fsync + rename + parent-dir
// fsync, with CRC32-C checksums and byte lengths recorded in a framed,
// self-checksummed manifest. Load picks the newest generation whose
// manifest and row files verify, falling back to the previous good
// generation when the newest is torn or corrupt. Model tables and the
// RecScoreIndex are derived state and are rebuilt rather than stored, so
// a snapshot stays small and can never serve a model inconsistent with
// its ratings.
//
// On-disk layout (DESIGN.md §8):
//
//	dir/
//	  gen-000001/            oldest retained generation
//	  gen-000002/            newest generation
//	    manifest.json        framed: "RDBM2 <crc32c> <len>\n" + JSON
//	    <table>.rows         "RDBR" + uvarint count + tuple encoding
//	  wal/                   write-ahead log (package wal)
//
// All I/O goes through a fault.FS, so the crash-simulation harness can
// fail, tear, or power-cut any individual operation deterministically.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strconv"
	"strings"

	"recdb/internal/catalog"
	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/types"
)

const (
	// manifestName is the snapshot's metadata file, one per generation.
	manifestName = "manifest.json"
	// manifestMagic heads the manifest frame; the trailing 2 is the
	// snapshot format version.
	manifestMagic = "RDBM2"
	// genPrefix names generation directories: gen-000001, gen-000002, ...
	genPrefix = "gen-"
	// keepGenerations is the default retention bound on full generations.
	// Two means the previous good snapshot always survives the next Save;
	// SaveRetainFS accepts a deeper bound.
	keepGenerations = 2
)

// castagnoli is the CRC32-C polynomial table used for every on-disk
// checksum in the snapshot and WAL formats.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot is returned by Load when dir holds no snapshot at all (as
// opposed to a corrupt one).
var ErrNoSnapshot = errors.New("persist: no snapshot found")

// CorruptError describes a snapshot file that failed validation. Load
// returns it (wrapped) only when no older generation could be loaded
// either; the path and reason make the failure actionable.
type CorruptError struct {
	Path   string
	Reason string
	Err    error
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("persist: %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("persist: %s: %s", e.Path, e.Reason)
}

// Unwrap implements errors.Unwrap.
func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(p, reason string, err error) error {
	return &CorruptError{Path: p, Reason: reason, Err: err}
}

type manifest struct {
	Version      int               `json:"version"`
	Tables       []tableMeta       `json:"tables"`
	Recommenders []recommenderMeta `json:"recommenders"`
	// WALSeq is the write-ahead-log high-water mark at snapshot time:
	// WAL records with sequence numbers <= WALSeq are already reflected
	// in this generation's rows and must not be replayed over it.
	WALSeq uint64 `json:"wal_seq"`
}

type tableMeta struct {
	Name     string       `json:"name"`
	Columns  []columnMeta `json:"columns"`
	PKCol    int          `json:"pk_col"`
	Indexes  []indexMeta  `json:"indexes,omitempty"`
	RowsFile string       `json:"rows_file"`
	RowCount int64        `json:"row_count"`
	// RowsCRC and RowsSize checksum the complete row file (header
	// included); Load verifies both before decoding a single tuple.
	RowsCRC  uint32 `json:"rows_crc32c"`
	RowsSize int64  `json:"rows_size"`
}

type columnMeta struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
}

type indexMeta struct {
	Name   string `json:"name"`
	Column string `json:"column"`
}

type recommenderMeta struct {
	Name      string `json:"name"`
	Table     string `json:"table"`
	UserCol   string `json:"user_col"`
	ItemCol   string `json:"item_col"`
	RatingCol string `json:"rating_col"`
	Algorithm string `json:"algorithm"`
}

// isDerivedTable reports whether a table is engine-managed state that a
// snapshot must not carry (model tables, the OnTopDB scratch table).
func isDerivedTable(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "_rec_") || strings.HasPrefix(lower, "_ontop_")
}

// genName renders a generation id as its directory name.
func genName(gen uint64) string { return fmt.Sprintf("%s%06d", genPrefix, gen) }

// parseGen extracts the id from a generation directory name.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(name, genPrefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listGenerations returns the generation ids present in dir, ascending.
func listGenerations(fs fault.FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		if fault.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: %w", err)
	}
	var gens []uint64
	for _, name := range names {
		if g, ok := parseGen(name); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Save snapshots the engine's user tables and recommender definitions
// into a fresh generation under dir (created if missing), through the
// real filesystem.
func Save(e *engine.Engine, dir string) error {
	_, err := SaveFS(fault.OS, e, dir, 0)
	return err
}

// SaveFS is Save over an explicit filesystem. walSeq is recorded in the
// manifest as the WAL high-water mark already reflected in this
// snapshot's rows. It returns the new generation's id.
//
// Durability protocol: every row file is written to a temp name, fsynced,
// renamed into place, and the generation directory fsynced; the manifest
// is written the same way, last — a generation without a valid manifest
// does not exist. Older generations beyond keepGenerations (and any
// legacy flat-layout snapshot files) are pruned only after the new
// generation is fully durable.
func SaveFS(fs fault.FS, e *engine.Engine, dir string, walSeq uint64) (uint64, error) {
	return SaveRetainFS(fs, e, dir, walSeq, 0)
}

// SaveRetainFS is SaveFS with an explicit retention bound: after the new
// generation is durable, at most retain generations (including the new
// one) are kept on disk. retain < 1 selects the default of 2; deeper
// retention trades disk space for more fallback history when recovering
// past corrupt generations.
func SaveRetainFS(fs fault.FS, e *engine.Engine, dir string, walSeq uint64, retain int) (uint64, error) {
	if retain < 1 {
		retain = keepGenerations
	}
	if err := fs.MkdirAll(dir); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	gens, err := listGenerations(fs, dir)
	if err != nil {
		return 0, err
	}
	var gen uint64 = 1
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	genDir := path.Join(dir, genName(gen))
	if err := fs.MkdirAll(genDir); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}

	m := manifest{Version: 2, WALSeq: walSeq}
	for _, name := range e.Catalog().Names() {
		if isDerivedTable(name) {
			continue
		}
		tab, err := e.Catalog().Get(name)
		if err != nil {
			return 0, err
		}
		tm := tableMeta{
			Name:     tab.Name,
			PKCol:    tab.PKCol,
			RowsFile: safeFileName(tab.Name) + ".rows",
		}
		for _, c := range tab.Schema.Columns {
			tm.Columns = append(tm.Columns, columnMeta{Name: c.Name, Kind: uint8(c.Kind)})
		}
		pkName := ""
		if tab.PKCol >= 0 {
			pkName = strings.ToLower(tab.Schema.Columns[tab.PKCol].Name)
		}
		for _, idx := range tab.Indexes() {
			col := tab.Schema.Columns[idx.Column].Name
			if strings.ToLower(col) == pkName {
				continue // recreated implicitly with the table
			}
			tm.Indexes = append(tm.Indexes, indexMeta{Name: idx.Name, Column: col})
		}
		n, crc, size, err := writeRows(fs, path.Join(genDir, tm.RowsFile), tab)
		if err != nil {
			return 0, err
		}
		tm.RowCount, tm.RowsCRC, tm.RowsSize = n, crc, size
		m.Tables = append(m.Tables, tm)
	}

	for _, r := range e.Recommenders().List() {
		m.Recommenders = append(m.Recommenders, recommenderMeta{
			Name: r.Name, Table: r.Table,
			UserCol: r.UserCol, ItemCol: r.ItemCol, RatingCol: r.RatingCol,
			Algorithm: r.Algo.String(),
		})
	}
	sort.Slice(m.Recommenders, func(i, j int) bool {
		return m.Recommenders[i].Name < m.Recommenders[j].Name
	})

	if err := writeManifest(fs, genDir, &m); err != nil {
		return 0, err
	}
	// The new generation's directory entry must be durable in dir before
	// pruning anything older.
	if err := fs.SyncDir(dir); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	pruneGenerations(fs, dir, gens, retain)
	return gen, nil
}

// pruneGenerations best-effort removes generations beyond the retention
// bound and any legacy flat-layout snapshot files. The new generation is
// already durable, so a pruning failure costs disk space, not safety.
func pruneGenerations(fs fault.FS, dir string, oldGens []uint64, retain int) {
	for len(oldGens) >= retain {
		// Keep the newest retain-1 old ones plus the new one.
		_ = fs.RemoveAll(path.Join(dir, genName(oldGens[0]))) // best-effort prune
		oldGens = oldGens[1:]
	}
	// Legacy flat layout: a pre-generational manifest.json and .rows files
	// directly in dir. The generational snapshot supersedes them, and
	// leaving them would resurrect long-dropped tables if every
	// generation were ever lost.
	names, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if name == manifestName || strings.HasSuffix(name, ".rows") || strings.HasSuffix(name, ".tmp") {
			_ = fs.Remove(path.Join(dir, name)) // best-effort prune
		}
	}
}

// writeManifest marshals, frames, and durably writes a generation's
// manifest: temp file, fsync, rename, directory fsync.
func writeManifest(fs fault.FS, genDir string, m *manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	framed := frameManifest(blob)
	final := path.Join(genDir, manifestName)
	if err := writeFileDurable(fs, final, framed); err != nil {
		return err
	}
	return nil
}

// frameManifest prefixes the manifest JSON with a header line carrying
// its CRC32-C and byte length, so any single-byte corruption — in the
// JSON or the header itself — is detected before the payload is trusted.
func frameManifest(blob []byte) []byte {
	header := fmt.Sprintf("%s %08x %d\n", manifestMagic, crc32.Checksum(blob, castagnoli), len(blob))
	return append([]byte(header), blob...)
}

// parseManifest validates the frame and returns the JSON payload.
func parseManifest(p string, framed []byte) ([]byte, error) {
	nl := -1
	for i, b := range framed {
		if b == '\n' {
			nl = i
			break
		}
		if i > 64 {
			break
		}
	}
	if nl < 0 {
		return nil, corrupt(p, "manifest header line missing", nil)
	}
	fields := strings.Fields(string(framed[:nl]))
	if len(fields) != 3 || fields[0] != manifestMagic {
		return nil, corrupt(p, "not a snapshot manifest", nil)
	}
	wantCRC, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, corrupt(p, "bad manifest checksum field", err)
	}
	wantLen, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return nil, corrupt(p, "bad manifest length field", err)
	}
	// The header must be the exact canonical rendering, or corruption that
	// happens to parse to the same values (e.g. a hex digit flipped to its
	// other case) would slip through undetected.
	if canon := fmt.Sprintf("%s %08x %d", manifestMagic, wantCRC, wantLen); string(framed[:nl]) != canon {
		return nil, corrupt(p, "non-canonical manifest header", nil)
	}
	blob := framed[nl+1:]
	if int64(len(blob)) != wantLen {
		return nil, corrupt(p, fmt.Sprintf("manifest is %d bytes, header says %d", len(blob), wantLen), nil)
	}
	if got := crc32.Checksum(blob, castagnoli); uint32(wantCRC) != got {
		return nil, corrupt(p, fmt.Sprintf("manifest checksum mismatch (%08x != %08x)", got, wantCRC), nil)
	}
	return blob, nil
}

// writeFileDurable writes data to path via temp-file + fsync + rename +
// parent-directory fsync. The deferred close joins its error into the
// named return so a failed flush on close is never silently dropped.
func writeFileDurable(fs fault.FS, p string, data []byte) (err error) {
	tmp := p + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	closed := false
	defer func() {
		if !closed {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("persist: close %s: %w", tmp, cerr)
			}
		}
	}()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("persist: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persist: sync %s: %w", tmp, err)
	}
	closed = true
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, p); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := fs.SyncDir(path.Dir(p)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

func safeFileName(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Row file format: magic "RDBR", uvarint row count, then each row in the
// self-describing tuple encoding. The whole file (header included) is
// covered by the CRC32-C recorded in the manifest.
var rowsMagic = []byte("RDBR")

// writeRows durably writes one table's row file and returns the row
// count, whole-file CRC32-C, and byte size. The deferred close joins its
// error into the named return: on a write path, a close error is a lost
// flush, not a cleanup detail.
func writeRows(fs fault.FS, p string, tab *catalog.Table) (n int64, crc uint32, size int64, err error) {
	tmp := p + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("persist: %w", err)
	}
	closed := false
	defer func() {
		if !closed {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("persist: close %s: %w", tmp, cerr)
			}
		}
	}()
	h := crc32.New(castagnoli)
	write := func(b []byte) error {
		if _, werr := f.Write(b); werr != nil {
			return fmt.Errorf("persist: write %s: %w", tmp, werr)
		}
		_, _ = h.Write(b) // hash.Hash.Write never fails
		size += int64(len(b))
		return nil
	}
	if err := write(rowsMagic); err != nil {
		return n, 0, 0, err
	}
	if err := write(binary.AppendUvarint(nil, uint64(tab.Heap.NumRows()))); err != nil {
		return n, 0, 0, err
	}
	buf := make([]byte, 0, 512)
	it := tab.Heap.Scan()
	defer it.Close()
	for {
		row, _, ok, iterErr := it.Next()
		if iterErr != nil {
			return n, 0, 0, iterErr
		}
		if !ok {
			break
		}
		buf = types.EncodeRow(buf[:0], row)
		if err := write(buf); err != nil {
			return n, 0, 0, err
		}
		n++
	}
	if n != tab.Heap.NumRows() {
		return n, 0, 0, fmt.Errorf("persist: table %q row count changed during snapshot", tab.Name)
	}
	if err := f.Sync(); err != nil {
		return n, 0, 0, fmt.Errorf("persist: sync %s: %w", tmp, err)
	}
	closed = true
	if err := f.Close(); err != nil {
		return n, 0, 0, fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, p); err != nil {
		return n, 0, 0, fmt.Errorf("persist: %w", err)
	}
	if err := fs.SyncDir(path.Dir(p)); err != nil {
		return n, 0, 0, fmt.Errorf("persist: %w", err)
	}
	return n, h.Sum32(), size, nil
}

// readRows streams the rows of one row file into fn, validating the
// declared row count against the file size before decoding: a corrupt
// header must never drive a huge allocation or an unbounded loop. Each
// row is at least one encoded byte, so count can never exceed the bytes
// remaining after the header.
func readRows(fs fault.FS, p string, fn func(types.Row) error) error {
	blob, err := fs.ReadFile(p)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return decodeRows(p, blob, fn)
}

func decodeRows(p string, blob []byte, fn func(types.Row) error) error {
	if len(blob) < len(rowsMagic) || string(blob[:len(rowsMagic)]) != string(rowsMagic) {
		return corrupt(p, "not a snapshot row file", nil)
	}
	rest := blob[len(rowsMagic):]
	count, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return corrupt(p, "corrupt row-count header", nil)
	}
	rest = rest[sz:]
	if count > uint64(len(rest)) {
		return corrupt(p, fmt.Sprintf("header declares %d rows but only %d bytes follow", count, len(rest)), nil)
	}
	for i := uint64(0); i < count; i++ {
		row, n, err := types.DecodeRow(rest)
		if err != nil {
			return corrupt(p, fmt.Sprintf("row %d", i), err)
		}
		rest = rest[n:]
		if err := fn(row); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return corrupt(p, fmt.Sprintf("%d trailing bytes", len(rest)), nil)
	}
	return nil
}

// Info reports what Load actually recovered.
type Info struct {
	// Gen is the generation that was loaded (0 for a legacy flat-layout
	// snapshot).
	Gen uint64
	// WALSeq is the manifest's WAL high-water mark: replay must skip
	// records with sequence numbers <= WALSeq.
	WALSeq uint64
	// Skipped records newer generations that failed validation and were
	// passed over; empty on a clean load.
	Skipped []error
}

// Load reconstructs a database from a snapshot directory through the real
// filesystem, using cfg for the new engine.
func Load(dir string, cfg engine.Config) (*engine.Engine, error) {
	e, _, err := LoadFS(fault.OS, dir, cfg)
	return e, err
}

// LoadFS reconstructs a database from the newest generation in dir whose
// manifest and row files pass checksum validation, falling back to older
// generations when the newest is torn or corrupt. Secondary indexes are
// rebuilt from the loaded rows and recommender models are retrained from
// their ratings tables. With no generations present it falls back to the
// legacy flat layout, and reports ErrNoSnapshot when dir holds neither.
func LoadFS(fs fault.FS, dir string, cfg engine.Config) (*engine.Engine, *Info, error) {
	gens, err := listGenerations(fs, dir)
	if err != nil {
		return nil, nil, err
	}
	var skipped []error
	for i := len(gens) - 1; i >= 0; i-- {
		genDir := path.Join(dir, genName(gens[i]))
		e, walSeq, err := loadGeneration(fs, genDir, cfg)
		if err == nil {
			return e, &Info{Gen: gens[i], WALSeq: walSeq, Skipped: skipped}, nil
		}
		skipped = append(skipped, err)
	}
	if len(skipped) > 0 {
		return nil, nil, fmt.Errorf("persist: no loadable generation in %s: %w", dir, errors.Join(skipped...))
	}
	// Legacy flat layout: manifest.json directly in dir.
	if _, err := fs.Stat(path.Join(dir, manifestName)); err == nil {
		e, err := loadLegacy(fs, dir, cfg)
		if err != nil {
			return nil, nil, err
		}
		return e, &Info{}, nil
	}
	return nil, nil, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
}

// loadGeneration loads one generation directory, verifying every
// checksum before trusting a byte of payload.
func loadGeneration(fs fault.FS, genDir string, cfg engine.Config) (*engine.Engine, uint64, error) {
	manifestPath := path.Join(genDir, manifestName)
	framed, err := fs.ReadFile(manifestPath)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %w", err)
	}
	blob, err := parseManifest(manifestPath, framed)
	if err != nil {
		return nil, 0, err
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, 0, corrupt(manifestPath, "bad manifest JSON", err)
	}
	if m.Version != 2 {
		return nil, 0, corrupt(manifestPath, fmt.Sprintf("unsupported snapshot version %d", m.Version), nil)
	}
	e, err := buildEngine(fs, genDir, &m, cfg, true)
	if err != nil {
		return nil, 0, err
	}
	return e, m.WALSeq, nil
}

// loadLegacy loads a pre-generational (version 1) snapshot: plain JSON
// manifest, no checksums. Row decoding still runs the hardened
// validation path.
func loadLegacy(fs fault.FS, dir string, cfg engine.Config) (*engine.Engine, error) {
	manifestPath := path.Join(dir, manifestName)
	blob, err := fs.ReadFile(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, corrupt(manifestPath, "bad manifest JSON", err)
	}
	if m.Version != 1 {
		return nil, corrupt(manifestPath, fmt.Sprintf("unsupported snapshot version %d", m.Version), nil)
	}
	return buildEngine(fs, dir, &m, cfg, false)
}

// buildEngine reconstructs an engine from a parsed manifest. When
// verify is set, each row file's size and CRC32-C are checked against
// the manifest before any tuple is decoded.
func buildEngine(fs fault.FS, dir string, m *manifest, cfg engine.Config, verify bool) (*engine.Engine, error) {
	e := engine.New(cfg)
	for _, tm := range m.Tables {
		cols := make([]types.Column, len(tm.Columns))
		for i, c := range tm.Columns {
			cols[i] = types.Column{Name: c.Name, Kind: types.Kind(c.Kind)}
		}
		tab, err := e.Catalog().CreateTable(tm.Name, types.NewSchema(cols...), tm.PKCol)
		if err != nil {
			return nil, err
		}
		rowsPath := path.Join(dir, tm.RowsFile)
		var loaded int64
		load := func(row types.Row) error {
			if _, err := tab.Insert(row); err != nil {
				return err
			}
			loaded++
			return nil
		}
		if verify {
			blob, err := fs.ReadFile(rowsPath)
			if err != nil {
				return nil, fmt.Errorf("persist: %w", err)
			}
			if int64(len(blob)) != tm.RowsSize {
				return nil, corrupt(rowsPath, fmt.Sprintf("file is %d bytes, manifest says %d", len(blob), tm.RowsSize), nil)
			}
			if got := crc32.Checksum(blob, castagnoli); got != tm.RowsCRC {
				return nil, corrupt(rowsPath, fmt.Sprintf("checksum mismatch (%08x != %08x)", got, tm.RowsCRC), nil)
			}
			if err := decodeRows(rowsPath, blob, load); err != nil {
				return nil, err
			}
		} else {
			if err := readRows(fs, rowsPath, load); err != nil {
				return nil, err
			}
		}
		if loaded != tm.RowCount {
			return nil, corrupt(rowsPath, fmt.Sprintf("has %d rows, manifest says %d", loaded, tm.RowCount), nil)
		}
		for _, im := range tm.Indexes {
			if _, err := tab.CreateIndex(im.Name, im.Column); err != nil {
				return nil, err
			}
		}
	}
	for _, rm := range m.Recommenders {
		stmt := fmt.Sprintf(
			`CREATE RECOMMENDER %s ON %s USERS FROM %s ITEMS FROM %s RATINGS FROM %s USING %s`,
			rm.Name, rm.Table, rm.UserCol, rm.ItemCol, rm.RatingCol, rm.Algorithm)
		if _, err := e.Exec(stmt); err != nil {
			return nil, fmt.Errorf("persist: rebuilding recommender %q: %w", rm.Name, err)
		}
	}
	return e, nil
}
