// Package persist implements durable snapshots of a database: Save writes
// every user table (schema, rows, secondary indexes) plus every
// recommender definition to a directory; Load reconstructs the database,
// rebuilding indexes and recommendation models. Model tables and the
// RecScoreIndex are derived state and are rebuilt rather than stored, so a
// snapshot stays small and can never serve a model inconsistent with its
// ratings.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"recdb/internal/catalog"
	"recdb/internal/engine"
	"recdb/internal/types"
)

// manifestName is the snapshot's metadata file.
const manifestName = "manifest.json"

type manifest struct {
	Version      int               `json:"version"`
	Tables       []tableMeta       `json:"tables"`
	Recommenders []recommenderMeta `json:"recommenders"`
}

type tableMeta struct {
	Name     string       `json:"name"`
	Columns  []columnMeta `json:"columns"`
	PKCol    int          `json:"pk_col"`
	Indexes  []indexMeta  `json:"indexes,omitempty"`
	RowsFile string       `json:"rows_file"`
	RowCount int64        `json:"row_count"`
}

type columnMeta struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
}

type indexMeta struct {
	Name   string `json:"name"`
	Column string `json:"column"`
}

type recommenderMeta struct {
	Name      string `json:"name"`
	Table     string `json:"table"`
	UserCol   string `json:"user_col"`
	ItemCol   string `json:"item_col"`
	RatingCol string `json:"rating_col"`
	Algorithm string `json:"algorithm"`
}

// isDerivedTable reports whether a table is engine-managed state that a
// snapshot must not carry (model tables, the OnTopDB scratch table).
func isDerivedTable(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "_rec_") || strings.HasPrefix(lower, "_ontop_")
}

// Save snapshots the engine's user tables and recommender definitions into
// dir (created if missing). Existing snapshot files in dir are
// overwritten.
func Save(e *engine.Engine, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	var m manifest
	m.Version = 1

	for _, name := range e.Catalog().Names() {
		if isDerivedTable(name) {
			continue
		}
		tab, err := e.Catalog().Get(name)
		if err != nil {
			return err
		}
		tm := tableMeta{
			Name:     tab.Name,
			PKCol:    tab.PKCol,
			RowsFile: safeFileName(tab.Name) + ".rows",
		}
		for _, c := range tab.Schema.Columns {
			tm.Columns = append(tm.Columns, columnMeta{Name: c.Name, Kind: uint8(c.Kind)})
		}
		pkName := ""
		if tab.PKCol >= 0 {
			pkName = strings.ToLower(tab.Schema.Columns[tab.PKCol].Name)
		}
		for _, idx := range tab.Indexes() {
			col := tab.Schema.Columns[idx.Column].Name
			if strings.ToLower(col) == pkName {
				continue // recreated implicitly with the table
			}
			tm.Indexes = append(tm.Indexes, indexMeta{Name: idx.Name, Column: col})
		}
		n, err := writeRows(filepath.Join(dir, tm.RowsFile), tab)
		if err != nil {
			return err
		}
		tm.RowCount = n
		m.Tables = append(m.Tables, tm)
	}

	for _, r := range e.Recommenders().List() {
		m.Recommenders = append(m.Recommenders, recommenderMeta{
			Name: r.Name, Table: r.Table,
			UserCol: r.UserCol, ItemCol: r.ItemCol, RatingCol: r.RatingCol,
			Algorithm: r.Algo.String(),
		})
	}

	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

func safeFileName(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Row file format: magic "RDBR", uvarint row count, then each row in the
// self-describing tuple encoding.
var rowsMagic = []byte("RDBR")

func writeRows(path string, tab *catalog.Table) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(rowsMagic); err != nil {
		return 0, err
	}
	countBuf := binary.AppendUvarint(nil, uint64(tab.Heap.NumRows()))
	if _, err := f.Write(countBuf); err != nil {
		return 0, err
	}
	var n int64
	buf := make([]byte, 0, 512)
	it := tab.Heap.Scan()
	defer it.Close()
	for {
		row, _, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		buf = types.EncodeRow(buf[:0], row)
		if _, err := f.Write(buf); err != nil {
			return n, err
		}
		n++
	}
	if n != tab.Heap.NumRows() {
		return n, fmt.Errorf("persist: table %q row count changed during snapshot", tab.Name)
	}
	return n, f.Sync()
}

func readRows(path string, fn func(types.Row) error) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if len(blob) < len(rowsMagic) || string(blob[:len(rowsMagic)]) != string(rowsMagic) {
		return fmt.Errorf("persist: %s is not a snapshot row file", path)
	}
	rest := blob[len(rowsMagic):]
	count, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return fmt.Errorf("persist: %s has a corrupt header", path)
	}
	rest = rest[sz:]
	for i := uint64(0); i < count; i++ {
		row, n, err := types.DecodeRow(rest)
		if err != nil {
			return fmt.Errorf("persist: %s row %d: %w", path, i, err)
		}
		rest = rest[n:]
		if err := fn(row); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("persist: %s has %d trailing bytes", path, len(rest))
	}
	return nil
}

// Load reconstructs a database from a snapshot directory, using cfg for
// the new engine. Secondary indexes are rebuilt from the loaded rows and
// recommender models are retrained from their ratings tables.
func Load(dir string, cfg engine.Config) (*engine.Engine, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("persist: bad manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d", m.Version)
	}
	e := engine.New(cfg)
	for _, tm := range m.Tables {
		cols := make([]types.Column, len(tm.Columns))
		for i, c := range tm.Columns {
			cols[i] = types.Column{Name: c.Name, Kind: types.Kind(c.Kind)}
		}
		tab, err := e.Catalog().CreateTable(tm.Name, types.NewSchema(cols...), tm.PKCol)
		if err != nil {
			return nil, err
		}
		var loaded int64
		err = readRows(filepath.Join(dir, tm.RowsFile), func(row types.Row) error {
			if _, err := tab.Insert(row); err != nil {
				return err
			}
			loaded++
			return nil
		})
		if err != nil {
			return nil, err
		}
		if loaded != tm.RowCount {
			return nil, fmt.Errorf("persist: table %q has %d rows, manifest says %d", tm.Name, loaded, tm.RowCount)
		}
		for _, im := range tm.Indexes {
			if _, err := tab.CreateIndex(im.Name, im.Column); err != nil {
				return nil, err
			}
		}
	}
	for _, rm := range m.Recommenders {
		stmt := fmt.Sprintf(
			`CREATE RECOMMENDER %s ON %s USERS FROM %s ITEMS FROM %s RATINGS FROM %s USING %s`,
			rm.Name, rm.Table, rm.UserCol, rm.ItemCol, rm.RatingCol, rm.Algorithm)
		if _, err := e.Exec(stmt); err != nil {
			return nil, fmt.Errorf("persist: rebuilding recommender %q: %w", rm.Name, err)
		}
	}
	return e, nil
}
