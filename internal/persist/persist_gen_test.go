package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/types"
)

func countRows(t *testing.T, e *engine.Engine, table string) int {
	t.Helper()
	res, err := e.Query("SELECT * FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

func TestGenerationFallback(t *testing.T) {
	fs := fault.NewMemFS()
	src := buildSource(t)
	gen1, err := SaveFS(fs, src, "db", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Exec("INSERT INTO users VALUES (9, 'Niner', 9)"); err != nil {
		t.Fatal(err)
	}
	gen2, err := SaveFS(fs, src, "db", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gen1 != 1 || gen2 != 2 {
		t.Fatalf("generations = %d, %d", gen1, gen2)
	}

	// Clean load picks the newest generation.
	dst, info, err := LoadFS(fs, "db", engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 || len(info.Skipped) != 0 {
		t.Fatalf("info = %+v", info)
	}
	if got := countRows(t, dst, "users"); got != 4 {
		t.Fatalf("users after clean load: %d", got)
	}

	// Corrupt one byte of the newest generation's manifest: Load falls
	// back to generation 1 and reports the skip.
	if err := fs.Corrupt("db/"+genName(2)+"/"+manifestName, 40, 0x01); err != nil {
		t.Fatal(err)
	}
	dst, info, err = LoadFS(fs, "db", engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || len(info.Skipped) != 1 {
		t.Fatalf("fallback info = %+v", info)
	}
	if got := countRows(t, dst, "users"); got != 3 {
		t.Fatalf("users after fallback load: %d", got)
	}
	var ce *CorruptError
	if !errors.As(info.Skipped[0], &ce) {
		t.Fatalf("skipped error is %T, want *CorruptError", info.Skipped[0])
	}
}

func TestGenerationPruning(t *testing.T) {
	fs := fault.NewMemFS()
	src := buildSource(t)
	for i := 0; i < 4; i++ {
		if _, err := SaveFS(fs, src, "db", 0); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := listGenerations(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != keepGenerations {
		t.Fatalf("retained %d generations, want %d (%v)", len(gens), keepGenerations, gens)
	}
	if gens[len(gens)-1] != 4 {
		t.Fatalf("newest generation = %d, want 4", gens[len(gens)-1])
	}
}

func TestDroppedTableLeavesNoOrphans(t *testing.T) {
	fs := fault.NewMemFS()
	src := buildSource(t)
	if _, err := SaveFS(fs, src, "db", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Exec("DROP TABLE pois"); err != nil {
		t.Fatal(err)
	}
	gen, err := SaveFS(fs, src, "db", 0)
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("db/" + genName(gen))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if strings.Contains(name, "pois") {
			t.Fatalf("dropped table left %s in generation %d", name, gen)
		}
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("temp file %s left in generation %d", name, gen)
		}
	}
	dst, _, err := LoadFS(fs, "db", engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dst.Catalog().Has("pois") {
		t.Fatal("dropped table resurrected by load")
	}
}

func TestRowCountHeaderValidation(t *testing.T) {
	// A corrupt header declaring 2^40 rows must produce a clean error,
	// not a huge allocation or an unbounded decode loop.
	blob := append([]byte("RDBR"), binary.AppendUvarint(nil, 1<<40)...)
	err := decodeRows("bogus.rows", blob, func(types.Row) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if !strings.Contains(err.Error(), "declares") {
		t.Fatalf("err = %v, want row-count mismatch", err)
	}
}

// closeFailFS makes every writable file's Close fail, to pin down the
// write path's close-error join: a close error on a snapshot file is a
// lost flush and must fail the Save.
type closeFailFS struct {
	fault.FS
}

func (c closeFailFS) Create(path string) (fault.File, error) {
	f, err := c.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return closeFailFile{f}, nil
}

type closeFailFile struct {
	fault.File
}

func (f closeFailFile) Close() error {
	_ = f.File.Close()
	return fmt.Errorf("injected close failure")
}

func TestWriteRowsCloseErrorPropagates(t *testing.T) {
	fs := closeFailFS{fault.NewMemFS()}
	src := buildSource(t)
	_, err := SaveFS(fs, src, "db", 0)
	if err == nil || !strings.Contains(err.Error(), "injected close failure") {
		t.Fatalf("Save with failing close: err = %v", err)
	}
}

func TestLegacyV1Load(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	intKind, err := types.KindFromName("INT")
	if err != nil {
		t.Fatal(err)
	}
	textKind, err := types.KindFromName("TEXT")
	if err != nil {
		t.Fatal(err)
	}
	rows := []types.Row{
		{types.NewInt(1), types.NewText("a")},
		{types.NewInt(2), types.NewText("b")},
	}
	blob := append([]byte(nil), rowsMagic...)
	blob = append(blob, binary.AppendUvarint(nil, uint64(len(rows)))...)
	for _, r := range rows {
		blob = types.EncodeRow(blob, r)
	}
	f, err := fs.Create("db/users.rows")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(blob); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m := manifest{Version: 1, Tables: []tableMeta{{
		Name:     "users",
		Columns:  []columnMeta{{Name: "uid", Kind: uint8(intKind)}, {Name: "name", Kind: uint8(textKind)}},
		PKCol:    0,
		RowsFile: "users.rows",
		RowCount: 2,
	}}}
	mblob, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := fs.Create("db/" + manifestName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.Write(mblob); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}

	dst, info, err := LoadFS(fs, "db", engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 0 {
		t.Fatalf("legacy load reported generation %d", info.Gen)
	}
	if got := countRows(t, dst, "users"); got != 2 {
		t.Fatalf("legacy rows: %d", got)
	}
}

func TestLoadFSNoSnapshot(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.MkdirAll("empty"); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadFS(fs, "empty", engine.Config{})
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	_, _, err = LoadFS(fs, "missing", engine.Config{})
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing dir err = %v, want ErrNoSnapshot", err)
	}
}
