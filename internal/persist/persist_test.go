package persist

import (
	"os"
	"path/filepath"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/rec"
)

func buildSource(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE users (uid INT PRIMARY KEY, name TEXT, age INT);
		CREATE TABLE pois (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY);
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		CREATE INDEX ratings_uid ON ratings (uid);
		CREATE INDEX pois_geom ON pois (geom);
		INSERT INTO users VALUES (1, 'Alice', 18), (2, 'Bob', 27), (3, 'Carol', 45);
		INSERT INTO pois VALUES (1, 'near', 'POINT(1 1)'), (2, 'far', 'POINT(9 9)');
		INSERT INTO ratings VALUES
			(1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5), (2, 3, 2),
			(3, 2, 1), (3, 1, 2), (4, 2, NULL);
		CREATE RECOMMENDER SavedRec ON ratings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildSource(t)
	dir := t.TempDir()
	if err := Save(src, dir); err != nil {
		t.Fatal(err)
	}

	dst, err := Load(dir, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Tables and rows round trip, including NULLs and geometry.
	for _, q := range []string{
		"SELECT * FROM users ORDER BY uid",
		"SELECT * FROM pois ORDER BY vid",
		"SELECT * FROM ratings ORDER BY uid, iid",
	} {
		a, err := src.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			if a.Rows[i].String() != b.Rows[i].String() {
				t.Fatalf("%s row %d: %v vs %v", q, i, a.Rows[i], b.Rows[i])
			}
		}
	}

	// Primary keys are enforced after load.
	if _, err := dst.Exec("INSERT INTO users VALUES (1, 'Dup', 1)"); err == nil {
		t.Fatal("pk enforcement lost after load")
	}
	// Secondary index exists again.
	tab, _ := dst.Catalog().Get("ratings")
	if _, ok := tab.IndexOn("uid"); !ok {
		t.Fatal("secondary index not rebuilt")
	}
	// The spatial index is rebuilt as an R-tree.
	pois, _ := dst.Catalog().Get("pois")
	gidx, ok := pois.IndexOn("geom")
	if !ok || gidx.Spatial == nil {
		t.Fatal("spatial index not rebuilt")
	}
	if gidx.Spatial.Len() != 2 {
		t.Fatalf("spatial entries: %d", gidx.Spatial.Len())
	}

	// The recommender was rebuilt and answers queries identically.
	qa, err := src.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC, R.iid ASC`)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := dst.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC, R.iid ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qa.Rows) != len(qb.Rows) {
		t.Fatalf("recommendation rows: %d vs %d", len(qa.Rows), len(qb.Rows))
	}
	for i := range qa.Rows {
		if qa.Rows[i].String() != qb.Rows[i].String() {
			t.Fatalf("recommendation row %d: %v vs %v", i, qa.Rows[i], qb.Rows[i])
		}
	}
}

func TestSaveSkipsDerivedTables(t *testing.T) {
	src := buildSource(t)
	dir := t.TempDir()
	if err := Save(src, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if isDerivedTable(e.Name()) {
			t.Fatalf("derived state leaked into snapshot: %s", e.Name())
		}
	}
	dst, err := Load(dir, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The model tables exist in the loaded engine (rebuilt), not loaded.
	if !dst.Catalog().Has("_rec_savedrec_uservector") {
		t.Fatal("model tables should be rebuilt on load")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir(), engine.Config{}); err == nil {
		t.Fatal("empty dir should fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("{nope"), 0o644)
	if _, err := Load(dir, engine.Config{}); err == nil {
		t.Fatal("corrupt manifest should fail")
	}
	os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version": 99}`), 0o644)
	if _, err := Load(dir, engine.Config{}); err == nil {
		t.Fatal("unknown version should fail")
	}
}

func TestCorruptRowsFile(t *testing.T) {
	src := buildSource(t)
	dir := t.TempDir()
	if err := Save(src, dir); err != nil {
		t.Fatal(err)
	}
	// Truncate one row file (inside the single generation, so Load has no
	// older generation to fall back to).
	path := filepath.Join(dir, genName(1), "ratings.rows")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(path, blob[:len(blob)-3], 0o644)
	if _, err := Load(dir, engine.Config{}); err == nil {
		t.Fatal("truncated row file should fail")
	}
	// Bad magic.
	os.WriteFile(path, []byte("XXXX"), 0o644)
	if _, err := Load(dir, engine.Config{}); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestLoadAppliesConfig(t *testing.T) {
	src := buildSource(t)
	dir := t.TempDir()
	if err := Save(src, dir); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(dir, engine.Config{Rec: rec.Options{Build: rec.BuildOptions{NeighborhoodSize: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := dst.Recommenders().Get("SavedRec")
	if !ok {
		t.Fatal("recommender missing after load")
	}
	// With neighborhood size 1, every similarity list has at most 1 entry.
	for _, i := range r.Store().ItemIDs() {
		neigh, err := r.Store().ItemNeighbors(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(neigh) > 1 {
			t.Fatalf("config not applied: item %d has %d neighbors", i, len(neigh))
		}
	}
}
