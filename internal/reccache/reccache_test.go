package reccache

import (
	"math"
	"testing"
	"time"

	"recdb/internal/recindex"
)

// fakePredictor is a deterministic Predictor for tests.
type fakePredictor struct {
	users, items []int64
	seen         map[int64]map[int64]float64 // user → item → rating
}

func (f *fakePredictor) Predict(u, i int64) (float64, bool, error) {
	return float64(u*10 + i), true, nil
}

func (f *fakePredictor) UserItems(u int64) (map[int64]float64, error) {
	if f.seen == nil {
		return map[int64]float64{}, nil
	}
	m := f.seen[u]
	if m == nil {
		m = map[int64]float64{}
	}
	return m, nil
}

func (f *fakePredictor) ItemIDs() []int64 { return f.items }
func (f *fakePredictor) UserIDs() []int64 { return f.users }

// TestTable1_PaperExample replays the worked example of Table I: two users
// (Alice=1, Bob=2), three movies (Spartacus=1, Inception=2, TheMatrix=3),
// TSinit=10, maintenance at TSnow=15, HOTNESS-THRESHOLD=0.5.
func TestTable1_PaperExample(t *testing.T) {
	ts := 10.0
	clock := func() float64 { return ts }
	ix := recindex.New()
	m := New(ix, 0.5, clock)

	// Alice: QC=100 at TS=10 → D = 100/(15-10) = 20.
	for q := 0; q < 100; q++ {
		m.RecordQuery(1)
	}
	// Spartacus: UC=1000; The Matrix: UC=100, both with activity windows
	// matching the table.
	for q := 0; q < 100; q++ {
		m.RecordUpdate(3)
	}
	ts = 12
	// Bob: QC=10 at TS=12 → D = 10/5 = 2.
	for q := 0; q < 10; q++ {
		m.RecordQuery(2)
	}
	for q := 0; q < 1000; q++ {
		m.RecordUpdate(1)
	}
	for q := 0; q < 10; q++ {
		m.RecordUpdate(2)
	}

	// RecScoreIndex initially holds t1 = (Bob, Inception), which the paper
	// says lands on the eviction list.
	ix.Put(2, 2, 3.3)

	ts = 15
	pred := &fakePredictor{users: []int64{1, 2}, items: []int64{1, 2, 3}}
	dec, err := m.Run(pred)
	if err != nil {
		t.Fatal(err)
	}

	// Rates per the table.
	if s, _ := m.UserStatOf(1); math.Abs(s.DemandRate-20) > 1e-9 {
		t.Errorf("D_Alice = %v, want 20", s.DemandRate)
	}
	if s, _ := m.UserStatOf(2); math.Abs(s.DemandRate-2) > 1e-9 {
		t.Errorf("D_Bob = %v, want 2", s.DemandRate)
	}
	if s, _ := m.ItemStatOf(1); math.Abs(s.ConsumptionRate-200) > 1e-9 {
		t.Errorf("P_Spartacus = %v, want 200", s.ConsumptionRate)
	}
	if s, _ := m.ItemStatOf(2); math.Abs(s.ConsumptionRate-2) > 1e-9 {
		t.Errorf("P_Inception = %v, want 2", s.ConsumptionRate)
	}
	if s, _ := m.ItemStatOf(3); math.Abs(s.ConsumptionRate-20) > 1e-9 {
		t.Errorf("P_TheMatrix = %v, want 20", s.ConsumptionRate)
	}

	// Hotness ratios (Table I(c)): note the paper's printed value for
	// (Alice, The Matrix) is 0.01 but (20/20)×(20/200) = 0.1; we match the
	// formula.
	wantHot := map[[2]int64]float64{
		{1, 1}: 1, {1, 2}: 0.01, {1, 3}: 0.1,
		{2, 1}: 0.1, {2, 2}: 0.001, {2, 3}: 0.01,
	}
	for k, want := range wantHot {
		if got := m.Hotness(k[0], k[1]); math.Abs(got-want) > 1e-9 {
			t.Errorf("Hot(%d,%d) = %v, want %v", k[0], k[1], got, want)
		}
	}

	// Threshold 0.5: only (Alice, Spartacus) admitted; (Bob, Inception)
	// evicted from the index.
	if dec.Admitted != 1 {
		t.Errorf("admitted = %d, want 1", dec.Admitted)
	}
	if _, ok := ix.Get(1, 1); !ok {
		t.Error("(Alice, Spartacus) should be materialized")
	}
	if _, ok := ix.Get(2, 2); ok {
		t.Error("(Bob, Inception) should be evicted")
	}
	if dec.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", dec.Evicted)
	}
	if len(dec.AdmissionList) != 1 || len(dec.EvictionList) != 5 {
		t.Errorf("list sizes: %d admit, %d evict", len(dec.AdmissionList), len(dec.EvictionList))
	}
}

func TestThresholdZeroMaterializesEverything(t *testing.T) {
	ts := 0.0
	clock := func() float64 { return ts }
	ix := recindex.New()
	m := New(ix, 0, clock)
	m.RecordQuery(1)
	m.RecordQuery(2)
	m.RecordUpdate(5)
	m.RecordUpdate(6)
	ts = 10
	pred := &fakePredictor{users: []int64{1, 2}, items: []int64{5, 6}}
	dec, err := m.Run(pred)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted != 4 {
		t.Fatalf("admitted = %d, want all 4 pairs", dec.Admitted)
	}
}

func TestThresholdOneMaterializesNothing(t *testing.T) {
	ts := 0.0
	clock := func() float64 { return ts }
	ix := recindex.New()
	m := New(ix, 1.0000001, clock)
	m.RecordQuery(1)
	m.RecordUpdate(5)
	ts = 10
	dec, err := m.Run(&fakePredictor{users: []int64{1}, items: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted != 0 || ix.Len() != 0 {
		t.Fatalf("admitted = %d with len %d, want 0", dec.Admitted, ix.Len())
	}
}

func TestAdmissionSkipsSeenItems(t *testing.T) {
	ts := 0.0
	clock := func() float64 { return ts }
	ix := recindex.New()
	m := New(ix, 0, clock)
	m.RecordQuery(1)
	m.RecordUpdate(5)
	m.RecordUpdate(6)
	ts = 10
	pred := &fakePredictor{
		users: []int64{1},
		items: []int64{5, 6},
		seen:  map[int64]map[int64]float64{1: {5: 4.0}},
	}
	dec, err := m.Run(pred)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1 (item 5 already rated)", dec.Admitted)
	}
	if _, ok := ix.Get(1, 5); ok {
		t.Fatal("rated item must not be materialized")
	}
	if _, ok := ix.Get(1, 6); !ok {
		t.Fatal("unrated item should be materialized")
	}
}

func TestRunOnlyConsidersTouchedSinceLastRun(t *testing.T) {
	ts := 0.0
	clock := func() float64 { return ts }
	ix := recindex.New()
	m := New(ix, 0, clock)
	m.RecordQuery(1)
	m.RecordUpdate(5)
	ts = 10
	pred := &fakePredictor{users: []int64{1}, items: []int64{5}}
	if _, err := m.Run(pred); err != nil {
		t.Fatal(err)
	}
	// Second run with no new activity considers nobody.
	ts = 20
	dec, err := m.Run(pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.AdmissionList)+len(dec.EvictionList) != 0 {
		t.Fatalf("stale users/items considered: %+v", dec)
	}
}

func TestMaterializeUserAndAll(t *testing.T) {
	ix := recindex.New()
	m := New(ix, 0.5, func() float64 { return 0 })
	pred := &fakePredictor{
		users: []int64{1, 2},
		items: []int64{10, 11, 12},
		seen:  map[int64]map[int64]float64{1: {10: 5}},
	}
	if err := m.MaterializeUser(pred, 1); err != nil {
		t.Fatal(err)
	}
	if ix.UserLen(1) != 2 {
		t.Fatalf("UserLen(1) = %d, want 2 (one item seen)", ix.UserLen(1))
	}
	if err := m.MaterializeAll(pred); err != nil {
		t.Fatal(err)
	}
	if ix.UserLen(2) != 3 {
		t.Fatalf("UserLen(2) = %d, want 3", ix.UserLen(2))
	}
	m.Invalidate()
	if ix.Len() != 0 {
		t.Fatal("Invalidate should clear the index")
	}
}

func TestBackgroundMaintenance(t *testing.T) {
	ix := recindex.New()
	m := New(ix, 0, nil) // wall clock
	pred := &fakePredictor{users: []int64{1}, items: []int64{5}}
	m.RecordQuery(1)
	m.RecordUpdate(5)
	m.Start(pred, 5*time.Millisecond)
	defer m.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := ix.Get(1, 5); ok {
			m.Stop()
			m.Stop() // double-stop is safe
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background maintenance never materialized the hot pair")
}

func TestHotnessUnknownIsZero(t *testing.T) {
	m := New(recindex.New(), 0.5, func() float64 { return 0 })
	if m.Hotness(1, 1) != 0 {
		t.Fatal("unknown user/item hotness should be 0")
	}
}

func TestWallClockDefault(t *testing.T) {
	// nil clock uses wall time; rates stay finite and ordered.
	m := New(recindex.New(), 0.5, nil)
	m.RecordQuery(1)
	m.RecordUpdate(2)
	if s, ok := m.UserStatOf(1); !ok || s.QueryCount != 1 {
		t.Fatalf("user stat: %+v %v", s, ok)
	}
	if s, ok := m.ItemStatOf(2); !ok || s.UpdateCount != 1 {
		t.Fatalf("item stat: %+v %v", s, ok)
	}
	if _, ok := m.UserStatOf(9); ok {
		t.Fatal("missing user stat should be absent")
	}
	if _, ok := m.ItemStatOf(9); ok {
		t.Fatal("missing item stat should be absent")
	}
}
