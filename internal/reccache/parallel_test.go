package reccache

import (
	"fmt"
	"sync/atomic"
	"testing"

	"recdb/internal/recindex"
)

// fakeBatchPredictor adds the bulk interface on top of fakePredictor so
// both materialization paths are exercised. batchCalls is atomic because
// MaterializeAll invokes PredictForUser from concurrent workers.
type fakeBatchPredictor struct {
	fakePredictor
	batchCalls atomic.Int64
}

func (f *fakeBatchPredictor) PredictForUser(u int64, items []int64) ([]float64, []bool, error) {
	f.batchCalls.Add(1)
	scores := make([]float64, len(items))
	oks := make([]bool, len(items))
	for x, i := range items {
		scores[x], oks[x], _ = f.Predict(u, i)
	}
	return scores, oks, nil
}

func idRange(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// TestMaterializeAllWorkersEquivalence asserts the RecScoreIndex ends up
// with identical contents at any worker count, for both the per-pair
// Predictor path and the UserBatchPredictor fast path.
func TestMaterializeAllWorkersEquivalence(t *testing.T) {
	users, items := idRange(57), idRange(43)
	seen := map[int64]map[int64]float64{
		3:  {7: 4.0, 9: 2.0},
		12: {1: 5.0},
		57: {43: 1.0},
	}
	clock := func() float64 { return 0 }

	build := func(pred Predictor, workers int) *recindex.Index {
		ix := recindex.New()
		m := New(ix, 0, clock)
		m.Workers = workers
		if err := m.MaterializeAll(pred); err != nil {
			t.Fatal(err)
		}
		return ix
	}

	plain := &fakePredictor{users: users, items: items, seen: seen}
	batch := &fakeBatchPredictor{fakePredictor: fakePredictor{users: users, items: items, seen: seen}}
	want := build(plain, 1)
	for _, workers := range []int{1, 3, 8, 100} {
		for name, pred := range map[string]Predictor{"plain": plain, "batch": batch} {
			got := build(pred, workers)
			if got.Len() != want.Len() {
				t.Fatalf("%s workers=%d: index has %d entries, want %d", name, workers, got.Len(), want.Len())
			}
			for _, u := range users {
				for _, i := range items {
					gs, gok := got.Get(u, i)
					ws, wok := want.Get(u, i)
					if gok != wok || gs != ws {
						t.Fatalf("%s workers=%d (%d,%d): got (%v,%v), want (%v,%v)",
							name, workers, u, i, gs, gok, ws, wok)
					}
				}
			}
		}
	}
	if batch.batchCalls.Load() == 0 {
		t.Fatal("UserBatchPredictor path was never taken")
	}
}

// TestMaterializeUserUsesBatch checks the single-user path also routes
// through the bulk interface and skips rated items.
func TestMaterializeUserUsesBatch(t *testing.T) {
	pred := &fakeBatchPredictor{fakePredictor: fakePredictor{
		users: idRange(3), items: idRange(5),
		seen: map[int64]map[int64]float64{2: {4: 3.5}},
	}}
	ix := recindex.New()
	m := New(ix, 0, func() float64 { return 0 })
	if err := m.MaterializeUser(pred, 2); err != nil {
		t.Fatal(err)
	}
	if n := pred.batchCalls.Load(); n != 1 {
		t.Fatalf("batchCalls = %d, want 1", n)
	}
	if _, ok := ix.Get(2, 4); ok {
		t.Fatal("rated pair (2,4) should not be materialized")
	}
	if s, ok := ix.Get(2, 5); !ok || s != 25 {
		t.Fatalf("Get(2,5) = (%v,%v), want (25,true)", s, ok)
	}
}

// slowPredictor gives each prediction a small arithmetic cost so the
// benchmark measures compute scaling rather than map overhead alone.
type slowPredictor struct {
	fakePredictor
}

func (s *slowPredictor) score(u, i int64) float64 {
	acc := float64(u ^ i)
	for k := 0; k < 400; k++ {
		acc = acc*1.0000001 + float64(k%7)
	}
	return acc
}

func (s *slowPredictor) Predict(u, i int64) (float64, bool, error) {
	return s.score(u, i), true, nil
}

func (s *slowPredictor) PredictForUser(u int64, items []int64) ([]float64, []bool, error) {
	scores := make([]float64, len(items))
	oks := make([]bool, len(items))
	for x, i := range items {
		scores[x], oks[x] = s.score(u, i), true
	}
	return scores, oks, nil
}

func BenchmarkMaterializeAll(b *testing.B) {
	pred := &slowPredictor{fakePredictor{users: idRange(200), items: idRange(300)}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := New(recindex.New(), 0, func() float64 { return 0 })
				m.Workers = workers
				if err := m.MaterializeAll(pred); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
