package reccache

import (
	"errors"
	"testing"

	"recdb/internal/metrics"
	"recdb/internal/recindex"
)

// TestCacheMetricsDeterministic pins the cache manager's instrument
// semantics under an integer fake clock: histogram updates, maintenance
// runs, admission/eviction volumes, and health transitions each count
// exactly once per event.
func TestCacheMetricsDeterministic(t *testing.T) {
	ts := 10.0
	ix := recindex.New()
	m := New(ix, 0.5, func() float64 { return ts })
	reg := metrics.NewRegistry()
	m.Metrics = Metrics{
		Queries:           reg.Counter("reccache.queries"),
		Updates:           reg.Counter("reccache.updates"),
		Runs:              reg.Counter("reccache.runs"),
		RunFailures:       reg.Counter("reccache.run_failures"),
		Admitted:          reg.Counter("reccache.admitted"),
		Evicted:           reg.Counter("reccache.evicted"),
		HealthTransitions: reg.Counter("reccache.health_transitions"),
	}
	get := func(name string) int64 {
		s := reg.Snapshot()
		v, _ := s.Get(name)
		return v
	}

	// Table I's activity shape: Alice queries, items accrue updates.
	for q := 0; q < 100; q++ {
		m.RecordQuery(1)
	}
	ts = 12
	for q := 0; q < 10; q++ {
		m.RecordQuery(2)
	}
	for q := 0; q < 1000; q++ {
		m.RecordUpdate(1)
	}
	if got := get("reccache.queries"); got != 110 {
		t.Fatalf("queries = %d, want 110", got)
	}
	if got := get("reccache.updates"); got != 1000 {
		t.Fatalf("updates = %d, want 1000", got)
	}

	// One maintenance run: the admitted/evicted counters must match the
	// decision it returns.
	ix.Put(2, 2, 3.3)
	ts = 15
	dec, err := m.Run(&fakePredictor{users: []int64{1, 2}, items: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := get("reccache.runs"); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	if got := get("reccache.admitted"); got != int64(dec.Admitted) {
		t.Fatalf("admitted = %d, want %d", got, dec.Admitted)
	}
	if got := get("reccache.evicted"); got != int64(dec.Evicted) {
		t.Fatalf("evicted = %d, want %d", got, dec.Evicted)
	}

	// Health transitions: degrade once (1 flip), stay degraded (no flip),
	// recover (second flip) — exactly what the daemon loop feeds through
	// recordRun.
	boom := errors.New("injected run failure")
	m.recordRun(boom)
	if h := m.Health(); h.Healthy {
		t.Fatalf("health after failure = %+v", h)
	}
	if got := get("reccache.run_failures"); got != 1 {
		t.Fatalf("run_failures = %d, want 1", got)
	}
	if got := get("reccache.health_transitions"); got != 1 {
		t.Fatalf("health_transitions = %d, want 1", got)
	}
	m.recordRun(boom)
	if got := get("reccache.run_failures"); got != 2 {
		t.Fatalf("run_failures = %d, want 2", got)
	}
	if got := get("reccache.health_transitions"); got != 1 {
		t.Fatalf("health_transitions after repeat failure = %d, want 1", got)
	}
	m.recordRun(nil)
	if h := m.Health(); !h.Healthy {
		t.Fatalf("health after recovery = %+v", h)
	}
	if got := get("reccache.health_transitions"); got != 2 {
		t.Fatalf("health_transitions after recovery = %d, want 2", got)
	}
}
