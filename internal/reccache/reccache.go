// Package reccache implements §IV-D: the statistics (users/items
// histograms, demand and consumption rates) and the caching algorithm
// (Algorithm 4) that decide which 〈user, item, ratingval〉 triplets to
// materialize in the RecScoreIndex. HOTNESS-THRESHOLD trades query latency
// against storage/maintenance cost: 0 fully materializes, 1 materializes
// nothing.
package reccache

import (
	"runtime"
	"sync"
	"time"

	"recdb/internal/metrics"
	"recdb/internal/rec"
	"recdb/internal/recindex"
)

// Metrics is the set of optional instruments the cache manager records
// into. Every field may be nil (the zero Metrics disables
// instrumentation); nil instruments are no-ops per the internal/metrics
// contract.
type Metrics struct {
	// Queries counts Users-Histogram updates (recommendation queries).
	Queries *metrics.Counter
	// Updates counts Items-Histogram updates (rating insertions).
	Updates *metrics.Counter
	// Runs counts hotness-refresh maintenance runs (Algorithm 4).
	Runs *metrics.Counter
	// RunFailures counts daemon maintenance runs that failed.
	RunFailures *metrics.Counter
	// Admitted and Evicted count pairs moved in and out of the
	// RecScoreIndex by maintenance decisions.
	Admitted *metrics.Counter
	Evicted  *metrics.Counter
	// HealthTransitions counts the daemon flipping healthy <-> degraded.
	HealthTransitions *metrics.Counter
}

// Clock abstracts time so the paper's worked example (Table I) is testable
// with integer timestamps.
type Clock func() float64

// UserStat is one row of the Users Histogram.
type UserStat struct {
	QueryCount int64   // QCu: recommendation queries issued by u
	LastQuery  float64 // TSu: timestamp of u's last recommendation query
	DemandRate float64 // Du: QCu / (now − TSinit)
}

// ItemStat is one row of the Items Histogram.
type ItemStat struct {
	UpdateCount     int64   // UCi: rating insertions on item i
	LastUpdate      float64 // TSi: timestamp of i's last update
	ConsumptionRate float64 // Pi: UCi / (now − TSinit)
}

// Manager maintains the histograms for one recommender and runs the
// materialization decision over its RecScoreIndex.
type Manager struct {
	mu     sync.Mutex
	clock  Clock
	tsInit float64
	tsMat  float64 // timestamp of the last maintenance run

	users map[int64]*UserStat
	items map[int64]*ItemStat
	dMax  float64 // DMAX
	pMax  float64 // PMAX

	// Threshold is HOTNESS-THRESHOLD ∈ [0, 1].
	Threshold float64

	// Metrics receives cache instrumentation; the zero value records
	// nothing. Set it before Start — the daemon reads it without locking.
	Metrics Metrics

	// Workers bounds the pool used by MaterializeAll to compute
	// predictions concurrently. 0 selects runtime.NumCPU(); 1 keeps the
	// serial path. The RecScoreIndex contents are identical at any
	// setting: predictions are computed in parallel but applied in
	// ascending user order.
	Workers int

	index *recindex.Index

	stopCh chan struct{}
	doneCh chan struct{}

	// Daemon health: the background maintenance loop records run failures
	// here instead of dropping them; the cache keeps serving its current
	// contents while degraded.
	runs        int
	runFailures int   // consecutive failed runs (0 when healthy)
	lastRunErr  error // most recent failed run's error, nil when healthy
}

// Health describes the cache maintenance daemon's state: how many runs
// completed, whether the most recent one succeeded, and the error if not.
type Health struct {
	Runs      int
	Failures  int
	LastError error
	Healthy   bool
}

// Health reports the daemon's current state.
func (m *Manager) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Health{
		Runs:      m.runs,
		Failures:  m.runFailures,
		LastError: m.lastRunErr,
		Healthy:   m.lastRunErr == nil,
	}
}

// recordRun folds one maintenance run's outcome into the health state.
func (m *Manager) recordRun(err error) {
	m.mu.Lock()
	wasHealthy := m.lastRunErr == nil
	m.runs++
	if err != nil {
		m.runFailures++
		m.lastRunErr = err
	} else {
		m.runFailures = 0
		m.lastRunErr = nil
	}
	nowHealthy := m.lastRunErr == nil
	m.mu.Unlock()
	if err != nil {
		m.Metrics.RunFailures.Inc()
	}
	if wasHealthy != nowHealthy {
		m.Metrics.HealthTransitions.Inc()
	}
}

// Predictor supplies predictions and seen-ness for admission; it is the
// recommender's model store.
type Predictor interface {
	Predict(user, item int64) (float64, bool, error)
	UserItems(user int64) (map[int64]float64, error)
	ItemIDs() []int64
	UserIDs() []int64
}

// UserBatchPredictor is the optional bulk interface: predictors that can
// amortize per-user state over a batch of items (rec.ModelStore fetches
// the user's rated items, neighbor list, or factor vector exactly once).
// Materialization uses it when available and must be safe to call
// concurrently for different users.
type UserBatchPredictor interface {
	Predictor
	PredictForUser(user int64, items []int64) ([]float64, []bool, error)
}

// New creates a manager over the given RecScoreIndex. clock may be nil, in
// which case wall-clock seconds since creation are used.
func New(index *recindex.Index, threshold float64, clock Clock) *Manager {
	if clock == nil {
		start := time.Now()
		clock = func() float64 { return time.Since(start).Seconds() }
	}
	m := &Manager{
		clock:     clock,
		users:     make(map[int64]*UserStat),
		items:     make(map[int64]*ItemStat),
		Threshold: threshold,
		index:     index,
	}
	m.tsInit = clock()
	m.tsMat = m.tsInit
	return m
}

// Index returns the RecScoreIndex the manager maintains.
func (m *Manager) Index() *recindex.Index { return m.index }

// RecordQuery updates the Users Histogram for a recommendation query
// issued by user u.
func (m *Manager) RecordQuery(u int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.users[u]
	if s == nil {
		s = &UserStat{}
		m.users[u] = s
	}
	s.QueryCount++
	s.LastQuery = m.clock()
	m.Metrics.Queries.Inc()
}

// RecordUpdate updates the Items Histogram for a rating inserted on item i.
func (m *Manager) RecordUpdate(i int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.items[i]
	if s == nil {
		s = &ItemStat{}
		m.items[i] = s
	}
	s.UpdateCount++
	s.LastUpdate = m.clock()
	m.Metrics.Updates.Inc()
}

// UserStatOf returns a copy of the histogram row for user u.
func (m *Manager) UserStatOf(u int64) (UserStat, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.users[u]
	if !ok {
		return UserStat{}, false
	}
	return *s, true
}

// ItemStatOf returns a copy of the histogram row for item i.
func (m *Manager) ItemStatOf(i int64) (ItemStat, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.items[i]
	if !ok {
		return ItemStat{}, false
	}
	return *s, true
}

// Hotness returns Hot(u,i) = (Du/DMAX) × (Pi/PMAX) using the rates from
// the most recent Run.
func (m *Manager) Hotness(u, i int64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hotnessLocked(u, i)
}

func (m *Manager) hotnessLocked(u, i int64) float64 {
	us, uok := m.users[u]
	is, iok := m.items[i]
	if !uok || !iok || m.dMax == 0 || m.pMax == 0 {
		return 0
	}
	return (us.DemandRate / m.dMax) * (is.ConsumptionRate / m.pMax)
}

// Decision is the outcome of one maintenance run.
type Decision struct {
	Admitted      int // pairs added to the RecScoreIndex
	Evicted       int // pairs removed from the RecScoreIndex
	AdmissionList []Pair
	EvictionList  []Pair
}

// Pair is one user/item pair considered by the materialization decision.
type Pair struct {
	User, Item int64
	Hotness    float64
}

// Run executes Algorithm 4: Step 1 refreshes the demand/consumption rates
// for users and items touched since the last run; Step 2 computes the
// hotness ratio for every candidate pair and splits them into admission
// and eviction lists; finally the lists are applied to the RecScoreIndex,
// computing predictions through pred for admitted pairs.
func (m *Manager) Run(pred Predictor) (Decision, error) {
	m.Metrics.Runs.Inc()
	m.mu.Lock()
	now := m.clock()
	elapsed := now - m.tsInit
	if elapsed <= 0 {
		elapsed = 1e-9
	}

	// Candidate sets: touched since the last maintenance run.
	var usersDue []int64
	for u, s := range m.users {
		if s.LastQuery >= m.tsMat {
			usersDue = append(usersDue, u)
		}
	}
	var itemsDue []int64
	for i, s := range m.items {
		if s.LastUpdate >= m.tsMat {
			itemsDue = append(itemsDue, i)
		}
	}

	// STEP 1: statistics maintenance.
	for _, i := range itemsDue {
		s := m.items[i]
		s.ConsumptionRate = float64(s.UpdateCount) / elapsed
		if s.ConsumptionRate > m.pMax {
			m.pMax = s.ConsumptionRate
		}
	}
	for _, u := range usersDue {
		s := m.users[u]
		s.DemandRate = float64(s.QueryCount) / elapsed
		if s.DemandRate > m.dMax {
			m.dMax = s.DemandRate
		}
	}

	// STEP 2: materialization decision over U' × I'.
	var dec Decision
	defer func() {
		m.Metrics.Admitted.Add(int64(dec.Admitted))
		m.Metrics.Evicted.Add(int64(dec.Evicted))
	}()
	threshold := m.Threshold
	var admit, evict []Pair
	for _, u := range usersDue {
		for _, i := range itemsDue {
			hot := m.hotnessLocked(u, i)
			p := Pair{User: u, Item: i, Hotness: hot}
			if hot >= threshold {
				admit = append(admit, p)
			} else {
				evict = append(evict, p)
			}
		}
	}
	m.tsMat = now
	m.mu.Unlock()

	// Apply outside the stats lock: batch-delete the eviction list, then
	// batch-insert the admission list (skipping already-seen items).
	for _, p := range evict {
		if m.index.Remove(p.User, p.Item) {
			dec.Evicted++
		}
	}
	for _, p := range admit {
		seen, err := pred.UserItems(p.User)
		if err != nil {
			return dec, err
		}
		if _, rated := seen[p.Item]; rated {
			continue
		}
		score, ok, err := pred.Predict(p.User, p.Item)
		if err != nil {
			return dec, err
		}
		if !ok {
			score = 0 // Algorithm 1 emits 0 when there is no basis
		}
		m.index.Put(p.User, p.Item, score)
		dec.Admitted++
	}
	dec.AdmissionList = admit
	dec.EvictionList = evict
	return dec, nil
}

// entry is one computed (item, score) prediction awaiting insertion.
type entry struct {
	item  int64
	score float64
}

// userEntries computes the predictions to materialize for user u: every
// unrated item, scored through the batch interface when the predictor
// offers it, and through per-pair Predict otherwise. Unpredictable pairs
// score 0, as Algorithm 1 emits.
func userEntries(pred Predictor, u int64) ([]entry, error) {
	seen, err := pred.UserItems(u)
	if err != nil {
		return nil, err
	}
	items := pred.ItemIDs()
	todo := make([]int64, 0, len(items))
	for _, i := range items {
		if _, rated := seen[i]; !rated {
			todo = append(todo, i)
		}
	}
	out := make([]entry, 0, len(todo))
	if bp, ok := pred.(UserBatchPredictor); ok {
		scores, oks, err := bp.PredictForUser(u, todo)
		if err != nil {
			return nil, err
		}
		for x, i := range todo {
			s := scores[x]
			if !oks[x] {
				s = 0
			}
			out = append(out, entry{item: i, score: s})
		}
		return out, nil
	}
	for _, i := range todo {
		score, ok, err := pred.Predict(u, i)
		if err != nil {
			return nil, err
		}
		if !ok {
			score = 0
		}
		out = append(out, entry{item: i, score: score})
	}
	return out, nil
}

// MaterializeUser pre-computes and stores predictions for every item the
// user has not rated (full per-user materialization, the warm state of the
// top-k experiments in §VI-C).
func (m *Manager) MaterializeUser(pred Predictor, u int64) error {
	entries, err := userEntries(pred, u)
	if err != nil {
		return err
	}
	for _, e := range entries {
		m.index.Put(u, e.item, e.score)
	}
	return nil
}

// MaterializeAll pre-computes predictions for every user (HOTNESS-THRESHOLD
// = 0 behaviour). Users are processed in batches: a bounded pool of
// m.Workers workers computes each batch's predictions concurrently, then
// the results are written to the RecScoreIndex in ascending user order, so
// the index contents match the serial path exactly.
func (m *Manager) MaterializeAll(pred Predictor) error {
	users := pred.UserIDs()
	workers := m.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(users) {
		workers = len(users)
	}
	if workers <= 1 {
		for _, u := range users {
			if err := m.MaterializeUser(pred, u); err != nil {
				return err
			}
		}
		return nil
	}
	// Batching bounds buffered predictions to ~4 users' worth per worker.
	batch := workers * 4
	for lo := 0; lo < len(users); lo += batch {
		hi := lo + batch
		if hi > len(users) {
			hi = len(users)
		}
		span := users[lo:hi]
		results := make([][]entry, len(span))
		errs := make([]error, len(span))
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for x := w; x < len(span); x += workers {
					results[x], errs[x] = userEntries(pred, span[x])
				}
			}(w)
		}
		wg.Wait()
		for x, u := range span {
			if errs[x] != nil {
				return errs[x]
			}
			for _, e := range results[x] {
				m.index.Put(u, e.item, e.score)
			}
		}
	}
	return nil
}

// Invalidate clears the RecScoreIndex (called when the model is rebuilt).
func (m *Manager) Invalidate() { m.index.Clear() }

// Start launches a background goroutine running maintenance every
// interval, mirroring the asynchronous cache manager of §IV-D. Stop halts
// it.
func (m *Manager) Start(pred Predictor, interval time.Duration) {
	m.mu.Lock()
	if m.stopCh != nil {
		m.mu.Unlock()
		return
	}
	m.stopCh = make(chan struct{})
	m.doneCh = make(chan struct{})
	stop, done := m.stopCh, m.doneCh
	m.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				// A failed run degrades (recorded in Health) rather than
				// killing the daemon: the cache serves stale entries and
				// the next tick retries.
				_, err := m.Run(pred)
				m.recordRun(err)
			}
		}
	}()
}

// Stop halts the background maintenance goroutine, if running.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.stopCh, m.doneCh
	m.stopCh, m.doneCh = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ensure rec import is referenced (Predictor mirrors *rec.ModelStore).
var (
	_ Predictor          = (*rec.ModelStore)(nil)
	_ UserBatchPredictor = (*rec.ModelStore)(nil)
)
