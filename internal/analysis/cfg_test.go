package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks src (one file of package p) and returns the named
// function's declaration plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil
}

// TestCFGIfElse: both branches exist, rejoin, and the return block has no
// successors.
func TestCFGIfElse(t *testing.T) {
	fd, _ := parseFunc(t, `package p
func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	g := BuildCFG(fd.Body)
	var returns, terminal int
	for _, b := range g.Blocks {
		if b.Return {
			returns++
		}
		if len(b.Succs) == 0 && len(b.Nodes) > 0 {
			terminal++
		}
	}
	if returns != 1 {
		t.Errorf("want exactly 1 return block, got %d", returns)
	}
	if terminal != 1 {
		t.Errorf("want exactly 1 terminal block with nodes, got %d", terminal)
	}
}

// TestCFGLoopBackEdge: a for loop produces a cycle in the graph.
func TestCFGLoopBackEdge(t *testing.T) {
	fd, _ := parseFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := BuildCFG(fd.Body)
	// A back edge exists iff some block's successor has a smaller index.
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Error("for loop should produce a back edge")
	}
}

// TestCFGDeferGoCapture: defers and go-closure bodies are collected, and
// the spawned body is not inlined into the graph's blocks.
func TestCFGDeferGoCapture(t *testing.T) {
	fd, _ := parseFunc(t, `package p
import "sync"
type s struct{ mu sync.Mutex }
func f(v *s) {
	defer v.mu.Unlock()
	defer func() { _ = v }()
	go func() { v.mu.Lock() }()
}`, "f")
	g := BuildCFG(fd.Body)
	if len(g.Defers) != 2 {
		t.Errorf("want 2 defers, got %d", len(g.Defers))
	}
	if len(g.DeferBodies) != 1 {
		t.Errorf("want 1 deferred closure, got %d", len(g.DeferBodies))
	}
	if len(g.GoBodies) != 1 {
		t.Errorf("want 1 go closure, got %d", len(g.GoBodies))
	}
}

// TestCFGLabeledBreak: break LABEL exits the labeled outer loop, keeping
// the statement after it reachable.
func TestCFGLabeledBreak(t *testing.T) {
	fd, _ := parseFunc(t, `package p
func f(n int) int {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				break outer
			}
		}
	}
	return n
}`, "f")
	g := BuildCFG(fd.Body)
	found := false
	for _, b := range g.Blocks {
		if b.Return {
			found = true
		}
	}
	if !found {
		t.Error("return after labeled break must be reachable")
	}
}

// TestLockFlowEarlyExit: the early-exit unlock idiom leaves the
// fallthrough path locked; after the branch rejoins, the lock is may- but
// not must-held, and after the final unlock it is gone.
func TestLockFlowEarlyExit(t *testing.T) {
	src := `package p
import "sync"
type C struct {
	mu sync.Mutex
	n  int
}
func (c *C) f(fast bool) int {
	c.mu.Lock()
	if fast {
		n := c.n
		c.mu.Unlock()
		return n
	}
	n := c.n * 2
	c.mu.Unlock()
	return n
}`
	fd, info := parseFunc(t, src, "f")
	g := BuildCFG(fd.Body)
	lf := SolveLockFlow(g, info, LockSet{})
	// At every read of c.n the lock must be held.
	lf.Walk(func(n ast.Node, held LockSet) {
		ast.Inspect(n, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "n" {
				return true
			}
			st, ok := held["c.mu"]
			if !ok || !st.Must || !st.MayExcl {
				t.Errorf("c.n read without must-held lock: %+v", held)
			}
			return true
		})
	})
}

// TestLockFlowSomePath: after a conditional unlock rejoins the main path,
// must drops while may survives — the fact the some-path checks rely on.
func TestLockFlowSomePath(t *testing.T) {
	src := `package p
import "sync"
type C struct{ mu sync.Mutex }
func (c *C) f(early bool) {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
	}
	c.mu.Unlock()
}`
	fd, info := parseFunc(t, src, "f")
	g := BuildCFG(fd.Body)
	lf := SolveLockFlow(g, info, LockSet{})
	var sawFinal bool
	lf.Walk(func(n ast.Node, held LockSet) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		if _, op, ok := LockEventOf(info, es.X); !ok || op != "Unlock" {
			return
		}
		st := held["c.mu"]
		if !st.Held() {
			return // the conditional unlock: lock still must-held there
		}
		if !st.Must {
			sawFinal = true // the rejoined final unlock: may-held only
		}
	})
	if !sawFinal {
		t.Error("expected the final unlock to see a may-held-only state")
	}
}

// TestDeferredUnlocks: both direct deferred unlocks and closure-wrapped
// ones are recognized, and ClosureEntryLocks assumes the released lock
// held at closure entry.
func TestDeferredUnlocks(t *testing.T) {
	src := `package p
import "sync"
type C struct{ mu sync.Mutex; rw sync.RWMutex }
func (c *C) f() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rw.RLock()
	defer func() { c.rw.RUnlock() }()
}`
	fd, info := parseFunc(t, src, "f")
	g := BuildCFG(fd.Body)
	lf := SolveLockFlow(g, info, LockSet{})
	keys := lf.DeferredUnlocks()
	if len(keys) != 2 || keys[0] != "c.mu" || keys[1] != "c.rw" {
		t.Errorf("DeferredUnlocks = %v, want [c.mu c.rw]", keys)
	}
	entry := ClosureEntryLocks(info, g.DeferBodies[0])
	st, ok := entry["c.rw"]
	if !ok || !st.MayRead || st.MayExcl {
		t.Errorf("closure entry locks = %+v, want read-held c.rw", entry)
	}
}

// TestCallGraph: static callees resolve for package functions and
// methods; dynamic calls through func values record nil; reachability and
// hook registration work.
func TestCallGraph(t *testing.T) {
	src := `package p
type E struct{}
func (e *E) Apply() {}
func helper(e *E) { e.Apply() }
func top(e *E) { helper(e) }
func register(h func()) {}
func hook() {}
func wire() { register(hook) }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	g := BuildCallGraph([]*ast.File{f}, info)
	byName := map[string]*CallNode{}
	for _, n := range g.Order {
		byName[n.Fn.Name()] = n
	}
	if len(byName["top"].Calls) != 1 || byName["top"].Calls[0].Callee == nil ||
		byName["top"].Calls[0].Callee.Name() != "helper" {
		t.Errorf("top should statically call helper: %+v", byName["top"].Calls)
	}
	if got := byName["helper"].Calls[0].Callee; got == nil || got.Name() != "Apply" {
		t.Errorf("helper should statically call Apply, got %v", got)
	}
	reach := g.Reachable(byName["top"].Fn)
	if !reach[byName["helper"].Fn] || !reach[byName["top"].Fn] {
		t.Errorf("helper must be reachable from top: %v", reach)
	}
	if reach[byName["wire"].Fn] {
		t.Error("wire must not be reachable from top")
	}
	hooks := g.FuncValuesPassedTo(info, []*ast.File{f}, "register")
	if len(hooks) != 1 {
		t.Fatalf("want 1 registered hook, got %d", len(hooks))
	}
	for fn := range hooks {
		if fn.Name() != "hook" {
			t.Errorf("registered hook = %s, want hook", fn.Name())
		}
	}
}
