package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Run applies every analyzer to every package, then runs each analyzer's
// Finish hook (cross-package checks over the facts Run accumulated), and
// returns the surviving diagnostics sorted by file, line, column,
// analyzer, and message — a deterministic order so CI output is stable
// and diffable. Findings silenced by //lint:ignore comments are dropped;
// the suppression map spans all analyzed packages, so Finish-time
// findings honor suppressions in whichever file they land in.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sup := make(suppressions)
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		suppressionsOf(pkg, sup)
	}
	shared := make(map[string]map[string]any, len(analyzers))
	for _, a := range analyzers {
		shared[a.Name] = make(map[string]any)
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue // nothing type-checked to analyze
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fsetOf(pkg),
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Shared:    shared[a.Name],
				diags:     &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			diags = sup.filter(diags, before)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Shared: shared[a.Name], diags: &diags}
		before := len(diags)
		if err := a.Finish(mp); err != nil {
			return nil, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
		diags = sup.filter(diags, before)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return dedup(diags), nil
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// fsetOf recovers the FileSet the package was parsed with. All packages of
// one Loader share a FileSet; the file positions embedded in the ASTs are
// only meaningful relative to it, so the loader records it per package via
// the token.File of the first parsed file.
func fsetOf(pkg *Package) *token.FileSet {
	return pkg.fset
}

// suppressionKey identifies one silenced (file, line, analyzer) triple.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

type suppressions map[suppressionKey]bool

// suppressionsOf scans a package's comments for //lint:ignore directives,
// adding them to sup. A directive suppresses the named analyzers on its
// own line and the line below, so it works both as a trailing comment and
// as a lead-in line.
func suppressionsOf(pkg *Package, sup suppressions) {
	fset := fsetOf(pkg)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a reason is mandatory
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					sup[suppressionKey{pos.Filename, pos.Line, name}] = true
					sup[suppressionKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
}

// filter drops suppressed diagnostics appended at or after index from.
func (s suppressions) filter(diags []Diagnostic, from int) []Diagnostic {
	if len(s) == 0 {
		return diags
	}
	out := diags[:from]
	for _, d := range diags[from:] {
		if s[suppressionKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
