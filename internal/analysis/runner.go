package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, column, analyzer, and message — a
// deterministic order so CI output is stable and diffable. Findings
// silenced by //lint:ignore comments are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue // nothing type-checked to analyze
		}
		sup := suppressionsOf(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fsetOf(pkg),
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			diags = sup.filter(diags, before)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return dedup(diags), nil
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// fsetOf recovers the FileSet the package was parsed with. All packages of
// one Loader share a FileSet; the file positions embedded in the ASTs are
// only meaningful relative to it, so the loader records it per package via
// the token.File of the first parsed file.
func fsetOf(pkg *Package) *token.FileSet {
	return pkg.fset
}

// suppressionKey identifies one silenced (file, line, analyzer) triple.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

type suppressions map[suppressionKey]bool

// suppressionsOf scans a package's comments for //lint:ignore directives.
// A directive suppresses the named analyzers on its own line and the line
// below, so it works both as a trailing comment and as a lead-in line.
func suppressionsOf(pkg *Package) suppressions {
	sup := make(suppressions)
	fset := fsetOf(pkg)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a reason is mandatory
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					sup[suppressionKey{pos.Filename, pos.Line, name}] = true
					sup[suppressionKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return sup
}

// filter drops suppressed diagnostics appended at or after index from.
func (s suppressions) filter(diags []Diagnostic, from int) []Diagnostic {
	if len(s) == 0 {
		return diags
	}
	out := diags[:from]
	for _, d := range diags[from:] {
		if s[suppressionKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
