// Package nopanic forbids panic in library packages. RecDB is a database
// engine: a panic in the storage or execution layer tears down the whole
// process, including unrelated sessions, where an error return would have
// failed one query. The only legitimate panics are truly-unreachable
// invariant violations — and those must carry an explicit
// //lint:ignore nopanic <reason> suppression so the exception is visible
// in review.
package nopanic

import (
	"go/ast"
	"go/types"

	"recdb/internal/analysis"
)

// Analyzer is the nopanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "library packages must return errors, not panic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil // a command may panic; it owns the process
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code: return an error instead (or suppress with //lint:ignore nopanic <why unreachable>)")
			return true
		})
	}
	return nil
}
