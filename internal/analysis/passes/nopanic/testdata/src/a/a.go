// Package a holds panics the nopanic analyzer must flag.
package a

import "fmt"

func Explode(x int) int {
	if x < 0 {
		panic("negative input") // want "panic in library code"
	}
	return x
}

func ExplodeFormatted(x int) {
	panic(fmt.Sprintf("bad value %d", x)) // want "panic in library code"
}
