// Package b holds compliant code: errors instead of panics, and one
// suppressed invariant panic.
package b

import "errors"

func Safe(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	return x, nil
}

// invariant demonstrates the sanctioned escape hatch: an explicitly
// suppressed, documented, unreachable panic.
func invariant(x int) int {
	if x < 0 {
		//lint:ignore nopanic callers validate x at the API boundary
		panic("unreachable: negative after validation")
	}
	return x
}
