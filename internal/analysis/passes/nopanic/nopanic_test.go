package nopanic_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/nopanic"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", nopanic.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", nopanic.Analyzer, "b") }
