package pinunpin_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/pinunpin"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", pinunpin.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", pinunpin.Analyzer, "b") }
