// Package pinunpin enforces the buffer-pool pin discipline: every page
// pinned through BufferPool.Fetch or BufferPool.NewPage must reach a
// matching Unpin on every control-flow path of the enclosing function
// (error returns included), unless ownership of the pin escapes — the
// pinned buffer is stored in a field, captured in a composite literal, or
// returned to the caller, as the heap iterator does.
//
// A leaked pin never crashes; it silently shrinks the pool's eviction
// candidate set until "buffer pool exhausted (N pages, all pinned)"
// surfaces under load, far from the leak. That failure mode is exactly
// what this analyzer turns into a compile-time-style report.
package pinunpin

import (
	"go/ast"
	"go/types"

	"recdb/internal/analysis"
)

// Analyzer is the pinunpin pass.
var Analyzer = &analysis.Analyzer{
	Name: "pinunpin",
	Doc:  "every BufferPool.Fetch/NewPage must be balanced by Unpin on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		checkFunc(pass, fd)
	}
	return nil
}

// pin is one Fetch/NewPage call site.
type pin struct {
	call   *ast.CallExpr
	method string
	// bufObj is the variable holding the pinned buffer (nil when the
	// result is discarded or not a simple assignment).
	bufObj types.Object
	// errObj is the error result variable, used to recognize the
	// "if err != nil { return }" failure path where no pin is held.
	errObj types.Object
	stmt   ast.Stmt // the statement containing the call
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var pins []pin
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Rhs) != 1 {
				return true
			}
			call, ok := v.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := pinCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			p := pin{call: call, method: method, stmt: v}
			// Fetch returns (buf, err); NewPage returns (id, buf, err).
			bufIdx := 0
			if method == "NewPage" {
				bufIdx = 1
			}
			if bufIdx < len(v.Lhs) {
				p.bufObj = identObj(pass.TypesInfo, v.Lhs[bufIdx])
			}
			if last := v.Lhs[len(v.Lhs)-1]; len(v.Lhs) > 1 {
				if o := identObj(pass.TypesInfo, last); o != nil && analysis.ErrorType(o.Type()) {
					p.errObj = o
				}
			}
			pins = append(pins, p)
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if method, ok := pinCall(pass.TypesInfo, call); ok {
					pass.Reportf(call.Pos(), "result of %s discarded: the page stays pinned forever", method)
				}
			}
		}
		return true
	})

	for _, p := range pins {
		if p.bufObj != nil {
			if esc := escapeOf(fd.Body, pass.TypesInfo, p.bufObj); esc.escaped {
				// Ownership transfer is only a real exemption when someone
				// can still release the pin. A return hands it to the
				// caller; a store into a struct is only safe when that
				// struct has a release method (Iterator.Close unpinning its
				// page). A struct with no such method is a one-way door: the
				// pin can never be released.
				if esc.owner == "" || pass.Pkg.Scope().Lookup(esc.owner) == nil || hasReleaseMethod(pass, esc.owner) {
					// Types declared elsewhere are exempt: their release
					// methods are out of this package's sight.
					continue
				}
				pass.Reportf(p.call.Pos(), "page pinned by %s is stored in %s, which has no method calling Unpin: the pin can never be released", p.method, esc.owner)
				continue
			}
		}
		c := &checker{info: pass.TypesInfo, pin: p}
		if c.leaks(fd) {
			pass.Reportf(p.call.Pos(), "page pinned by %s is not unpinned on every path (missing Unpin before return)", p.method)
		}
	}
}

// hasReleaseMethod reports whether the named struct type (declared in this
// package) has a method whose body calls BufferPool.Unpin — the release
// half of the store-pin-in-field ownership pattern.
func hasReleaseMethod(pass *analysis.Pass, typeName string) bool {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		if fd.Recv == nil || len(fd.Recv.List) != 1 {
			continue
		}
		named := analysis.NamedOf(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
		if named == nil || named.Obj().Name() != typeName {
			continue
		}
		if containsUnpin(pass.TypesInfo, fd.Body) {
			return true
		}
	}
	return false
}

// pinCall reports whether call pins a page, returning the method name.
func pinCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	for _, m := range []string{"Fetch", "NewPage"} {
		if _, ok := analysis.MethodCall(info, call, "BufferPool", m); ok {
			return m, true
		}
	}
	return "", false
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// escape describes how a pinned buffer's ownership leaves the function.
type escape struct {
	escaped bool
	// owner is the struct type name the buffer was stored into (via a
	// field assignment or composite literal), "" when ownership left some
	// other way (returned, stored through an index) — those remain exempt.
	owner string
}

// escapeOf reports whether and how the pinned buffer's ownership leaves
// the function: stored through a selector or index expression, placed in
// a composite literal, or returned.
func escapeOf(body *ast.BlockStmt, info *types.Info, obj types.Object) escape {
	out := escape{}
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
				found = true
			}
			return !found
		})
		return found
	}
	ownerName := func(t types.Type) string {
		if named := analysis.NamedOf(t); named != nil {
			return named.Obj().Name()
		}
		return ""
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if out.escaped {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				rhs := v.Rhs[0]
				if len(v.Rhs) == len(v.Lhs) {
					rhs = v.Rhs[i]
				}
				// Unwrap c.bufs[id], *s.p, (s.f) down to the field selector
				// so the owning struct is attributed correctly.
				target := lhs
			unwrap:
				for {
					switch t := target.(type) {
					case *ast.IndexExpr:
						target = t.X
					case *ast.StarExpr:
						target = t.X
					case *ast.ParenExpr:
						target = t.X
					default:
						break unwrap
					}
				}
				switch t := target.(type) {
				case *ast.SelectorExpr:
					if usesObj(rhs) {
						out = escape{escaped: true, owner: ownerName(info.TypeOf(t.X))}
					}
				case *ast.Ident:
					if target != lhs && usesObj(rhs) {
						out = escape{escaped: true} // local slice/map store
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if id, ok := r.(*ast.Ident); ok && info.Uses[id] == obj {
					out = escape{escaped: true}
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if usesObj(el) {
					out = escape{escaped: true, owner: ownerName(info.TypeOf(v))}
				}
			}
		}
		return !out.escaped
	})
	return out
}

// checker walks control flow from a pin site looking for a path that
// reaches a return (or the end of the function) without an Unpin.
type checker struct {
	info *types.Info
	pin  pin

	deferRelease bool
	leak         bool
}

// stateSet tracks which pin states are possible at a program point.
type stateSet struct {
	released   bool // some path has already unpinned
	unreleased bool // some path still holds the pin
}

func (s stateSet) union(o stateSet) stateSet {
	return stateSet{s.released || o.released, s.unreleased || o.unreleased}
}

func (s stateSet) empty() bool { return !s.released && !s.unreleased }

// leaks runs the walk: the statements after the pin in its enclosing
// block, then the remainders of every enclosing block outward.
func (c *checker) leaks(fd *ast.FuncDecl) bool {
	lists := enclosingLists(fd.Body, c.pin.stmt)
	if lists == nil {
		return false // should not happen; be silent rather than wrong
	}
	in := stateSet{unreleased: true}
	for _, le := range lists {
		in = c.walkList(le.list[le.index+1:], in)
		if in.empty() {
			break
		}
	}
	// Falling off the end of the function still holding the pin.
	if in.unreleased && !c.deferRelease {
		c.leak = true
	}
	return c.leak
}

// listEntry is one enclosing statement list and the index of the child
// containing the pin.
type listEntry struct {
	list  []ast.Stmt
	index int
}

// enclosingLists returns the chain of statement lists enclosing target,
// innermost first.
func enclosingLists(body *ast.BlockStmt, target ast.Stmt) []listEntry {
	var path []listEntry
	var find func(list []ast.Stmt) bool
	contains := func(s ast.Stmt) bool {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if n == target {
				found = true
			}
			return !found
		})
		return found
	}
	var findIn func(s ast.Stmt) bool
	find = func(list []ast.Stmt) bool {
		for i, s := range list {
			if s == target {
				path = append(path, listEntry{list, i})
				return true
			}
			if contains(s) {
				if findIn(s) {
					path = append(path, listEntry{list, i})
					return true
				}
				return false
			}
		}
		return false
	}
	findIn = func(s ast.Stmt) bool {
		switch v := s.(type) {
		case *ast.BlockStmt:
			return find(v.List)
		case *ast.IfStmt:
			if find(v.Body.List) {
				return true
			}
			if v.Else != nil {
				return findIn(v.Else)
			}
			return false
		case *ast.ForStmt:
			return find(v.Body.List)
		case *ast.RangeStmt:
			return find(v.Body.List)
		case *ast.SwitchStmt:
			return findIn(&ast.BlockStmt{List: caseBodies(v.Body)})
		case *ast.TypeSwitchStmt:
			return findIn(&ast.BlockStmt{List: caseBodies(v.Body)})
		case *ast.SelectStmt:
			return findIn(&ast.BlockStmt{List: commBodies(v.Body)})
		case *ast.LabeledStmt:
			return findIn(v.Stmt)
		}
		return false
	}
	if !find(body.List) {
		return nil
	}
	return path
}

func caseBodies(b *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range b.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc.Body...)
		}
	}
	return out
}

func commBodies(b *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range b.List {
		if cc, ok := s.(*ast.CommClause); ok {
			out = append(out, cc.Body...)
		}
	}
	return out
}

// walkList interprets a statement sequence, returning the possible states
// on fallthrough. Returns encountered while unreleased mark a leak.
func (c *checker) walkList(stmts []ast.Stmt, in stateSet) stateSet {
	states := in
	for _, s := range stmts {
		if states.empty() {
			return states
		}
		states = c.walkStmt(s, states)
	}
	return states
}

func (c *checker) walkStmt(s ast.Stmt, in stateSet) stateSet {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		if in.unreleased && !c.deferRelease {
			c.leak = true
		}
		return stateSet{}
	case *ast.DeferStmt:
		if containsUnpin(c.info, v) {
			c.deferRelease = true
			return stateSet{released: true}
		}
		return in
	case *ast.IfStmt:
		if c.isErrGuard(v.Cond) {
			// The failure path of the pin itself: no pin is held inside,
			// so its returns are exempt. Fallthrough keeps the pin state.
			return in
		}
		out := c.walkList(v.Body.List, in)
		if v.Else != nil {
			out = out.union(c.walkStmt(v.Else, in))
		} else {
			out = out.union(in)
		}
		return out
	case *ast.BlockStmt:
		return c.walkList(v.List, in)
	case *ast.ForStmt:
		return in.union(c.walkList(v.Body.List, in))
	case *ast.RangeStmt:
		return in.union(c.walkList(v.Body.List, in))
	case *ast.SwitchStmt:
		return c.walkCases(v.Body, in, hasDefault(v.Body))
	case *ast.TypeSwitchStmt:
		return c.walkCases(v.Body, in, hasDefault(v.Body))
	case *ast.SelectStmt:
		return c.walkCases(v.Body, in, false)
	case *ast.LabeledStmt:
		return c.walkStmt(v.Stmt, in)
	case *ast.BranchStmt:
		// break/continue/goto: stop tracking this path rather than guess.
		return stateSet{}
	default:
		if containsUnpin(c.info, s) {
			return stateSet{released: true}
		}
		return in
	}
}

func hasDefault(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (c *checker) walkCases(b *ast.BlockStmt, in stateSet, exhaustive bool) stateSet {
	var out stateSet
	for _, s := range b.List {
		var body []ast.Stmt
		switch cc := s.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		default:
			continue
		}
		out = out.union(c.walkList(body, in))
	}
	if !exhaustive {
		out = out.union(in)
	}
	return out
}

// isErrGuard reports whether cond tests the pin's error result against
// nil ("err != nil" in either operand order).
func (c *checker) isErrGuard(cond ast.Expr) bool {
	if c.pin.errObj == nil {
		return false
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "!=" {
		return false
	}
	isErr := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && c.info.Uses[id] == c.pin.errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isErr(be.X) && isNil(be.Y)) || (isErr(be.Y) && isNil(be.X))
}

// containsUnpin reports whether an Unpin call on a BufferPool occurs
// anywhere inside the node.
func containsUnpin(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := analysis.MethodCall(info, call, "BufferPool", "Unpin"); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
