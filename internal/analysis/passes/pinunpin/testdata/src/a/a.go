// Package a holds pin-discipline violations for the pinunpin analyzer.
// The BufferPool here mirrors the storage one by name and method shape.
package a

type PageID uint32

type BufferPool struct{}

func (bp *BufferPool) Fetch(id PageID) ([]byte, error)  { return nil, nil }
func (bp *BufferPool) NewPage() (PageID, []byte, error) { return 0, nil, nil }
func (bp *BufferPool) Unpin(id PageID, dirty bool)      {}

// leakOnEarlyReturn unpins on the happy path but leaks when returning from
// the middle of the function.
func leakOnEarlyReturn(bp *BufferPool, id PageID) error {
	buf, err := bp.Fetch(id) // want "not unpinned on every path"
	if err != nil {
		return err
	}
	if len(buf) == 0 {
		return nil
	}
	bp.Unpin(id, false)
	return nil
}

// leakAtEnd never unpins at all.
func leakAtEnd(bp *BufferPool, id PageID) {
	buf, err := bp.Fetch(id) // want "not unpinned on every path"
	_ = buf
	_ = err
}

// leakNewPage leaks the freshly allocated page on the full branch.
func leakNewPage(bp *BufferPool, full bool) error {
	id, buf, err := bp.NewPage() // want "not unpinned on every path"
	if err != nil {
		return err
	}
	_ = buf
	if full {
		return nil
	}
	bp.Unpin(id, true)
	return nil
}

// discarded drops the pinned buffer on the floor.
func discarded(bp *BufferPool, id PageID) {
	bp.Fetch(id) // want "discarded"
}

// cache stores pinned buffers but has no method that ever unpins: storing
// a pin here makes it unreleasable.
type cache struct {
	bufs map[PageID][]byte
}

func (c *cache) size() int { return len(c.bufs) }

// storeForever parks the pin in a struct nothing can release.
func storeForever(bp *BufferPool, c *cache, id PageID) error {
	buf, err := bp.Fetch(id) // want "no method calling Unpin"
	if err != nil {
		return err
	}
	c.bufs[id] = buf
	return nil
}
