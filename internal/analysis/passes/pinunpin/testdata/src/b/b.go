// Package b holds compliant pin usage; the analyzer must stay silent.
package b

type PageID uint32

type BufferPool struct{}

func (bp *BufferPool) Fetch(id PageID) ([]byte, error)  { return nil, nil }
func (bp *BufferPool) NewPage() (PageID, []byte, error) { return 0, nil, nil }
func (bp *BufferPool) Unpin(id PageID, dirty bool)      {}

func balanced(bp *BufferPool, id PageID) error {
	buf, err := bp.Fetch(id)
	if err != nil {
		return err
	}
	_ = buf
	bp.Unpin(id, false)
	return nil
}

func deferred(bp *BufferPool, id PageID) (int, error) {
	buf, err := bp.Fetch(id)
	if err != nil {
		return 0, err
	}
	defer bp.Unpin(id, false)
	return len(buf), nil
}

func unpinInAllBranches(bp *BufferPool, id PageID, flag bool) {
	buf, _ := bp.Fetch(id)
	_ = buf
	if flag {
		bp.Unpin(id, false)
		return
	}
	bp.Unpin(id, true)
}

type iterator struct {
	buf    []byte
	pinned bool
}

// escapeToField transfers pin ownership to the iterator, which unpins in
// its own Close; the analyzer must not flag the transfer.
func escapeToField(bp *BufferPool, id PageID, it *iterator) error {
	buf, err := bp.Fetch(id)
	if err != nil {
		return err
	}
	it.buf = buf
	it.pinned = true
	return nil
}

func newPageBalanced(bp *BufferPool) (PageID, error) {
	id, buf, err := bp.NewPage()
	if err != nil {
		return 0, err
	}
	buf[0] = 1
	bp.Unpin(id, true)
	return id, nil
}

// Close releases the iterator's pin: the method that makes the ownership
// transfer in escapeToField legitimate.
func (it *iterator) Close(bp *BufferPool, id PageID) {
	if it.pinned {
		bp.Unpin(id, false)
		it.pinned = false
	}
}

// composed transfers the pin into a composite literal of a releasing type.
func composed(bp *BufferPool, id PageID) (*iterator, error) {
	buf, err := bp.Fetch(id)
	if err != nil {
		return nil, err
	}
	return &iterator{buf: buf, pinned: true}, nil
}

// returned hands the raw buffer (and its pin) to the caller.
func returned(bp *BufferPool, id PageID) ([]byte, error) {
	buf, err := bp.Fetch(id)
	if err != nil {
		return nil, err
	}
	return buf, nil
}
