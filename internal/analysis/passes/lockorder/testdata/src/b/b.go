// Package b nests locks in one consistent global order; no inversion.
package b

import "sync"

type Account struct {
	mu  sync.Mutex
	bal int
}

type Ledger struct {
	mu      sync.Mutex
	entries int
}

func Transfer(acc *Account, led *Ledger) {
	acc.mu.Lock()
	led.mu.Lock()
	led.entries++
	acc.bal--
	led.mu.Unlock()
	acc.mu.Unlock()
}

func Settle(acc *Account, led *Ledger) {
	acc.mu.Lock()
	led.mu.Lock()
	led.entries = 0
	led.mu.Unlock()
	acc.mu.Unlock()
}

// Hierarchy locks two instances of one type: same-type nesting is out of
// the analyzer's scope.
func Hierarchy(parent, child *Account) {
	parent.mu.Lock()
	child.mu.Lock()
	child.bal = parent.bal
	child.mu.Unlock()
	parent.mu.Unlock()
}
