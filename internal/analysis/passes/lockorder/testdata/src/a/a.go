// Package a holds a lock-order inversion: Transfer locks Account then
// Ledger, Audit locks Ledger then Account.
package a

import "sync"

type Account struct {
	mu  sync.Mutex
	bal int
}

type Ledger struct {
	mu      sync.Mutex
	entries int
}

func Transfer(acc *Account, led *Ledger) {
	acc.mu.Lock()
	led.mu.Lock() // want "lock-order inversion"
	led.entries++
	acc.bal--
	led.mu.Unlock()
	acc.mu.Unlock()
}

func Audit(acc *Account, led *Ledger) {
	led.mu.Lock()
	acc.mu.Lock() // want "lock-order inversion"
	_ = acc.bal
	_ = led.entries
	acc.mu.Unlock()
	led.mu.Unlock()
}

// SuppressedAudit shows a sanctioned inversion being silenced.
func SuppressedAudit(acc *Account, led *Ledger) {
	led.mu.Lock()
	//lint:ignore lockorder audit path cannot run concurrently with transfers
	acc.mu.Lock()
	acc.mu.Unlock()
	led.mu.Unlock()
}
