// Package lockorder detects lock-order inversions across the whole
// module. Every time a function acquires the mutex of one struct type
// while holding the mutex of another, that is an ordering commitment:
// type A's lock is taken before type B's. If some other function —
// anywhere in the module — commits to the opposite order, two goroutines
// running the two functions can each hold one lock and wait forever on
// the other.
//
// The per-package Run pass solves the lock dataflow for every function
// (including goroutine and deferred-closure bodies) and records a
// directed edge held-type -> acquired-type for each nested acquisition,
// keyed by package-qualified struct type names. The Finish hook, which
// runs once after every package, reports each edge that lies on a cycle.
// Same-type nesting (a parent node locking a child of the same type) is
// deliberately out of scope: it is a common hierarchical pattern and the
// instance identity needed to judge it is not statically available.
package lockorder

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"recdb/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Doc:    "mutexes of different struct types must be acquired in one global order",
	Run:    run,
	Finish: finish,
}

// lockEdge records one nested acquisition: To's lock taken while From's
// lock was held, at Pos inside Fn.
type lockEdge struct {
	From, To string
	Pos      token.Position
	Fn       string
}

func run(pass *analysis.Pass) error {
	var edges []lockEdge
	if prev, ok := pass.Shared["edges"].([]lockEdge); ok {
		edges = prev
	}
	for _, fd := range analysis.FuncDecls(pass.Files) {
		name := fd.Name.Name
		var expand func(block *ast.BlockStmt, entry analysis.LockSet)
		expand = func(block *ast.BlockStmt, entry analysis.LockSet) {
			g := analysis.BuildCFG(block)
			ownerTypes := lockOwnerTypes(pass, block)
			lf := analysis.SolveLockFlow(g, pass.TypesInfo, entry)
			lf.Walk(func(n ast.Node, held analysis.LockSet) {
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					return
				}
				base, op, ok := analysis.LockEventOf(pass.TypesInfo, es.X)
				if !ok || (op != "Lock" && op != "RLock") {
					return
				}
				to := ownerTypes[base]
				if to == "" {
					return
				}
				for heldKey, st := range held {
					if heldKey == base || !st.Held() {
						continue
					}
					from := ownerTypes[heldKey]
					if from == "" || from == to {
						continue
					}
					edges = append(edges, lockEdge{
						From: from,
						To:   to,
						Pos:  pass.Fset.Position(es.Pos()),
						Fn:   name,
					})
				}
			})
			for _, fl := range g.GoBodies {
				expand(fl.Body, analysis.LockSet{})
			}
			for _, fl := range g.DeferBodies {
				expand(fl.Body, analysis.ClosureEntryLocks(pass.TypesInfo, fl))
			}
		}
		expand(fd.Body, analysis.LockSet{})
	}
	pass.Shared["edges"] = edges
	return nil
}

// lockOwnerTypes maps each lock base key used in the body to the
// package-qualified name of the struct type owning the mutex.
func lockOwnerTypes(pass *analysis.Pass, block *ast.BlockStmt) map[string]string {
	out := make(map[string]string)
	ast.Inspect(block, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		base, _, ok := analysis.LockEventOf(pass.TypesInfo, call)
		if !ok {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr) // shape guaranteed by LockEventOf
		owner := sel.X
		if os, isSel := owner.(*ast.SelectorExpr); isSel {
			owner = os.X
		}
		named := analysis.NamedOf(pass.TypesInfo.TypeOf(owner))
		if named == nil {
			return true
		}
		name := named.Obj().Name()
		if p := named.Obj().Pkg(); p != nil {
			name = p.Path() + "." + name
		}
		out[base] = name
		return true
	})
	return out
}

func finish(mp *analysis.ModulePass) error {
	edges, _ := mp.Shared["edges"].([]lockEdge)
	if len(edges) == 0 {
		return nil
	}
	// Adjacency over distinct type pairs.
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.From] == nil {
			adj[e.From] = make(map[string]bool)
		}
		adj[e.From][e.To] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[cur] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	// An edge From->To is on a cycle iff To reaches From. Report each such
	// acquisition site once, deterministically ordered.
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	seen := make(map[lockEdge]bool)
	for _, e := range edges {
		if e.From == e.To || seen[e] || !reaches(e.To, e.From) {
			continue
		}
		seen[e] = true
		mp.ReportAtf(e.Pos, "lock-order inversion in %s: %s locked while holding %s, but elsewhere %s is locked while holding %s",
			e.Fn, short(e.To), short(e.From), short(e.From), short(e.To))
	}
	return nil
}

// short trims the package path off a qualified type name for readability.
func short(qualified string) string {
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
