package lockorder_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/lockorder"
)

func TestInversions(t *testing.T) { analysistest.Run(t, ".", lockorder.Analyzer, "a") }

func TestConsistent(t *testing.T) { analysistest.Run(t, ".", lockorder.Analyzer, "b") }
