// Package passes registers the RecDB analyzer suite.
package passes

import (
	"recdb/internal/analysis"
	"recdb/internal/analysis/passes/atomicfield"
	"recdb/internal/analysis/passes/closecheck"
	"recdb/internal/analysis/passes/deferloop"
	"recdb/internal/analysis/passes/errwrap"
	"recdb/internal/analysis/passes/lockorder"
	"recdb/internal/analysis/passes/locksafe"
	"recdb/internal/analysis/passes/nopanic"
	"recdb/internal/analysis/passes/pinunpin"
	"recdb/internal/analysis/passes/walorder"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		closecheck.Analyzer,
		deferloop.Analyzer,
		errwrap.Analyzer,
		lockorder.Analyzer,
		locksafe.Analyzer,
		nopanic.Analyzer,
		pinunpin.Analyzer,
		walorder.Analyzer,
	}
}
