// Package passes registers the RecDB analyzer suite.
package passes

import (
	"recdb/internal/analysis"
	"recdb/internal/analysis/passes/closecheck"
	"recdb/internal/analysis/passes/errwrap"
	"recdb/internal/analysis/passes/locksafe"
	"recdb/internal/analysis/passes/nopanic"
	"recdb/internal/analysis/passes/pinunpin"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		errwrap.Analyzer,
		locksafe.Analyzer,
		nopanic.Analyzer,
		pinunpin.Analyzer,
	}
}
