// Package b scopes per-iteration defers correctly; the analyzer is silent.
package b

import "os"

// hoisted puts the defer in a per-iteration function call.
func hoisted(paths []string) error {
	for _, p := range paths {
		if err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// topLevel defers outside any loop.
func topLevel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		_ = i
	}
	return nil
}

// suppressed documents a bounded loop where accumulation is intended.
func suppressed(paths [2]string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		//lint:ignore deferloop both files must stay open until return
		defer f.Close()
	}
}
