// Package a defers inside loops; resources pile up until function exit.
package a

import "os"

func openAll(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want "defer inside a loop"
	}
	return nil
}

func nested(n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			defer func() {}() // want "defer inside a loop"
		}
	}
}
