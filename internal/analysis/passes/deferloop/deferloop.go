// Package deferloop flags defer statements inside loop bodies. A defer
// runs at function exit, not loop-iteration exit, so a per-iteration
// resource (an iterator pin, a file handle, a lock) deferred in a loop
// accumulates until the function returns — the exact slow-leak shape the
// buffer pool turns into "all pinned" failures under load. The fix is to
// hoist the loop body into a function (where the defer is per-call) or
// release explicitly at the end of the iteration.
//
// A defer inside a function literal that merely *appears* in a loop is
// fine: the literal's own invocation scopes it.
package deferloop

import (
	"go/ast"

	"recdb/internal/analysis"
)

// Analyzer is the deferloop pass.
var Analyzer = &analysis.Analyzer{
	Name: "deferloop",
	Doc:  "defer inside a loop runs at function exit, accumulating resources across iterations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		check(pass, fd.Body, 0)
	}
	return nil
}

// check walks a body tracking loop depth; function literals reset it.
func check(pass *analysis.Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			if v != n {
				check(pass, v.Body, 0)
				return false
			}
		case *ast.ForStmt:
			if v != n {
				check(pass, v.Body, depth+1)
				return false
			}
		case *ast.RangeStmt:
			if v != n {
				check(pass, v.Body, depth+1)
				return false
			}
		case *ast.DeferStmt:
			if depth > 0 {
				pass.Reportf(v.Pos(), "defer inside a loop runs only at function exit; hoist the body into a function or release explicitly")
			}
		}
		return true
	})
}
