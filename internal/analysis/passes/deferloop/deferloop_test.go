package deferloop_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/deferloop"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", deferloop.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", deferloop.Analyzer, "b") }
