package closecheck_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/closecheck"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", closecheck.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", closecheck.Analyzer, "b") }
