// Package closecheck enforces the volcano iterator contract
// (exec.Operator: Open → Next* → Close) in two directions.
//
// Structurally, every operator type — a struct with the Open/Next/Close
// method shape — whose fields hold child operators must propagate Close to
// each child. The contract makes Close idempotent, so "the child was
// already closed by Collect in Open" is not a reason to skip it: an Open
// that fails halfway leaves children open, and only an unconditional
// Close-propagation releases them (and the buffer-pool pins scans hold).
//
// At call sites, an operator constructed by a function and kept in a local
// variable must be closed (directly or via defer) unless it escapes —
// returned, stored, or handed to another call such as exec.Collect or a
// parent operator's constructor, which then owns it.
package closecheck

import (
	"go/ast"
	"go/types"

	"recdb/internal/analysis"
)

// Analyzer is the closecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "operators must be closed, and Close must propagate to child operators",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkClosePropagation(pass)
	checkConstructionSites(pass)
	return nil
}

// isOperatorType reports whether t (or *t) has the volcano method shape:
// Open() error, Close() error, and a 3-result Next.
func isOperatorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return ifaceHasShape(iface)
	}
	named := analysis.NamedOf(t)
	if named == nil {
		return false
	}
	if iface, ok := named.Underlying().(*types.Interface); ok {
		return ifaceHasShape(iface)
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	return hasShape(func(name string) *types.Func {
		sel := ms.Lookup(nil, name)
		if sel == nil {
			// Exported methods may live in another package.
			for pkg := named.Obj().Pkg(); pkg != nil; {
				sel = ms.Lookup(pkg, name)
				break
			}
		}
		if sel == nil {
			return nil
		}
		f, _ := sel.Obj().(*types.Func)
		return f
	})
}

func ifaceHasShape(iface *types.Interface) bool {
	return hasShape(func(name string) *types.Func {
		for i := 0; i < iface.NumMethods(); i++ {
			if m := iface.Method(i); m.Name() == name {
				return m
			}
		}
		return nil
	})
}

func hasShape(lookup func(string) *types.Func) bool {
	open, next, cl := lookup("Open"), lookup("Next"), lookup("Close")
	if open == nil || next == nil || cl == nil {
		return false
	}
	returnsError := func(f *types.Func) bool {
		sig := f.Type().(*types.Signature)
		return sig.Results().Len() == 1 && analysis.ErrorType(sig.Results().At(0).Type())
	}
	nextSig := next.Type().(*types.Signature)
	return returnsError(open) && returnsError(cl) && nextSig.Results().Len() == 3
}

// checkClosePropagation verifies each operator struct's Close method
// closes every operator-typed field.
func checkClosePropagation(pass *analysis.Pass) {
	// Map receiver type name -> Close method decl in this package.
	closeDecls := make(map[string]*ast.FuncDecl)
	for _, fd := range analysis.FuncDecls(pass.Files) {
		if fd.Recv == nil || fd.Name.Name != "Close" || len(fd.Recv.List) == 0 {
			continue
		}
		if named := analysis.NamedOf(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)); named != nil {
			closeDecls[named.Obj().Name()] = fd
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil || !isOperatorType(obj.Type()) {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			closeDecl := closeDecls[ts.Name.Name]
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if !isOperatorType(field.Type()) {
					continue
				}
				if closeDecl == nil {
					pass.Reportf(ts.Pos(), "operator %s holds child operator %s but declares no Close in this package", ts.Name.Name, field.Name())
					continue
				}
				if !closesField(closeDecl.Body, field.Name()) {
					pass.Reportf(closeDecl.Pos(), "%s.Close does not close child operator field %s", ts.Name.Name, field.Name())
				}
			}
			return true
		})
	}
}

// closesField reports whether body contains a call <x>.<field>.Close().
func closesField(body *ast.BlockStmt, field string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == field {
			found = true
		}
		return !found
	})
	return found
}

// checkConstructionSites flags locally constructed operators that are used
// (Open/Next called) but never closed and never escape.
func checkConstructionSites(pass *analysis.Pass) {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		checkSites(pass, fd)
	}
}

func checkSites(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok.String() != ":=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		// Constructor call: plain (non-method) call returning one
		// operator-typed value.
		if _, isMethod := call.Fun.(*ast.SelectorExpr); isMethod {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				// Allow package-qualified constructors (exec.NewSeqScan).
				if _, isPkg := info.Uses[identOf(sel.X)].(*types.PkgName); !isPkg {
					return true
				}
			}
		}
		obj := identObj(info, as.Lhs[0])
		if obj == nil || !isOperatorType(obj.Type()) {
			return true
		}
		use := classifyUses(fd.Body, info, obj, as)
		if use.escapes || use.closed || !use.used {
			return true
		}
		pass.Reportf(as.Pos(), "operator %s is opened or iterated but never closed and never handed off", obj.Name())
		return true
	})
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id := identOf(e)
	if id == nil || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

type usage struct {
	used    bool // Open/Next/Schema called on it
	closed  bool // .Close() called (possibly deferred)
	escapes bool // returned, stored, reassigned, or passed to a call
}

func classifyUses(body *ast.BlockStmt, info *types.Info, obj types.Object, def ast.Stmt) usage {
	var u usage
	isObj := func(e ast.Expr) bool {
		id := identOf(e)
		return id != nil && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == def {
			return false // skip the defining statement itself
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && isObj(sel.X) {
				if sel.Sel.Name == "Close" {
					u.closed = true
				} else {
					u.used = true
				}
				return true
			}
			for _, arg := range v.Args {
				if isObj(arg) {
					u.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if isObj(r) {
					u.escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				if isObj(rhs) {
					u.escapes = true
				}
			}
		case *ast.ValueSpec:
			// var op Operator = x hands ownership to op.
			for _, val := range v.Values {
				if isObj(val) {
					u.escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if isObj(kv.Value) {
						u.escapes = true
					}
				} else if isObj(el) {
					u.escapes = true
				}
			}
		}
		return true
	})
	return u
}
