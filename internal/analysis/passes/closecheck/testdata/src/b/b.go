// Package b holds compliant operator usage; the analyzer must stay silent.
package b

type Row []string

type Operator interface {
	Open() error
	Next() (Row, bool, error)
	Close() error
}

type Source struct{ rows []Row }

func (s *Source) Open() error              { return nil }
func (s *Source) Next() (Row, bool, error) { return nil, false, nil }
func (s *Source) Close() error             { return nil }

func NewSource() Operator { return &Source{} }

// GoodFilter propagates Close to its child.
type GoodFilter struct {
	Child Operator
}

func (f *GoodFilter) Open() error              { return f.Child.Open() }
func (f *GoodFilter) Next() (Row, bool, error) { return f.Child.Next() }
func (f *GoodFilter) Close() error             { return f.Child.Close() }

// Join closes both children even when the left Close fails.
type Join struct {
	Left  Operator
	Right Operator
}

func (j *Join) Open() error              { return nil }
func (j *Join) Next() (Row, bool, error) { return nil, false, nil }
func (j *Join) Close() error {
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

func drainClosed() (int, error) {
	op := NewSource()
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		_, ok, err := op.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	return n, nil
}

// handoff transfers ownership to the caller, who must close it.
func handoff() Operator {
	op := NewSource()
	return op
}

// wrapped hands the operator to a parent, which owns closing it.
func wrapped() Operator {
	op := NewSource()
	var parent Operator = &GoodFilter{Child: op}
	return parent
}
