// Package a holds operator-close violations for the closecheck analyzer.
package a

type Row []string

type Operator interface {
	Open() error
	Next() (Row, bool, error)
	Close() error
}

type Source struct{ rows []Row }

func (s *Source) Open() error              { return nil }
func (s *Source) Next() (Row, bool, error) { return nil, false, nil }
func (s *Source) Close() error             { return nil }

func NewSource() Operator { return &Source{} }

// BadFilter forgets to propagate Close to its child.
type BadFilter struct {
	Child Operator
}

func (f *BadFilter) Open() error              { return f.Child.Open() }
func (f *BadFilter) Next() (Row, bool, error) { return f.Child.Next() }

func (f *BadFilter) Close() error { // want "does not close child operator field Child"
	return nil
}

// drain iterates an operator but never closes it.
func drain() int {
	op := NewSource() // want "never closed"
	if err := op.Open(); err != nil {
		return 0
	}
	n := 0
	for {
		_, ok, _ := op.Next()
		if !ok {
			break
		}
		n++
	}
	return n
}
