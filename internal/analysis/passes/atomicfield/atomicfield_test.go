package atomicfield_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/atomicfield"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", atomicfield.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", atomicfield.Analyzer, "b") }
