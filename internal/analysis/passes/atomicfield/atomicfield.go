// Package atomicfield enforces all-or-nothing atomicity on struct
// fields. The moment one site does atomic.AddUint64(&s.f, 1), every
// access to s.f must go through sync/atomic: a single plain read races
// with the atomic writers (the race detector will flag it, but only on
// the schedules it happens to see), and a plain write can be lost
// entirely.
//
// The analyzer records every field whose address is passed to a
// sync/atomic function anywhere in the package, then flags plain
// selector accesses to those fields. Out of scope by design: atomics on
// slice or array elements (instance identity is not static) and fields
// of values freshly constructed in the same function (not shared yet,
// the constructor pattern).
//
// Typed atomics (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...)
// prevent plain access by construction, but they have a failure mode of
// their own: copying one by value detaches the copy from every
// concurrent site that still uses the original, silently forking the
// counter. The analyzer therefore also flags by-value copies of
// sync/atomic types — in assignments, call arguments, composite
// literals, returns, and range clauses. Taking the address (&s.ops),
// calling methods (s.ops.Load()), and binding method values
// (s.ops.Load — the receiver binds by pointer) are the sanctioned uses
// and are never flagged; neither is a composite literal, which
// constructs a fresh value rather than copying a shared one.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"recdb/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed through sync/atomic must never be read or written plainly",
	Run:  run,
}

type fieldKey struct {
	typeName string
	field    string
}

func run(pass *analysis.Pass) error {
	atomicFields := make(map[fieldKey]bool)
	// atomicOperands are the selector nodes appearing as &s.f inside an
	// atomic call; they are the sanctioned accesses.
	atomicOperands := make(map[*ast.SelectorExpr]bool)

	checkTypedCopies(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key, ok := fieldKeyOf(pass.TypesInfo, sel)
				if !ok {
					continue
				}
				atomicFields[key] = true
				atomicOperands[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	for _, fd := range analysis.FuncDecls(pass.Files) {
		locals := localConstructions(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOperands[sel] {
				return true
			}
			key, ok := fieldKeyOf(pass.TypesInfo, sel)
			if !ok || !atomicFields[key] {
				return true
			}
			if base := analysis.BaseString(sel.X); base != "" && locals[rootOf(base)] {
				return true // freshly constructed, not shared yet
			}
			pass.Reportf(sel.Pos(), "field %s.%s is accessed with sync/atomic elsewhere; plain access races with the atomic sites", key.typeName, key.field)
			return true
		})
	}
	return nil
}

// checkTypedCopies flags by-value copies of sync/atomic typed values
// (atomic.Int64 and friends) wherever a copy can happen: assignment and
// var-initializer right-hand sides, call arguments, composite-literal
// elements, return results, and range value variables. The expressions
// sanctioned by design never reach a copy context: &s.ops produces a
// pointer type, and s.ops.Load() / the method value s.ops.Load leave
// the atomic as the selector's receiver, not as the context expression.
func checkTypedCopies(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					reportTypedCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range st.Values {
					reportTypedCopy(pass, v)
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					reportTypedCopy(pass, r)
				}
			case *ast.CallExpr:
				for _, a := range st.Args {
					reportTypedCopy(pass, a)
				}
			case *ast.CompositeLit:
				for _, el := range st.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					reportTypedCopy(pass, el)
				}
			case *ast.RangeStmt:
				// for _, c := range []atomic.Int64{...} copies each element.
				if st.Value != nil {
					reportTypedCopy(pass, st.Value)
				}
			}
			return true
		})
	}
}

// reportTypedCopy flags e when it is a sync/atomic typed value copied by
// value in the enclosing context.
func reportTypedCopy(pass *analysis.Pass, e ast.Expr) {
	e = ast.Unparen(e)
	if _, ok := e.(*ast.CompositeLit); ok {
		return // fresh construction, not a copy of a shared value
	}
	name := typedAtomicName(pass.TypesInfo.TypeOf(e))
	if name == "" {
		return
	}
	pass.Reportf(e.Pos(), "copy of %s detaches it from every site using the original; share a pointer to it instead", name)
}

// typedAtomicName returns "atomic.Int64"-style names for the typed
// synchronization values of sync/atomic, "" for every other type.
// Pointers to them deliberately return "": sharing by pointer is the
// sanctioned pattern.
func typedAtomicName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return "atomic." + obj.Name()
}

// isAtomicCall reports whether call targets a function in sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldKeyOf resolves a selector to (struct type name, field name) when it
// selects a real struct field.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) (fieldKey, bool) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	named := analysis.NamedOf(info.TypeOf(sel.X))
	if named == nil {
		return fieldKey{}, false
	}
	return fieldKey{named.Obj().Name(), sel.Sel.Name}, true
}

// localConstructions records variables bound to freshly constructed
// values (x := &T{...}, x := T{...}, x := new(T)).
func localConstructions(body *ast.BlockStmt) map[string]bool {
	locals := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CompositeLit:
				locals[id.Name] = true
			case *ast.UnaryExpr:
				if rhs.Op == token.AND {
					if _, isLit := rhs.X.(*ast.CompositeLit); isLit {
						locals[id.Name] = true
					}
				}
			case *ast.CallExpr:
				if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "new" {
					locals[id.Name] = true
				}
			}
		}
		return true
	})
	return locals
}

func rootOf(base string) string {
	for i := 0; i < len(base); i++ {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}
