// Typed atomics used by pointer, method, and method value: the
// sanctioned patterns the copy check must stay silent on.
package b

import "sync/atomic"

type TypedStats struct {
	ops atomic.Int64
	cur atomic.Pointer[TypedStats]
	box atomic.Value
}

func (s *TypedStats) Bump() { s.ops.Add(1) }

// A method value binds the pointer receiver — handing it around shares
// the atomic rather than copying it.
func (s *TypedStats) Loader() func() int64 { return s.ops.Load }

// Passing the address shares, not copies.
func drain(c *atomic.Int64) int64 { return c.Swap(0) }

func (s *TypedStats) Drain() int64 { return drain(&s.ops) }

// Fresh construction is not a copy of a shared value; neither is
// indexing through a pointer to the element.
func fresh() *TypedStats {
	s := &TypedStats{}
	s.ops.Store(1)
	return s
}

func drainAll(counters []atomic.Int64) int64 {
	var total int64
	for i := range counters {
		total += counters[i].Load()
	}
	return total
}

// Method calls on the atomic, including the generic and interface
// flavors, leave it in place.
func (s *TypedStats) Peek() *TypedStats { return s.cur.Load() }

func (s *TypedStats) Stash(v any) { s.box.Store(v) }

// Suppressed documents a sanctioned copy (e.g. a test fixture frozen
// after all writers joined).
func (s *TypedStats) Frozen() int64 {
	//lint:ignore atomicfield all writers joined; the copy is a snapshot
	c := s.ops
	return c.Load()
}
