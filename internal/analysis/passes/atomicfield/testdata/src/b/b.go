// Package b uses atomics consistently; the analyzer must stay silent.
package b

import "sync/atomic"

type Stats struct {
	hits uint64
	name string
}

func (s *Stats) Hit() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *Stats) Snapshot() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// Name is a plain field never touched atomically; plain access is fine.
func (s *Stats) Name() string {
	return s.name
}

// NewStats fills in a freshly constructed value before sharing it.
func NewStats(seed uint64) *Stats {
	s := &Stats{}
	s.hits = seed
	return s
}

// Counters on slice elements are out of scope: identity is not static.
func bump(qb []uint64, i int) uint64 {
	atomic.AddUint64(&qb[i], 1)
	return qb[i]
}

// Suppressed documents a sanctioned post-barrier plain read.
func (s *Stats) Final() uint64 {
	//lint:ignore atomicfield all writers joined before this read
	return s.hits
}
