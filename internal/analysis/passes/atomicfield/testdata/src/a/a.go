// Package a mixes atomic and plain access to the same fields.
package a

import "sync/atomic"

type Stats struct {
	hits   uint64
	misses uint64
}

// Hit establishes hits as an atomic field.
func (s *Stats) Hit() {
	atomic.AddUint64(&s.hits, 1)
}

// Snapshot reads it plainly: races with Hit.
func (s *Stats) Snapshot() uint64 {
	return s.hits // want "plain access races"
}

// Reset writes it plainly: the write can be lost against AddUint64.
func (s *Stats) Reset() {
	s.hits = 0 // want "plain access races"
}

// Miss uses atomic access consistently; only the plain sites are flagged.
func (s *Stats) Miss() {
	atomic.AddUint64(&s.misses, 1)
}

func (s *Stats) Misses() uint64 {
	return atomic.LoadUint64(&s.misses)
}
