// Typed-atomic copies: every by-value use of a sync/atomic typed value
// forks it from the sites still updating the original.
package a

import "sync/atomic"

type TypedStats struct {
	ops  atomic.Int64
	gate atomic.Bool
	cur  atomic.Pointer[TypedStats]
}

// Assignment copies the counter; the copy stops moving.
func (s *TypedStats) snapshotOps() int64 {
	c := s.ops // want "copy of atomic.Int64"
	return c.Load()
}

func report(v atomic.Int64) int64 { return v.Load() }

// Passing by value copies at the call boundary.
func (s *TypedStats) callCopy() int64 {
	return report(s.ops) // want "copy of atomic.Int64"
}

// Returning by value copies on the way out.
func (s *TypedStats) returnCopy() atomic.Bool {
	return s.gate // want "copy of atomic.Bool"
}

type frozen struct {
	inner atomic.Int64
}

// Composite literals copy field by field.
func (s *TypedStats) literalCopy() *frozen {
	return &frozen{inner: s.ops} // want "copy of atomic.Int64"
}

// Generic typed atomics copy the same way.
func (s *TypedStats) pointerCopy() atomic.Pointer[TypedStats] {
	return s.cur // want "copy of atomic.Pointer"
}

// var initializers copy too.
func (s *TypedStats) varCopy() int64 {
	var c = s.ops // want "copy of atomic.Int64"
	return c.Load()
}

// Ranging by value copies every element.
func drainAll(counters []atomic.Int64) int64 {
	var total int64
	for _, c := range counters { // want "copy of atomic.Int64"
		total += c.Load()
	}
	return total
}
