// Package b honors the WAL ordering contract; the analyzer stays silent.
package b

import "sync"

type Log struct{ n int }

func (l *Log) Append(p []byte) (uint64, error) {
	l.n++
	return uint64(l.n), nil
}

func (l *Log) AppendBatch(ps [][]byte) (uint64, error) {
	l.n += len(ps)
	return uint64(l.n), nil
}

// rotate is WAL-internal maintenance: Log methods are exempt.
func (l *Log) rotate() {
	l.Append(nil)
}

type Engine struct{ q []string }

func (e *Engine) SetCommitHook(h func(string) error) {}

func (e *Engine) ExecParsed(q string) error {
	e.q = append(e.q, q)
	return nil
}

type DB struct {
	mu  sync.Mutex
	eng *Engine
	wal *Log
}

// logCommit is registered below; as the commit hook it may append —
// one record for a single statement, one atomic group for a transaction.
func (db *DB) logCommit(q string) error {
	if len(q) > 1 {
		_, err := db.wal.AppendBatch([][]byte{[]byte(q)})
		return err
	}
	_, err := db.wal.Append([]byte(q))
	return err
}

func Open(db *DB) {
	db.eng.SetCommitHook(db.logCommit)
}

// OpenInline registers a literal hook; appends inside it are sanctioned.
func OpenInline(db *DB, l *Log) {
	db.eng.SetCommitHook(func(q string) error {
		_, err := l.Append([]byte(q))
		return err
	})
}

// Exec holds the commit mutex across the engine call on every path.
func (db *DB) Exec(q string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.ExecParsed(q)
}

func mutates(q string) bool { return len(q) > 0 }

// ExecRead locks only for mutating statements: the read-only path goes
// through snapshots and never touches the mutex. The call site is still
// reachable with the mutex held, which is what the analyzer requires —
// it cannot evaluate the mutates predicate itself.
func (db *DB) ExecRead(q string) error {
	if mutates(q) {
		db.mu.Lock()
		defer db.mu.Unlock()
	}
	return db.eng.ExecParsed(q)
}

// replay drives a private engine through a plain local: exempt.
func replay(lines []string) *Engine {
	eng := &Engine{}
	for _, q := range lines {
		eng.ExecParsed(q)
	}
	return eng
}

// benchAppend documents a sanctioned measurement-only append.
func benchAppend(l *Log) {
	//lint:ignore walorder benchmark measures raw append latency, no engine attached
	l.Append([]byte("x"))
}
