// Package a violates the WAL ordering contract.
package a

import "sync"

type Log struct{ n int }

func (l *Log) Append(p []byte) (uint64, error) {
	l.n++
	return uint64(l.n), nil
}

func (l *Log) AppendBatch(ps [][]byte) (uint64, error) {
	l.n += len(ps)
	return uint64(l.n), nil
}

type Engine struct{ q []string }

func (e *Engine) SetCommitHook(h func(string) error) {}

func (e *Engine) ExecParsed(q string) error {
	e.q = append(e.q, q)
	return nil
}

type DB struct {
	mu  sync.Mutex
	eng *Engine
	wal *Log
}

// rawAppend writes the WAL outside any registered commit hook.
func (db *DB) rawAppend(q string) {
	db.wal.Append([]byte(q)) // want "outside the registered commit hook"
}

// rawBatch writes a record group outside the commit path: a transaction
// "committed" this way can be durable without ever applying.
func (db *DB) rawBatch(qs []string) {
	var ps [][]byte
	for _, q := range qs {
		ps = append(ps, []byte(q))
	}
	db.wal.AppendBatch(ps) // want "outside the registered commit hook"
}

// closureAppend hides the raw append inside an unregistered closure.
func (db *DB) closureAppend(q string) func() {
	return func() {
		db.wal.Append([]byte(q)) // want "outside the registered commit hook"
	}
}

// execUnlocked reaches the engine without the commit mutex.
func (db *DB) execUnlocked(q string) error {
	return db.eng.ExecParsed(q) // want "without holding"
}

// execSomePath may arrive at the engine with the mutex already released.
func (db *DB) execSomePath(q string, fast bool) error {
	db.mu.Lock()
	if fast {
		db.mu.Unlock()
	}
	err := db.eng.ExecParsed(q) // want "unlocked on some path"
	if !fast {
		db.mu.Unlock()
	}
	return err
}
