package walorder_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/walorder"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", walorder.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", walorder.Analyzer, "b") }
