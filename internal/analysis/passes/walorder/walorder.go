// Package walorder protects the engine's durability contract: the order
// WAL append vs. state apply, and the mutex that serializes them.
//
// Two rules, both derived from the crash-safety design (DESIGN.md):
//
//  1. Raw WAL writes are confined to the commit hook. The only sanctioned
//     caller of Log.Append or Log.AppendBatch is a function registered
//     via SetCommitHook
//     (either a named function/method passed by value or a function
//     literal passed inline) — that hook is invoked by the engine at the
//     one point in the commit sequence where logging before apply is
//     guaranteed. An Append anywhere else can persist a statement that
//     never applied, or apply one that never persisted.
//
//  2. Engine exec entry points reached through a mutex-owning wrapper
//     (db.eng.ExecParsed and friends) must be reachable with the
//     wrapper's mutex held. That mutex is what makes hook-append and
//     apply atomic with respect to concurrent commits. A conditional
//     acquisition is sanctioned — the wrapper locks only for mutating
//     statements, read-only ones go through page-level snapshots without
//     it, and the dataflow cannot evaluate that predicate — but a call
//     site no path ever locks for, or one some path has locked and then
//     released before the call, is an ordering bug.
//
// Methods of the Log type itself are exempt from rule 1 (the WAL's own
// internals), as are engines reached through plain locals (replay code
// constructs a private engine before any concurrency exists).
package walorder

import (
	"go/ast"
	"go/types"

	"recdb/internal/analysis"
)

// Analyzer is the walorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "WAL appends only inside the registered commit hook; engine exec only under the owner's mutex",
	Run:  run,
}

// execEntryPoints are the Engine methods that mutate state and therefore
// trigger the commit hook.
var execEntryPoints = map[string]bool{
	"Exec":                true,
	"ExecScript":          true,
	"ExecParsed":          true,
	"ExecParsedCtx":       true,
	"ExecScriptParsed":    true,
	"ExecScriptParsedCtx": true,
}

func run(pass *analysis.Pass) error {
	hooks, hookLits := hookRegistrations(pass)
	for _, fd := range analysis.FuncDecls(pass.Files) {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		sanctioned := (fn != nil && hooks[fn]) || receiverIsLog(pass, fd)
		checkAppends(pass, fd.Body, sanctioned, hookLits)
		checkExecLocks(pass, fd)
	}
	return nil
}

// hookRegistrations finds every function registered as a commit hook:
// named functions/methods passed by value to SetCommitHook, and function
// literals passed inline.
func hookRegistrations(pass *analysis.Pass) (map[*types.Func]bool, map[*ast.FuncLit]bool) {
	g := analysis.BuildCallGraph(pass.Files, pass.TypesInfo)
	hooks := g.FuncValuesPassedTo(pass.TypesInfo, pass.Files, "SetCommitHook")
	lits := make(map[*ast.FuncLit]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "SetCommitHook" {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					lits[fl] = true
				}
			}
			return true
		})
	}
	return hooks, lits
}

// receiverIsLog reports whether fd is a method of the WAL Log type.
func receiverIsLog(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	named := analysis.NamedOf(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
	return named != nil && named.Obj().Name() == "Log"
}

// checkAppends flags Log.Append calls outside sanctioned contexts,
// descending into function literals and granting hook literals sanction.
func checkAppends(pass *analysis.Pass, body ast.Node, sanctioned bool, hookLits map[*ast.FuncLit]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if v != body {
				checkAppends(pass, v.Body, sanctioned || hookLits[v], hookLits)
				return false
			}
		case *ast.CallExpr:
			for _, m := range [...]string{"Append", "AppendBatch"} {
				if _, ok := analysis.MethodCall(pass.TypesInfo, v, "Log", m); ok && !sanctioned {
					pass.Reportf(v.Pos(), "Log.%s outside the registered commit hook: WAL and engine state can diverge on crash", m)
				}
			}
		}
		return true
	})
}

// checkExecLocks verifies rule 2 with the lock dataflow: every Engine
// exec entry point reached through <owner>.<field> where owner's struct
// has a mutex must execute with that mutex held on all paths.
func checkExecLocks(pass *analysis.Pass, fd *ast.FuncDecl) {
	g := analysis.BuildCFG(fd.Body)
	lf := analysis.SolveLockFlow(g, pass.TypesInfo, analysis.LockSet{})
	lf.Walk(func(n ast.Node, held analysis.LockSet) {
		ast.Inspect(n, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false // runs later, under its own discipline
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !execEntryPoints[sel.Sel.Name] {
				return true
			}
			engNamed := analysis.NamedOf(pass.TypesInfo.TypeOf(sel.X))
			if engNamed == nil || engNamed.Obj().Name() != "Engine" {
				return true
			}
			ownerSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true // plain local engine: private, pre-concurrency
			}
			ownerNamed := analysis.NamedOf(pass.TypesInfo.TypeOf(ownerSel.X))
			if ownerNamed == nil {
				return true
			}
			mutexes := mutexFieldsOf(ownerNamed)
			if len(mutexes) == 0 {
				return true
			}
			base := analysis.BaseString(ownerSel.X)
			if base == "" {
				return true
			}
			// The best state among the owner's mutexes decides; Released
			// separates the sanctioned conditional lock (one branch never
			// touches the mutex) from a lock-then-early-release.
			var st analysis.LockState
			for _, mf := range mutexes {
				s := held[base+"."+mf]
				if s.Held() && (!st.Held() || (s.Must && !st.Must)) {
					st = s
				} else if !st.Held() && s.Released {
					st.Released = true
				}
			}
			switch {
			case !st.Held():
				pass.Reportf(call.Pos(), "Engine.%s called through %s.%s without holding %s's mutex: commit hook and apply lose their ordering guarantee", sel.Sel.Name, base, ownerSel.Sel.Name, base)
			case st.Released:
				pass.Reportf(call.Pos(), "Engine.%s called through %s.%s while %s's mutex is unlocked on some path", sel.Sel.Name, base, ownerSel.Sel.Name, base)
			}
			return true
		})
	})
}

// mutexFieldsOf returns the names of the sync.Mutex / sync.RWMutex fields
// of the named type's underlying struct.
func mutexFieldsOf(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if analysis.MutexKindOf(st.Field(i).Type()) != "" {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}
