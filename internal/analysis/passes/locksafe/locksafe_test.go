package locksafe_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/locksafe"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", locksafe.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", locksafe.Analyzer, "b") }
