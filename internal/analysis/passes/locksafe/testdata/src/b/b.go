// Package b holds compliant locking; the analyzer must stay silent.
package b

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// EarlyExit unlocks inside a branch before returning; the fallthrough path
// is still locked and the analyzer must model that.
func (c *Counter) EarlyExit(fast bool) int {
	c.mu.Lock()
	if fast {
		n := c.n
		c.mu.Unlock()
		return n
	}
	n := c.n * 2
	c.mu.Unlock()
	return n
}

// incLocked follows the *Locked convention: the caller holds the lock.
func (c *Counter) incLocked() {
	c.n++
}

func (c *Counter) IncTwice() {
	c.mu.Lock()
	c.incLocked()
	c.incLocked()
	c.mu.Unlock()
}

// NewCounter fills in a freshly constructed value before sharing it.
func NewCounter(start int) *Counter {
	c := &Counter{}
	c.n = start
	return c
}

type Store struct {
	mu sync.RWMutex
	m  map[string]int
}

func (s *Store) Set(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

// GoLocked spawns a goroutine that takes the lock itself before touching
// the guarded field.
func (c *Counter) GoLocked() {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// DeferClosureRelease uses the Lock / deferred-closure-release pairing:
// the closure runs with the lock held, so its field write is safe.
func (c *Counter) DeferClosureRelease() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
}

// Suppressed documents a deliberate unlocked read.
func (c *Counter) Suppressed() int {
	//lint:ignore locksafe sampled stat, torn reads acceptable
	return c.n
}

// Layered owns two mutexes: a wide lock serializing writers and a narrow
// one guarding version metadata. The analyzer must track them separately.
type Layered struct {
	mu    sync.Mutex
	rows  int
	verMu sync.Mutex
	seq   uint64
}

// bump acquires the narrow lock on its own receiver.
func (l *Layered) bump() {
	l.verMu.Lock()
	l.seq++
	l.verMu.Unlock()
}

// Write holds the wide lock and calls the narrow-lock method: layering,
// not a self-deadlock.
func (l *Layered) Write(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rows = n
	l.bump()
}

// seqLocked honours the *Locked convention for the narrow lock.
func (l *Layered) seqLocked() uint64 { return l.seq }

// Seq reads the narrow-guarded field under the narrow lock only.
func (l *Layered) Seq() uint64 {
	l.verMu.Lock()
	defer l.verMu.Unlock()
	return l.seq
}

// AliasLock locks through a pointer alias of the mutex and unlocks
// through the field path: one mutex, one critical section. The dataflow
// must resolve the alias or this reads as an unlock of a never-locked
// mutex.
func (c *Counter) AliasLock() int {
	m := &c.mu
	m.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

// AliasUnlock is the mirror image: field-path lock, alias unlock — and a
// deferred alias unlock must count as the release of c.mu.
func (c *Counter) AliasUnlock() int {
	m := &c.mu
	c.mu.Lock()
	defer m.Unlock()
	return c.n
}

// AliasCopy chains the alias through a pointer copy.
func (c *Counter) AliasCopy() {
	m := &c.mu
	p := m
	p.Lock()
	c.n++
	c.mu.Unlock()
}
