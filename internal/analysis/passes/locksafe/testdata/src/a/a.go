// Package a holds lock-discipline violations for the locksafe analyzer.
package a

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc writes n under the lock, establishing n as a guarded field.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Bad reads the guarded field without the lock.
func (c *Counter) Bad() int {
	return c.n // want "read without holding"
}

// BadWrite mutates the guarded field without the lock.
func (c *Counter) BadWrite(v int) {
	c.n = v // want "written without holding"
}

// Deadlock calls a lock-acquiring method while already holding the lock.
func (c *Counter) Deadlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want "self-deadlock"
}

type Store struct {
	mu sync.RWMutex
	m  map[string]int
}

// Set writes through m under the exclusive lock, guarding it.
func (s *Store) Set(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// BadSet writes while holding only the read lock.
func (s *Store) BadSet(k string) {
	s.mu.RLock()
	s.m[k] = 1 // want "read lock"
	s.mu.RUnlock()
}
