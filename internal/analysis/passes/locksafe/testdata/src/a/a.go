// Package a holds lock-discipline violations for the locksafe analyzer.
package a

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc writes n under the lock, establishing n as a guarded field.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Bad reads the guarded field without the lock.
func (c *Counter) Bad() int {
	return c.n // want "read without holding"
}

// BadWrite mutates the guarded field without the lock.
func (c *Counter) BadWrite(v int) {
	c.n = v // want "written without holding"
}

// Deadlock calls a lock-acquiring method while already holding the lock.
func (c *Counter) Deadlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want "self-deadlock"
}

type Store struct {
	mu sync.RWMutex
	m  map[string]int
}

// Set writes through m under the exclusive lock, guarding it.
func (s *Store) Set(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// BadSet writes while holding only the read lock.
func (s *Store) BadSet(k string) {
	s.mu.RLock()
	s.m[k] = 1 // want "read lock"
	s.mu.RUnlock()
}

// GoUnlocked touches the guarded field from a goroutine that never takes
// the lock; the spawned body starts lock-free even though the spawner
// holds the mutex.
func (c *Counter) GoUnlocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "written without holding"
	}()
}

// DoubleUnlock releases explicitly while a deferred release is pending.
func (c *Counter) DoubleUnlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.mu.Unlock() // want "double unlock"
}

// UnlockedRelease releases a lock nothing acquired.
func (c *Counter) UnlockedRelease() {
	c.mu.Unlock() // want "not locked"
}

// SomePathUnlock conditionally releases, then releases again on the
// rejoined path: one path arrives already unlocked.
func (c *Counter) SomePathUnlock(early bool) {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
	}
	c.mu.Unlock() // want "already unlocked"
}

// SomePathRead reads the guarded field after a branch that may have
// released the lock.
func (c *Counter) SomePathRead(early bool) int {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
	}
	n := c.n      // want "unlocked on some path"
	c.mu.Unlock() // want "already unlocked"
	return n
}

// Layered owns two mutexes; each field is guarded by the one it is
// written under, and holding the other must not satisfy an access.
type Layered struct {
	mu    sync.Mutex
	rows  int
	verMu sync.Mutex
	seq   uint64
}

// Bump establishes seq as verMu-guarded and rows as mu-guarded.
func (l *Layered) Bump() {
	l.mu.Lock()
	l.rows++
	l.mu.Unlock()
	l.verMu.Lock()
	l.seq++
	l.verMu.Unlock()
}

// WrongLock holds the wide lock but touches the narrow-guarded field.
func (l *Layered) WrongLock() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq // want "read without holding"
}

// NarrowDeadlock re-acquires the narrow lock through a method while
// already holding it.
func (l *Layered) bump() {
	l.verMu.Lock()
	l.seq++
	l.verMu.Unlock()
}

func (l *Layered) NarrowDeadlock() {
	l.verMu.Lock()
	defer l.verMu.Unlock()
	l.bump() // want "self-deadlock"
}
