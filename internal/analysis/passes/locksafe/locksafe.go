// Package locksafe checks mutex discipline on guarded structs.
//
// A struct with a sync.Mutex or sync.RWMutex field is "guarded". A field
// of a guarded struct is itself "guarded" when some function in the
// package writes it while holding the struct's lock — that write is the
// author declaring the field lock-protected, and from then on every access
// must honour it. The analyzer walks each function keeping a lexical model
// of which locks are held (Lock opens a region, a same-depth Unlock closes
// it, an Unlock inside a conditional only ends that branch, defer Unlock
// holds to function end) and reports guarded-field accesses outside a
// region, writes under a read lock, and calls to a lock-acquiring method
// of a value whose lock is already held (self-deadlock).
//
// Exemptions mirror the kernel's conventions: methods named *Locked run
// with the caller holding the lock, and values constructed locally in the
// same function (the constructor pattern) are not yet shared.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"recdb/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "guarded fields must be accessed under their mutex; no self-deadlocks",
	Run:  run,
}

const (
	lockExcl = "Lock"
	lockRead = "RLock"
)

// guardInfo is the package-wide model built in the collection pass.
type guardInfo struct {
	// mutexField maps guarded struct name -> its mutex field name.
	mutexField map[string]string
	// guardedFields maps struct name -> fields written under its lock.
	guardedFields map[string]map[string]bool
	// lockMethods maps struct name -> method name -> strongest lock kind
	// the method acquires on its own receiver.
	lockMethods map[string]map[string]string
}

func run(pass *analysis.Pass) error {
	gi := &guardInfo{
		mutexField:    make(map[string]string),
		guardedFields: make(map[string]map[string]bool),
		lockMethods:   make(map[string]map[string]string),
	}
	discoverGuardedStructs(pass, gi)
	if len(gi.mutexField) == 0 {
		return nil
	}
	// Collection pass: learn which fields are written under lock and which
	// methods acquire their receiver's lock.
	for _, fd := range analysis.FuncDecls(pass.Files) {
		newWalker(pass, gi, fd, true).walkBody()
	}
	// Checking pass.
	for _, fd := range analysis.FuncDecls(pass.Files) {
		newWalker(pass, gi, fd, false).walkBody()
	}
	return nil
}

func discoverGuardedStructs(pass *analysis.Pass, gi *guardInfo) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if mutexKindOf(st.Field(i).Type()) != "" {
					gi.mutexField[ts.Name.Name] = st.Field(i).Name()
					break
				}
			}
			return true
		})
	}
}

// mutexKindOf returns "Mutex" or "RWMutex" for sync mutex types, "" otherwise.
func mutexKindOf(t types.Type) string {
	named := analysis.NamedOf(t)
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return obj.Name()
	}
	return ""
}

// heldLock records one held lock region's kind.
type heldLock struct {
	kind string // lockExcl or lockRead
}

type heldSet map[string]heldLock // keyed by owner base expression ("h", "it.heap")

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type walker struct {
	pass       *analysis.Pass
	gi         *guardInfo
	fn         *ast.FuncDecl
	collecting bool
	recvBase   string          // receiver name, "" for plain functions
	recvType   string          // receiver struct name
	locals     map[string]bool // locally constructed values, exempt
}

func newWalker(pass *analysis.Pass, gi *guardInfo, fd *ast.FuncDecl, collecting bool) *walker {
	w := &walker{pass: pass, gi: gi, fn: fd, collecting: collecting, locals: make(map[string]bool)}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		w.recvBase = fd.Recv.List[0].Names[0].Name
		if named := analysis.NamedOf(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)); named != nil {
			w.recvType = named.Obj().Name()
		}
	}
	w.collectLocals()
	return w
}

// collectLocals records variables bound to freshly constructed values:
// x := &T{...}, x := T{...}, x := new(T). Their fields cannot be contended
// yet, so the constructor pattern of filling them in unlocked is fine.
func (w *walker) collectLocals() {
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CompositeLit:
				w.locals[id.Name] = true
			case *ast.UnaryExpr:
				if rhs.Op == token.AND {
					if _, isLit := rhs.X.(*ast.CompositeLit); isLit {
						w.locals[id.Name] = true
					}
				}
			case *ast.CallExpr:
				if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "new" {
					w.locals[id.Name] = true
				}
			}
		}
		return true
	})
}

func (w *walker) walkBody() {
	w.walkList(w.fn.Body.List, make(heldSet))
}

func (w *walker) walkList(stmts []ast.Stmt, held heldSet) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

// walkStmt threads the held-lock set through one statement. Compound
// statements get a clone: a lock state change inside a branch is local to
// that branch, which is exactly the early-exit Unlock-then-return idiom.
func (w *walker) walkStmt(s ast.Stmt, held heldSet) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if base, op, ok := w.lockEvent(v.X); ok {
			w.applyLockEvent(held, base, op, v.Pos())
			return
		}
		w.inspect(v.X, held, nil)
	case *ast.AssignStmt:
		writes := make(map[ast.Node]bool)
		for _, lhs := range v.Lhs {
			if sel := writeTarget(lhs); sel != nil {
				writes[sel] = true
			}
		}
		w.inspect(v, held, writes)
	case *ast.IncDecStmt:
		writes := make(map[ast.Node]bool)
		if sel := writeTarget(v.X); sel != nil {
			writes[sel] = true
		}
		w.inspect(v, held, writes)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the region open to function end;
		// anything else deferred runs under an unknowable lock state.
		return
	case *ast.GoStmt:
		// The goroutine body runs concurrently under its own locking.
		return
	case *ast.BlockStmt:
		w.walkList(v.List, held.clone())
	case *ast.LabeledStmt:
		w.walkStmt(v.Stmt, held)
	case *ast.IfStmt:
		inner := held.clone()
		if v.Init != nil {
			w.walkStmt(v.Init, inner)
		}
		w.inspect(v.Cond, inner, nil)
		w.walkList(v.Body.List, inner.clone())
		if v.Else != nil {
			w.walkStmt(v.Else, inner.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if v.Init != nil {
			w.walkStmt(v.Init, inner)
		}
		if v.Cond != nil {
			w.inspect(v.Cond, inner, nil)
		}
		if v.Post != nil {
			w.walkStmt(v.Post, inner)
		}
		w.walkList(v.Body.List, inner.clone())
	case *ast.RangeStmt:
		inner := held.clone()
		w.inspect(v.X, inner, nil)
		w.walkList(v.Body.List, inner.clone())
	case *ast.SwitchStmt:
		inner := held.clone()
		if v.Init != nil {
			w.walkStmt(v.Init, inner)
		}
		if v.Tag != nil {
			w.inspect(v.Tag, inner, nil)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkList(cc.Body, inner.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		inner := held.clone()
		if v.Init != nil {
			w.walkStmt(v.Init, inner)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkList(cc.Body, inner.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkList(cc.Body, inner)
			}
		}
	default:
		w.inspect(s, held, nil)
	}
}

// lockEvent decodes expr as <owner>.<mu>.Lock/RLock/Unlock/RUnlock(),
// returning the owner's base string and the operation.
func (w *walker) lockEvent(expr ast.Expr) (base, op string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if mutexKindOf(w.pass.TypesInfo.TypeOf(sel.X)) == "" {
		return "", "", false
	}
	owner := sel.X
	if os, isOwnerSel := owner.(*ast.SelectorExpr); isOwnerSel {
		owner = os.X
	}
	b := analysis.BaseString(owner)
	if b == "" {
		return "", "", false
	}
	return b, sel.Sel.Name, true
}

func (w *walker) applyLockEvent(held heldSet, base, op string, pos token.Pos) {
	switch op {
	case "Lock":
		held[base] = heldLock{kind: lockExcl}
	case "RLock":
		held[base] = heldLock{kind: lockRead}
	case "Unlock", "RUnlock":
		delete(held, base)
	}
	if w.collecting && base == w.recvBase && w.recvType != "" && (op == "Lock" || op == "RLock") {
		m := w.gi.lockMethods[w.recvType]
		if m == nil {
			m = make(map[string]string)
			w.gi.lockMethods[w.recvType] = m
		}
		if m[w.fn.Name.Name] != lockExcl {
			kind := lockExcl
			if op == "RLock" {
				kind = lockRead
			}
			m[w.fn.Name.Name] = kind
		}
	}
	_ = pos
}

// inspect scans an expression (or leaf statement) for guarded-field
// accesses and deadlocking method calls under the current held set.
func (w *walker) inspect(n ast.Node, held heldSet, writes map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			return false // runs later, under its own locking discipline
		case *ast.CallExpr:
			w.checkCall(v, held)
		case *ast.SelectorExpr:
			w.checkAccess(v, held, writes[v])
		}
		return true
	})
}

// checkCall flags calls to a lock-acquiring method of a value whose lock
// the caller already holds.
func (w *walker) checkCall(call *ast.CallExpr, held heldSet) {
	if w.collecting {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := analysis.BaseString(sel.X)
	if base == "" {
		return
	}
	hl, isHeld := held[base]
	if !isHeld {
		return
	}
	named := analysis.NamedOf(w.pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return
	}
	acquires, ok := w.gi.lockMethods[named.Obj().Name()][sel.Sel.Name]
	if !ok {
		return
	}
	if hl.kind == lockRead && acquires == lockRead {
		return // RLock is re-entrant enough not to flag
	}
	w.pass.Reportf(call.Pos(), "calling %s.%s while already holding %s's lock: self-deadlock", base, sel.Sel.Name, base)
}

// checkAccess handles one selector expression base.field.
func (w *walker) checkAccess(sel *ast.SelectorExpr, held heldSet, isWrite bool) {
	named := analysis.NamedOf(w.pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return
	}
	tname := named.Obj().Name()
	if _, guardedStruct := w.gi.mutexField[tname]; !guardedStruct {
		return
	}
	field := sel.Sel.Name
	base := analysis.BaseString(sel.X)
	if base == "" {
		return
	}
	hl, isHeld := held[base]

	if w.collecting {
		lockedMethod := strings.HasSuffix(w.fn.Name.Name, "Locked") && base == w.recvBase
		if isWrite && (isHeld || lockedMethod) && !w.locals[rootOf(base)] {
			gf := w.gi.guardedFields[tname]
			if gf == nil {
				gf = make(map[string]bool)
				w.gi.guardedFields[tname] = gf
			}
			gf[field] = true
		}
		return
	}

	if !w.gi.guardedFields[tname][field] {
		return
	}
	if strings.HasSuffix(w.fn.Name.Name, "Locked") && base == w.recvBase {
		return
	}
	if w.locals[rootOf(base)] {
		return // freshly constructed, not shared yet
	}
	if !isHeld {
		verb := "read"
		if isWrite {
			verb = "written"
		}
		w.pass.Reportf(sel.Pos(), "guarded field %s.%s %s without holding %s.%s", tname, field, verb, base, w.gi.mutexField[tname])
		return
	}
	if isWrite && hl.kind == lockRead {
		w.pass.Reportf(sel.Pos(), "guarded field %s.%s written while holding only a read lock", tname, field)
	}
}

// writeTarget unwraps an assignment target to the field selector being
// mutated: s.m[k] = v and *s.p = v both write through a field of s.
func writeTarget(e ast.Expr) *ast.SelectorExpr {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// rootOf returns the first segment of a base string ("it.heap" -> "it").
func rootOf(base string) string {
	if i := strings.IndexByte(base, '.'); i >= 0 {
		return base[:i]
	}
	return base
}
