// Package locksafe checks mutex discipline on guarded structs, v2: built
// on the analysis package's CFG + lock dataflow instead of a lexical
// region model.
//
// A struct with a sync.Mutex or sync.RWMutex field is "guarded"; a
// struct may own several mutexes (a wide lock plus a narrow one), and
// each is tracked separately. A field of a guarded struct is itself
// "guarded" when some function in the package writes it while holding
// one of the struct's locks — that write is the author declaring which
// mutex protects the field, and from then on every access must hold one
// of the mutexes the field was written under. The dataflow computes, at
// every program point, which locks may and must be held; the analyzer
// reports:
//
//   - guarded-field accesses where the lock is not held on every path
//     (with a distinct "on some path" message when only part of the paths
//     arrive unlocked);
//   - guarded-field writes under a read lock;
//   - calls to a lock-acquiring method of a value whose lock is already
//     held (self-deadlock);
//   - Unlock/RUnlock of a lock no path holds ("not locked") or that some
//     path has already released ("on some path");
//   - an explicit Unlock while a deferred Unlock of the same lock is
//     pending (double unlock at return).
//
// Unlike v1, goroutine bodies (go func(){...}) and deferred closures are
// analyzed too: a goroutine starts with no locks held and must acquire
// the guard itself; a deferred closure that releases a lock it did not
// acquire is the release half of a Lock/defer-closure pair and runs with
// that lock held.
//
// Exemptions mirror the kernel's conventions: methods named *Locked run
// with the caller holding the lock, and values constructed locally in the
// same function (the constructor pattern) are not yet shared.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"recdb/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "guarded fields must be accessed under their mutex; no self-deadlocks or double unlocks",
	Run:  run,
}

// guardInfo is the package-wide model built in the collection pass.
type guardInfo struct {
	// mutexFields maps guarded struct name -> its mutex field names, in
	// declaration order.
	mutexFields map[string][]string
	// guardedFields maps struct name -> field -> the set of mutex fields
	// the field has been written under. Holding any one of them satisfies
	// an access.
	guardedFields map[string]map[string]map[string]bool
	// lockMethods maps struct name -> method name -> mutex field -> the
	// strongest lock kind the method acquires on that mutex of its own
	// receiver.
	lockMethods map[string]map[string]map[string]string
}

func run(pass *analysis.Pass) error {
	gi := &guardInfo{
		mutexFields:   make(map[string][]string),
		guardedFields: make(map[string]map[string]map[string]bool),
		lockMethods:   make(map[string]map[string]map[string]string),
	}
	discoverGuardedStructs(pass, gi)
	if len(gi.mutexFields) == 0 {
		return nil
	}
	// Collection pass: learn which fields are written under lock and which
	// methods acquire their receiver's lock.
	for _, fd := range analysis.FuncDecls(pass.Files) {
		forEachBody(pass, fd, func(b body) {
			newChecker(pass, gi, fd, b, true).walk()
		})
	}
	// Checking pass.
	for _, fd := range analysis.FuncDecls(pass.Files) {
		forEachBody(pass, fd, func(b body) {
			newChecker(pass, gi, fd, b, false).walk()
		})
	}
	return nil
}

// body is one analyzable code body: the function itself, a goroutine
// closure, or a deferred closure, with its entry lock state.
type body struct {
	block *ast.BlockStmt
	entry analysis.LockSet
	// closure is true for go/defer function literals: the *Locked name
	// exemption and the receiver identity do not transfer into them.
	closure bool
	// goroutine marks a go-spawned closure: enclosing locals are shared
	// with the spawner and lose their constructor exemption.
	goroutine bool
}

// forEachBody yields the function body and, recursively, every goroutine
// and deferred-closure body inside it with its entry lock assumption.
func forEachBody(pass *analysis.Pass, fd *ast.FuncDecl, fn func(body)) {
	var expand func(b body)
	expand = func(b body) {
		fn(b)
		g := analysis.BuildCFG(b.block)
		for _, fl := range g.GoBodies {
			expand(body{block: fl.Body, entry: analysis.LockSet{}, closure: true, goroutine: true})
		}
		for _, fl := range g.DeferBodies {
			expand(body{
				block:     fl.Body,
				entry:     analysis.ClosureEntryLocks(pass.TypesInfo, fl),
				closure:   true,
				goroutine: b.goroutine,
			})
		}
	}
	expand(body{block: fd.Body, entry: analysis.LockSet{}})
}

type checker struct {
	pass       *analysis.Pass
	gi         *guardInfo
	fn         *ast.FuncDecl
	b          body
	collecting bool
	recvBase   string          // receiver name, "" for plain functions/closures
	recvType   string          // receiver struct name
	locals     map[string]bool // locally constructed values, exempt
}

func newChecker(pass *analysis.Pass, gi *guardInfo, fd *ast.FuncDecl, b body, collecting bool) *checker {
	c := &checker{pass: pass, gi: gi, fn: fd, b: b, collecting: collecting, locals: make(map[string]bool)}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		c.recvBase = fd.Recv.List[0].Names[0].Name
		if named := analysis.NamedOf(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)); named != nil {
			c.recvType = named.Obj().Name()
		}
	}
	// A goroutine shares the spawner's locals with it, so the constructor
	// exemption only covers values constructed inside the goroutine body.
	if b.goroutine {
		collectLocals(b.block, c.locals)
	} else {
		collectLocals(fd.Body, c.locals)
	}
	return c
}

// collectLocals records variables bound to freshly constructed values:
// x := &T{...}, x := T{...}, x := new(T). Their fields cannot be contended
// yet, so the constructor pattern of filling them in unlocked is fine.
func collectLocals(block *ast.BlockStmt, locals map[string]bool) {
	ast.Inspect(block, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CompositeLit:
				locals[id.Name] = true
			case *ast.UnaryExpr:
				if rhs.Op == token.AND {
					if _, isLit := rhs.X.(*ast.CompositeLit); isLit {
						locals[id.Name] = true
					}
				}
			case *ast.CallExpr:
				if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "new" {
					locals[id.Name] = true
				}
			}
		}
		return true
	})
}

// walk solves the lock dataflow for the body and applies the collection
// or checking visitor at every reachable node.
func (c *checker) walk() {
	g := analysis.BuildCFG(c.b.block)
	lf := analysis.SolveLockFlow(g, c.pass.TypesInfo, c.b.entry)
	deferred := lf.DeferredUnlocks()
	deferredSet := make(map[string]bool, len(deferred))
	for _, k := range deferred {
		deferredSet[k] = true
	}
	// Position of the first deferred unlock per key: an explicit unlock
	// after it is a double unlock.
	deferPos := make(map[string]token.Pos)
	for _, d := range g.Defers {
		if base, op, ok := lf.EventOf(d.Call); ok && (op == "Unlock" || op == "RUnlock") {
			if _, seen := deferPos[base]; !seen {
				deferPos[base] = d.Pos()
			}
		}
	}

	lf.Walk(func(n ast.Node, held analysis.LockSet) {
		// Lock events get the unlock checks; everything else is scanned
		// for guarded accesses and deadlocking calls.
		if es, ok := n.(*ast.ExprStmt); ok {
			if base, op, ok := lf.EventOf(es.X); ok {
				c.checkLockEvent(es, base, op, held, deferPos)
				return
			}
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return // the deferred body is analyzed separately
		}
		if gs, ok := n.(*ast.GoStmt); ok {
			// The spawned body is analyzed separately; only the call's
			// argument expressions run here.
			for _, arg := range gs.Call.Args {
				c.inspect(arg, held, nil)
			}
			return
		}
		writes := writeTargets(n)
		c.inspect(n, held, writes)
	})
}

// checkLockEvent reports unlock misuse: releasing a lock no path holds,
// releasing on a path that may have released already, and explicit
// unlocks made redundant by a pending deferred unlock.
func (c *checker) checkLockEvent(es *ast.ExprStmt, base, op string, held analysis.LockSet, deferPos map[string]token.Pos) {
	if c.collecting {
		owner, mf := analysis.SplitLockKey(base)
		if owner == c.recvBase && c.recvType != "" && !c.b.closure && (op == "Lock" || op == "RLock") {
			m := c.gi.lockMethods[c.recvType]
			if m == nil {
				m = make(map[string]map[string]string)
				c.gi.lockMethods[c.recvType] = m
			}
			fm := m[c.fn.Name.Name]
			if fm == nil {
				fm = make(map[string]string)
				m[c.fn.Name.Name] = fm
			}
			if fm[mf] != analysis.LockExcl {
				kind := analysis.LockExcl
				if op == "RLock" {
					kind = analysis.LockRead
				}
				fm[mf] = kind
			}
		}
		return
	}
	if op != "Unlock" && op != "RUnlock" {
		return
	}
	if dp, ok := deferPos[base]; ok && dp < es.Pos() {
		c.pass.Reportf(es.Pos(), "explicit %s of %s with a deferred %s pending: double unlock at return", op, base, op)
		return
	}
	st := held[base]
	switch {
	case !st.Held():
		c.pass.Reportf(es.Pos(), "%s of %s which is not locked on any path", op, base)
	case !st.Must:
		c.pass.Reportf(es.Pos(), "%s of %s which some path has already unlocked", op, base)
	}
}

// inspect scans an expression or leaf statement for guarded-field
// accesses and deadlocking method calls under the current lock state.
func (c *checker) inspect(n ast.Node, held analysis.LockSet, writes map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			return false // go/defer bodies are analyzed separately; other
			// closures run later under their own locking discipline
		case *ast.CallExpr:
			c.checkCall(v, held)
		case *ast.SelectorExpr:
			c.checkAccess(v, held, writes[v])
		}
		return true
	})
}

// checkCall flags calls to a lock-acquiring method of a value when the
// caller may already hold the very mutex the method acquires. A method
// that takes a different mutex of the same struct is fine — that is the
// wide-lock/narrow-lock layering, not a self-deadlock.
func (c *checker) checkCall(call *ast.CallExpr, held analysis.LockSet) {
	if c.collecting {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := analysis.BaseString(sel.X)
	if base == "" {
		return
	}
	named := analysis.NamedOf(c.pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return
	}
	for mf, acquires := range c.gi.lockMethods[named.Obj().Name()][sel.Sel.Name] {
		st := held[base+"."+mf]
		if !st.Held() {
			continue
		}
		if st.Kind() == analysis.LockRead && acquires == analysis.LockRead {
			continue // RLock is re-entrant enough not to flag
		}
		c.pass.Reportf(call.Pos(), "calling %s.%s while already holding %s.%s: self-deadlock", base, sel.Sel.Name, base, mf)
		return
	}
}

// checkAccess handles one selector expression base.field.
func (c *checker) checkAccess(sel *ast.SelectorExpr, held analysis.LockSet, isWrite bool) {
	named := analysis.NamedOf(c.pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return
	}
	tname := named.Obj().Name()
	mutexes := c.gi.mutexFields[tname]
	if len(mutexes) == 0 {
		return
	}
	field := sel.Sel.Name
	base := analysis.BaseString(sel.X)
	if base == "" {
		return
	}
	lockedMethod := !c.b.closure && strings.HasSuffix(c.fn.Name.Name, "Locked") && base == c.recvBase

	if c.collecting {
		if !isWrite || c.locals[rootOf(base)] {
			return
		}
		var under []string
		for _, mf := range mutexes {
			if held[base+"."+mf].Held() {
				under = append(under, mf)
			}
		}
		if len(under) == 0 && lockedMethod {
			// The *Locked convention does not name the mutex; a write
			// there declares nothing new, it just honours an existing
			// guard.
			return
		}
		if len(under) == 0 {
			return
		}
		gf := c.gi.guardedFields[tname]
		if gf == nil {
			gf = make(map[string]map[string]bool)
			c.gi.guardedFields[tname] = gf
		}
		guards := gf[field]
		if guards == nil {
			guards = make(map[string]bool)
			gf[field] = guards
		}
		for _, mf := range under {
			guards[mf] = true
		}
		return
	}

	guards := c.gi.guardedFields[tname][field]
	if len(guards) == 0 {
		return
	}
	if lockedMethod {
		return
	}
	if c.locals[rootOf(base)] {
		return // freshly constructed, not shared yet
	}
	// The access is satisfied by the strongest state among the mutexes
	// the field has been written under.
	var st analysis.LockState
	guardName := ""
	better := func(a, b analysis.LockState) bool {
		ra := 0
		if a.Held() {
			ra = 1
			if a.Must {
				ra = 2
				if a.MayExcl {
					ra = 3
				}
			}
		}
		rb := 0
		if b.Held() {
			rb = 1
			if b.Must {
				rb = 2
				if b.MayExcl {
					rb = 3
				}
			}
		}
		return ra > rb
	}
	for mf := range guards {
		s := held[base+"."+mf]
		if guardName == "" || better(s, st) {
			st, guardName = s, mf
		}
	}
	verb := "read"
	if isWrite {
		verb = "written"
	}
	switch {
	case !st.Held():
		c.pass.Reportf(sel.Pos(), "guarded field %s.%s %s without holding %s.%s", tname, field, verb, base, guardName)
	case !st.Must:
		c.pass.Reportf(sel.Pos(), "guarded field %s.%s %s while %s.%s is unlocked on some path", tname, field, verb, base, guardName)
	case isWrite && st.Kind() == analysis.LockRead:
		c.pass.Reportf(sel.Pos(), "guarded field %s.%s written while holding only a read lock", tname, field)
	}
}

func discoverGuardedStructs(pass *analysis.Pass, gi *guardInfo) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if analysis.MutexKindOf(st.Field(i).Type()) != "" {
					gi.mutexFields[ts.Name.Name] = append(gi.mutexFields[ts.Name.Name], st.Field(i).Name())
				}
			}
			return true
		})
	}
}

// writeTargets collects the field selectors a statement mutates: s.f = v,
// s.f++, s.m[k] = v and *s.p = v all write through a field of s.
func writeTargets(n ast.Node) map[ast.Node]bool {
	writes := make(map[ast.Node]bool)
	switch v := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			if sel := writeTarget(lhs); sel != nil {
				writes[sel] = true
			}
		}
	case *ast.IncDecStmt:
		if sel := writeTarget(v.X); sel != nil {
			writes[sel] = true
		}
	}
	return writes
}

// writeTarget unwraps an assignment target to the field selector being
// mutated.
func writeTarget(e ast.Expr) *ast.SelectorExpr {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// rootOf returns the first segment of a base string ("it.heap" -> "it").
func rootOf(base string) string {
	if i := strings.IndexByte(base, '.'); i >= 0 {
		return base[:i]
	}
	return base
}
