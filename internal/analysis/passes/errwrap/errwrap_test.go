package errwrap_test

import (
	"testing"

	"recdb/internal/analysis/analysistest"
	"recdb/internal/analysis/passes/errwrap"
)

func TestViolations(t *testing.T) { analysistest.Run(t, ".", errwrap.Analyzer, "a") }

func TestCompliant(t *testing.T) { analysistest.Run(t, ".", errwrap.Analyzer, "b") }
