// Package errwrap enforces the module's error-propagation discipline.
//
// First, fmt.Errorf calls that embed an error value must use the %w verb,
// not %v or %s: without %w the cause is flattened to text and callers lose
// errors.Is/errors.As matching — which the storage layer relies on to
// distinguish, say, a missing page file from a corrupt one.
//
// Second, a call whose final result is an error must not be discarded by
// using it as a bare expression statement. On flush/persist paths a
// swallowed error turns data loss into silence. An explicit `_ = f()`
// states intent and is allowed, as are deferred cleanup calls and the
// well-known never-fails writers (strings.Builder, bytes.Buffer,
// hash.Hash).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"recdb/internal/analysis"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must use %w; no silently discarded errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, v)
			case *ast.ExprStmt:
				checkDiscard(pass, v)
			case *ast.DeferStmt:
				checkDeferred(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkErrorf verifies that error-typed arguments to fmt.Errorf line up
// with %w verbs in the (constant) format string.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := scanVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		if !analysis.ErrorType(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		if i < len(verbs) && verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "error argument formatted with %%%c; use %%w so callers can unwrap it", verbs[i])
		}
	}
}

// scanVerbs returns the verb character consuming each successive argument
// of a Printf-style format string. A '*' width or precision consumes an
// argument of its own and is recorded as '*'.
func scanVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.[]", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue // literal %%
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

// checkDiscard flags expression statements that drop an error result.
func checkDiscard(pass *analysis.Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	var last types.Type
	switch rt := tv.Type.(type) {
	case *types.Tuple:
		if rt.Len() == 0 {
			return
		}
		last = rt.At(rt.Len() - 1).Type()
	default:
		last = rt
	}
	if !analysis.ErrorType(last) {
		return
	}
	if neverFails(pass.TypesInfo, call) {
		return
	}
	name := callName(call)
	pass.Reportf(stmt.Pos(), "result of %s is an error and is silently discarded; handle it or assign to _ explicitly", name)
}

// checkDeferred flags `defer f()` where f's final result is an error. The
// deferred value is unrecoverable — by the time it exists the function is
// already returning — so on flush/sync paths the idiom silently swallows
// exactly the failures that matter most. Methods named Close are exempt:
// `defer f.Close()` on read paths is idiomatic and a close-on-read error
// is rarely actionable. Write-path closes whose error matters should
// check it explicitly; deferred closures (defer func(){...}()) are
// inspected like any other code, so errors dropped inside them are still
// caught by the discard check.
func checkDeferred(pass *analysis.Pass, stmt *ast.DeferStmt) {
	call := stmt.Call
	if _, isLit := call.Fun.(*ast.FuncLit); isLit {
		return // the body is walked separately
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Close" {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	var last types.Type
	switch rt := tv.Type.(type) {
	case *types.Tuple:
		if rt.Len() == 0 {
			return
		}
		last = rt.At(rt.Len() - 1).Type()
	default:
		last = rt
	}
	if !analysis.ErrorType(last) {
		return
	}
	if neverFails(pass.TypesInfo, call) {
		return
	}
	pass.Reportf(stmt.Pos(), "deferred call to %s discards its error; use a closure that records or returns it", callName(call))
}

// neverFails exempts callees whose error results are documented to always
// be nil (or go to a human, not a recovery path).
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Printing to standard streams: failures are not actionable.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			return true
		}
	}
	named := analysis.NamedOf(info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if b := analysis.BaseString(f.X); b != "" {
			return b + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
