// Package b holds compliant error handling; the analyzer must stay silent.
package b

import (
	"fmt"
	"os"
	"strings"
)

func wrapGood(err error) error {
	return fmt.Errorf("context: %w", err)
}

func wrapMixed(op string, n int, err error) error {
	return fmt.Errorf("%s attempt %d: %w", op, n, err)
}

func removeChecked(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("remove %s: %w", path, err)
	}
	return nil
}

// explicitDiscard states intent with the blank identifier.
func explicitDiscard(path string) {
	_ = os.Remove(path)
}

// builder uses a never-fails writer; its error results are noise.
func builder(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// prints to stdout; a print failure is not recoverable.
func prints(msg string) {
	fmt.Println(msg)
}

type closer struct{}

func (c *closer) Close() error { return nil }

// deferClose is the idiomatic read-path cleanup; Close is exempt.
func deferClose(c *closer) {
	defer c.Close()
}

type syncer struct{}

func (s *syncer) Sync() error { return nil }

// deferSyncHandled routes the deferred error somewhere explicitly.
func deferSyncHandled(s *syncer) (err error) {
	defer func() {
		if serr := s.Sync(); serr != nil && err == nil {
			err = serr
		}
	}()
	return nil
}

// deferSuppressed documents a deliberate fire-and-forget.
func deferSuppressed(s *syncer) {
	//lint:ignore errwrap best-effort sync on shutdown path
	defer s.Sync()
}
