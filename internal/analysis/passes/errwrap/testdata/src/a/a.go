// Package a holds error-handling violations for the errwrap analyzer.
package a

import (
	"fmt"
	"os"
)

// wrapV flattens the cause to text; callers lose errors.Is matching.
func wrapV(err error) error {
	return fmt.Errorf("context: %v", err) // want "use %w"
}

// wrapS is the same mistake with %s.
func wrapS(op string, err error) error {
	return fmt.Errorf("%s failed: %s", op, err) // want "use %w"
}

// discard drops the error from a filesystem operation on the floor.
func discard(path string) {
	os.Remove(path) // want "silently discarded"
}

type flusher struct{}

func (f *flusher) Flush() error { return nil }

// discardMethod drops a flush error, the classic persist-path bug.
func discardMethod(f *flusher) {
	f.Flush() // want "silently discarded"
}

// deferFlush defers an error-returning flush: by the time the deferred
// call runs, its error has nowhere to go.
func deferFlush(f *flusher) {
	defer f.Flush() // want "deferred call"
}

// deferClosureDiscard hides the same bug inside a deferred closure.
func deferClosureDiscard(f *flusher) {
	defer func() {
		f.Flush() // want "silently discarded"
	}()
}
