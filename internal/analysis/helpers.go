package analysis

import (
	"go/ast"
	"go/types"
)

// NamedOf unwraps pointers and returns the named type of t, if any.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return n
		}
	}
	return nil
}

// MethodCall reports whether call is a method call named method on a value
// whose named type (after pointer unwrapping) is typeName, returning the
// receiver expression.
func MethodCall(info *types.Info, call *ast.CallExpr, typeName, method string) (recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != method {
		return nil, false
	}
	named := NamedOf(info.TypeOf(sel.X))
	if named == nil || named.Obj().Name() != typeName {
		return nil, false
	}
	return sel.X, true
}

// ErrorType reports whether t is (or implements) the built-in error
// interface.
func ErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// FuncDecls yields every function declaration with a body in the package.
func FuncDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// BaseString renders the expression as a stable textual key ("m",
// "it.heap") for comparing lock-holder and field-access bases. Only
// identifier/selector/paren chains produce a key; anything else (calls,
// index expressions) yields "", meaning "not comparable".
func BaseString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.ParenExpr:
		return BaseString(v.X)
	case *ast.SelectorExpr:
		x := BaseString(v.X)
		if x == "" {
			return ""
		}
		return x + "." + v.Sel.Name
	case *ast.StarExpr:
		return BaseString(v.X)
	}
	return ""
}
