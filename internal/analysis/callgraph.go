package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is a package-level static call graph: one node per function
// or method declared in the package, with edges to every callee that can
// be resolved statically (package functions, methods with a concrete
// receiver type, and imported functions). Dynamic calls — through a func
// value or an interface method with no static target — are recorded with
// a nil Callee so analyses can choose to treat them conservatively.
type CallGraph struct {
	// Nodes maps each declared function object to its node, and Order
	// lists them in source order for deterministic iteration.
	Nodes map[*types.Func]*CallNode
	Order []*CallNode
}

// CallNode is one declared function and its outgoing calls.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Calls lists the call sites in source order. Calls inside nested
	// function literals (including goroutine and defer bodies) belong to
	// the declaring function: they cannot run unless it ran.
	Calls []CallSite
}

// CallSite is one call expression and its resolved target.
type CallSite struct {
	// Callee is the statically resolved target, nil for dynamic calls.
	Callee *types.Func
	Call   *ast.CallExpr
}

// BuildCallGraph constructs the call graph of one package.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	for _, fd := range FuncDecls(files) {
		fn, _ := info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		node := &CallNode{Fn: fn, Decl: fd}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			node.Calls = append(node.Calls, CallSite{Callee: StaticCallee(info, call), Call: call})
			return true
		})
		g.Nodes[fn] = node
		g.Order = append(g.Order, node)
	}
	return g
}

// StaticCallee resolves a call expression to its target function, or nil
// when the target is dynamic (func value, unresolved interface method).
// Builtin calls and conversions also resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		// Method call or qualified package function: either way the
		// selected object is the target. Interface methods resolve to the
		// interface's *types.Func — still a stable identity for analyses
		// keyed on (type, method) names.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CallersOf returns the nodes containing at least one call site resolving
// to fn, in source order.
func (g *CallGraph) CallersOf(fn *types.Func) []*CallNode {
	var out []*CallNode
	for _, n := range g.Order {
		for _, cs := range n.Calls {
			if cs.Callee == fn {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// Reachable returns the set of declared functions reachable from any of
// the roots through statically resolved edges (roots included).
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		node := g.Nodes[fn]
		if node == nil {
			return // imported or dynamic: no outgoing edges known
		}
		for _, cs := range node.Calls {
			visit(cs.Callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// FuncValuesPassedTo returns the declared functions whose *value* (not a
// call) appears as an argument to any call of a function or method named
// calleeName — the pattern walorder uses to find commit-hook
// registrations (SetCommitHook(db.logCommit)).
func (g *CallGraph) FuncValuesPassedTo(info *types.Info, files []*ast.File, calleeName string) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name != calleeName {
				return true
			}
			for _, arg := range call.Args {
				var id *ast.Ident
				switch a := ast.Unparen(arg).(type) {
				case *ast.Ident:
					id = a
				case *ast.SelectorExpr:
					id = a.Sel
				}
				if id == nil {
					continue
				}
				if fn, ok := info.Uses[id].(*types.Func); ok {
					out[fn] = true
				}
			}
			return true
		})
	}
	return out
}
