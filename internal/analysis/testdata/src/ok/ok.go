// Package ok is a well-formed fixture for framework tests. Function order
// is deliberately non-alphabetical so sorting by position is observable.
package ok

func Zebra() int { return 1 }

//lint:ignore funcmark suppressed on purpose for the framework test
func Middle() int { return 2 }

func Alpha() int { return 3 }
