// Package generics pins loader and analyzer behavior on
// type-parameterized code.
package generics

import "sync"

// Pair is a generic container.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Map is a generic guarded map: locksafe-style analyses must handle the
// instantiated selector types without panicking.
type Map[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

func NewMap[K comparable, V any]() *Map[K, V] {
	return &Map[K, V]{m: make(map[K]V)}
}

func (s *Map[K, V]) Put(k K, v V) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (s *Map[K, V]) Get(k K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

// Keys instantiates Pair and ranges generically.
func Keys[K comparable, V any](s *Map[K, V]) []Pair[K, V] {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Pair[K, V], 0, len(s.m))
	for k, v := range s.m {
		out = append(out, Pair[K, V]{Key: k, Val: v})
	}
	return out
}
