// Package annpool mirrors the k-means worker-pool discipline of
// internal/ann: chunk-disjoint writes in the assignment step, modulo
// centroid ownership in the update step (no lock — each centroid has
// exactly one writer and the pool joins before anyone reads), per-worker
// counters merged serially after the join, an atomic progress counter
// that is only ever touched through sync/atomic, and a mutex-guarded
// stats map whose every access holds the lock. Every shared access here
// is sanctioned; locksafe and atomicfield must stay silent.
package annpool

import (
	"sync"
	"sync/atomic"
)

// Pool carries the shared state of one clustering run. centroids is
// deliberately unguarded: workers partition it by ownership (worker w
// touches only centroids ≡ w mod workers) and synchronize via the
// WaitGroup join, the same discipline as the real index build.
type Pool struct {
	centroids [][]float64

	// assigned is only accessed through sync/atomic (progress reporting
	// from every worker); a plain read anywhere would be flagged.
	assigned uint64

	mu    sync.Mutex
	moves map[int]int // per-round reassignment counts, guarded by mu
}

// Assign writes each item's nearest centroid into assign. The chunks are
// disjoint, so assign[i] and changed[w] each have exactly one writer; the
// centroid table is read-only while the pool runs.
func (p *Pool) Assign(round int, vecs [][]float64, assign []int32, workers int) int {
	n := len(vecs)
	changed := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			for i := lo; i < hi; i++ {
				best := nearest(p.centroids, vecs[i])
				if assign[i] != best {
					assign[i] = best
					changed[w]++
				}
				atomic.AddUint64(&p.assigned, 1)
			}
		}(w)
	}
	wg.Wait()
	moved := 0
	for w := range changed {
		moved += changed[w]
	}
	p.mu.Lock()
	p.moves[round] = moved
	p.mu.Unlock()
	return moved
}

// Update recomputes centroids: worker w owns centroids ≡ w mod workers,
// so each centroid slice has exactly one writer and the sums accumulate
// in a fixed item order regardless of the worker count.
func (p *Pool) Update(vecs [][]float64, assign []int32, workers int) {
	k := len(p.centroids)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for c := w; c < k; c += workers {
				sum := make([]float64, len(p.centroids[c]))
				count := 0
				for i := range vecs {
					if int(assign[i]) != c {
						continue
					}
					for d, v := range vecs[i] {
						sum[d] += v
					}
					count++
				}
				if count == 0 {
					continue // an empty cluster keeps its previous centroid
				}
				for d := range sum {
					sum[d] /= float64(count)
				}
				p.centroids[c] = sum
			}
		}(w)
	}
	wg.Wait()
}

// Progress reads the atomic item counter the workers bump.
func (p *Pool) Progress() uint64 {
	return atomic.LoadUint64(&p.assigned)
}

// MovesAt reads one round's reassignment count under the lock.
func (p *Pool) MovesAt(round int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.moves[round]
}

// nearest scans a centroid table snapshot for v's closest centroid.
func nearest(centroids [][]float64, v []float64) int32 {
	best := int32(0)
	bestD := -1.0
	for c := range centroids {
		d := 0.0
		for i, x := range centroids[c] {
			diff := x - v[i]
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			bestD = d
			best = int32(c)
		}
	}
	return best
}
