// Package multi exercises multi-analyzer suppression across files.
package multi

// Plain is reported by both test analyzers.
func Plain() {}

//lint:ignore funcmark,typemark both test analyzers silenced here
func BothSuppressed() {}

//lint:ignore funcmark only one analyzer silenced
func OnlyFuncmarkSuppressed() {}
