package multi

// Second file: the suppression map must span the whole package.

//lint:ignore funcmark,typemark suppressed in a different file
func OtherFileSuppressed() {}

func OtherFilePlain() {}
