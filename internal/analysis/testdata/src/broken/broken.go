// Package broken exists to prove the loader survives syntax errors.
package broken

func fine() int { return 1 }

func bad(x int { return x }
