package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the dataflow layer over the CFG: a forward worklist solver
// for lock states ("reaching locks"). It answers, for every program
// point, which mutexes may and must be held — the facts locksafe v2 and
// walorder check invariants against. May-information catches definite
// misuse (an Unlock no path locked for); must-information catches
// per-path misuse (an access where *some* path arrives without the lock).

// Lock kinds.
const (
	LockExcl = "Lock"
	LockRead = "RLock"
)

// LockState describes one mutex at one program point.
type LockState struct {
	// MayExcl / MayRead: some path to this point holds the lock
	// exclusively / for reading.
	MayExcl bool
	MayRead bool
	// Must: every path to this point holds the lock (in some mode).
	Must bool
	// Released: some path to this point acquired the lock and then
	// explicitly released it. This separates the two ways Must can be
	// false while May holds: a conditional acquisition (one branch locks,
	// the other never touches the mutex — the sanctioned
	// lock-only-if-mutating protocol) never sets Released, while a
	// lock-then-early-unlock (the bug the some-path checks exist for)
	// does.
	Released bool
}

// Held reports whether any path holds the lock at all.
func (s LockState) Held() bool { return s.MayExcl || s.MayRead }

// Kind returns the strongest mode any path holds: LockExcl, LockRead, or
// "" when unheld.
func (s LockState) Kind() string {
	switch {
	case s.MayExcl:
		return LockExcl
	case s.MayRead:
		return LockRead
	}
	return ""
}

// LockSet maps a lock key — the full BaseString of the mutex expression,
// e.g. "db.mu" for db.mu.Lock() or "h.verMu" for h.verMu.Lock() — to its
// state. Keying by the full path (rather than the owner alone) keeps two
// mutexes of the same struct distinct, which structs with a wide lock
// plus a narrow lock (HeapFile's mu and verMu) require. Absent keys are
// definitely unheld.
type LockSet map[string]LockState

// Clone copies the set.
func (ls LockSet) Clone() LockSet {
	c := make(LockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (ls LockSet) equal(o LockSet) bool {
	if len(ls) != len(o) {
		return false
	}
	for k, v := range ls {
		if o[k] != v {
			return false
		}
	}
	return true
}

// join merges two predecessor states: may-facts union, must-facts
// intersect.
func joinLockSets(a, b LockSet) LockSet {
	out := make(LockSet, len(a)+len(b))
	for k, va := range a {
		vb := b[k] // zero value when absent: nothing held on that path
		out[k] = LockState{
			MayExcl:  va.MayExcl || vb.MayExcl,
			MayRead:  va.MayRead || vb.MayRead,
			Must:     va.Must && vb.Must,
			Released: va.Released || vb.Released,
		}
	}
	for k, vb := range b {
		if _, seen := a[k]; !seen {
			out[k] = LockState{MayExcl: vb.MayExcl, MayRead: vb.MayRead, Must: false, Released: vb.Released}
		}
	}
	// Drop fully-bottom entries so equality checks converge.
	for k, v := range out {
		if v == (LockState{}) {
			delete(out, k)
		}
	}
	return out
}

// LockEventOf decodes expr as <mutex-path>.(Lock|RLock|Unlock|RUnlock)()
// on a sync.Mutex or sync.RWMutex, returning the full mutex path as the
// lock key ("db.mu", "h.verMu", or "mu" for a bare mutex variable) and
// the operation name. The key deliberately includes the mutex field so
// that a struct with more than one mutex gets one lock fact per mutex;
// SplitLockKey recovers the owner when a check needs it.
func LockEventOf(info *types.Info, expr ast.Expr) (base, op string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if MutexKindOf(info.TypeOf(sel.X)) == "" {
		return "", "", false
	}
	b := BaseString(sel.X)
	if b == "" {
		return "", "", false
	}
	return b, sel.Sel.Name, true
}

// SplitLockKey splits a lock key into the owner path and the mutex field
// name: "h.verMu" -> ("h", "verMu"). A bare mutex variable has no owner:
// "mu" -> ("", "mu").
func SplitLockKey(key string) (owner, field string) {
	if i := lastDot(key); i >= 0 {
		return key[:i], key[i+1:]
	}
	return "", key
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// MutexKindOf returns "Mutex" or "RWMutex" for the sync mutex types, ""
// otherwise.
func MutexKindOf(t types.Type) string {
	named := NamedOf(t)
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return obj.Name()
	}
	return ""
}

// collectMutexAliases scans a CFG for local aliases of a mutex path —
// `m := &s.mu` (and pointer copies `n := m`) — and maps each alias
// variable to the canonical lock key of the mutex it points at. Without
// this, `m.Lock()` and `s.mu.Unlock()` would track as two different
// locks and every alias-style critical section would be a false
// "unlocked" finding. An alias that is ever redirected at a second
// mutex is dropped as ambiguous.
func collectMutexAliases(info *types.Info, g *CFG) map[string]string {
	aliases := map[string]string{}
	ambiguous := map[string]bool{}
	record := func(name, key string) {
		if ambiguous[name] {
			return
		}
		if prev, ok := aliases[name]; ok && prev != key {
			delete(aliases, name)
			ambiguous[name] = true
			return
		}
		aliases[name] = key
	}
	visit := func(as *ast.AssignStmt) {
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.UnaryExpr:
				if rhs.Op != token.AND || MutexKindOf(info.TypeOf(rhs.X)) == "" {
					continue
				}
				if b := BaseString(rhs.X); b != "" {
					if canon, ok := aliases[b]; ok {
						b = canon
					}
					record(id.Name, b)
				}
			case *ast.Ident:
				if canon, ok := aliases[rhs.Name]; ok {
					record(id.Name, canon)
				}
			}
		}
	}
	// Two passes over the blocks so an alias copy sees its source even
	// when block order does not follow def order.
	for pass := 0; pass < 2; pass++ {
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				ast.Inspect(n, func(node ast.Node) bool {
					if _, ok := node.(*ast.FuncLit); ok {
						return false
					}
					switch v := node.(type) {
					case *ast.AssignStmt:
						visit(v)
					case *ast.ValueSpec: // var m = &s.mu
						visit(&ast.AssignStmt{Lhs: identExprs(v.Names), Rhs: v.Values})
					}
					return true
				})
			}
		}
	}
	return aliases
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// canonLockKey resolves an alias lock key to its canonical form.
func canonLockKey(aliases map[string]string, base string) string {
	if canon, ok := aliases[base]; ok {
		return canon
	}
	return base
}

// ApplyLockOp updates the set for one decoded lock event. An unlock
// leaves a Released tombstone rather than clearing the key: downstream
// program points can then tell "held on no path because it was released"
// from "never touched", which the walorder conditional-lock rule needs.
func ApplyLockOp(set LockSet, base, op string) {
	switch op {
	case "Lock":
		set[base] = LockState{MayExcl: true, Must: true}
	case "RLock":
		set[base] = LockState{MayRead: true, Must: true}
	case "Unlock", "RUnlock":
		set[base] = LockState{Released: true}
	}
}

// applyLockNode is the per-node transfer function. Only top-level lock
// calls in expression statements change the state; a defer of an Unlock
// keeps the lock held to function end (the deferred release runs at
// return, after every node of this graph).
func applyLockNode(info *types.Info, aliases map[string]string, n ast.Node, set LockSet) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return
	}
	if base, op, ok := LockEventOf(info, es.X); ok {
		ApplyLockOp(set, canonLockKey(aliases, base), op)
	}
}

// LockFlow is the solved lock dataflow of one function body.
type LockFlow struct {
	g    *CFG
	info *types.Info
	// aliases maps local mutex aliases (m := &s.mu) to canonical keys.
	aliases map[string]string
	// in[i] is the lock set on entry to Blocks[i]; nil marks a block no
	// path reaches.
	in []LockSet
}

// SolveLockFlow runs the forward worklist analysis over g with the given
// entry state (non-nil; empty for a function that starts lock-free).
func SolveLockFlow(g *CFG, info *types.Info, entry LockSet) *LockFlow {
	aliases := collectMutexAliases(info, g)
	n := len(g.Blocks)
	in := make([]LockSet, n)
	in[0] = entry.Clone()

	preds := make([][]int, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}

	out := make([]LockSet, n)
	transfer := func(i int) LockSet {
		if in[i] == nil {
			return nil
		}
		s := in[i].Clone()
		for _, node := range g.Blocks[i].Nodes {
			applyLockNode(info, aliases, node, s)
		}
		return s
	}

	// Iterate to fixpoint. Lock sets form a finite lattice (keys bounded
	// by the function's lock calls), so this terminates quickly.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if i != 0 {
				var merged LockSet
				reached := false
				for _, p := range preds[i] {
					if out[p] == nil {
						continue
					}
					if !reached {
						merged = out[p].Clone()
						reached = true
					} else {
						merged = joinLockSets(merged, out[p])
					}
				}
				if reached && (in[i] == nil || !in[i].equal(merged)) {
					in[i] = merged
					changed = true
				}
			}
			newOut := transfer(i)
			if newOut == nil {
				continue
			}
			if out[i] == nil || !out[i].equal(newOut) {
				out[i] = newOut
				changed = true
			}
		}
	}
	return &LockFlow{g: g, info: info, aliases: aliases, in: in}
}

// EventOf decodes expr as a lock event like LockEventOf, additionally
// resolving local mutex aliases (m := &s.mu) to the canonical lock key
// the solved flow tracks. Checks that pair a decoded event with the
// flow's lock sets must use this, not LockEventOf, or an aliased
// critical section reads as two unrelated locks.
func (lf *LockFlow) EventOf(expr ast.Expr) (base, op string, ok bool) {
	base, op, ok = LockEventOf(lf.info, expr)
	if !ok {
		return "", "", false
	}
	return canonLockKey(lf.aliases, base), op, true
}

// Walk visits every reachable node in block order with the lock set in
// force just before the node executes. The set passed to fn is shared
// scratch state: copy it if it must outlive the call.
func (lf *LockFlow) Walk(fn func(n ast.Node, held LockSet)) {
	for _, b := range lf.g.Blocks {
		state := lf.in[b.Index]
		if state == nil {
			continue // unreachable
		}
		s := state.Clone()
		for _, node := range b.Nodes {
			fn(node, s)
			applyLockNode(lf.info, lf.aliases, node, s)
		}
	}
}

// DeferredUnlocks returns the lock keys released by deferred calls
// (defer x.mu.Unlock() or a deferred closure containing one), sorted.
func (lf *LockFlow) DeferredUnlocks() []string {
	seen := map[string]bool{}
	for _, d := range lf.g.Defers {
		if base, op, ok := lf.EventOf(d.Call); ok && (op == "Unlock" || op == "RUnlock") {
			seen[base] = true
			continue
		}
		if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
			for base := range closureUnlocks(lf.info, fl) {
				seen[base] = true
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// closureUnlocks returns lock keys a function literal unlocks without
// first locking inside the literal — i.e. locks the closure releases on
// behalf of its creator — mapped to the unlock operation used. A deferred
// closure of this shape runs with the lock held, so analyses treat those
// locks as held at closure entry.
func closureUnlocks(info *types.Info, fl *ast.FuncLit) map[string]string {
	locked := map[string]bool{}
	out := map[string]string{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fl {
			return false
		}
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		base, op, ok := LockEventOf(info, es.X)
		if !ok {
			return true
		}
		switch op {
		case "Lock", "RLock":
			locked[base] = true
		case "Unlock", "RUnlock":
			if !locked[base] {
				if _, dup := out[base]; !dup {
					out[base] = op
				}
			}
		}
		return true
	})
	return out
}

// ClosureEntryLocks returns the lock set a deferred closure should be
// analyzed under: every lock it releases without first acquiring is
// assumed held at entry, in the mode matching the release (Unlock →
// exclusive, RUnlock → read).
func ClosureEntryLocks(info *types.Info, fl *ast.FuncLit) LockSet {
	entry := make(LockSet)
	for base, op := range closureUnlocks(info, fl) {
		if op == "RUnlock" {
			entry[base] = LockState{MayRead: true, Must: true}
		} else {
			entry[base] = LockState{MayExcl: true, Must: true}
		}
	}
	return entry
}
