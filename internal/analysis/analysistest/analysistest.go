// Package analysistest runs an analyzer over golden-file fixture packages
// and checks its diagnostics against expectations embedded in the fixture
// source. An expectation is a trailing comment of the form
//
//	// want "substring" ["substring" ...]
//
// on the line the diagnostic must land on. Every want must be matched by a
// diagnostic on its line, every diagnostic must be matched by a want, and
// a fixture with no want comments asserts the analyzer stays silent.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"recdb/internal/analysis"
)

// Run loads testdata/src/<pkg> relative to dir and applies the analyzer,
// comparing diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := loader.LoadDir(filepath.Join(dir, "testdata", "src", pkg))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", pkg, err)
	}
	for _, e := range p.Errors {
		t.Errorf("fixture %s does not type-check: %v", pkg, e)
	}
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, f := range p.Files {
		fname := loader.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := loader.Fset.Position(c.Pos()).Line
				for _, w := range parseWants(t, c, rest) {
					wants[key{fname, line}] = append(wants[key{fname, line}], w)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", k.file, k.line, w)
		}
	}
}

// parseWants splits the quoted expectations out of a want comment.
func parseWants(t *testing.T, c *ast.Comment, rest string) []string {
	t.Helper()
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' {
			t.Errorf("malformed want comment %q", c.Text)
			return out
		}
		end := 1
		for end < len(rest) && rest[end] != '"' {
			if rest[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(rest) {
			t.Errorf("unterminated want comment %q", c.Text)
			return out
		}
		s, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Errorf("bad want string in %q: %v", c.Text, err)
			return out
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out
}
