package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package. Type-checking is
// best-effort: Errors collects parse and type errors, and analyzers run
// over whatever was recovered, so one broken file does not hide findings
// in the rest of the module.
type Package struct {
	// Path is the import path ("recdb/internal/storage"), or the
	// directory base name for packages loaded outside a module.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object (possibly incomplete when
	// Errors is non-empty).
	Types *types.Package
	// TypesInfo holds the resolved identifier/selection/type maps.
	TypesInfo *types.Info
	// Errors collects parse and type-check errors, in encounter order.
	Errors []error

	fset *token.FileSet // the FileSet the files were parsed with
}

// Fset returns the FileSet the package's files were parsed with.
func (p *Package) Fset() *token.FileSet { return p.fset }

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved by loading the imported package from source;
// everything else (the standard library) is resolved through the stdlib
// source importer, so the loader works with nothing but a Go toolchain.
type Loader struct {
	Fset *token.FileSet

	modPath string // module path from go.mod ("" outside a module)
	modRoot string // directory containing go.mod
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader creates a loader rooted at dir: the nearest enclosing go.mod
// (if any) defines which import paths are module-internal.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	if root, path, ok := findModule(abs); ok {
		l.modRoot, l.modPath = root, path
	}
	return l, nil
}

// findModule walks up from dir looking for go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string, ok bool) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return d, strings.TrimSpace(rest), true
				}
			}
			return d, "", false
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", false
		}
	}
}

// Load resolves the given patterns to package directories and loads each.
// Supported patterns: a directory path, or a path ending in "/..." which
// walks that directory recursively (skipping testdata, hidden, and
// underscore-prefixed directories, as the go tool does). Packages that
// fail to parse or type-check are still returned, with Errors populated.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			base := rest
			if pat == "..." {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(pat)
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return out, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in one directory. The result is memoized by
// import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(l.importPathFor(abs), abs)
}

// importPathFor derives the import path of a directory: module-relative
// when inside the module, the base name otherwise (testdata fixtures).
func (l *Loader) importPathFor(abs string) string {
	if l.modRoot != "" {
		if rel, err := filepath.Rel(l.modRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, "../") {
			if rel == "." {
				return l.modPath
			}
			return l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.Base(abs)
}

// dirFor maps a module-internal import path back to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.modPath == "" {
		return "", false
	}
	if path == l.modPath {
		return l.modRoot, true
	}
	if rel, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rel)), true
	}
	return "", false
}

func (l *Loader) loadPath(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	pkg := &Package{Path: importPath, Dir: dir, fset: l.Fset}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
		}
		if f != nil {
			pkg.Files = append(pkg.Files, f)
		}
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.Errors = append(pkg.Errors, err)
		},
	}
	// Check returns a usable (if incomplete) package even on error; errors
	// were already captured by the Error callback above.
	tpkg, _ := conf.Check(importPath, l.Fset, pkg.Files, pkg.TypesInfo)
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-internal
// paths load from source through the loader; everything else goes to the
// stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: package %q failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
