package analysis_test

import (
	"path/filepath"
	"sort"
	"testing"

	"recdb/internal/analysis"
)

// funcmark reports every function declaration — a trivial analyzer used to
// exercise the runner.
var funcmark = &analysis.Analyzer{
	Name: "funcmark",
	Doc:  "test analyzer reporting each function",
	Run: func(pass *analysis.Pass) error {
		// Report in reverse file order to prove the runner sorts output.
		decls := analysis.FuncDecls(pass.Files)
		for i := len(decls) - 1; i >= 0; i-- {
			pass.Reportf(decls[i].Pos(), "func %s", decls[i].Name.Name)
		}
		return nil
	},
}

func load(t *testing.T, pkg string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", pkg, err)
	}
	return loader, p
}

// TestLoaderToleratesParseErrors: a package with a syntax error must still
// load, report its errors, and expose whatever was recovered — one broken
// file must not make the whole module un-analyzable.
func TestLoaderToleratesParseErrors(t *testing.T) {
	_, p := load(t, "broken")
	if len(p.Errors) == 0 {
		t.Fatal("expected parse errors for the broken fixture, got none")
	}
	if len(p.Files) == 0 {
		t.Fatal("expected a (partial) AST even with parse errors")
	}
	// Running analyzers over the partial package must not panic or error.
	if _, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark}); err != nil {
		t.Fatalf("Run over broken package: %v", err)
	}
}

// TestDeterministicOrder: diagnostics come back sorted by position no
// matter what order the analyzer reported them in.
func TestDeterministicOrder(t *testing.T) {
	_, p := load(t, "ok")
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	if !sorted {
		t.Errorf("diagnostics not sorted by position: %v", diags)
	}
}

// TestSuppression: a //lint:ignore directive naming the analyzer silences
// the finding on the next line; other findings survive.
func TestSuppression(t *testing.T) {
	_, p := load(t, "ok")
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := make(map[string]bool)
	for _, d := range diags {
		got[d.Message] = true
	}
	if got["func Middle"] {
		t.Error("finding on Middle should have been suppressed by //lint:ignore")
	}
	for _, want := range []string{"func Zebra", "func Alpha"} {
		if !got[want] {
			t.Errorf("missing expected diagnostic %q (got %v)", want, diags)
		}
	}
}
