package analysis_test

import (
	"path/filepath"
	"sort"
	"testing"

	"recdb/internal/analysis"
	"recdb/internal/analysis/passes/atomicfield"
	"recdb/internal/analysis/passes/locksafe"
)

// funcmark reports every function declaration — a trivial analyzer used to
// exercise the runner.
var funcmark = &analysis.Analyzer{
	Name: "funcmark",
	Doc:  "test analyzer reporting each function",
	Run: func(pass *analysis.Pass) error {
		// Report in reverse file order to prove the runner sorts output.
		decls := analysis.FuncDecls(pass.Files)
		for i := len(decls) - 1; i >= 0; i-- {
			pass.Reportf(decls[i].Pos(), "func %s", decls[i].Name.Name)
		}
		return nil
	},
}

func load(t *testing.T, pkg string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", pkg, err)
	}
	return loader, p
}

// TestLoaderToleratesParseErrors: a package with a syntax error must still
// load, report its errors, and expose whatever was recovered — one broken
// file must not make the whole module un-analyzable.
func TestLoaderToleratesParseErrors(t *testing.T) {
	_, p := load(t, "broken")
	if len(p.Errors) == 0 {
		t.Fatal("expected parse errors for the broken fixture, got none")
	}
	if len(p.Files) == 0 {
		t.Fatal("expected a (partial) AST even with parse errors")
	}
	// Running analyzers over the partial package must not panic or error.
	if _, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark}); err != nil {
		t.Fatalf("Run over broken package: %v", err)
	}
}

// TestDeterministicOrder: diagnostics come back sorted by position no
// matter what order the analyzer reported them in.
func TestDeterministicOrder(t *testing.T) {
	_, p := load(t, "ok")
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	if !sorted {
		t.Errorf("diagnostics not sorted by position: %v", diags)
	}
}

// TestSuppression: a //lint:ignore directive naming the analyzer silences
// the finding on the next line; other findings survive.
func TestSuppression(t *testing.T) {
	_, p := load(t, "ok")
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := make(map[string]bool)
	for _, d := range diags {
		got[d.Message] = true
	}
	if got["func Middle"] {
		t.Error("finding on Middle should have been suppressed by //lint:ignore")
	}
	for _, want := range []string{"func Zebra", "func Alpha"} {
		if !got[want] {
			t.Errorf("missing expected diagnostic %q (got %v)", want, diags)
		}
	}
}

// typemark is a second trivial analyzer so tests can tell multi-analyzer
// suppression apart from single-analyzer suppression.
var typemark = &analysis.Analyzer{
	Name: "typemark",
	Doc:  "test analyzer reporting each function, under a second name",
	Run: func(pass *analysis.Pass) error {
		for _, fd := range analysis.FuncDecls(pass.Files) {
			pass.Reportf(fd.Pos(), "typemark %s", fd.Name.Name)
		}
		return nil
	},
}

// TestMultiAnalyzerSuppression: //lint:ignore a,b silences exactly the
// named analyzers, on directives in any file of the package.
func TestMultiAnalyzerSuppression(t *testing.T) {
	_, p := load(t, "multi")
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark, typemark})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := make(map[string]bool)
	for _, d := range diags {
		got[d.Message] = true
	}
	for _, suppressed := range []string{
		"func BothSuppressed", "typemark BothSuppressed",
		"func OnlyFuncmarkSuppressed",
		"func OtherFileSuppressed", "typemark OtherFileSuppressed",
	} {
		if got[suppressed] {
			t.Errorf("%q should have been suppressed", suppressed)
		}
	}
	for _, want := range []string{
		"func Plain", "typemark Plain",
		"typemark OnlyFuncmarkSuppressed", // only funcmark was named
		"func OtherFilePlain", "typemark OtherFilePlain",
	} {
		if !got[want] {
			t.Errorf("missing expected diagnostic %q", want)
		}
	}
}

// TestGenericsLoadAndAnalyze: type-parameterized code must type-check
// through the loader and run through the full analyzer suite (via the
// framework's own test analyzers plus the lock dataflow, which sees
// instantiated selector types) without errors or spurious findings.
// TestAnnPoolFixtureClean: the annpool fixture mirrors the k-means worker
// pool in internal/ann (chunk-disjoint writes, modulo centroid ownership,
// an all-atomic progress counter). Its concurrency discipline is
// sanctioned by design, so the lock-dataflow and atomic-field analyzers
// must report nothing — a diagnostic here is a false positive that would
// also fire on the real index build.
func TestAnnPoolFixtureClean(t *testing.T) {
	_, p := load(t, "annpool")
	for _, e := range p.Errors {
		t.Errorf("annpool fixture must type-check cleanly: %v", e)
	}
	diags, err := analysis.Run([]*analysis.Package{p},
		[]*analysis.Analyzer{locksafe.Analyzer, atomicfield.Analyzer})
	if err != nil {
		t.Fatalf("Run(locksafe, atomicfield) over annpool: %v", err)
	}
	for _, d := range diags {
		t.Errorf("false positive on the ann worker-pool idiom: %s", d)
	}
}

func TestGenericsLoadAndAnalyze(t *testing.T) {
	_, p := load(t, "generics")
	for _, e := range p.Errors {
		t.Errorf("generics fixture must type-check cleanly: %v", e)
	}
	diags, err := analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{funcmark})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("funcmark should report the generic declarations")
	}
	// The lock dataflow must survive instantiated selector types: the
	// generics fixture locks correctly everywhere, so locksafe must stay
	// silent rather than crash or misread Map[K,V] receivers.
	diags, err = analysis.Run([]*analysis.Package{p}, []*analysis.Analyzer{locksafe.Analyzer})
	if err != nil {
		t.Fatalf("Run(locksafe) over generics: %v", err)
	}
	for _, d := range diags {
		t.Errorf("locksafe false positive on generic code: %s", d)
	}
}
