// Package analysis is a from-scratch, stdlib-only static-analysis
// framework for RecDB. It exists because the kernel invariants this
// codebase depends on — every pinned buffer-pool page is unpinned, every
// volcano operator is closed, every mutex-guarded field is read under its
// lock — are invisible to go vet, yet a single violation silently degrades
// the engine (a leaked pin eventually exhausts the pool; an unclosed
// iterator holds a pin forever).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// without depending on it: an Analyzer bundles a name, documentation, and
// a Run function over a Pass; the loader (loader.go) parses and
// type-checks module packages using only go/parser, go/types, and the
// stdlib source importer; the runner (runner.go) applies analyzers,
// filters suppressed findings, and reports diagnostics deterministically.
//
// Suppressions: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it silences those
// analyzers for that line. A reason is mandatory; suppressions without one
// are ignored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions. It
	// must be a valid identifier.
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run performs the analysis. It reports findings via Pass.Reportf and
	// returns an error only for internal failures (not findings).
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package has been
	// analyzed. It sees the facts Run accumulated in Pass.Shared across
	// packages — the mechanism cross-package checks (the lock-order
	// graph) use — and reports via ModulePass.ReportAtf.
	Finish func(*ModulePass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Shared is per-analyzer state that persists across packages of one
	// Run call, for analyzers whose invariant spans package boundaries.
	// Keys are analyzer-chosen; the runner only allocates the map.
	Shared map[string]any

	diags *[]Diagnostic
}

// ModulePass is the view an Analyzer.Finish hook gets after all packages
// ran: the accumulated Shared state and a position-explicit reporter.
type ModulePass struct {
	Analyzer *Analyzer
	Shared   map[string]any

	diags *[]Diagnostic
}

// ReportAtf records a finding at an already-resolved position (facts
// stored in Shared carry token.Position, not token.Pos, because their
// FileSet context is long gone by Finish time).
func (mp *ModulePass) ReportAtf(pos token.Position, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
