package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is an intraprocedural control-flow graph over one function body.
// Statements are grouped into basic blocks connected by Succs edges;
// branching statements (if/for/range/switch/select) split blocks, and
// break/continue/goto/return edges follow Go's semantics, including
// labeled loops. The graph is the substrate the dataflow analyses
// (reaching locks, pin states) iterate over.
//
// Two statement kinds get special handling because they change *when*
// code runs, not just whether:
//
//   - defer: the deferred call is recorded both as an in-block node (so
//     analyses observe registration order) and in Defers (so analyses can
//     model the function-exit execution of the deferred body).
//   - go: the spawned function runs concurrently; its body is not part of
//     this graph. GoBodies collects spawned function literals so callers
//     can build separate CFGs for them.
type CFG struct {
	// Blocks in construction order; Blocks[0] is the entry block.
	Blocks []*Block
	// Defers lists every defer statement, in source order.
	Defers []*ast.DeferStmt
	// GoBodies lists function literals launched with go statements, in
	// source order.
	GoBodies []*ast.FuncLit
	// DeferBodies lists function literals called directly by a defer
	// (defer func(){...}()), in source order.
	DeferBodies []*ast.FuncLit
}

// Block is one basic block: a maximal run of straight-line nodes.
type Block struct {
	Index int
	// Nodes holds the block's statements and control expressions (an if
	// condition, a switch tag) in execution order.
	Nodes []ast.Node
	// Succs are the possible next blocks. A block ending in return (or
	// falling off the function end) has none.
	Succs []*Block
	// Return marks a block terminated by a return statement.
	Return bool
}

// Entry returns the function entry block.
func (g *CFG) Entry() *Block { return g.Blocks[0] }

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*labelTarget)}
	entry := b.newBlock()
	exit := b.stmtList(body.List, entry, branchCtx{})
	if exit != nil {
		// Falling off the end: implicit return.
		exit.Return = true
	}
	return b.g
}

type cfgBuilder struct {
	g      *CFG
	labels map[string]*labelTarget
	// pendingFallthrough is the block a `fallthrough` ended in, waiting to
	// be wired to the next case body.
	pendingFallthrough *Block
}

// labelTarget resolves a label to the blocks its break/continue/goto jump
// to. Blocks are created lazily: a goto may precede its label.
type labelTarget struct {
	// begin is the block the labeled statement starts in (goto target).
	begin *Block
	// brk and cont are the break/continue targets when the labeled
	// statement is a loop or switch.
	brk, cont *Block
	// pendingGoto collects blocks that jumped here before the label was
	// seen.
	pendingGoto []*Block
}

// branchCtx carries the innermost break/continue targets.
type branchCtx struct {
	brk, cont *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads the statements through cur, returning the block control
// falls out of (nil if the list always transfers control away).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *Block, ctx branchCtx) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code after return/branch still gets blocks so
			// analyses can see its nodes, but nothing flows in.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, ctx)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block, ctx branchCtx) *Block {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, v)
		cur.Return = true
		return nil
	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, v)
		switch v.Tok {
		case token.BREAK:
			if v.Label != nil {
				if lt := b.labels[v.Label.Name]; lt != nil {
					edge(cur, lt.brk)
				}
			} else {
				edge(cur, ctx.brk)
			}
		case token.CONTINUE:
			if v.Label != nil {
				if lt := b.labels[v.Label.Name]; lt != nil {
					edge(cur, lt.cont)
				}
			} else {
				edge(cur, ctx.cont)
			}
		case token.GOTO:
			lt := b.labelOf(v.Label.Name)
			if lt.begin != nil {
				edge(cur, lt.begin)
			} else {
				lt.pendingGoto = append(lt.pendingGoto, cur)
			}
		case token.FALLTHROUGH:
			// The switch construction wires this block to the next case.
			b.pendingFallthrough = cur
		}
		return nil
	case *ast.LabeledStmt:
		lt := b.labelOf(v.Label.Name)
		begin := b.newBlock()
		edge(cur, begin)
		lt.begin = begin
		for _, from := range lt.pendingGoto {
			edge(from, begin)
		}
		lt.pendingGoto = nil
		return b.labeledStmt(v, begin, ctx, lt)
	case *ast.BlockStmt:
		return b.stmtList(v.List, cur, ctx)
	case *ast.IfStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, ctx)
		}
		cur.Nodes = append(cur.Nodes, v.Cond)
		thenB := b.newBlock()
		edge(cur, thenB)
		thenOut := b.stmtList(v.Body.List, thenB, ctx)
		join := b.newBlock()
		edge(thenOut, join)
		if v.Else != nil {
			elseB := b.newBlock()
			edge(cur, elseB)
			elseOut := b.stmt(v.Else, elseB, ctx)
			edge(elseOut, join)
		} else {
			edge(cur, join)
		}
		return join
	case *ast.ForStmt:
		return b.forStmt(v, cur, nil)
	case *ast.RangeStmt:
		return b.rangeStmt(v, cur, nil)
	case *ast.SwitchStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, ctx)
		}
		if v.Tag != nil {
			cur.Nodes = append(cur.Nodes, v.Tag)
		}
		return b.caseClauses(v.Body, cur, ctx, hasDefaultCase(v.Body))
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, ctx)
		}
		cur.Nodes = append(cur.Nodes, v.Assign)
		return b.caseClauses(v.Body, cur, ctx, hasDefaultCase(v.Body))
	case *ast.SelectStmt:
		// Every select blocks until one comm proceeds; without a default
		// there is no fallthrough-without-a-case path.
		join := b.newBlock()
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			edge(cur, caseB)
			if cc.Comm != nil {
				caseB = b.stmt(cc.Comm, caseB, ctx)
			}
			out := b.stmtList(cc.Body, caseB, branchCtx{brk: join, cont: ctx.cont})
			edge(out, join)
		}
		if len(v.Body.List) == 0 {
			edge(cur, join)
		}
		return join
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, v)
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			b.g.DeferBodies = append(b.g.DeferBodies, fl)
		}
		cur.Nodes = append(cur.Nodes, v)
		return cur
	case *ast.GoStmt:
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			b.g.GoBodies = append(b.g.GoBodies, fl)
		}
		cur.Nodes = append(cur.Nodes, v)
		return cur
	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// labeledStmt builds the statement under a label, wiring labeled
// break/continue targets when it is a loop or switch.
func (b *cfgBuilder) labeledStmt(v *ast.LabeledStmt, begin *Block, ctx branchCtx, lt *labelTarget) *Block {
	switch inner := v.Stmt.(type) {
	case *ast.ForStmt:
		return b.forStmt(inner, begin, lt)
	case *ast.RangeStmt:
		return b.rangeStmt(inner, begin, lt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		join := b.newBlock()
		lt.brk = join
		out := b.stmt(v.Stmt, begin, ctx)
		edge(out, join)
		return join
	default:
		return b.stmt(v.Stmt, begin, ctx)
	}
}

func (b *cfgBuilder) labelOf(name string) *labelTarget {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTarget{}
		b.labels[name] = lt
	}
	return lt
}

func (b *cfgBuilder) forStmt(v *ast.ForStmt, cur *Block, lt *labelTarget) *Block {
	if v.Init != nil {
		cur = b.stmt(v.Init, cur, branchCtx{})
	}
	head := b.newBlock()
	edge(cur, head)
	if v.Cond != nil {
		head.Nodes = append(head.Nodes, v.Cond)
	}
	exit := b.newBlock()
	post := b.newBlock()
	if lt != nil {
		lt.brk, lt.cont = exit, post
	}
	body := b.newBlock()
	edge(head, body)
	out := b.stmtList(v.Body.List, body, branchCtx{brk: exit, cont: post})
	edge(out, post)
	if v.Post != nil {
		b.stmt(v.Post, post, branchCtx{})
	}
	edge(post, head)
	if v.Cond != nil {
		edge(head, exit) // condition false
	}
	// A for{} with no condition only exits via break; exit may be
	// unreachable, which is fine.
	return exit
}

func (b *cfgBuilder) rangeStmt(v *ast.RangeStmt, cur *Block, lt *labelTarget) *Block {
	cur.Nodes = append(cur.Nodes, v.X)
	head := b.newBlock()
	edge(cur, head)
	exit := b.newBlock()
	if lt != nil {
		lt.brk, lt.cont = exit, head
	}
	body := b.newBlock()
	edge(head, body)
	edge(head, exit) // range exhausted
	out := b.stmtList(v.Body.List, body, branchCtx{brk: exit, cont: head})
	edge(out, head)
	return exit
}

// caseClauses wires a switch/type-switch body: each case flows from cur to
// its own block and out to a common join; without a default, cur also
// flows straight to the join.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, cur *Block, ctx branchCtx, exhaustive bool) *Block {
	join := b.newBlock()
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseB := b.newBlock()
		edge(cur, caseB)
		for _, e := range cc.List {
			caseB.Nodes = append(caseB.Nodes, e)
		}
		// A fallthrough at the end of the previous case jumps here.
		if b.pendingFallthrough != nil {
			edge(b.pendingFallthrough, caseB)
			b.pendingFallthrough = nil
		}
		out := b.stmtList(cc.Body, caseB, branchCtx{brk: join, cont: ctx.cont})
		edge(out, join)
	}
	b.pendingFallthrough = nil
	if !exhaustive {
		edge(cur, join)
	}
	return join
}

func hasDefaultCase(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
