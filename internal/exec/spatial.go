package exec

import (
	"fmt"

	"recdb/internal/catalog"
	"recdb/internal/geo"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// SpatialPredicate selects the exact check a SpatialIndexScan applies to
// R-tree candidates.
type SpatialPredicate int

// The supported spatial predicates.
const (
	// SpatialContainsQuery: the query geometry contains the row's geometry
	// (ST_Contains(query, col)).
	SpatialContainsQuery SpatialPredicate = iota
	// SpatialContainsRow: the row's geometry contains the query geometry
	// (ST_Contains(col, query)).
	SpatialContainsRow
	// SpatialDWithin: the row's geometry lies within Dist of the query
	// geometry (ST_DWithin in either argument order).
	SpatialDWithin
)

// SpatialIndexScan reads a table through its R-tree: the index prunes by
// bounding box and each candidate row is re-verified against the exact
// predicate, the standard filter-and-refine strategy of spatial databases.
type SpatialIndexScan struct {
	Table     *catalog.Table
	Index     *catalog.Index
	Qualifier string
	Query     geo.Geometry
	Pred      SpatialPredicate
	Dist      float64 // SpatialDWithin only

	schema *types.Schema
	rids   []storage.RID
	pos    int
}

// NewSpatialIndexScan creates a filter-and-refine scan.
func NewSpatialIndexScan(table *catalog.Table, index *catalog.Index, qualifier string,
	query geo.Geometry, pred SpatialPredicate, dist float64) *SpatialIndexScan {
	return &SpatialIndexScan{
		Table: table, Index: index, Qualifier: qualifier,
		Query: query, Pred: pred, Dist: dist,
		schema: table.Schema.WithQualifier(qualifier),
	}
}

// Schema implements Operator.
func (s *SpatialIndexScan) Schema() *types.Schema { return s.schema }

// Open implements Operator: collect R-tree candidates.
func (s *SpatialIndexScan) Open() error {
	if s.Index.Spatial == nil {
		return fmt.Errorf("exec: spatial scan over non-spatial index %q", s.Index.Name)
	}
	s.rids = s.rids[:0]
	s.pos = 0
	collect := func(rid storage.RID) bool {
		s.rids = append(s.rids, rid)
		return true
	}
	// Candidates are collected under the table's read lock so concurrent
	// writers cannot mutate the R-tree mid-walk.
	if s.Pred == SpatialDWithin {
		s.Table.SearchIndexWithin(s.Index, s.Query, s.Dist, collect)
	} else {
		s.Table.SearchIndexContaining(s.Index, s.Query, collect)
	}
	return nil
}

// Next implements Operator: fetch and refine. A candidate whose tuple
// vanished between Open and here is skipped, not an error.
func (s *SpatialIndexScan) Next() (types.Row, bool, error) {
	for s.pos < len(s.rids) {
		rid := s.rids[s.pos]
		s.pos++
		row, ok, err := s.Table.Heap.Lookup(rid)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		v := row[s.Index.Column]
		if v.Kind() != types.KindGeometry || v.Geometry() == nil {
			continue
		}
		g := v.Geometry()
		match := false
		switch s.Pred {
		case SpatialContainsQuery:
			match = geo.Contains(s.Query, g)
		case SpatialContainsRow:
			match = geo.Contains(g, s.Query)
		case SpatialDWithin:
			match = geo.DWithin(g, s.Query, s.Dist)
		}
		if match {
			return row, true, nil
		}
	}
	return nil, false, nil
}

// Close implements Operator.
func (s *SpatialIndexScan) Close() error {
	s.rids = nil
	return nil
}
