package exec

import (
	"fmt"

	"recdb/internal/expr"
	"recdb/internal/rec"
	"recdb/internal/recindex"
	"recdb/internal/types"
)

// RecSchema builds the output schema of a RECOMMEND operator: the
// (user, item, rating) columns named in the clause, visible under the
// ratings table's alias.
func RecSchema(qualifier, userCol, itemCol, ratingCol string) *types.Schema {
	return types.NewSchema(
		types.Column{Qualifier: qualifier, Name: userCol, Kind: types.KindInt},
		types.Column{Qualifier: qualifier, Name: itemCol, Kind: types.KindInt},
		types.Column{Qualifier: qualifier, Name: ratingCol, Kind: types.KindFloat},
	)
}

// Recommend is the RECOMMEND operator family of §IV-A (ITEMCF, USERCF, and
// MATRIXFACT variants, selected by the model store's algorithm). With nil
// Users/Items it reproduces Algorithms 1-2: predict a rating for every
// (user, item) pair, emitting the actual rating for already-rated pairs
// and 0 when the model has no basis. Restricting Users/Items turns it into
// FILTERRECOMMEND: the uid/iid predicates are pushed down so prediction is
// computed only for pairs that can satisfy them (§IV-B1). An optional
// RatingPred applies a pushed-down predicate on the predicted value.
type Recommend struct {
	Store *rec.ModelStore
	// Users restricts the user loop (nil = all model users).
	Users []int64
	// Items restricts the item loop (nil = all model items).
	Items []int64
	// RatingPred, when set, filters emitted rows by predicted value.
	RatingPred expr.Compiled
	// IncludeSeen controls whether already-rated pairs are emitted (with
	// their actual rating, per Algorithm 1). Top-k recommendation queries
	// exclude them.
	IncludeSeen bool

	schema *types.Schema

	users, items []int64
	ui, ii       int
	curUserItems map[int64]float64
	curNeighbors []rec.Neighbor // user-based: current user's similarity list
	curFactors   []float64      // SVD: current user's factor vector

	// Per-item state is memoized across the user loop: Algorithm 1
	// re-reads the item-side table for every user, and with a warm buffer
	// pool those repeat reads are cache hits; the memo models that without
	// per-pair index-scan overhead. Single-user scans benefit too, since
	// the restricted item list can still repeat lookups across operators.
	itemNeighborsMemo map[int64][]rec.Neighbor
	itemRatersMemo    map[int64]map[int64]float64
	itemFactorsMemo   map[int64][]float64
}

// NewRecommend creates a RECOMMEND operator with the given output schema.
func NewRecommend(store *rec.ModelStore, schema *types.Schema) *Recommend {
	return &Recommend{Store: store, schema: schema, IncludeSeen: true}
}

// Schema implements Operator.
func (r *Recommend) Schema() *types.Schema { return r.schema }

// Open implements Operator.
func (r *Recommend) Open() error {
	if r.Users != nil {
		r.users = r.Users
	} else {
		r.users = r.Store.UserIDs()
	}
	if r.Items != nil {
		r.items = r.Items
	} else {
		r.items = r.Store.ItemIDs()
	}
	r.ui, r.ii = 0, 0
	r.curUserItems = nil
	switch {
	case r.Store.Algo.ItemBased():
		r.itemNeighborsMemo = make(map[int64][]rec.Neighbor)
	case r.Store.Algo.UserBased():
		r.itemRatersMemo = make(map[int64]map[int64]float64)
	case r.Store.Algo == rec.SVD:
		r.itemFactorsMemo = make(map[int64][]float64)
	}
	return nil
}

// loadUser fetches the per-user state for the outer loop.
func (r *Recommend) loadUser(u int64) error {
	items, err := r.Store.UserItems(u)
	if err != nil {
		return err
	}
	r.curUserItems = items
	switch {
	case r.Store.Algo.UserBased():
		if r.curNeighbors, err = r.Store.UserNeighbors(u); err != nil {
			return err
		}
	case r.Store.Algo == rec.SVD:
		if r.curFactors, err = r.Store.UserFactors(u); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator: the block-nested-loop of Algorithms 1-2 with
// the outer loop over users and the inner loop over items.
func (r *Recommend) Next() (types.Row, bool, error) {
	for {
		if r.ui >= len(r.users) {
			return nil, false, nil
		}
		u := r.users[r.ui]
		if r.curUserItems == nil {
			if err := r.loadUser(u); err != nil {
				return nil, false, err
			}
		}
		if r.ii >= len(r.items) {
			r.ui++
			r.ii = 0
			r.curUserItems = nil
			continue
		}
		i := r.items[r.ii]
		r.ii++

		var score float64
		if actual, rated := r.curUserItems[i]; rated {
			if !r.IncludeSeen {
				continue
			}
			score = actual
		} else {
			s, ok, err := r.predict(u, i)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				s = 0 // Algorithm 1 line 14
			}
			score = s
		}
		row := types.Row{types.NewInt(u), types.NewInt(i), types.NewFloat(score)}
		if r.RatingPred != nil {
			v, err := r.RatingPred(row)
			if err != nil {
				return nil, false, err
			}
			if !expr.Truthy(v) {
				continue
			}
		}
		return row, true, nil
	}
}

func (r *Recommend) predict(u, i int64) (float64, bool, error) {
	switch {
	case r.Store.Algo.ItemBased():
		neighbors, cached := r.itemNeighborsMemo[i]
		if !cached {
			var err error
			if neighbors, err = r.Store.ItemNeighbors(i); err != nil {
				return 0, false, err
			}
			r.itemNeighborsMemo[i] = neighbors
		}
		s, ok := rec.PredictWeighted(neighbors, r.curUserItems)
		return s, ok, nil
	case r.Store.Algo.UserBased():
		raters, cached := r.itemRatersMemo[i]
		if !cached {
			var err error
			if raters, err = r.Store.ItemRaters(i); err != nil {
				return 0, false, err
			}
			r.itemRatersMemo[i] = raters
		}
		s, ok := rec.PredictWeighted(r.curNeighbors, raters)
		return s, ok, nil
	case r.Store.Algo == rec.Popularity:
		return r.Store.ItemScoreOf(i)
	default: // SVD, Algorithm 2
		q, cached := r.itemFactorsMemo[i]
		if !cached {
			var err error
			if q, err = r.Store.ItemFactors(i); err != nil {
				return 0, false, err
			}
			r.itemFactorsMemo[i] = q
		}
		if r.curFactors == nil || q == nil {
			return 0, false, nil
		}
		return rec.Dot(r.curFactors, q), true, nil
	}
}

// Close implements Operator.
func (r *Recommend) Close() error {
	r.curUserItems = nil
	r.itemNeighborsMemo = nil
	r.itemRatersMemo = nil
	r.itemFactorsMemo = nil
	return nil
}

// ---- JOINRECOMMEND ----

// JoinRecommend is the JOINRECOMMEND operator of §IV-B2. Analogous to an
// index nested-loop join, it drives prediction from the outer relation:
// for each outer tuple it extracts the item id and computes the predicted
// rating only for items that are guaranteed to satisfy the join predicate.
// Output rows are 〈uid, iid, ratingval〉 ++ outer tuple.
type JoinRecommend struct {
	Store *rec.ModelStore
	// Outer is the joined relation (e.g. σ_genre(Movies)).
	Outer Operator
	// OuterItemCol is the position of the join column (item id) in Outer.
	OuterItemCol int
	// Users are the querying users (from the uid predicate; nil = all).
	Users []int64
	// IncludeSeen mirrors Recommend.IncludeSeen.
	IncludeSeen bool

	schema *types.Schema

	users       []int64
	curOuter    types.Row
	haveOuter   bool
	ui          int
	userItems   map[int64]map[int64]float64
	userNeigh   map[int64][]rec.Neighbor
	userFactors map[int64][]float64
}

// NewJoinRecommend creates a JOINRECOMMEND operator. recSchema is the
// RECOMMEND side of the output schema.
func NewJoinRecommend(store *rec.ModelStore, outer Operator, outerItemCol int, recSchema *types.Schema) *JoinRecommend {
	return &JoinRecommend{
		Store: store, Outer: outer, OuterItemCol: outerItemCol,
		IncludeSeen: true,
		schema:      recSchema.Concat(outer.Schema()),
	}
}

// Schema implements Operator.
func (j *JoinRecommend) Schema() *types.Schema { return j.schema }

// Open implements Operator.
func (j *JoinRecommend) Open() error {
	if j.Users != nil {
		j.users = j.Users
	} else {
		j.users = j.Store.UserIDs()
	}
	j.userItems = make(map[int64]map[int64]float64, len(j.users))
	j.userNeigh = nil
	j.userFactors = nil
	j.haveOuter = false
	j.ui = 0
	return j.Outer.Open()
}

func (j *JoinRecommend) userState(u int64) (map[int64]float64, error) {
	if items, ok := j.userItems[u]; ok {
		return items, nil
	}
	items, err := j.Store.UserItems(u)
	if err != nil {
		return nil, err
	}
	j.userItems[u] = items
	switch {
	case j.Store.Algo.UserBased():
		if j.userNeigh == nil {
			j.userNeigh = make(map[int64][]rec.Neighbor)
		}
		if j.userNeigh[u], err = j.Store.UserNeighbors(u); err != nil {
			return nil, err
		}
	case j.Store.Algo == rec.SVD:
		if j.userFactors == nil {
			j.userFactors = make(map[int64][]float64)
		}
		if j.userFactors[u], err = j.Store.UserFactors(u); err != nil {
			return nil, err
		}
	}
	return items, nil
}

// Next implements Operator: for each outer tuple, for each user, emit the
// joined row with the predicted (or actual) rating.
func (j *JoinRecommend) Next() (types.Row, bool, error) {
	for {
		if !j.haveOuter {
			row, ok, err := j.Outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.curOuter = row
			j.haveOuter = true
			j.ui = 0
		}
		if j.ui >= len(j.users) {
			j.haveOuter = false
			continue
		}
		u := j.users[j.ui]
		j.ui++

		itemVal := j.curOuter[j.OuterItemCol]
		item, ok := itemVal.AsInt()
		if !ok {
			continue // NULL or non-numeric join key never matches
		}
		if !j.Store.HasItem(item) {
			// Items with no ratings are unknown to the model; the other
			// recommendation plans never emit them, so neither does this
			// one.
			continue
		}
		items, err := j.userState(u)
		if err != nil {
			return nil, false, err
		}
		var score float64
		if actual, rated := items[item]; rated {
			if !j.IncludeSeen {
				continue
			}
			score = actual
		} else {
			s, ok, err := j.predictFor(u, item, items)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				s = 0
			}
			score = s
		}
		recRow := types.Row{types.NewInt(u), types.NewInt(item), types.NewFloat(score)}
		return recRow.Concat(j.curOuter), true, nil
	}
}

func (j *JoinRecommend) predictFor(u, i int64, userItems map[int64]float64) (float64, bool, error) {
	switch {
	case j.Store.Algo.ItemBased():
		neighbors, err := j.Store.ItemNeighbors(i)
		if err != nil {
			return 0, false, err
		}
		s, ok := rec.PredictWeighted(neighbors, userItems)
		return s, ok, nil
	case j.Store.Algo.UserBased():
		raters, err := j.Store.ItemRaters(i)
		if err != nil {
			return 0, false, err
		}
		s, ok := rec.PredictWeighted(j.userNeigh[u], raters)
		return s, ok, nil
	case j.Store.Algo == rec.Popularity:
		return j.Store.ItemScoreOf(i)
	default:
		q, err := j.Store.ItemFactors(i)
		if err != nil {
			return 0, false, err
		}
		p := j.userFactors[u]
		if p == nil || q == nil {
			return 0, false, nil
		}
		return rec.Dot(p, q), true, nil
	}
}

// Close implements Operator.
func (j *JoinRecommend) Close() error { return j.Outer.Close() }

// ---- INDEXRECOMMEND ----

// IndexRecommend is Algorithm 3: it serves recommendation queries from the
// pre-computed RecScoreIndex. Phase I filters users against the hash
// table, Phase II pushes the rating-value predicate into the RecTree
// traversal, Phase III filters item ids at the leaves. Rows emit in
// descending predicted-rating order per user, so an ORDER BY ratingval
// DESC LIMIT k on top is satisfied without a sort.
type IndexRecommend struct {
	Index *recindex.Index
	// Users is the user-id predicate (uPred); it must be non-empty — the
	// planner only chooses this operator for explicit user filters.
	Users []int64
	// MaxScore, when non-nil, is a pushed-down "ratingval <= x" bound
	// (rPred, Phase II).
	MaxScore *float64
	// ItemFilter, when non-nil, is the item-id predicate (iPred, Phase III).
	ItemFilter func(item int64) bool
	// RatingPred is any residual rating predicate evaluated per entry.
	RatingPred expr.Compiled
	// Limit, when positive, stops after emitting that many rows per user.
	// The planner sets it from ORDER BY ratingval DESC LIMIT k, restoring
	// the early-termination benefit of reading the RecTree in score order.
	Limit int64

	schema *types.Schema

	buf []types.Row
	pos int
}

// NewIndexRecommend creates an INDEXRECOMMEND operator.
func NewIndexRecommend(index *recindex.Index, users []int64, schema *types.Schema) *IndexRecommend {
	return &IndexRecommend{Index: index, Users: users, schema: schema}
}

// Schema implements Operator.
func (ir *IndexRecommend) Schema() *types.Schema { return ir.schema }

// Open implements Operator.
func (ir *IndexRecommend) Open() error {
	if len(ir.Users) == 0 {
		return fmt.Errorf("exec: INDEXRECOMMEND requires a user predicate")
	}
	ir.buf = ir.buf[:0]
	ir.pos = 0
	var evalErr error
	for _, u := range ir.Users { // Phase I
		emitted := int64(0)
		ir.Index.Descend(u, ir.MaxScore, func(e recindex.Entry) bool { // Phase II
			if ir.ItemFilter != nil && !ir.ItemFilter(e.Item) { // Phase III
				return true
			}
			row := types.Row{types.NewInt(u), types.NewInt(e.Item), types.NewFloat(e.Score)}
			if ir.RatingPred != nil {
				v, err := ir.RatingPred(row)
				if err != nil {
					evalErr = err
					return false
				}
				if !expr.Truthy(v) {
					return true
				}
			}
			ir.buf = append(ir.buf, row)
			emitted++
			return ir.Limit <= 0 || emitted < ir.Limit
		})
		if evalErr != nil {
			return evalErr
		}
	}
	return nil
}

// Next implements Operator.
func (ir *IndexRecommend) Next() (types.Row, bool, error) {
	if ir.pos >= len(ir.buf) {
		return nil, false, nil
	}
	row := ir.buf[ir.pos]
	ir.pos++
	return row, true, nil
}

// Close implements Operator.
func (ir *IndexRecommend) Close() error {
	ir.buf = nil
	return nil
}

// CoversUsers reports whether every listed user is materialized in the
// index (the planner's applicability check for INDEXRECOMMEND).
func CoversUsers(ix *recindex.Index, users []int64) bool {
	if len(users) == 0 {
		return false
	}
	for _, u := range users {
		if !ix.HasUser(u) {
			return false
		}
	}
	return true
}
