package exec

import (
	"time"

	"recdb/internal/storage"
	"recdb/internal/types"
)

// Analyzed decorates one operator with EXPLAIN ANALYZE accounting: actual
// rows emitted, Open loops, inclusive wall time, and inclusive buffer-pool
// reads/misses attributed while the operator (and therefore its subtree)
// was on the stack. The decorator exists only in analyze mode — normal
// query execution never allocates one — so the ordinary Next() path stays
// instrumentation-free.
type Analyzed struct {
	// Op is the wrapped operator. Its child fields are themselves wrapped
	// by Instrument, so the tree alternates Analyzed -> concrete -> ...
	Op Operator

	stats *storage.Stats

	// Loops counts Open calls (a join rescans its inner side once per
	// outer row, so Rows and Nanos are totals across all loops).
	Loops int64
	// Rows counts rows emitted across all loops.
	Rows int64
	// Nanos is inclusive wall time spent inside Open/Next/Close of this
	// subtree.
	Nanos int64
	// Reads and Misses are inclusive buffer-pool page fetches and disk
	// reads observed while this subtree was executing (hits = Reads -
	// Misses).
	Reads, Misses int64
}

// Instrument wraps op and every operator below it in *Analyzed recorders,
// rewriting child links in place. stats is the engine's shared buffer-pool
// accounting; nil disables the buffer columns (rows and time still
// record). The returned root is what the engine executes and what
// plan.DescribePlan renders with actual-row annotations.
func Instrument(op Operator, stats *storage.Stats) *Analyzed {
	if a, ok := op.(*Analyzed); ok {
		return a
	}
	instrumentChildren(op, stats)
	return &Analyzed{Op: op, stats: stats}
}

// instrumentChildren rewrites op's child operator fields to wrapped
// versions via the shared traversal in cancel.go.
func instrumentChildren(op Operator, stats *storage.Stats) {
	wrapChildren(op, func(c Operator) Operator { return Instrument(c, stats) })
}

// begin snapshots the clock and buffer counters before a wrapped call.
func (a *Analyzed) begin() (time.Time, int64, int64) {
	var r, m int64
	if a.stats != nil {
		r = a.stats.PageReads.Load()
		m = a.stats.PageMisses.Load()
	}
	return time.Now(), r, m
}

// end accrues the inclusive deltas since begin.
func (a *Analyzed) end(start time.Time, r0, m0 int64) {
	a.Nanos += int64(time.Since(start))
	if a.stats != nil {
		a.Reads += a.stats.PageReads.Load() - r0
		a.Misses += a.stats.PageMisses.Load() - m0
	}
}

// Schema implements Operator.
func (a *Analyzed) Schema() *types.Schema { return a.Op.Schema() }

// Open implements Operator, counting one loop.
func (a *Analyzed) Open() error {
	a.Loops++
	start, r0, m0 := a.begin()
	err := a.Op.Open()
	a.end(start, r0, m0)
	return err
}

// Next implements Operator, counting emitted rows.
func (a *Analyzed) Next() (types.Row, bool, error) {
	start, r0, m0 := a.begin()
	row, ok, err := a.Op.Next()
	a.end(start, r0, m0)
	if ok && err == nil {
		a.Rows++
	}
	return row, ok, err
}

// Close implements Operator.
func (a *Analyzed) Close() error {
	start, r0, m0 := a.begin()
	err := a.Op.Close()
	a.end(start, r0, m0)
	return err
}
