package exec

import (
	"testing"

	"recdb/internal/catalog"
	"recdb/internal/expr"
	"recdb/internal/sql"
	"recdb/internal/types"
)

func compileCol(t *testing.T, qualifier, name string, schema *types.Schema) expr.Compiled {
	t.Helper()
	c, err := expr.Compile(&sql.ColumnRef{Qualifier: qualifier, Name: name}, schema)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseAggName(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
	} {
		got, ok := ParseAggName(name)
		if !ok || got != want {
			t.Errorf("ParseAggName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseAggName("median"); ok {
		t.Error("median should not be an aggregate")
	}
}

func TestHashAggregateGrouped(t *testing.T) {
	cat := catalog.New(nil, 0)
	ratings := ratingsFixture(t, cat) // 7 rows
	scan := NewSeqScan(ratings, "r")
	schema := scan.Schema()
	uid := compileCol(t, "r", "uid", schema)
	val := compileCol(t, "r", "ratingval", schema)

	outSchema := types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "n", Kind: types.KindInt},
		types.Column{Name: "total", Kind: types.KindFloat},
		types.Column{Name: "mean", Kind: types.KindFloat},
		types.Column{Name: "lo", Kind: types.KindFloat},
		types.Column{Name: "hi", Kind: types.KindFloat},
	)
	agg := NewHashAggregate(scan, []expr.Compiled{uid}, []AggSpec{
		{Kind: AggCountStar},
		{Kind: AggSum, Arg: val},
		{Kind: AggAvg, Arg: val},
		{Kind: AggMin, Arg: val},
		{Kind: AggMax, Arg: val},
	}, outSchema)
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups: %d", len(rows))
	}
	byUID := map[int64]types.Row{}
	for _, r := range rows {
		byUID[r[0].Int()] = r
	}
	// User 2 rated 3 items: 3.5 + 4.5 + 2 = 10.
	u2 := byUID[2]
	if u2[1].Int() != 3 || u2[2].Float() != 10 || u2[3].Float() != 10.0/3 {
		t.Fatalf("user 2 aggregates: %v", u2)
	}
	if u2[4].Float() != 2 || u2[5].Float() != 4.5 {
		t.Fatalf("user 2 min/max: %v", u2)
	}
}

func TestHashAggregateGlobalAndEmpty(t *testing.T) {
	cat := catalog.New(nil, 0)
	ratings := ratingsFixture(t, cat)
	scan := NewSeqScan(ratings, "r")
	val := compileCol(t, "r", "ratingval", scan.Schema())
	outSchema := types.NewSchema(
		types.Column{Name: "n", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindFloat},
	)
	agg := NewHashAggregate(scan, nil, []AggSpec{
		{Kind: AggCountStar}, {Kind: AggSum, Arg: val},
	}, outSchema)
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Fatalf("global: %v", rows)
	}

	// Empty input still yields one global row: COUNT 0, SUM NULL.
	empty, _ := cat.CreateTable("empty", ratings.Schema, -1)
	scan2 := NewSeqScan(empty, "e")
	val2 := compileCol(t, "e", "ratingval", scan2.Schema())
	agg2 := NewHashAggregate(scan2, nil, []AggSpec{
		{Kind: AggCountStar}, {Kind: AggSum, Arg: val2},
	}, outSchema)
	rows, err = Collect(agg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty global: %v", rows)
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	cat := catalog.New(nil, 0)
	schema := types.NewSchema(types.Column{Name: "v", Kind: types.KindInt})
	tab := newTable(t, cat, "t", schema, -1, []types.Row{
		{types.NewInt(10)}, {types.Null()}, {types.NewInt(20)}, {types.Null()},
	})
	scan := NewSeqScan(tab, "t")
	v := compileCol(t, "t", "v", scan.Schema())
	outSchema := types.NewSchema(
		types.Column{Name: "star", Kind: types.KindInt},
		types.Column{Name: "nonnull", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindInt},
	)
	agg := NewHashAggregate(scan, nil, []AggSpec{
		{Kind: AggCountStar},
		{Kind: AggCount, Arg: v},
		{Kind: AggSum, Arg: v},
		{Kind: AggMin, Arg: v},
	}, outSchema)
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r[0].Int() != 4 || r[1].Int() != 2 {
		t.Fatalf("counts: %v", r)
	}
	// SUM of all-int input stays integer.
	if r[2].Kind() != types.KindInt || r[2].Int() != 30 {
		t.Fatalf("int sum: %v", r[2])
	}
	if r[3].Int() != 10 {
		t.Fatalf("min: %v", r[3])
	}
}

func TestAggregateTypeError(t *testing.T) {
	cat := catalog.New(nil, 0)
	movies := moviesFixture(t, cat)
	scan := NewSeqScan(movies, "m")
	name := compileCol(t, "m", "name", scan.Schema())
	agg := NewHashAggregate(scan, nil, []AggSpec{{Kind: AggSum, Arg: name}},
		types.NewSchema(types.Column{Name: "s", Kind: types.KindFloat}))
	if err := agg.Open(); err == nil {
		t.Fatal("SUM over text should fail")
	}
	// MIN/MAX over text is fine.
	scan2 := NewSeqScan(movies, "m")
	name2 := compileCol(t, "m", "name", scan2.Schema())
	agg2 := NewHashAggregate(scan2, nil, []AggSpec{{Kind: AggMax, Arg: name2}},
		types.NewSchema(types.Column{Name: "m", Kind: types.KindText}))
	rows, err := Collect(agg2)
	if err != nil || rows[0][0].Text() != "The Matrix" {
		t.Fatalf("MAX(text): %v %v", rows, err)
	}
}

func TestDistinct(t *testing.T) {
	cat := catalog.New(nil, 0)
	movies := moviesFixture(t, cat)
	scan := NewSeqScan(movies, "m")
	genre := compileCol(t, "m", "genre", scan.Schema())
	proj := NewProject(scan, []expr.Compiled{genre},
		types.NewSchema(types.Column{Name: "genre", Kind: types.KindText}))
	rows, err := Collect(NewDistinct(proj))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // Action (x2), Suspense, Sci-Fi
		t.Fatalf("distinct genres: %v", rows)
	}
}
