package exec

import (
	"testing"

	"recdb/internal/catalog"
	"recdb/internal/expr"
	"recdb/internal/sql"
	"recdb/internal/types"
)

func compilePred(t *testing.T, cond string, schema *types.Schema) expr.Compiled {
	t.Helper()
	stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	c, err := expr.Compile(stmt.(*sql.Select).Where, schema)
	if err != nil {
		t.Fatalf("compile %q: %v", cond, err)
	}
	return c
}

func newTable(t *testing.T, cat *catalog.Catalog, name string, schema *types.Schema, pk int, rows []types.Row) *catalog.Table {
	t.Helper()
	tab, err := cat.CreateTable(name, schema, pk)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func moviesFixture(t *testing.T, cat *catalog.Catalog) *catalog.Table {
	schema := types.NewSchema(
		types.Column{Name: "mid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindText},
		types.Column{Name: "genre", Kind: types.KindText},
	)
	rows := []types.Row{
		{types.NewInt(1), types.NewText("Spartacus"), types.NewText("Action")},
		{types.NewInt(2), types.NewText("Inception"), types.NewText("Suspense")},
		{types.NewInt(3), types.NewText("The Matrix"), types.NewText("Sci-Fi")},
		{types.NewInt(4), types.NewText("Heat"), types.NewText("Action")},
	}
	return newTable(t, cat, "movies", schema, 0, rows)
}

func TestSeqScan(t *testing.T) {
	cat := catalog.New(nil, 0)
	tab := moviesFixture(t, cat)
	scan := NewSeqScan(tab, "m")
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if scan.Schema().Columns[0].QualifiedName() != "m.mid" {
		t.Fatalf("schema: %v", scan.Schema().Columns)
	}
	// Reopenable.
	rows2, err := Collect(scan)
	if err != nil || len(rows2) != 4 {
		t.Fatalf("reopen: %d rows, %v", len(rows2), err)
	}
}

func TestIndexScan(t *testing.T) {
	cat := catalog.New(nil, 0)
	tab := moviesFixture(t, cat)
	idx, ok := tab.IndexOn("mid")
	if !ok {
		t.Fatal("pk index missing")
	}
	scan := NewIndexScan(tab, idx, "m", types.NewInt(2), types.NewInt(3))
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int() != 2 || rows[1][0].Int() != 3 {
		t.Fatalf("index scan: %v", rows)
	}
}

func TestFilter(t *testing.T) {
	cat := catalog.New(nil, 0)
	tab := moviesFixture(t, cat)
	scan := NewSeqScan(tab, "m")
	pred := compilePred(t, "m.genre = 'Action'", scan.Schema())
	rows, err := Collect(NewFilter(scan, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("filter: %v", rows)
	}
}

func TestProject(t *testing.T) {
	cat := catalog.New(nil, 0)
	tab := moviesFixture(t, cat)
	scan := NewSeqScan(tab, "m")
	nameExpr, err := expr.Compile(&sql.ColumnRef{Qualifier: "m", Name: "name"}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	outSchema := types.NewSchema(types.Column{Name: "name", Kind: types.KindText})
	rows, err := Collect(NewProject(scan, []expr.Compiled{nameExpr}, outSchema))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(rows[0]) != 1 || rows[0][0].Text() != "Spartacus" {
		t.Fatalf("project: %v", rows)
	}
}

func ratingsFixture(t *testing.T, cat *catalog.Catalog) *catalog.Table {
	schema := types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	)
	rows := []types.Row{
		{types.NewInt(1), types.NewInt(1), types.NewFloat(1.5)},
		{types.NewInt(2), types.NewInt(2), types.NewFloat(3.5)},
		{types.NewInt(2), types.NewInt(1), types.NewFloat(4.5)},
		{types.NewInt(2), types.NewInt(3), types.NewFloat(2)},
		{types.NewInt(3), types.NewInt(2), types.NewFloat(1)},
		{types.NewInt(3), types.NewInt(1), types.NewFloat(2)},
		{types.NewInt(4), types.NewInt(2), types.NewFloat(1)},
	}
	return newTable(t, cat, "ratings", schema, -1, rows)
}

func TestNestedLoopJoin(t *testing.T) {
	cat := catalog.New(nil, 0)
	movies := moviesFixture(t, cat)
	ratings := ratingsFixture(t, cat)
	left := NewSeqScan(ratings, "r")
	right := NewSeqScan(movies, "m")
	joined := NewNestedLoopJoin(left, right, nil)
	pred := compilePred(t, "r.iid = m.mid", joined.Schema())
	joined.Pred = pred
	rows, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // every rating matches exactly one movie
		t.Fatalf("join produced %d rows", len(rows))
	}
	if len(rows[0]) != 6 {
		t.Fatalf("joined row width %d", len(rows[0]))
	}
}

func TestHashJoin(t *testing.T) {
	cat := catalog.New(nil, 0)
	movies := moviesFixture(t, cat)
	ratings := ratingsFixture(t, cat)
	left := NewSeqScan(ratings, "r")
	right := NewSeqScan(movies, "m")
	outSchema := left.Schema().Concat(right.Schema())
	lk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "r", Name: "iid"}, left.Schema())
	rk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "m", Name: "mid"}, right.Schema())
	j := NewHashJoin(left, right, lk, rk, nil)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("hash join produced %d rows", len(rows))
	}
	// Verify the join key actually matches.
	for _, r := range rows {
		if r[1].Int() != r[3].Int() {
			t.Fatalf("mismatched join row: %v", r)
		}
	}
	_ = outSchema
}

func TestHashJoinWithResidual(t *testing.T) {
	cat := catalog.New(nil, 0)
	movies := moviesFixture(t, cat)
	ratings := ratingsFixture(t, cat)
	left := NewSeqScan(ratings, "r")
	right := NewSeqScan(movies, "m")
	lk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "r", Name: "iid"}, left.Schema())
	rk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "m", Name: "mid"}, right.Schema())
	j := NewHashJoin(left, right, lk, rk, nil)
	j.Residual = compilePred(t, "m.genre = 'Action'", j.Schema())
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // item 1 (Action) rated 3 times
		t.Fatalf("residual join produced %d rows", len(rows))
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	cat := catalog.New(nil, 0)
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	a := newTable(t, cat, "a", schema, -1, []types.Row{{types.Null()}, {types.NewInt(1)}})
	b := newTable(t, cat, "b", schema, -1, []types.Row{{types.Null()}, {types.NewInt(1)}})
	ls, rs := NewSeqScan(a, "a"), NewSeqScan(b, "b")
	lk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "a", Name: "k"}, ls.Schema())
	rk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "b", Name: "k"}, rs.Schema())
	rows, err := Collect(NewHashJoin(ls, rs, lk, rk, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("null keys joined: %v", rows)
	}
}

func TestSortAndLimit(t *testing.T) {
	cat := catalog.New(nil, 0)
	ratings := ratingsFixture(t, cat)
	scan := NewSeqScan(ratings, "r")
	key, _ := expr.Compile(&sql.ColumnRef{Qualifier: "r", Name: "ratingval"}, scan.Schema())
	s := NewSort(scan, []SortKey{{Expr: key, Desc: true}})
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][2].Float() != 4.5 || rows[len(rows)-1][2].Float() != 1 {
		t.Fatalf("sort desc: %v", rows)
	}
	// Stable: equal keys preserve input order.
	scan2 := NewSeqScan(ratings, "r")
	key2, _ := expr.Compile(&sql.ColumnRef{Qualifier: "r", Name: "ratingval"}, scan2.Schema())
	limited := NewLimit(NewSort(scan2, []SortKey{{Expr: key2, Desc: true}}), 3)
	rows, err = Collect(limited)
	if err != nil || len(rows) != 3 {
		t.Fatalf("limit: %d rows, %v", len(rows), err)
	}
}

func TestSortAscendingMultiKey(t *testing.T) {
	cat := catalog.New(nil, 0)
	ratings := ratingsFixture(t, cat)
	scan := NewSeqScan(ratings, "r")
	k1, _ := expr.Compile(&sql.ColumnRef{Qualifier: "r", Name: "uid"}, scan.Schema())
	k2, _ := expr.Compile(&sql.ColumnRef{Qualifier: "r", Name: "iid"}, scan.Schema())
	rows, err := Collect(NewSort(scan, []SortKey{{Expr: k1}, {Expr: k2}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[0].Int() > b[0].Int() || (a[0].Int() == b[0].Int() && a[1].Int() > b[1].Int()) {
			t.Fatalf("multi-key sort order broken at %d: %v %v", i, a, b)
		}
	}
}

func TestLimitZero(t *testing.T) {
	cat := catalog.New(nil, 0)
	ratings := ratingsFixture(t, cat)
	rows, err := Collect(NewLimit(NewSeqScan(ratings, "r"), 0))
	if err != nil || len(rows) != 0 {
		t.Fatalf("limit 0: %v %v", rows, err)
	}
}

func TestSortIncomparableKeysError(t *testing.T) {
	cat := catalog.New(nil, 0)
	schema := types.NewSchema(types.Column{Name: "v", Kind: types.KindText})
	// Mixed types in one column via NULL-typed inserts is not possible
	// through the catalog, so build a sort over an expression that yields
	// mixed kinds: CASE-less hack using the raw operator with rows fed
	// from two projections is overkill — instead sort a text column against
	// an int key by comparing v to itself concatenated (text) vs literal
	// (int) is also blocked at compile time. Simplest: feed the Sort a key
	// function that returns mixed kinds.
	tab := newTable(t, cat, "t", schema, -1, []types.Row{
		{types.NewText("a")}, {types.NewText("b")},
	})
	scan := NewSeqScan(tab, "t")
	i := 0
	key := func(row types.Row) (types.Value, error) {
		i++
		if i%2 == 0 {
			return types.NewInt(1), nil
		}
		return types.NewText("x"), nil
	}
	s := NewSort(scan, []SortKey{{Expr: key}})
	if err := s.Open(); err == nil {
		t.Fatal("sorting incomparable keys should error")
	}
}

func TestHashJoinCollisionVerification(t *testing.T) {
	// Force many rows through a join where the key space is small enough
	// that rows with equal hashes but unequal keys would surface as wrong
	// matches if equality were not re-verified.
	cat := catalog.New(nil, 0)
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	var rowsA, rowsB []types.Row
	for i := int64(0); i < 500; i++ {
		rowsA = append(rowsA, types.Row{types.NewInt(i)})
		rowsB = append(rowsB, types.Row{types.NewInt(i * 2)})
	}
	a := newTable(t, cat, "a", schema, -1, rowsA)
	b := newTable(t, cat, "b", schema, -1, rowsB)
	ls, rs := NewSeqScan(a, "a"), NewSeqScan(b, "b")
	lk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "a", Name: "k"}, ls.Schema())
	rk, _ := expr.Compile(&sql.ColumnRef{Qualifier: "b", Name: "k"}, rs.Schema())
	joined, err := Collect(NewHashJoin(ls, rs, lk, rk, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Matches: even k in [0, 500) → 250 rows.
	if len(joined) != 250 {
		t.Fatalf("join rows: %d", len(joined))
	}
	for _, r := range joined {
		if r[0].Int() != r[1].Int() {
			t.Fatalf("false match: %v", r)
		}
	}
}

func TestOperatorDoubleClose(t *testing.T) {
	cat := catalog.New(nil, 0)
	tab := moviesFixture(t, cat)
	scan := NewSeqScan(tab, "m")
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if err := scan.Close(); err != nil {
		t.Fatal("double close should be safe")
	}
	// Filter/Limit wrap and propagate.
	pred := compilePred(t, "m.genre = 'Action'", tab.Schema.WithQualifier("m"))
	f := NewFilter(NewSeqScan(tab, "m"), pred)
	if _, err := Collect(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("close after Collect should be safe")
	}
}

func TestLimitExactBoundary(t *testing.T) {
	cat := catalog.New(nil, 0)
	tab := moviesFixture(t, cat) // 4 rows
	rows, err := Collect(NewLimit(NewSeqScan(tab, "m"), 4))
	if err != nil || len(rows) != 4 {
		t.Fatalf("limit == size: %d %v", len(rows), err)
	}
	rows, err = Collect(NewLimit(NewSeqScan(tab, "m"), 100))
	if err != nil || len(rows) != 4 {
		t.Fatalf("limit > size: %d %v", len(rows), err)
	}
}
