package exec

import (
	"fmt"

	"recdb/internal/expr"
	"recdb/internal/types"
)

// AggKind identifies an aggregate function.
type AggKind int

// The supported aggregates.
const (
	AggCountStar AggKind = iota // COUNT(*)
	AggCount                    // COUNT(expr): non-NULL values
	AggSum
	AggAvg
	AggMin
	AggMax
)

// ParseAggName maps a function name to its aggregate kind.
func ParseAggName(name string) (AggKind, bool) {
	switch name {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	default:
		return 0, false
	}
}

// AggSpec is one aggregate to compute. Arg is nil for COUNT(*).
type AggSpec struct {
	Kind AggKind
	Arg  expr.Compiled
}

type aggState struct {
	count   int64
	sum     float64
	sumInts bool // all inputs so far were integers
	minMax  types.Value
	seen    bool
}

func (st *aggState) add(kind AggKind, v types.Value) error {
	if kind == AggCountStar {
		st.count++
		return nil
	}
	if v.IsNull() {
		return nil // aggregates skip NULLs
	}
	st.count++
	switch kind {
	case AggCount:
	case AggSum, AggAvg:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("exec: SUM/AVG over non-numeric %s", v.Kind())
		}
		if !st.seen {
			st.sumInts = true
		}
		st.sumInts = st.sumInts && v.Kind() == types.KindInt
		st.sum += f
	case AggMin, AggMax:
		if !st.seen {
			st.minMax = v
		} else {
			c, err := types.Compare(v, st.minMax)
			if err != nil {
				return err
			}
			if (kind == AggMin && c < 0) || (kind == AggMax && c > 0) {
				st.minMax = v
			}
		}
	}
	st.seen = true
	return nil
}

func (st *aggState) result(kind AggKind) types.Value {
	switch kind {
	case AggCountStar, AggCount:
		return types.NewInt(st.count)
	case AggSum:
		if !st.seen {
			return types.Null()
		}
		if st.sumInts {
			return types.NewInt(int64(st.sum))
		}
		return types.NewFloat(st.sum)
	case AggAvg:
		if !st.seen {
			return types.Null()
		}
		return types.NewFloat(st.sum / float64(st.count))
	case AggMin, AggMax:
		if !st.seen {
			return types.Null()
		}
		return st.minMax
	}
	return types.Null()
}

// HashAggregate groups its input by the GroupBy expressions and computes
// the aggregate Specs per group. With no GroupBy keys it produces exactly
// one global row (even over empty input, per SQL).
type HashAggregate struct {
	Child   Operator
	GroupBy []expr.Compiled
	Specs   []AggSpec

	schema *types.Schema
	out    []types.Row
	pos    int
}

// NewHashAggregate creates an aggregation whose output schema is the group
// keys followed by one column per aggregate.
func NewHashAggregate(child Operator, groupBy []expr.Compiled, specs []AggSpec, schema *types.Schema) *HashAggregate {
	return &HashAggregate{Child: child, GroupBy: groupBy, Specs: specs, schema: schema}
}

// Schema implements Operator.
func (a *HashAggregate) Schema() *types.Schema { return a.schema }

// Open implements Operator: it drains the child and materializes groups.
func (a *HashAggregate) Open() error {
	rows, err := Collect(a.Child)
	if err != nil {
		return err
	}
	type group struct {
		key    types.Row
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string // deterministic output: first-seen order
	for _, row := range rows {
		key := make(types.Row, len(a.GroupBy))
		for i, g := range a.GroupBy {
			if key[i], err = g(row); err != nil {
				return err
			}
		}
		id := string(types.EncodeRow(nil, key))
		grp := groups[id]
		if grp == nil {
			grp = &group{key: key, states: make([]aggState, len(a.Specs))}
			groups[id] = grp
			order = append(order, id)
		}
		for i, spec := range a.Specs {
			v := types.Null()
			if spec.Arg != nil {
				if v, err = spec.Arg(row); err != nil {
					return err
				}
			}
			if err := grp.states[i].add(spec.Kind, v); err != nil {
				return err
			}
		}
	}
	if len(groups) == 0 && len(a.GroupBy) == 0 {
		// Global aggregate over empty input: one row of empty aggregates.
		grp := &group{states: make([]aggState, len(a.Specs))}
		groups[""] = grp
		order = append(order, "")
	}
	a.out = a.out[:0]
	for _, id := range order {
		grp := groups[id]
		row := make(types.Row, 0, len(a.GroupBy)+len(a.Specs))
		row = append(row, grp.key...)
		for i, spec := range a.Specs {
			row = append(row, grp.states[i].result(spec.Kind))
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

// Next implements Operator.
func (a *HashAggregate) Next() (types.Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, true, nil
}

// Close implements Operator.
func (a *HashAggregate) Close() error {
	a.out = nil
	return a.Child.Close()
}

// Distinct suppresses duplicate rows (SELECT DISTINCT).
type Distinct struct {
	Child Operator
	seen  map[string]bool
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Operator) *Distinct {
	return &Distinct{Child: child}
}

// Schema implements Operator.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]bool)
	return d.Child.Open()
}

// Next implements Operator.
func (d *Distinct) Next() (types.Row, bool, error) {
	for {
		row, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		id := string(types.EncodeRow(nil, row))
		if d.seen[id] {
			continue
		}
		d.seen[id] = true
		return row, true, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Child.Close()
}
