package exec

import (
	"context"
	"errors"
	"testing"

	"recdb/internal/types"
)

// endless emits integers forever: the only way Collect over it returns is
// through cancellation.
type endless struct {
	schema *types.Schema
	n      int64
	closed bool
}

func newEndless() *endless {
	return &endless{schema: types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})}
}

func (s *endless) Schema() *types.Schema { return s.schema }
func (s *endless) Open() error           { return nil }
func (s *endless) Next() (types.Row, bool, error) {
	s.n++
	return types.Row{types.NewInt(s.n)}, true, nil
}
func (s *endless) Close() error { s.closed = true; return nil }

func TestWithContextBackgroundIsFree(t *testing.T) {
	src := newEndless()
	if op := WithContext(context.Background(), src); op != Operator(src) {
		t.Fatalf("Background context wrapped the operator: %T", op)
	}
	if op := WithContext(nil, src); op != Operator(src) {
		t.Fatalf("nil context wrapped the operator: %T", op)
	}
}

func TestWithContextCancelMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := newEndless()
	op := WithContext(ctx, src)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok, err := op.Next(); !ok || err != nil {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	_, ok, err := op.Next()
	if ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: ok=%v err=%v, want context.Canceled", ok, err)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if !src.closed {
		t.Fatal("Close did not propagate to the wrapped operator")
	}
}

func TestWithContextCancelInsideBlockingOpen(t *testing.T) {
	// A Sort drains its child inside Open; cancellation must be observed
	// there, through the wrapped child, or an endless child would hang.
	ctx, cancel := context.WithCancel(context.Background())
	src := newEndless()
	sort := NewSort(src, nil)
	op := WithContext(ctx, sort)
	done := make(chan error, 1)
	go func() {
		err := op.Open()
		_ = op.Close() // release whatever the failed Open accumulated
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Open returned %v, want context.Canceled", err)
	}
}

func TestWithContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done()
	op := WithContext(ctx, newEndless())
	if err := op.Open(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Open returned %v, want context.DeadlineExceeded", err)
	}
}

func TestWithContextIdempotent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	once := WithContext(ctx, newEndless())
	twice := WithContext(ctx, once)
	if once != twice {
		t.Fatal("WithContext double-wrapped an already-wrapped tree")
	}
}
