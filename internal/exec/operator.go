// Package exec implements the volcano-style (iterator-model) query
// executor: the classic relational operators (scan, filter, project, join,
// sort, limit) and the paper's recommendation-aware operators (§IV):
// RECOMMEND (Algorithms 1-2), FILTERRECOMMEND (predicate pushdown into
// prediction), JOINRECOMMEND (outer-relation-driven prediction), and
// INDEXRECOMMEND (Algorithm 3 over the RecScoreIndex). All operators are
// non-blocking where the paper's are, so the RECOMMEND family composes
// with the rest of the pipeline exactly as described in §IV-B.
package exec

import (
	"recdb/internal/types"
)

// Operator is a volcano-model query operator. The contract is
// Open → Next* → Close; Next returns ok=false at end of stream.
type Operator interface {
	// Schema describes the rows Next produces.
	Schema() *types.Schema
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next produces the next row; ok=false means the stream is exhausted.
	Next() (row types.Row, ok bool, err error)
	// Close releases resources. It must be safe to call after an error.
	Close() error
}

// Collect drains op (Open/Next/Close) and returns all rows. It is used by
// statement execution and tests.
func Collect(op Operator) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}
