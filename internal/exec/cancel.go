package exec

import (
	"context"
	"fmt"

	"recdb/internal/types"
)

// wrapChildren rewrites op's child operator links with w applied to each,
// the shared traversal behind Instrument (EXPLAIN ANALYZE) and WithContext
// (query cancellation). Leaves (scans, Recommend, IndexRecommend) have no
// children.
func wrapChildren(op Operator, w func(Operator) Operator) {
	switch v := op.(type) {
	case *Filter:
		v.Child = w(v.Child)
	case *Project:
		v.Child = w(v.Child)
	case *NestedLoopJoin:
		v.Left = w(v.Left)
		v.Right = w(v.Right)
	case *HashJoin:
		v.Left = w(v.Left)
		v.Right = w(v.Right)
	case *Sort:
		v.Child = w(v.Child)
	case *Limit:
		v.Child = w(v.Child)
	case *Distinct:
		v.Child = w(v.Child)
	case *HashAggregate:
		v.Child = w(v.Child)
	case *JoinRecommend:
		v.Outer = w(v.Outer)
	case *VectorRecommend:
		if v.Outer != nil {
			v.Outer = w(v.Outer)
		}
	}
}

// ctxOp decorates one operator with a context check on every Open and
// Next, so a canceled or deadline-expired query stops between rows even
// deep inside a blocking operator's drain (a Sort or HashAggregate
// filling up in Open checks through its wrapped child).
type ctxOp struct {
	op  Operator
	ctx context.Context
}

// WithContext threads ctx into op's whole tree: every operator is wrapped
// so its Open and Next observe cancellation. A context that can never be
// canceled (ctx.Done() == nil, e.g. context.Background()) returns op
// unchanged, keeping the embedded query path overhead-free.
func WithContext(ctx context.Context, op Operator) Operator {
	if ctx == nil || ctx.Done() == nil {
		return op
	}
	var wrap func(Operator) Operator
	wrap = func(o Operator) Operator {
		if _, ok := o.(*ctxOp); ok {
			return o
		}
		wrapChildren(o, wrap)
		return &ctxOp{op: o, ctx: ctx}
	}
	return wrap(op)
}

// Schema implements Operator.
func (c *ctxOp) Schema() *types.Schema { return c.op.Schema() }

// Open implements Operator, failing fast when the context is already done.
func (c *ctxOp) Open() error {
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("exec: query interrupted: %w", err)
	}
	return c.op.Open()
}

// Next implements Operator, checking cancellation between rows.
func (c *ctxOp) Next() (types.Row, bool, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("exec: query interrupted: %w", err)
	}
	return c.op.Next()
}

// Close implements Operator; cleanup proceeds regardless of cancellation.
func (c *ctxOp) Close() error { return c.op.Close() }
