package exec

import (
	"math"
	"testing"

	"recdb/internal/catalog"
	"recdb/internal/expr"
	"recdb/internal/rec"
	"recdb/internal/recindex"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// paperRatings is Figure 1(c) of the paper.
func paperRatings() []rec.Rating {
	return []rec.Rating{
		{User: 1, Item: 1, Value: 1.5},
		{User: 2, Item: 2, Value: 3.5}, {User: 2, Item: 1, Value: 4.5}, {User: 2, Item: 3, Value: 2},
		{User: 3, Item: 2, Value: 1}, {User: 3, Item: 1, Value: 2},
		{User: 4, Item: 2, Value: 1},
	}
}

func buildStore(t *testing.T, algo rec.Algorithm) (*catalog.Catalog, *rec.ModelStore, rec.Model) {
	t.Helper()
	cat := catalog.New(nil, 0)
	model, err := rec.Build(paperRatings(), algo, rec.BuildOptions{SVDSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rec.Materialize(cat, "t", model)
	if err != nil {
		t.Fatal(err)
	}
	return cat, store, model
}

func recTestSchema() *types.Schema { return RecSchema("r", "uid", "iid", "ratingval") }

func TestRecommendFullItemCF(t *testing.T) {
	_, store, model := buildStore(t, rec.ItemCosCF)
	op := NewRecommend(store, recTestSchema())
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 emits one tuple per (user, item) pair: 4 users × 3 items.
	if len(rows) != 12 {
		t.Fatalf("emitted %d rows, want 12", len(rows))
	}
	for _, row := range rows {
		u, i, r := row[0].Int(), row[1].Int(), row[2].Float()
		if actual, rated := model.Seen(u, i); rated {
			if r != actual {
				t.Fatalf("rated pair (%d,%d) emitted %v, want actual %v", u, i, r, actual)
			}
			continue
		}
		want, ok := model.Predict(u, i)
		if !ok {
			want = 0
		}
		if math.Abs(r-want) > 1e-12 {
			t.Fatalf("pair (%d,%d) emitted %v, want %v", u, i, r, want)
		}
	}
}

func TestRecommendAllAlgorithms(t *testing.T) {
	for _, algo := range []rec.Algorithm{rec.ItemCosCF, rec.ItemPearCF, rec.UserCosCF, rec.UserPearCF, rec.SVD} {
		_, store, model := buildStore(t, algo)
		rows, err := Collect(NewRecommend(store, recTestSchema()))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(rows) != 12 {
			t.Fatalf("%v: %d rows", algo, len(rows))
		}
		for _, row := range rows {
			u, i, r := row[0].Int(), row[1].Int(), row[2].Float()
			if actual, rated := model.Seen(u, i); rated {
				if r != actual {
					t.Fatalf("%v: rated (%d,%d) = %v, want %v", algo, u, i, r, actual)
				}
				continue
			}
			want, ok := model.Predict(u, i)
			if !ok {
				want = 0
			}
			if math.Abs(r-want) > 1e-9 {
				t.Fatalf("%v: (%d,%d) = %v, want %v", algo, u, i, r, want)
			}
		}
	}
}

func TestFilterRecommendPrunesComputation(t *testing.T) {
	cat, store, model := buildStore(t, rec.ItemCosCF)
	stats := cat.Stats()
	stats.Reset()

	// Full recommend touches far more pages than a single-user,
	// single-item FILTERRECOMMEND.
	if _, err := Collect(NewRecommend(store, recTestSchema())); err != nil {
		t.Fatal(err)
	}
	fullReads, _, _ := stats.Snapshot()
	stats.Reset()

	op := NewRecommend(store, recTestSchema())
	op.Users = []int64{3}
	op.Items = []int64{3}
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	filteredReads, _, _ := stats.Snapshot()
	if len(rows) != 1 {
		t.Fatalf("filtered recommend: %v", rows)
	}
	want, _ := model.Predict(3, 3)
	if math.Abs(rows[0][2].Float()-want) > 1e-12 {
		t.Fatalf("score %v, want %v", rows[0][2].Float(), want)
	}
	if filteredReads >= fullReads {
		t.Fatalf("pushdown did not reduce page reads: full=%d filtered=%d", fullReads, filteredReads)
	}
}

func TestRecommendExcludeSeen(t *testing.T) {
	_, store, _ := buildStore(t, rec.ItemCosCF)
	op := NewRecommend(store, recTestSchema())
	op.Users = []int64{2}
	op.IncludeSeen = false
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// User 2 rated all 3 items, so nothing is emitted.
	if len(rows) != 0 {
		t.Fatalf("expected no unseen items for user 2, got %v", rows)
	}
}

func TestRecommendRatingPredicate(t *testing.T) {
	_, store, _ := buildStore(t, rec.ItemCosCF)
	op := NewRecommend(store, recTestSchema())
	op.RatingPred = compilePred(t, "r.ratingval >= 2.0", op.Schema())
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row[2].Float() < 2.0 {
			t.Fatalf("rating predicate leaked %v", row)
		}
	}
	if len(rows) == 0 {
		t.Fatal("some pairs should pass the predicate")
	}
}

func TestJoinRecommend(t *testing.T) {
	cat, store, model := buildStore(t, rec.ItemCosCF)
	movies := moviesFixture(t, cat)
	outer := NewFilter(NewSeqScan(movies, "m"),
		compilePred(t, "m.genre = 'Action'", movies.Schema.WithQualifier("m")))
	jr := NewJoinRecommend(store, outer, 0, recTestSchema())
	jr.Users = []int64{3}
	rows, err := Collect(jr)
	if err != nil {
		t.Fatal(err)
	}
	// Action movies: Spartacus (item 1, in the model) and Heat (item 4,
	// which nobody rated — unknown to the model and therefore skipped,
	// matching the other recommendation plans).
	if len(rows) != 1 {
		t.Fatalf("join recommend: %d rows", len(rows))
	}
	r := rows[0]
	if len(r) != 6 {
		t.Fatalf("joined width: %v", r)
	}
	// Item 1 was rated by user 3 → actual rating 2 (IncludeSeen default).
	if r[1].Int() != 1 || r[2].Float() != 2 {
		t.Fatalf("item 1 row: %v", r)
	}
	_ = model
}

func TestJoinRecommendAllUsers(t *testing.T) {
	cat, store, _ := buildStore(t, rec.SVD)
	movies := moviesFixture(t, cat)
	outer := NewFilter(NewSeqScan(movies, "m"),
		compilePred(t, "m.mid = 2", movies.Schema.WithQualifier("m")))
	jr := NewJoinRecommend(store, outer, 0, recTestSchema())
	rows, err := Collect(jr)
	if err != nil {
		t.Fatal(err)
	}
	// One movie × 4 users.
	if len(rows) != 4 {
		t.Fatalf("join recommend all users: %d rows", len(rows))
	}
}

func TestIndexRecommendPhases(t *testing.T) {
	ix := recindex.New()
	for i := int64(1); i <= 20; i++ {
		ix.Put(7, i, float64(i)/2)
	}
	op := NewIndexRecommend(ix, []int64{7}, recTestSchema())
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("phase I: %d rows", len(rows))
	}
	// Descending score order.
	for i := 1; i < len(rows); i++ {
		if rows[i][2].Float() > rows[i-1][2].Float() {
			t.Fatal("not in descending score order")
		}
	}
	// Phase II: rating bound.
	max := 5.0
	op = NewIndexRecommend(ix, []int64{7}, recTestSchema())
	op.MaxScore = &max
	rows, _ = Collect(op)
	if len(rows) != 10 || rows[0][2].Float() != 5 {
		t.Fatalf("phase II: %d rows, top %v", len(rows), rows[0])
	}
	// Phase III: item filter.
	op = NewIndexRecommend(ix, []int64{7}, recTestSchema())
	op.ItemFilter = func(item int64) bool { return item%2 == 0 }
	rows, _ = Collect(op)
	if len(rows) != 10 {
		t.Fatalf("phase III: %d rows", len(rows))
	}
	// Limit pushdown.
	op = NewIndexRecommend(ix, []int64{7}, recTestSchema())
	op.Limit = 3
	rows, _ = Collect(op)
	if len(rows) != 3 || rows[0][2].Float() != 10 {
		t.Fatalf("limit: %v", rows)
	}
	// Residual rating predicate.
	op = NewIndexRecommend(ix, []int64{7}, recTestSchema())
	op.RatingPred = compilePred(t, "r.ratingval > 9.0", recTestSchema())
	rows, _ = Collect(op)
	if len(rows) != 2 {
		t.Fatalf("residual: %v", rows)
	}
}

func TestIndexRecommendRequiresUsers(t *testing.T) {
	op := NewIndexRecommend(recindex.New(), nil, recTestSchema())
	if err := op.Open(); err == nil {
		t.Fatal("INDEXRECOMMEND without users should fail")
	}
}

func TestCoversUsers(t *testing.T) {
	ix := recindex.New()
	ix.Put(1, 1, 1)
	if !CoversUsers(ix, []int64{1}) {
		t.Error("user 1 is covered")
	}
	if CoversUsers(ix, []int64{1, 2}) {
		t.Error("user 2 is not covered")
	}
	if CoversUsers(ix, nil) {
		t.Error("empty user list is not covered")
	}
}

func TestRecommendComposesWithSortLimit(t *testing.T) {
	// Query 1 shape: recommend → filter uid → sort by rating desc → limit.
	_, store, model := buildStore(t, rec.ItemCosCF)
	op := NewRecommend(store, recTestSchema())
	op.Users = []int64{1}
	op.IncludeSeen = false
	schema := op.Schema()
	key := compileExprForTest(t, "r.ratingval", schema)
	top := NewLimit(NewSort(op, []SortKey{{Expr: key, Desc: true}}), 2)
	rows, err := Collect(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("top-k: %v", rows)
	}
	if rows[0][2].Float() < rows[1][2].Float() {
		t.Fatal("top-k not sorted")
	}
	// Highest prediction for user 1 among unseen items {2,3}.
	p2, _ := model.Predict(1, 2)
	p3, _ := model.Predict(1, 3)
	want := math.Max(p2, p3)
	if math.Abs(rows[0][2].Float()-want) > 1e-12 {
		t.Fatalf("top score %v, want %v", rows[0][2].Float(), want)
	}
}

func compileExprForTest(t *testing.T, e string, schema *types.Schema) expr.Compiled {
	t.Helper()
	stmt, err := sql.Parse("SELECT " + e + " FROM t")
	if err != nil {
		t.Fatal(err)
	}
	c, err := expr.Compile(stmt.(*sql.Select).Items[0].Expr, schema)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
