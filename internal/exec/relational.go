package exec

import (
	"fmt"
	"sort"

	"recdb/internal/catalog"
	"recdb/internal/expr"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// ---- SeqScan ----

// SeqScan reads a heap table block by block under a visible qualifier
// (the table's alias in FROM).
type SeqScan struct {
	Table     *catalog.Table
	Qualifier string

	schema *types.Schema
	it     *storage.Iterator
}

// NewSeqScan creates a scan of table visible under qualifier.
func NewSeqScan(table *catalog.Table, qualifier string) *SeqScan {
	return &SeqScan{
		Table:     table,
		Qualifier: qualifier,
		schema:    table.Schema.WithQualifier(qualifier),
	}
}

// Schema implements Operator.
func (s *SeqScan) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *SeqScan) Open() error {
	s.it = s.Table.Heap.Scan()
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (types.Row, bool, error) {
	row, _, ok, err := s.it.Next()
	return row, ok, err
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// ---- IndexScan ----

// IndexScan reads rows whose indexed column lies in [Lo, Hi] (NULL bounds
// are open), in ascending column order.
type IndexScan struct {
	Table     *catalog.Table
	Index     *catalog.Index
	Qualifier string
	Lo, Hi    types.Value

	schema *types.Schema
	rids   []storage.RID
	pos    int
}

// NewIndexScan creates an index range scan.
func NewIndexScan(table *catalog.Table, index *catalog.Index, qualifier string, lo, hi types.Value) *IndexScan {
	return &IndexScan{
		Table: table, Index: index, Qualifier: qualifier, Lo: lo, Hi: hi,
		schema: table.Schema.WithQualifier(qualifier),
	}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *types.Schema { return s.schema }

// Open implements Operator. The candidate RIDs are collected under the
// table's read lock so concurrent writers cannot mutate the tree
// mid-walk.
func (s *IndexScan) Open() error {
	s.rids = s.rids[:0]
	s.pos = 0
	s.Table.ScanIndexRange(s.Index, s.Lo, s.Hi, func(rid storage.RID) bool {
		s.rids = append(s.rids, rid)
		return true
	})
	return nil
}

// Next implements Operator. A candidate whose tuple vanished between
// Open and here (deleted or relocated by a concurrent writer) is
// skipped, not an error.
func (s *IndexScan) Next() (types.Row, bool, error) {
	for s.pos < len(s.rids) {
		rid := s.rids[s.pos]
		s.pos++
		row, ok, err := s.Table.Heap.Lookup(rid)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
	}
	return nil, false, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error { return nil }

// ---- Filter ----

// Filter passes rows whose predicate evaluates to TRUE.
type Filter struct {
	Child Operator
	Pred  expr.Compiled
}

// NewFilter wraps child with a predicate.
func NewFilter(child Operator, pred expr.Compiled) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Operator.
func (f *Filter) Next() (types.Row, bool, error) {
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := f.Pred(row)
		if err != nil {
			return nil, false, err
		}
		if expr.Truthy(v) {
			return row, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// ---- Project ----

// Project evaluates a list of expressions per input row.
type Project struct {
	Child  Operator
	Exprs  []expr.Compiled
	schema *types.Schema
}

// NewProject creates a projection with the given output schema.
func NewProject(child Operator, exprs []expr.Compiled, schema *types.Schema) *Project {
	return &Project{Child: child, Exprs: exprs, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *Project) Next() (types.Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		if out[i], err = e(row); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// ---- Joins ----

// NestedLoopJoin joins left and right on an arbitrary predicate (nil means
// cross join). The right input is materialized at Open.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        expr.Compiled

	schema   *types.Schema
	rightBuf []types.Row
	curLeft  types.Row
	haveLeft bool
	rightPos int
}

// NewNestedLoopJoin creates a nested-loop join.
func NewNestedLoopJoin(left, right Operator, pred expr.Compiled) *NestedLoopJoin {
	return &NestedLoopJoin{
		Left: left, Right: right, Pred: pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *types.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.rightBuf = rows
	j.haveLeft = false
	j.rightPos = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (types.Row, bool, error) {
	for {
		if !j.haveLeft {
			row, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.curLeft = row
			j.haveLeft = true
			j.rightPos = 0
		}
		for j.rightPos < len(j.rightBuf) {
			joined := j.curLeft.Concat(j.rightBuf[j.rightPos])
			j.rightPos++
			if j.Pred == nil {
				return joined, true, nil
			}
			v, err := j.Pred(joined)
			if err != nil {
				return nil, false, err
			}
			if expr.Truthy(v) {
				return joined, true, nil
			}
		}
		j.haveLeft = false
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	errL := j.Left.Close()
	// Right was closed by Collect in Open; Close is idempotent for our
	// operators, but guard anyway.
	if errR := j.Right.Close(); errL == nil {
		errL = errR
	}
	return errL
}

// HashJoin is an equi-join: build a hash table on the right input's key,
// probe with the left. An optional residual predicate filters joined rows.
type HashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Compiled
	Residual          expr.Compiled

	schema  *types.Schema
	table   map[uint64][]types.Row
	pending []types.Row
	curLeft types.Row
}

// NewHashJoin creates a hash equi-join on leftKey = rightKey.
func NewHashJoin(left, right Operator, leftKey, rightKey expr.Compiled, residual expr.Compiled) *HashJoin {
	return &HashJoin{
		Left: left, Right: right,
		LeftKey: leftKey, RightKey: rightKey, Residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.table = make(map[uint64][]types.Row)
	for _, r := range rows {
		k, err := j.RightKey(r)
		if err != nil {
			return err
		}
		if k.IsNull() {
			continue // NULL keys never join
		}
		h := k.Hash()
		j.table[h] = append(j.table[h], r)
	}
	j.pending = nil
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() (types.Row, bool, error) {
	for {
		for len(j.pending) > 0 {
			right := j.pending[0]
			j.pending = j.pending[1:]
			joined := j.curLeft.Concat(right)
			if j.Residual != nil {
				v, err := j.Residual(joined)
				if err != nil {
					return nil, false, err
				}
				if !expr.Truthy(v) {
					continue
				}
			}
			return joined, true, nil
		}
		row, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k, err := j.LeftKey(row)
		if err != nil {
			return nil, false, err
		}
		if k.IsNull() {
			continue
		}
		matches := j.table[k.Hash()]
		if len(matches) == 0 {
			continue
		}
		// Verify equality (hash collisions) and stage matches.
		j.curLeft = row
		j.pending = j.pending[:0]
		for _, m := range matches {
			rk, err := j.RightKey(m)
			if err != nil {
				return nil, false, err
			}
			if types.Equal(k, rk) {
				j.pending = append(j.pending, m)
			}
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	errL := j.Left.Close()
	if errR := j.Right.Close(); errL == nil {
		errL = errR
	}
	return errL
}

// ---- Sort ----

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Compiled
	Desc bool
}

// Sort materializes its input and emits it ordered by Keys.
type Sort struct {
	Child Operator
	Keys  []SortKey

	rows []types.Row
	pos  int
}

// NewSort creates a sort operator.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{Child: child, Keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	rows, err := Collect(s.Child)
	if err != nil {
		return err
	}
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		kv := make(types.Row, len(s.Keys))
		for ki, k := range s.Keys {
			v, err := k.Expr(r)
			if err != nil {
				return err
			}
			kv[ki] = v
		}
		ks[i] = keyed{row: r, keys: kv}
	}
	var sortErr error
	sort.SliceStable(ks, func(a, b int) bool {
		for ki := range s.Keys {
			c, err := types.Compare(ks[a].keys[ki], ks[b].keys[ki])
			if err != nil && sortErr == nil {
				sortErr = fmt.Errorf("exec: ORDER BY: %w", err)
			}
			if c == 0 {
				continue
			}
			if s.Keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = s.rows[:0]
	for _, k := range ks {
		s.rows = append(s.rows, k.row)
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	// Collect in Open closes the child on the happy path, but Close is
	// idempotent and an Open that failed early leaves the child open.
	return s.Child.Close()
}

// ---- Limit ----

// Limit passes at most N rows, after skipping the first Skip rows
// (LIMIT n OFFSET m). A negative N means "no limit, offset only".
type Limit struct {
	Child   Operator
	N       int64
	Skip    int64
	seen    int64
	skipped int64
}

// NewLimit creates a limit operator with no offset.
func NewLimit(child Operator, n int64) *Limit {
	return &Limit{Child: child, N: n}
}

// NewLimitOffset creates a LIMIT n OFFSET skip operator; n < 0 disables
// the limit.
func NewLimitOffset(child Operator, n, skip int64) *Limit {
	return &Limit{Child: child, N: n, Skip: skip}
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	l.skipped = 0
	return l.Child.Open()
}

// Next implements Operator.
func (l *Limit) Next() (types.Row, bool, error) {
	for l.skipped < l.Skip {
		_, ok, err := l.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		l.skipped++
	}
	if l.N >= 0 && l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }
