package exec

import (
	"fmt"
	"sort"

	"recdb/internal/ann"
	"recdb/internal/expr"
	"recdb/internal/metrics"
	"recdb/internal/rec"
	"recdb/internal/types"
)

// VectorMetrics is the nil-safe instrument set the VECTORRECOMMEND path
// records into (all fields optional, per the internal/metrics contract).
type VectorMetrics struct {
	// ProbedCentroids counts posting lists probed across all users/queries.
	ProbedCentroids *metrics.Counter
	// Candidates counts candidate items gathered and exactly re-ranked.
	Candidates *metrics.Counter
	// ExactFallbacks counts queries whose filtered candidate universe was
	// below the exact threshold, served by a direct scan of that universe.
	ExactFallbacks *metrics.Counter
	// Widenings counts probe-width doublings forced by predicates eating
	// the candidate set (over-fetch + recheck).
	Widenings *metrics.Counter
	// DecodeFailures counts queries that wanted the vector path but fell
	// back because the persisted index failed to decode.
	DecodeFailures *metrics.Counter
}

// DefaultVectorExactThreshold is the candidate-count floor below which
// probing is pointless: a universe this small is scored exactly (the
// "exact-fallback" recall mode).
const DefaultVectorExactThreshold = 64

// VectorRecommend serves SVD top-k through the IVF index: rank centroids
// by dot product with the user vector, probe the nprobe nearest posting
// lists, re-rank the candidates with exact dot products, and widen the
// probe (doubling nprobe) until at least K rows per user survive the
// pushed-down predicates — the over-fetch + recheck recipe for
// non-selective filters. A selective predicate that shrinks the universe
// to ExactThreshold or fewer items skips probing entirely, and a probe
// widened to every centroid degenerates to the exact scan, which is the
// package's backbone invariant: at full probe width the operator's output
// is byte-identical to FilterRecommend's.
//
// With Outer set the operator composes with an item-joined relation (the
// spatial/polygon path): the outer side is materialized once, its item ids
// become the candidate filter, and survivors emit as 〈uid, iid, ratingval〉
// ++ outer tuple, mirroring JoinRecommend's schema.
type VectorRecommend struct {
	Store *rec.ModelStore
	Index *ann.Index
	// Users is the user-id predicate; the planner only chooses this
	// operator for explicit user filters, in predicate order.
	Users []int64
	// K is the per-user row target (LIMIT + OFFSET). Probing stops once K
	// rows per user survive the predicates.
	K int64
	// NProbe is the initial probe width; 0 uses the index default.
	NProbe int
	// Exact forces a full probe of every centroid (the equivalence-test
	// mode: byte-identical to the exact scan).
	Exact bool
	// ExactThreshold overrides DefaultVectorExactThreshold (0 = default).
	ExactThreshold int
	// Allowed, when non-nil, is the pushed-down item-id list (IN-list
	// pre-filter), in predicate order.
	Allowed []int64
	// RatingPred, when set, filters rows by predicted value (evaluated on
	// the bare rec row).
	RatingPred expr.Compiled
	// Outer, when set, is the materialized item-joined relation;
	// OuterItemCol is the join column's position in its schema.
	Outer        Operator
	OuterItemCol int
	// Metrics receives probe instrumentation; nil records nothing.
	Metrics *VectorMetrics

	// Run stats, populated by Open and rendered by EXPLAIN ANALYZE.
	ProbedCentroids int
	Candidates      int
	Widened         int
	Mode            string // "probe", "exact", or "exact-fallback"

	schema *types.Schema
	buf    []types.Row
	pos    int
}

// NewVectorRecommend creates a VECTORRECOMMEND operator over the bare rec
// schema; attach Outer before Open to compose with a joined relation.
func NewVectorRecommend(store *rec.ModelStore, index *ann.Index, users []int64, k int64, recSchema *types.Schema) *VectorRecommend {
	return &VectorRecommend{Store: store, Index: index, Users: users, K: k, schema: recSchema}
}

// Schema implements Operator.
func (v *VectorRecommend) Schema() *types.Schema {
	if v.Outer != nil {
		return v.schema.Concat(v.Outer.Schema())
	}
	return v.schema
}

// Open implements Operator: the whole result is computed here (like
// IndexRecommend) so the probe loop can count survivors per user.
func (v *VectorRecommend) Open() error {
	v.buf, v.pos = v.buf[:0], 0
	v.ProbedCentroids, v.Candidates, v.Widened = 0, 0, 0
	if len(v.Users) == 0 {
		return fmt.Errorf("exec: VECTORRECOMMEND requires a user predicate")
	}
	if v.K <= 0 {
		return fmt.Errorf("exec: VECTORRECOMMEND requires a positive row target")
	}

	var outerByItem map[int64][]types.Row
	if v.Outer != nil {
		var err error
		if outerByItem, err = v.materializeOuter(); err != nil {
			return err
		}
		if v.Allowed != nil {
			// Both restrictions at once: the IN-list intersects the
			// joined item set.
			in := make(map[int64]bool, len(v.Allowed))
			for _, i := range v.Allowed {
				in[i] = true
			}
			for i := range outerByItem {
				if !in[i] {
					delete(outerByItem, i)
				}
			}
		}
	}

	// The candidate universe: the pushed-down item list, the outer side's
	// item ids, or every model item. For predicate-restricted universes
	// keep the predicate's order (FilterRecommend iterates IN-lists
	// verbatim, and exact-mode equivalence must too).
	universe := v.Store.ItemIDs()
	restricted := false
	switch {
	case v.Outer != nil:
		restricted = true
		universe = make([]int64, 0, len(outerByItem))
		for i := range outerByItem {
			universe = append(universe, i)
		}
		sort.Slice(universe, func(a, b int) bool { return universe[a] < universe[b] })
	case v.Allowed != nil:
		restricted = true
		universe = v.Allowed
	}

	threshold := v.ExactThreshold
	if threshold <= 0 {
		threshold = DefaultVectorExactThreshold
	}
	switch {
	case v.Exact:
		v.Mode = "exact"
	case len(universe) <= threshold:
		v.Mode = "exact-fallback"
		v.Metrics.exactFallbacks().Inc()
	default:
		v.Mode = "probe"
	}

	var allowedSet map[int64]bool
	if restricted && v.Mode == "probe" {
		allowedSet = make(map[int64]bool, len(universe))
		for _, i := range universe {
			allowedSet[i] = true
		}
	}

	for _, u := range v.Users {
		seen, err := v.Store.UserItems(u)
		if err != nil {
			return err
		}
		p, err := v.Store.UserFactors(u)
		if err != nil {
			return err
		}
		if v.Mode != "probe" || p == nil {
			// Exact semantics: score the whole universe the way
			// FilterRecommend does (unknown user or item → 0). A user the
			// model cannot rank gains nothing from probing, so the probe
			// mode drops to the exact path for that user too.
			if err := v.scoreExact(u, p, universe, seen, outerByItem); err != nil {
				return err
			}
			continue
		}
		if err := v.probeUser(u, p, seen, allowedSet, outerByItem); err != nil {
			return err
		}
	}
	return nil
}

// scoreExact mirrors FilterRecommend's inner loop over a fixed item list:
// skip rated pairs, dot-product score (0 when either side is unknown),
// rating predicate last. Emitting users in predicate order and items in
// list order — with bit-equal scores, since the stored vectors round-trip
// losslessly — is what makes the full output byte-identical to the exact
// plan.
func (v *VectorRecommend) scoreExact(u int64, p []float64, items []int64, seen map[int64]float64, outerByItem map[int64][]types.Row) error {
	for _, i := range items {
		if _, rated := seen[i]; rated {
			continue
		}
		var score float64
		if q := v.Index.Vector(i); p != nil && q != nil {
			score = rec.Dot(p, q)
		}
		if err := v.emit(u, i, score, outerByItem); err != nil {
			return err
		}
	}
	return nil
}

// probeUser runs the probe / re-rank / widen loop for one user.
func (v *VectorRecommend) probeUser(u int64, p []float64, seen map[int64]float64, allowedSet map[int64]bool, outerByItem map[int64][]types.Row) error {
	order := v.Index.ProbeOrder(p)
	k := v.Index.NumCentroids()
	nprobe := v.NProbe
	if nprobe <= 0 {
		nprobe = v.Index.DefaultNProbe()
	}
	if nprobe > k {
		nprobe = k
	}
	mark := len(v.buf)
	for {
		v.buf = v.buf[:mark]
		cands := v.Index.Candidates(order, nprobe)
		survivors := 0
		for _, pos := range cands {
			i, q := v.Index.At(pos)
			if allowedSet != nil && !allowedSet[i] {
				continue
			}
			if _, rated := seen[i]; rated {
				continue
			}
			before := len(v.buf)
			if err := v.emit(u, i, rec.Dot(p, q), outerByItem); err != nil {
				return err
			}
			if len(v.buf) > before {
				survivors++
			}
		}
		if int64(survivors) >= v.K || nprobe >= k {
			v.ProbedCentroids += nprobe
			v.Candidates += len(cands)
			v.Metrics.probedCentroids().Add(int64(nprobe))
			v.Metrics.candidates().Add(int64(len(cands)))
			return nil
		}
		// Over-fetch + recheck: the predicates ate too much of the
		// candidate set; double the probe width and rescore.
		nprobe *= 2
		if nprobe > k {
			nprobe = k
		}
		v.Widened++
		v.Metrics.widenings().Inc()
	}
}

// emit appends the scored row — joined against the outer side when
// composed — unless the rating predicate rejects it.
func (v *VectorRecommend) emit(u, i int64, score float64, outerByItem map[int64][]types.Row) error {
	row := types.Row{types.NewInt(u), types.NewInt(i), types.NewFloat(score)}
	if v.RatingPred != nil {
		val, err := v.RatingPred(row)
		if err != nil {
			return err
		}
		if !expr.Truthy(val) {
			return nil
		}
	}
	if outerByItem == nil {
		v.buf = append(v.buf, row)
		return nil
	}
	for _, outer := range outerByItem[i] {
		v.buf = append(v.buf, row.Concat(outer))
	}
	return nil
}

// materializeOuter drains the outer relation once, grouping its rows by
// item id. Items unknown to the model are dropped, matching JoinRecommend
// (models never emit items they have no ratings for).
func (v *VectorRecommend) materializeOuter() (map[int64][]types.Row, error) {
	if err := v.Outer.Open(); err != nil {
		return nil, err
	}
	out := make(map[int64][]types.Row)
	for {
		row, ok, err := v.Outer.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		item, isInt := row[v.OuterItemCol].AsInt()
		if !isInt || !v.Store.HasItem(item) {
			continue
		}
		out[item] = append(out[item], row)
	}
}

// EffectiveNProbe reports the probe width the operator starts from, for
// EXPLAIN.
func (v *VectorRecommend) EffectiveNProbe() int {
	k := v.Index.NumCentroids()
	if v.Exact {
		return k
	}
	n := v.NProbe
	if n <= 0 {
		n = v.Index.DefaultNProbe()
	}
	if n > k {
		n = k
	}
	return n
}

// Next implements Operator.
func (v *VectorRecommend) Next() (types.Row, bool, error) {
	if v.pos >= len(v.buf) {
		return nil, false, nil
	}
	row := v.buf[v.pos]
	v.pos++
	return row, true, nil
}

// Close implements Operator. Run stats survive Close so EXPLAIN ANALYZE
// can render them after execution.
func (v *VectorRecommend) Close() error {
	v.buf = nil
	if v.Outer != nil {
		return v.Outer.Close()
	}
	return nil
}

// Nil-safe metric accessors: a nil *VectorMetrics (or nil field) records
// nothing, per the internal/metrics contract.
func (m *VectorMetrics) probedCentroids() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.ProbedCentroids
}
func (m *VectorMetrics) candidates() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.Candidates
}
func (m *VectorMetrics) exactFallbacks() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.ExactFallbacks
}
func (m *VectorMetrics) widenings() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.Widenings
}

// DecodeFailuresCounter is the planner's nil-safe handle on the
// decode-failure instrument.
func (m *VectorMetrics) DecodeFailuresCounter() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.DecodeFailures
}
