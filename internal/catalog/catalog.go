// Package catalog manages the database's tables and indexes: schemas, heap
// storage, primary-key enforcement, and secondary index maintenance. The
// recommendation layer stores its model tables (item neighborhoods, factor
// tables, user vectors) through the same catalog, so the RECOMMEND
// operators read them with ordinary block-by-block heap scans.
package catalog

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"recdb/internal/btree"
	"recdb/internal/geo"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// DefaultPoolPages is the buffer-pool capacity per table when the caller
// does not override it (512 pages = 4 MiB, comfortably larger than any
// single experiment table so steady-state runs are warm, as in the paper).
const DefaultPoolPages = 512

// Catalog is the table registry. All methods are safe for concurrent use.
// The table map is published copy-on-write through an atomic pointer:
// lookups on the query path are a single atomic load and never contend
// with DDL, which clones the map under mu and swaps the new generation in.
type Catalog struct {
	mu        sync.Mutex // serializes table-map writers (DDL)
	tables    atomic.Pointer[map[string]*Table]
	stats     *storage.Stats
	poolPages int
}

// New creates an empty catalog. stats may be nil; poolPages <= 0 selects
// DefaultPoolPages.
func New(stats *storage.Stats, poolPages int) *Catalog {
	if stats == nil {
		stats = &storage.Stats{}
	}
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	c := &Catalog{
		stats:     stats,
		poolPages: poolPages,
	}
	empty := make(map[string]*Table)
	c.tables.Store(&empty)
	return c
}

// Stats returns the shared I/O counters.
func (c *Catalog) Stats() *storage.Stats { return c.stats }

// Table is one relation: schema, heap, and indexes.
type Table struct {
	mu      sync.RWMutex
	Name    string
	Schema  *types.Schema
	Heap    *storage.HeapFile
	PKCol   int // column index of the primary key, or -1
	indexes map[string]*Index
}

// Index is a secondary (or primary) index over one column. For ordinary
// columns the B+-tree key is (column value, page, slot) so duplicate
// column values coexist, and the tree value is the row's RID. GEOMETRY
// columns get an R-tree instead (Spatial is non-nil, Tree is nil), the
// PostGIS-GiST stand-in used by the location-aware case study.
type Index struct {
	Name    string
	Column  int // position in the table schema
	Unique  bool
	Tree    *btree.Tree
	Spatial *geo.RTree
}

// CreateTable registers a new table. pkCol is the index of the primary-key
// column or -1. A primary key implicitly creates a unique index.
func (c *Catalog) CreateTable(name string, schema *types.Schema, pkCol int) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := (*c.tables.Load())[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if pkCol >= schema.Len() {
		return nil, fmt.Errorf("catalog: primary key column %d out of range", pkCol)
	}
	pool := storage.NewBufferPool(storage.NewMemDisk(), c.poolPages, c.stats)
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    name,
		Schema:  schema,
		Heap:    heap,
		PKCol:   pkCol,
		indexes: make(map[string]*Index),
	}
	if pkCol >= 0 {
		t.indexes[strings.ToLower(schema.Columns[pkCol].Name)] = &Index{
			Name:   name + "_pkey",
			Column: pkCol,
			Unique: true,
			Tree:   btree.New(0),
		}
	}
	c.publishLocked(func(m map[string]*Table) { m[key] = t })
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := (*c.tables.Load())[key]; !exists {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	c.publishLocked(func(m map[string]*Table) { delete(m, key) })
	return nil
}

// publishLocked clones the current table map, applies mutate, and swaps
// the new generation in. Caller holds mu.
func (c *Catalog) publishLocked(mutate func(map[string]*Table)) {
	cur := *c.tables.Load()
	next := make(map[string]*Table, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	mutate(next)
	c.tables.Store(&next)
}

// Get returns the table with the given name (case-insensitive).
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := (*c.tables.Load())[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Has reports whether a table exists.
func (c *Catalog) Has(name string) bool {
	_, ok := (*c.tables.Load())[strings.ToLower(name)]
	return ok
}

// Names returns all table names, unordered.
func (c *Catalog) Names() []string {
	cur := *c.tables.Load()
	out := make([]string, 0, len(cur))
	for _, t := range cur {
		out = append(out, t.Name)
	}
	return out
}

// indexKeyFor builds the composite tree key for a row's entry in idx.
func indexKeyFor(idx *Index, row types.Row, rid storage.RID) types.Row {
	if idx.Unique {
		return types.Row{row[idx.Column]}
	}
	return types.Row{row[idx.Column], types.NewInt(int64(rid.Page)), types.NewInt(int64(rid.Slot))}
}

// Insert validates the row against the schema, enforces the primary key,
// stores the row, and maintains all indexes.
func (t *Table) Insert(row types.Row) (storage.RID, error) {
	if err := t.checkRow(row); err != nil {
		return storage.RID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.PKCol >= 0 {
		pk := t.pkIndexLocked()
		if _, exists := pk.Tree.Get(types.Row{row[t.PKCol]}); exists {
			return storage.RID{}, fmt.Errorf("catalog: duplicate primary key %v in table %q", row[t.PKCol], t.Name)
		}
	}
	rid, err := t.Heap.Insert(row)
	if err != nil {
		return storage.RID{}, err
	}
	for _, idx := range t.indexes {
		idx.add(row, rid)
	}
	return rid, nil
}

// Delete removes the row at rid and its index entries.
func (t *Table) Delete(rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, err := t.Heap.Get(rid)
	if err != nil {
		return err
	}
	if err := t.Heap.Delete(rid); err != nil {
		return err
	}
	for _, idx := range t.indexes {
		idx.drop(row, rid)
	}
	return nil
}

// Update replaces the row at rid, maintaining indexes; it returns the
// row's (possibly relocated) RID.
func (t *Table) Update(rid storage.RID, row types.Row) (storage.RID, error) {
	if err := t.checkRow(row); err != nil {
		return storage.RID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.Heap.Get(rid)
	if err != nil {
		return storage.RID{}, err
	}
	if t.PKCol >= 0 && !types.Equal(old[t.PKCol], row[t.PKCol]) {
		pk := t.pkIndexLocked()
		if _, exists := pk.Tree.Get(types.Row{row[t.PKCol]}); exists {
			return storage.RID{}, fmt.Errorf("catalog: duplicate primary key %v in table %q", row[t.PKCol], t.Name)
		}
	}
	newRID, err := t.Heap.Update(rid, row)
	if err != nil {
		return storage.RID{}, err
	}
	for _, idx := range t.indexes {
		idx.drop(old, rid)
		idx.add(row, newRID)
	}
	return newRID, nil
}

func (t *Table) checkRow(row types.Row) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("catalog: row has %d values, table %q has %d columns", len(row), t.Name, t.Schema.Len())
	}
	for i, v := range row {
		if v.IsNull() {
			if i == t.PKCol {
				return fmt.Errorf("catalog: NULL primary key in table %q", t.Name)
			}
			continue
		}
		if v.Kind() != t.Schema.Columns[i].Kind {
			// Permit int literals in float columns (SQL numeric coercion).
			if v.Kind() == types.KindInt && t.Schema.Columns[i].Kind == types.KindFloat {
				row[i] = types.NewFloat(float64(v.Int()))
				continue
			}
			return fmt.Errorf("catalog: column %q of table %q expects %s, got %s",
				t.Schema.Columns[i].Name, t.Name, t.Schema.Columns[i].Kind, v.Kind())
		}
	}
	return nil
}

func (t *Table) pkIndexLocked() *Index {
	return t.indexes[strings.ToLower(t.Schema.Columns[t.PKCol].Name)]
}

// CreateIndex builds a secondary index on the named column, backfilling it
// from the heap.
func (t *Table) CreateIndex(name, column string) (*Index, error) {
	col, err := t.Schema.Resolve("", column)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(column)
	if _, exists := t.indexes[key]; exists {
		return nil, fmt.Errorf("catalog: index on %q.%q already exists", t.Name, column)
	}
	idx := &Index{Name: name, Column: col}
	if t.Schema.Columns[col].Kind == types.KindGeometry {
		idx.Spatial = geo.NewRTree(0)
	} else {
		idx.Tree = btree.New(0)
	}
	it := t.Heap.Scan()
	defer it.Close()
	for {
		row, rid, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		idx.add(row, rid)
	}
	t.indexes[key] = idx
	return idx, nil
}

// add inserts one row's entry into the index.
func (idx *Index) add(row types.Row, rid storage.RID) {
	if idx.Spatial != nil {
		v := row[idx.Column]
		if v.Kind() == types.KindGeometry && v.Geometry() != nil {
			idx.Spatial.Insert(v.Geometry(), rid)
		}
		return
	}
	idx.Tree.Insert(indexKeyFor(idx, row, rid), rid)
}

// drop removes one row's entry from the index.
func (idx *Index) drop(row types.Row, rid storage.RID) {
	if idx.Spatial != nil {
		v := row[idx.Column]
		if v.Kind() == types.KindGeometry && v.Geometry() != nil {
			idx.Spatial.Delete(v.Geometry(), rid)
		}
		return
	}
	idx.Tree.Delete(indexKeyFor(idx, row, rid))
}

// SearchContaining visits RIDs of rows whose geometry bounding box
// intersects q's (candidates for ST_Contains/ST_Intersects checks).
func (idx *Index) SearchContaining(q geo.Geometry, fn func(rid storage.RID) bool) {
	if idx.Spatial == nil {
		return
	}
	idx.Spatial.SearchIntersecting(q, func(_ geo.Geometry, data any) bool {
		return fn(data.(storage.RID))
	})
}

// SearchWithin visits RIDs of rows whose geometry bounding box lies within
// dist of q's (candidates for ST_DWithin checks).
func (idx *Index) SearchWithin(q geo.Geometry, dist float64, fn func(rid storage.RID) bool) {
	if idx.Spatial == nil {
		return
	}
	idx.Spatial.SearchWithin(q, dist, func(_ geo.Geometry, data any) bool {
		return fn(data.(storage.RID))
	})
}

// Indexes returns all indexes of the table (including the implicit
// primary-key index), unordered.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, idx)
	}
	return out
}

// IndexOn returns the index whose key column has the given name, if any.
func (t *Table) IndexOn(column string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[strings.ToLower(column)]
	return idx, ok
}

// LookupPK fetches the row whose primary key equals v. The read lock is
// held across the heap fetch so a concurrent update cannot relocate the
// row between the tree probe and the read.
func (t *Table) LookupPK(v types.Value) (types.Row, storage.RID, bool, error) {
	if t.PKCol < 0 {
		return nil, storage.RID{}, false, fmt.Errorf("catalog: table %q has no primary key", t.Name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx := t.pkIndexLocked()
	got, ok := idx.Tree.Get(types.Row{v})
	if !ok {
		return nil, storage.RID{}, false, nil
	}
	rid := got.(storage.RID)
	row, err := t.Heap.Get(rid)
	if err != nil {
		return nil, storage.RID{}, false, err
	}
	return row, rid, true, nil
}

// ScanIndexRange visits RIDs whose indexed column value is in [lo, hi]
// under the table's read lock, so concurrent writers cannot mutate the
// tree mid-walk. Executor index scans must come through here rather than
// calling Index.ScanIndex directly.
func (t *Table) ScanIndexRange(idx *Index, lo, hi types.Value, fn func(rid storage.RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx.ScanIndex(lo, hi, fn)
}

// SearchIndexContaining is Index.SearchContaining under the table's read
// lock (see ScanIndexRange).
func (t *Table) SearchIndexContaining(idx *Index, q geo.Geometry, fn func(rid storage.RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx.SearchContaining(q, fn)
}

// SearchIndexWithin is Index.SearchWithin under the table's read lock
// (see ScanIndexRange).
func (t *Table) SearchIndexWithin(idx *Index, q geo.Geometry, dist float64, fn func(rid storage.RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx.SearchWithin(q, dist, fn)
}

// ScanIndex visits rows whose indexed column value is in [lo, hi] (nil
// bounds are open) in ascending column order.
func (idx *Index) ScanIndex(lo, hi types.Value, fn func(rid storage.RID) bool) {
	var loKey, hiKey types.Row
	if !lo.IsNull() {
		loKey = types.Row{lo}
	}
	if !hi.IsNull() {
		// Extend with a maximal suffix so composite duplicate keys with the
		// same column value are included.
		hiKey = types.Row{hi, types.NewInt(int64(^uint32(0))), types.NewInt(int64(^uint16(0)))}
	}
	idx.Tree.Range(loKey, hiKey, func(_ types.Row, v any) bool {
		return fn(v.(storage.RID))
	})
}
