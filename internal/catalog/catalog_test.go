package catalog

import (
	"testing"

	"recdb/internal/geo"
	"recdb/internal/storage"
	"recdb/internal/types"
)

func ratingsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	)
}

func TestCreateGetDrop(t *testing.T) {
	c := New(nil, 0)
	if _, err := c.CreateTable("Ratings", ratingsSchema(), -1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("ratings", ratingsSchema(), -1); err == nil {
		t.Fatal("case-insensitive duplicate should fail")
	}
	tab, err := c.Get("RATINGS")
	if err != nil || tab.Name != "Ratings" {
		t.Fatalf("Get: %v %v", tab, err)
	}
	if !c.Has("ratings") {
		t.Fatal("Has should be true")
	}
	if err := c.DropTable("ratings"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ratings"); err == nil {
		t.Fatal("Get after drop should fail")
	}
	if err := c.DropTable("ratings"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	c := New(nil, 0)
	tab, _ := c.CreateTable("r", ratingsSchema(), -1)
	// Int coerces into float column.
	if _, err := tab.Insert(types.Row{types.NewInt(1), types.NewInt(2), types.NewInt(4)}); err != nil {
		t.Fatalf("int→float coercion: %v", err)
	}
	// Wrong arity.
	if _, err := tab.Insert(types.Row{types.NewInt(1)}); err == nil {
		t.Fatal("short row should fail")
	}
	// Wrong type.
	if _, err := tab.Insert(types.Row{types.NewText("x"), types.NewInt(2), types.NewFloat(1)}); err == nil {
		t.Fatal("text in int column should fail")
	}
	// NULL is allowed in non-pk columns.
	if _, err := tab.Insert(types.Row{types.NewInt(1), types.Null(), types.NewFloat(1)}); err != nil {
		t.Fatalf("null insert: %v", err)
	}
}

func TestPrimaryKeyEnforcement(t *testing.T) {
	c := New(nil, 0)
	schema := types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindText},
	)
	tab, err := c.CreateTable("users", schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(types.Row{types.NewInt(1), types.NewText("Alice")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(types.Row{types.NewInt(1), types.NewText("Bob")}); err == nil {
		t.Fatal("duplicate pk should fail")
	}
	if _, err := tab.Insert(types.Row{types.Null(), types.NewText("Eve")}); err == nil {
		t.Fatal("null pk should fail")
	}
	row, _, found, err := tab.LookupPK(types.NewInt(1))
	if err != nil || !found || row[1].Text() != "Alice" {
		t.Fatalf("LookupPK: %v %v %v", row, found, err)
	}
	_, _, found, _ = tab.LookupPK(types.NewInt(99))
	if found {
		t.Fatal("missing pk should not be found")
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	c := New(nil, 0)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindText},
	)
	tab, _ := c.CreateTable("t", schema, 0)
	rid, _ := tab.Insert(types.Row{types.NewInt(1), types.NewText("a")})
	if err := tab.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, _, found, _ := tab.LookupPK(types.NewInt(1)); found {
		t.Fatal("pk index entry should be gone")
	}
	// Re-inserting the same pk now succeeds.
	if _, err := tab.Insert(types.Row{types.NewInt(1), types.NewText("b")}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	c := New(nil, 0)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindText},
	)
	tab, _ := c.CreateTable("t", schema, 0)
	rid, _ := tab.Insert(types.Row{types.NewInt(1), types.NewText("a")})
	tab.Insert(types.Row{types.NewInt(2), types.NewText("b")})

	// Changing pk to an existing value fails.
	if _, err := tab.Update(rid, types.Row{types.NewInt(2), types.NewText("x")}); err == nil {
		t.Fatal("pk collision on update should fail")
	}
	// Changing pk to a new value re-keys the index.
	nrid, err := tab.Update(rid, types.Row{types.NewInt(3), types.NewText("c")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, found, _ := tab.LookupPK(types.NewInt(1)); found {
		t.Fatal("old pk should be gone")
	}
	row, gotRID, found, _ := tab.LookupPK(types.NewInt(3))
	if !found || row[1].Text() != "c" || gotRID != nrid {
		t.Fatalf("new pk lookup: %v %v %v", row, gotRID, found)
	}
}

func TestSecondaryIndexWithDuplicates(t *testing.T) {
	c := New(nil, 0)
	tab, _ := c.CreateTable("r", ratingsSchema(), -1)
	for u := int64(1); u <= 3; u++ {
		for i := int64(1); i <= 4; i++ {
			if _, err := tab.Insert(types.Row{types.NewInt(u), types.NewInt(i), types.NewFloat(float64(u + i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx, err := tab.CreateIndex("r_uid", "uid")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("again", "uid"); err == nil {
		t.Fatal("duplicate index should fail")
	}
	var count int
	idx.ScanIndex(types.NewInt(2), types.NewInt(2), func(rid storage.RID) bool {
		row, err := tab.Heap.Get(rid)
		if err != nil || row[0].Int() != 2 {
			t.Fatalf("bad index hit: %v %v", row, err)
		}
		count++
		return true
	})
	if count != 4 {
		t.Fatalf("uid=2 hits = %d, want 4", count)
	}
	// Range [1,2] covers 8 rows.
	count = 0
	idx.ScanIndex(types.NewInt(1), types.NewInt(2), func(storage.RID) bool { count++; return true })
	if count != 8 {
		t.Fatalf("range hits = %d, want 8", count)
	}
	// Open bounds cover everything.
	count = 0
	idx.ScanIndex(types.Null(), types.Null(), func(storage.RID) bool { count++; return true })
	if count != 12 {
		t.Fatalf("open-range hits = %d, want 12", count)
	}
	// New inserts maintain the secondary index.
	tab.Insert(types.Row{types.NewInt(2), types.NewInt(9), types.NewFloat(1)})
	count = 0
	idx.ScanIndex(types.NewInt(2), types.NewInt(2), func(storage.RID) bool { count++; return true })
	if count != 5 {
		t.Fatalf("after insert, uid=2 hits = %d, want 5", count)
	}
	if _, ok := tab.IndexOn("uid"); !ok {
		t.Fatal("IndexOn(uid) should find the index")
	}
	if _, ok := tab.IndexOn("iid"); ok {
		t.Fatal("IndexOn(iid) should not exist")
	}
}

func TestSharedStats(t *testing.T) {
	stats := &storage.Stats{}
	c := New(stats, 4)
	tab, _ := c.CreateTable("t", ratingsSchema(), -1)
	for i := int64(0); i < 100; i++ {
		tab.Insert(types.Row{types.NewInt(i), types.NewInt(i), types.NewFloat(1)})
	}
	reads, _, _ := stats.Snapshot()
	if reads == 0 {
		t.Fatal("inserts should count page reads")
	}
	stats.Reset()
	if r, m, w := stats.Snapshot(); r != 0 || m != 0 || w != 0 {
		t.Fatal("Reset should zero counters")
	}
}

func TestNames(t *testing.T) {
	c := New(nil, 0)
	c.CreateTable("a", ratingsSchema(), -1)
	c.CreateTable("b", ratingsSchema(), -1)
	names := c.Names()
	if len(names) != 2 {
		t.Fatalf("Names: %v", names)
	}
}

func TestSpatialIndexAtCatalogLevel(t *testing.T) {
	c := New(nil, 0)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "geom", Kind: types.KindGeometry},
	)
	tab, err := c.CreateTable("pois", schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rows inserted before the index exists are backfilled.
	rid1, _ := tab.Insert(types.Row{types.NewInt(1), types.NewGeometry(geo.Point{X: 1, Y: 1})})
	tab.Insert(types.Row{types.NewInt(2), types.NewGeometry(geo.Point{X: 9, Y: 9})})
	// NULL geometry rows are simply not indexed.
	tab.Insert(types.Row{types.NewInt(3), types.Null()})

	idx, err := tab.CreateIndex("pois_geom", "geom")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Spatial == nil || idx.Tree != nil {
		t.Fatal("geometry column should get an R-tree index")
	}
	if idx.Spatial.Len() != 2 {
		t.Fatalf("backfill: %d entries", idx.Spatial.Len())
	}
	var hits []int64
	idx.SearchContaining(geo.Rect(0, 0, 5, 5), func(rid storage.RID) bool {
		row, _ := tab.Heap.Get(rid)
		hits = append(hits, row[0].Int())
		return true
	})
	if len(hits) != 1 || hits[0] != 1 {
		t.Fatalf("search: %v", hits)
	}
	// SearchWithin path.
	hits = nil
	idx.SearchWithin(geo.Point{X: 8, Y: 8}, 2, func(rid storage.RID) bool {
		row, _ := tab.Heap.Get(rid)
		hits = append(hits, row[0].Int())
		return true
	})
	if len(hits) != 1 || hits[0] != 2 {
		t.Fatalf("within: %v", hits)
	}
	// Delete maintains the R-tree.
	if err := tab.Delete(rid1); err != nil {
		t.Fatal(err)
	}
	if idx.Spatial.Len() != 1 {
		t.Fatalf("after delete: %d entries", idx.Spatial.Len())
	}
	// Spatial searches on a non-spatial index are no-ops.
	pk, _ := tab.IndexOn("id")
	called := false
	pk.SearchContaining(geo.Point{}, func(storage.RID) bool { called = true; return true })
	pk.SearchWithin(geo.Point{}, 1, func(storage.RID) bool { called = true; return true })
	if called {
		t.Fatal("spatial search over a B+-tree index should visit nothing")
	}
}

func TestIndexesEnumeration(t *testing.T) {
	c := New(nil, 0)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindText},
	)
	tab, _ := c.CreateTable("t", schema, 0)
	tab.CreateIndex("t_v", "v")
	idxs := tab.Indexes()
	if len(idxs) != 2 {
		t.Fatalf("Indexes: %d", len(idxs))
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New(nil, 0)
	if _, err := c.CreateTable("t", ratingsSchema(), 99); err == nil {
		t.Fatal("pk out of range should fail")
	}
	if _, err := c.CreateTable("t", ratingsSchema(), -1); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Get("t")
	if _, err := tab.CreateIndex("x", "nope"); err == nil {
		t.Fatal("index on unknown column should fail")
	}
	// LookupPK without a primary key errors.
	if _, _, _, err := tab.LookupPK(types.NewInt(1)); err == nil {
		t.Fatal("LookupPK without pk should fail")
	}
}
