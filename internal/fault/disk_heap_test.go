package fault

import (
	"errors"
	"testing"

	"recdb/internal/storage"
	"recdb/internal/types"
)

// TestFaultDiskPropagatesThroughHeap pins down the contract the injector
// exists to check: a failed page operation must surface as an error from
// the heap layer, never as silently missing or stale rows.
func TestFaultDiskPropagatesThroughHeap(t *testing.T) {
	d := NewDisk(storage.NewMemDisk())
	pool := storage.NewBufferPool(d, 2, nil)
	h, err := storage.NewHeapFile(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Fill several pages so scans and inserts must touch the disk through
	// the tiny pool.
	pad := make([]byte, 512)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := int64(0); i < 100; i++ {
		if _, err := h.Insert(types.Row{types.NewInt(i), types.NewText(string(pad))}); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 3 {
		t.Fatalf("fixture too small: %d pages", h.NumPages())
	}

	// A failed read must abort the scan with the injected error.
	d.SetPlan(ModeFail, 2)
	it := h.Scan()
	var scanErr error
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			scanErr = err
			break
		}
		if !ok {
			break
		}
	}
	it.Close()
	if !errors.Is(scanErr, ErrInjected) {
		t.Fatalf("scan over failing disk: err = %v, want ErrInjected", scanErr)
	}

	// With the plan cleared the same scan succeeds again: ModeFail leaves
	// the substrate intact.
	d.SetPlan(ModeNone, 0)
	it = h.Scan()
	rows := 0
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
	}
	it.Close()
	if rows != 100 {
		t.Fatalf("rows after recovery = %d", rows)
	}
}
