package fault

import (
	"errors"
	"io"
	"testing"

	"recdb/internal/storage"
)

func write(t *testing.T, fs FS, path string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSUnsyncedDataLostOnCrash(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	write(t, fs, "d/synced", []byte("durable"), true)
	write(t, fs, "d/unsynced", []byte("volatile"), false)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	fs.Restart()

	got, err := fs.ReadFile("d/synced")
	if err != nil || string(got) != "durable" {
		t.Fatalf("synced file after crash: %q, %v", got, err)
	}
	// The entry survived (dir was synced) but the contents were never
	// fsynced, so the file comes back empty.
	got, err = fs.ReadFile("d/unsynced")
	if err != nil || len(got) != 0 {
		t.Fatalf("unsynced file after crash: %q, %v", got, err)
	}
}

func TestMemFSEntryNeedsDirSync(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// File fsynced, but the directory entry never was: the file vanishes.
	write(t, fs, "d/f", []byte("x"), true)
	fs.Crash()
	fs.Restart()
	if _, err := fs.ReadFile("d/f"); !IsNotExist(err) {
		t.Fatalf("entry without dir sync should vanish, got %v", err)
	}
}

func TestMemFSRenameDurability(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	write(t, fs, "d/a.tmp", []byte("payload"), true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// Rename without a dir sync: the crash reverts to the old name.
	if err := fs.Rename("d/a.tmp", "d/a"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Restart()
	if _, err := fs.ReadFile("d/a"); !IsNotExist(err) {
		t.Fatalf("unsynced rename should revert, got %v", err)
	}
	if got, err := fs.ReadFile("d/a.tmp"); err != nil || string(got) != "payload" {
		t.Fatalf("old name after crash: %q, %v", got, err)
	}

	// Rename plus dir sync: the new name survives.
	if err := fs.Rename("d/a.tmp", "d/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Restart()
	if got, err := fs.ReadFile("d/a"); err != nil || string(got) != "payload" {
		t.Fatalf("synced rename after crash: %q, %v", got, err)
	}
}

func TestMemFSCorrupt(t *testing.T) {
	fs := NewMemFS()
	write(t, fs, "f", []byte{0x00, 0x01}, true)
	if err := fs.Corrupt("f", 1, 0x80); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil || got[1] != 0x81 {
		t.Fatalf("corrupted byte: %x, %v", got, err)
	}
	if err := fs.Corrupt("f", 99, 1); err == nil {
		t.Fatal("out-of-range corrupt should fail")
	}
}

func TestInjectFail(t *testing.T) {
	inner := NewMemFS()
	fs := NewInject(inner)
	// Count the ops of a small protocol.
	run := func() error {
		if err := fs.MkdirAll("d"); err != nil {
			return err
		}
		f, err := fs.Create("d/f")
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("hello")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return fs.SyncDir("d")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	total := fs.Ops()
	if total != 6 { // mkdir, create, write, sync, close, syncdir
		t.Fatalf("ops = %d, want 6", total)
	}
	for n := int64(1); n <= total; n++ {
		fs.SetPlan(ModeFail, n)
		if err := run(); !errors.Is(err, ErrInjected) {
			t.Fatalf("fault at op %d: err = %v", n, err)
		}
		if !fs.Tripped() {
			t.Fatalf("fault at op %d did not trip", n)
		}
	}
}

func TestInjectTornWrite(t *testing.T) {
	inner := NewMemFS()
	fs := NewInject(inner)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/f")
	if err != nil {
		t.Fatal(err)
	}
	// Make the new file's directory entry durable before arming the plan,
	// as the WAL does for a fresh segment.
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.SetPlan(ModeTorn, 1)
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	// The filesystem is dead now.
	if err := fs.MkdirAll("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op err = %v", err)
	}
	inner.Restart()
	got, err := inner.ReadFile("d/f")
	if err != nil || string(got) != "01234" {
		t.Fatalf("torn prefix = %q, %v", got, err)
	}
}

func TestInjectFlip(t *testing.T) {
	inner := NewMemFS()
	fs := NewInject(inner)
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetPlan(ModeFlip, 1)
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatal(err) // the flip is silent
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := inner.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	var ones int
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("flip changed %d bits, want 1 (%x)", ones, got)
	}
}

func TestFaultDisk(t *testing.T) {
	d := NewDisk(storage.NewMemDisk())
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	for i := range buf {
		buf[i] = 0xAA
	}
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Ops(); got != 2 {
		t.Fatalf("ops = %d, want 2", got)
	}

	d.SetPlan(ModeFail, 1)
	if err := d.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed write err = %v", err)
	}

	d.SetPlan(ModeTorn, 1)
	if err := d.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if err := d.ReadPage(id, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-torn read err = %v", err)
	}

	d.SetPlan(ModeNone, 0)
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA || buf[storage.PageSize-1] != 0x00 {
		t.Fatalf("torn page halves: first %x last %x", buf[0], buf[storage.PageSize-1])
	}
}

func TestMemFSReadAt(t *testing.T) {
	fs := NewMemFS()
	write(t, fs, "f", []byte("abcdef"), true)
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	buf := make([]byte, 3)
	if n, err := f.ReadAt(buf, 2); n != 3 || err != nil || string(buf) != "cde" {
		t.Fatalf("ReadAt = %d, %v, %q", n, err, buf)
	}
	if n, err := f.ReadAt(buf, 5); n != 1 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("past-end ReadAt err = %v", err)
	}
}
