package fault

import (
	"fmt"
	"sync"

	"recdb/internal/storage"
)

// FaultDisk wraps a storage.DiskManager and injects one fault at a planned
// page-I/O operation, mirroring InjectFS for the paged layer: the buffer
// pool and heap must propagate a failed or corrupted page operation as an
// error, never serve stale or torn page contents.
type FaultDisk struct {
	inner storage.DiskManager

	mu   sync.Mutex
	ops  int64
	mode Mode
	at   int64
	dead bool
}

// NewDisk wraps inner with an unarmed injector.
func NewDisk(inner storage.DiskManager) *FaultDisk {
	return &FaultDisk{inner: inner}
}

// SetPlan arms the injector at the at-th page operation (1-based) and
// resets the counter.
func (d *FaultDisk) SetPlan(mode Mode, at int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mode, d.at = mode, at
	d.ops = 0
	d.dead = false
}

// Ops returns the page operations counted since the last SetPlan.
func (d *FaultDisk) Ops() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// step counts one operation and decides its fate; isWrite marks WritePage.
func (d *FaultDisk) step(isWrite bool) action {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return actDead
	}
	d.ops++
	if d.mode == ModeNone || d.ops != d.at {
		return actProceed
	}
	switch d.mode {
	case ModeFail:
		return actFail
	case ModeFlip:
		if isWrite {
			return actFlip
		}
		return actProceed
	case ModeTorn:
		if isWrite {
			d.dead = true
			return actTorn
		}
		d.dead = true
		return actDead
	case ModePowerCut:
		d.dead = true
		return actDead
	}
	return actProceed
}

// ReadPage implements storage.DiskManager.
func (d *FaultDisk) ReadPage(id storage.PageID, buf []byte) error {
	switch d.step(false) {
	case actFail:
		return fmt.Errorf("fault: read page %d: %w", id, ErrInjected)
	case actDead:
		return fmt.Errorf("fault: read page %d: %w", id, ErrCrashed)
	}
	return d.inner.ReadPage(id, buf)
}

// WritePage implements storage.DiskManager. A torn fault persists the
// first half of the page and zeroes the rest; a flip fault corrupts one
// bit and reports success.
func (d *FaultDisk) WritePage(id storage.PageID, buf []byte) error {
	switch d.step(true) {
	case actFail:
		return fmt.Errorf("fault: write page %d: %w", id, ErrInjected)
	case actDead:
		return fmt.Errorf("fault: write page %d: %w", id, ErrCrashed)
	case actTorn:
		torn := append([]byte(nil), buf...)
		for i := len(torn) / 2; i < len(torn); i++ {
			torn[i] = 0
		}
		if err := d.inner.WritePage(id, torn); err != nil {
			return fmt.Errorf("fault: torn write page %d: %w", id, err)
		}
		return fmt.Errorf("fault: write page %d: %w", id, ErrInjected)
	case actFlip:
		flipped := append([]byte(nil), buf...)
		flipped[len(flipped)/2] ^= 1
		return d.inner.WritePage(id, flipped)
	}
	return d.inner.WritePage(id, buf)
}

// Allocate implements storage.DiskManager.
func (d *FaultDisk) Allocate() (storage.PageID, error) {
	switch d.step(false) {
	case actFail:
		return storage.InvalidPageID, fmt.Errorf("fault: allocate: %w", ErrInjected)
	case actDead:
		return storage.InvalidPageID, fmt.Errorf("fault: allocate: %w", ErrCrashed)
	}
	return d.inner.Allocate()
}

// NumPages implements storage.DiskManager.
func (d *FaultDisk) NumPages() uint32 { return d.inner.NumPages() }

// Sync implements storage.DiskManager.
func (d *FaultDisk) Sync() error {
	switch d.step(false) {
	case actFail:
		return fmt.Errorf("fault: sync: %w", ErrInjected)
	case actDead:
		return fmt.Errorf("fault: sync: %w", ErrCrashed)
	}
	return d.inner.Sync()
}

// Close implements storage.DiskManager. Closes are not injection points.
func (d *FaultDisk) Close() error { return d.inner.Close() }
