// Package fault provides the durability layer's filesystem abstraction and
// its deterministic fault-injection harness. The persist and wal packages
// do all their I/O through the FS interface; production code passes OS
// (thin wrappers over package os), while crash tests pass a MemFS — an
// in-memory filesystem that models POSIX durability semantics (data
// reaches stable storage only on Sync, directory entries only on SyncDir)
// — optionally wrapped in an InjectFS that fails, tears, bit-flips, or
// power-cuts the Nth I/O operation. FaultDisk applies the same treatment
// to the paged storage layer's DiskManager.
package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle type the durability layer needs: sequential writes
// (snapshots and log segments are append-only), positional reads, fsync,
// and close.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// FS is the set of filesystem operations the durability layer performs.
// Implementations must make Sync/SyncDir the only durability points: a
// crash (power cut) may discard anything not yet synced.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// OpenAppend opens path for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newPath with oldPath's file.
	Rename(oldPath, newPath string) error
	// Remove deletes a file or empty directory.
	Remove(path string) error
	// RemoveAll deletes path and everything below it.
	RemoveAll(path string) error
	// ReadDir lists the entry names of a directory, sorted.
	ReadDir(path string) ([]string, error)
	// Stat returns the size of the file at path.
	Stat(path string) (int64, error)
	// SyncDir flushes a directory's entries (creates, renames, removes)
	// to stable storage.
	SyncDir(path string) error
}

// OS is the production FS, backed by package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string) error {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("fault: mkdir %s: %w", path, err)
	}
	return nil
}

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: create %s: %w", path, err)
	}
	return f, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault: open %s: %w", path, err)
	}
	return f, nil
}

func (osFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: open append %s: %w", path, err)
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: read %s: %w", path, err)
	}
	return b, nil
}

func (osFS) Rename(oldPath, newPath string) error {
	if err := os.Rename(oldPath, newPath); err != nil {
		return fmt.Errorf("fault: rename %s -> %s: %w", oldPath, newPath, err)
	}
	return nil
}

func (osFS) Remove(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("fault: remove %s: %w", path, err)
	}
	return nil
}

func (osFS) RemoveAll(path string) error {
	if err := os.RemoveAll(path); err != nil {
		return fmt.Errorf("fault: remove all %s: %w", path, err)
	}
	return nil
}

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("fault: read dir %s: %w", path, err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Stat(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("fault: stat %s: %w", path, err)
	}
	return st.Size(), nil
}

func (osFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return fmt.Errorf("fault: sync dir %s: %w", path, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("fault: sync dir %s: %w", path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("fault: sync dir %s: %w", path, cerr)
	}
	return nil
}

// IsNotExist reports whether err means a file or directory does not exist,
// across the OS and MemFS implementations (both wrap os.ErrNotExist).
func IsNotExist(err error) bool {
	return errors.Is(err, os.ErrNotExist)
}
