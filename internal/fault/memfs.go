package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models POSIX durability semantics
// strictly: file contents reach "stable storage" only on File.Sync, and
// directory entries (creates, renames, removes) only on SyncDir. Crash
// discards everything else, simulating a power cut. This strictness is
// what makes the crash-simulation harness meaningful — a protocol that
// forgets the parent-directory fsync after a rename loses the rename on
// MemFS exactly as it can on ext4.
type MemFS struct {
	mu      sync.Mutex
	root    *memNode
	crashed bool
}

// memNode is one file or directory. Directories keep two views of their
// entries: kids (the live view) and syncedKids (the view as of the last
// SyncDir). Files keep data (live) and synced (as of the last Sync).
type memNode struct {
	dir        bool
	data       []byte
	synced     []byte
	kids       map[string]*memNode
	syncedKids map[string]*memNode
}

func newDirNode() *memNode {
	return &memNode{
		dir:        true,
		kids:       make(map[string]*memNode),
		syncedKids: make(map[string]*memNode),
	}
}

// NewMemFS returns an empty in-memory filesystem whose root directory
// exists and is durable.
func NewMemFS() *MemFS {
	return &MemFS{root: newDirNode()}
}

// ErrCrashed is returned by every operation after Crash.
var ErrCrashed = errors.New("fault: filesystem has crashed (simulated power cut)")

// splitPath normalizes a path into its component names. Paths are
// interpreted as absolute or relative interchangeably: "/a/b", "a/b" and
// "./a/b" all name the same node.
func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, p)
		}
	}
	return parts
}

// lookup walks to the node at path, or nil if any component is missing.
func (m *MemFS) lookup(path string) *memNode {
	n := m.root
	for _, part := range splitPath(path) {
		if n == nil || !n.dir {
			return nil
		}
		n = n.kids[part]
	}
	return n
}

// lookupParent returns the directory containing path and the final name.
func (m *MemFS) lookupParent(path string) (*memNode, string) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, ""
	}
	n := m.root
	for _, part := range parts[:len(parts)-1] {
		if n == nil || !n.dir {
			return nil, ""
		}
		n = n.kids[part]
	}
	if n == nil || !n.dir {
		return nil, ""
	}
	return n, parts[len(parts)-1]
}

// MkdirAll implements FS. Directory creation is modeled as immediately
// durable (mkdir + parent fsync combined): the interesting crash points
// are file writes and renames, and a vanishing data directory would only
// obscure them. File entries inside a directory still require SyncDir.
func (m *MemFS) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	n := m.root
	for _, part := range splitPath(path) {
		kid := n.kids[part]
		if kid == nil {
			kid = newDirNode()
			n.kids[part] = kid
			n.syncedKids[part] = kid
		} else if !kid.dir {
			return fmt.Errorf("fault: mkdir %s: %q is a file", path, part)
		}
		n = kid
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	parent, name := m.lookupParent(path)
	if parent == nil || name == "" {
		return nil, fmt.Errorf("fault: create %s: parent directory: %w", path, os.ErrNotExist)
	}
	n := parent.kids[name]
	if n != nil && n.dir {
		return nil, fmt.Errorf("fault: create %s: is a directory", path)
	}
	if n == nil {
		n = &memNode{}
		parent.kids[name] = n
	}
	// Truncation is immediate in the live view; the previously synced
	// content survives a crash until the next Sync, as on a real disk.
	n.data = nil
	return &memFile{fs: m, node: n, writable: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	n := m.lookup(path)
	if n == nil {
		return nil, fmt.Errorf("fault: open %s: %w", path, os.ErrNotExist)
	}
	if n.dir {
		return nil, fmt.Errorf("fault: open %s: is a directory", path)
	}
	return &memFile{fs: m, node: n}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	parent, name := m.lookupParent(path)
	if parent == nil || name == "" {
		return nil, fmt.Errorf("fault: open append %s: parent directory: %w", path, os.ErrNotExist)
	}
	n := parent.kids[name]
	if n != nil && n.dir {
		return nil, fmt.Errorf("fault: open append %s: is a directory", path)
	}
	if n == nil {
		n = &memNode{}
		parent.kids[name] = n
	}
	return &memFile{fs: m, node: n, writable: true}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	n := m.lookup(path)
	if n == nil {
		return nil, fmt.Errorf("fault: read %s: %w", path, os.ErrNotExist)
	}
	if n.dir {
		return nil, fmt.Errorf("fault: read %s: is a directory", path)
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// Rename implements FS. The new entry (and the old one's removal) become
// durable on SyncDir of the affected parent directories.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	oldParent, oldName := m.lookupParent(oldPath)
	if oldParent == nil || oldParent.kids[oldName] == nil {
		return fmt.Errorf("fault: rename %s: %w", oldPath, os.ErrNotExist)
	}
	newParent, newName := m.lookupParent(newPath)
	if newParent == nil || newName == "" {
		return fmt.Errorf("fault: rename to %s: parent directory: %w", newPath, os.ErrNotExist)
	}
	n := oldParent.kids[oldName]
	delete(oldParent.kids, oldName)
	newParent.kids[newName] = n
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	parent, name := m.lookupParent(path)
	if parent == nil || parent.kids[name] == nil {
		return fmt.Errorf("fault: remove %s: %w", path, os.ErrNotExist)
	}
	n := parent.kids[name]
	if n.dir && len(n.kids) > 0 {
		return fmt.Errorf("fault: remove %s: directory not empty", path)
	}
	delete(parent.kids, name)
	return nil
}

// RemoveAll implements FS.
func (m *MemFS) RemoveAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	parent, name := m.lookupParent(path)
	if parent == nil || name == "" {
		return nil
	}
	delete(parent.kids, name)
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(path string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	n := m.lookup(path)
	if n == nil {
		return nil, fmt.Errorf("fault: read dir %s: %w", path, os.ErrNotExist)
	}
	if !n.dir {
		return nil, fmt.Errorf("fault: read dir %s: not a directory", path)
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (m *MemFS) Stat(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	n := m.lookup(path)
	if n == nil {
		return 0, fmt.Errorf("fault: stat %s: %w", path, os.ErrNotExist)
	}
	return int64(len(n.data)), nil
}

// SyncDir implements FS: the directory's current entries become the
// crash-durable view. Shallow, as on a real filesystem — syncing a parent
// does not sync the contents of its children.
func (m *MemFS) SyncDir(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	n := m.lookup(path)
	if n == nil {
		return fmt.Errorf("fault: sync dir %s: %w", path, os.ErrNotExist)
	}
	if !n.dir {
		return fmt.Errorf("fault: sync dir %s: not a directory", path)
	}
	n.syncedKids = make(map[string]*memNode, len(n.kids))
	for name, kid := range n.kids {
		n.syncedKids[name] = kid
	}
	return nil
}

// Crash simulates a power cut: every directory reverts to its last synced
// entries and every file to its last synced contents. Operations issued
// after Crash fail with ErrCrashed until Restart.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return
	}
	m.crashed = true
	rollback(m.root)
}

func rollback(n *memNode) {
	if !n.dir {
		n.data = append([]byte(nil), n.synced...)
		return
	}
	n.kids = make(map[string]*memNode, len(n.syncedKids))
	for name, kid := range n.syncedKids {
		n.kids[name] = kid
	}
	for _, kid := range n.kids {
		rollback(kid)
	}
}

// Restart clears the crashed flag, simulating the machine coming back up
// with whatever survived on stable storage.
func (m *MemFS) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
}

// Corrupt XORs the byte at off in path's live and synced contents with
// mask, simulating silent media corruption beneath any checksum.
func (m *MemFS) Corrupt(path string, off int64, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.lookup(path)
	if n == nil || n.dir {
		return fmt.Errorf("fault: corrupt %s: %w", path, os.ErrNotExist)
	}
	if off < 0 || off >= int64(len(n.data)) {
		return fmt.Errorf("fault: corrupt %s: offset %d out of range", path, off)
	}
	n.data[off] ^= mask
	if off < int64(len(n.synced)) {
		n.synced[off] ^= mask
	}
	return nil
}

// memFile is a handle onto a memNode.
type memFile struct {
	fs       *MemFS
	node     *memNode
	writable bool
	closed   bool
}

// Write implements File, appending to the live contents.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if f.closed {
		return 0, fmt.Errorf("fault: write to closed file")
	}
	if !f.writable {
		return 0, fmt.Errorf("fault: write to read-only file")
	}
	f.node.data = append(f.node.data, p...)
	return len(p), nil
}

// ReadAt implements File.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if f.closed {
		return 0, fmt.Errorf("fault: read from closed file")
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Sync implements File: the live contents become the crash-durable view.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	if f.closed {
		return fmt.Errorf("fault: sync of closed file")
	}
	f.node.synced = append([]byte(nil), f.node.data...)
	return nil
}

// Close implements File.
func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fmt.Errorf("fault: double close")
	}
	f.closed = true
	return nil
}
