package fault

import (
	"errors"
	"fmt"
	"sync"
)

// Mode selects what happens at the planned I/O operation.
type Mode int

const (
	// ModeNone injects nothing.
	ModeNone Mode = iota
	// ModeFail makes the Nth mutating operation return ErrInjected
	// without executing; the filesystem stays alive.
	ModeFail
	// ModeTorn makes the Nth mutating operation, if it is a file write,
	// persist only the first half of its bytes and then power-cut —
	// producing a genuine torn write on stable storage. A non-write
	// operation power-cuts as ModePowerCut.
	ModeTorn
	// ModeFlip makes the Nth mutating operation, if it is a file write,
	// flip one bit of the written data and report success — silent media
	// corruption that only a checksum can catch. A non-write operation
	// proceeds untouched.
	ModeFlip
	// ModePowerCut crashes the filesystem at the Nth mutating operation:
	// the operation does not execute, unsynced state is discarded, and
	// every later operation fails with ErrCrashed.
	ModePowerCut
)

// ErrInjected is the error returned by operations failed by the injector.
var ErrInjected = errors.New("fault: injected I/O failure")

// Crasher is implemented by filesystems that can simulate a power cut
// (MemFS and InjectFS).
type Crasher interface {
	Crash()
}

// InjectFS wraps an FS, counts its mutating operations (creates, writes,
// syncs, renames, removes, mkdirs, dir syncs, and closes of writable
// files), and injects one fault at a planned operation index. Reads are
// never counted or failed: the harness probes durability, not
// availability.
type InjectFS struct {
	inner FS

	mu      sync.Mutex
	ops     int64
	mode    Mode
	at      int64
	tripped bool
	dead    bool
}

// NewInject wraps inner with an injector whose plan is initially empty.
func NewInject(inner FS) *InjectFS {
	return &InjectFS{inner: inner}
}

// SetPlan arms the injector: the at-th mutating operation (1-based) fails
// per mode. It also resets the operation counter, so a fresh plan can be
// applied to a fresh run over the same underlying filesystem.
func (i *InjectFS) SetPlan(mode Mode, at int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.mode, i.at = mode, at
	i.ops = 0
	i.tripped = false
	i.dead = false
}

// Ops returns how many mutating operations have been counted since the
// last SetPlan. Running a workload with an empty plan and reading Ops
// gives the sweep bound for that workload.
func (i *InjectFS) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Tripped reports whether the planned fault has fired.
func (i *InjectFS) Tripped() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.tripped
}

// Crash power-cuts the underlying filesystem (if it supports it) and
// fails every subsequent operation through this injector.
func (i *InjectFS) Crash() {
	i.mu.Lock()
	i.dead = true
	i.mu.Unlock()
	if c, ok := i.inner.(Crasher); ok {
		c.Crash()
	}
}

// action is the injector's verdict for one operation.
type action int

const (
	actProceed action = iota
	actFail
	actFlip
	actTorn
	actDead
)

// step counts one mutating operation and decides its fate. isWrite marks
// operations that carry a data payload (File.Write), the only ones torn
// and bit-flip faults apply to.
func (i *InjectFS) step(isWrite bool) action {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.dead {
		return actDead
	}
	i.ops++
	if i.mode == ModeNone || i.ops != i.at {
		return actProceed
	}
	i.tripped = true
	switch i.mode {
	case ModeFail:
		return actFail
	case ModeFlip:
		if isWrite {
			return actFlip
		}
		return actProceed
	case ModeTorn:
		if isWrite {
			i.dead = true // the torn write is this fs's last act
			return actTorn
		}
		i.dead = true
		return actDead
	case ModePowerCut:
		i.dead = true
		return actDead
	}
	return actProceed
}

// crashInner power-cuts the wrapped filesystem, discarding unsynced state.
func (i *InjectFS) crashInner() {
	if c, ok := i.inner.(Crasher); ok {
		c.Crash()
	}
}

// mutate runs a non-write mutating operation under the injector.
func (i *InjectFS) mutate(op func() error) error {
	switch i.step(false) {
	case actFail:
		return ErrInjected
	case actDead:
		i.crashInner()
		return ErrCrashed
	}
	return op()
}

// MkdirAll implements FS.
func (i *InjectFS) MkdirAll(path string) error {
	return i.mutate(func() error { return i.inner.MkdirAll(path) })
}

// Create implements FS.
func (i *InjectFS) Create(path string) (File, error) {
	var f File
	err := i.mutate(func() (err error) {
		f, err = i.inner.Create(path)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: i, inner: f, writable: true}, nil
}

// OpenAppend implements FS.
func (i *InjectFS) OpenAppend(path string) (File, error) {
	var f File
	err := i.mutate(func() (err error) {
		f, err = i.inner.OpenAppend(path)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: i, inner: f, writable: true}, nil
}

// Open implements FS. Reads are not injection points.
func (i *InjectFS) Open(path string) (File, error) {
	f, err := i.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: i, inner: f}, nil
}

// ReadFile implements FS.
func (i *InjectFS) ReadFile(path string) ([]byte, error) { return i.inner.ReadFile(path) }

// Rename implements FS.
func (i *InjectFS) Rename(oldPath, newPath string) error {
	return i.mutate(func() error { return i.inner.Rename(oldPath, newPath) })
}

// Remove implements FS.
func (i *InjectFS) Remove(path string) error {
	return i.mutate(func() error { return i.inner.Remove(path) })
}

// RemoveAll implements FS.
func (i *InjectFS) RemoveAll(path string) error {
	return i.mutate(func() error { return i.inner.RemoveAll(path) })
}

// ReadDir implements FS.
func (i *InjectFS) ReadDir(path string) ([]string, error) { return i.inner.ReadDir(path) }

// Stat implements FS.
func (i *InjectFS) Stat(path string) (int64, error) { return i.inner.Stat(path) }

// SyncDir implements FS.
func (i *InjectFS) SyncDir(path string) error {
	return i.mutate(func() error { return i.inner.SyncDir(path) })
}

// injectFile threads write/sync/close operations through the injector.
type injectFile struct {
	fs       *InjectFS
	inner    File
	writable bool
}

// Write implements File, the only operation torn and flip faults hit.
func (f *injectFile) Write(p []byte) (int, error) {
	switch f.fs.step(true) {
	case actFail:
		return 0, ErrInjected
	case actDead:
		f.fs.crashInner()
		return 0, ErrCrashed
	case actTorn:
		// Persist the first half of the write, fsync it so it survives
		// the power cut, then crash. The caller sees a failure; stable
		// storage keeps a torn prefix.
		half := p[:len(p)/2]
		if len(half) > 0 {
			if _, err := f.inner.Write(half); err != nil {
				return 0, fmt.Errorf("fault: torn write: %w", err)
			}
			if err := f.inner.Sync(); err != nil {
				return 0, fmt.Errorf("fault: torn write sync: %w", err)
			}
		}
		f.fs.crashInner()
		return len(half), ErrInjected
	case actFlip:
		flipped := append([]byte(nil), p...)
		flipped[len(flipped)/2] ^= 1 << uint(len(flipped)%8)
		n, err := f.inner.Write(flipped)
		if err != nil {
			return n, fmt.Errorf("fault: flipped write: %w", err)
		}
		return len(p), nil
	}
	return f.inner.Write(p)
}

// ReadAt implements File.
func (f *injectFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

// Sync implements File.
func (f *injectFile) Sync() error {
	if f.writable {
		switch f.fs.step(false) {
		case actFail:
			return ErrInjected
		case actDead:
			f.fs.crashInner()
			return ErrCrashed
		}
	}
	return f.inner.Sync()
}

// Close implements File. Closes of writable handles count: a close can
// report a deferred write error, and the persist layer must propagate it.
func (f *injectFile) Close() error {
	if f.writable {
		switch f.fs.step(false) {
		case actFail:
			// The handle still closes underneath so the harness does not
			// leak; the caller must treat the close as failed regardless.
			_ = f.inner.Close()
			return ErrInjected
		case actDead:
			f.fs.crashInner()
			_ = f.inner.Close()
			return ErrCrashed
		}
	}
	return f.inner.Close()
}
