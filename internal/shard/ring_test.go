package shard

import (
	"testing"
)

func TestRingRejectsZeroShards(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
	if _, err := NewRing(-3); err == nil {
		t.Fatal("NewRing(-3) should fail")
	}
}

// The layout must be a pure function of the shard count: two routers
// built over the same shard list route every user identically.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for u := int64(-500); u < 500; u++ {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("user %d: ring A says shard %d, ring B says %d", u, a.Owner(u), b.Owner(u))
		}
	}
}

// Real user ids are small consecutive integers; the ring must spread
// them evenly, not stride them into clusters.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		r, err := NewRing(n)
		if err != nil {
			t.Fatal(err)
		}
		const users = 50000
		counts := make([]int, n)
		for u := int64(0); u < users; u++ {
			counts[r.Owner(u)]++
		}
		want := users / n
		for s, c := range counts {
			if c < want/2 || c > want*2 {
				t.Errorf("n=%d: shard %d owns %d of %d users (want within 2x of %d): %v",
					n, s, c, users, want, counts)
			}
		}
	}
}

// Adding a shard must move only the keys falling into the new shard's
// arcs — consistent hashing's point. Every user that moves must move TO
// the new shard, never between old ones.
func TestRingGrowthMovesOnlyToNewShard(t *testing.T) {
	small, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const users = 20000
	for u := int64(0); u < users; u++ {
		was, now := small.Owner(u), big.Owner(u)
		if was == now {
			continue
		}
		moved++
		if now != 4 {
			t.Fatalf("user %d moved from shard %d to old shard %d when shard 4 joined", u, was, now)
		}
	}
	// Expect about 1/5 of the keys to move; far more means the layout
	// reshuffled, far fewer means the new shard is starved.
	if moved < users/10 || moved > users/2 {
		t.Errorf("%d of %d users moved when growing 4->5 shards (expected about %d)", moved, users, users/5)
	}
}

func TestRingOwnersDistinctSorted(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	users := []int64{10, 11, 12, 13, 10, 11, 500, 501}
	owners := r.Owners(users)
	if len(owners) == 0 || len(owners) > 4 {
		t.Fatalf("Owners returned %v", owners)
	}
	seen := map[int]bool{}
	for i, s := range owners {
		if s < 0 || s >= 4 {
			t.Fatalf("owner %d out of range in %v", s, owners)
		}
		if seen[s] {
			t.Fatalf("duplicate owner %d in %v", s, owners)
		}
		seen[s] = true
		if i > 0 && owners[i-1] >= s {
			t.Fatalf("owners not ascending: %v", owners)
		}
	}
	// Every user's owner must appear.
	for _, u := range users {
		if !seen[r.Owner(u)] {
			t.Fatalf("user %d's owner %d missing from %v", u, r.Owner(u), owners)
		}
	}
}
