package shard

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"recdb/internal/metrics"
)

// routerMetrics is the router's instrument set. The router owns its own
// registry (it embeds no engine), exported over HTTP exactly like a
// shard's engine registry so one scraper format covers the whole tier.
type routerMetrics struct {
	connsActive    *metrics.Gauge
	sessionsOpened *metrics.Counter
	sessionsClosed *metrics.Counter
	queries        *metrics.Counter
	queryNs        *metrics.Histogram
	routedUser     *metrics.Counter // statements pinned to one shard by user key
	fanouts        *metrics.Counter // broadcast writes/DDL (all shards)
	scatters       *metrics.Counter // scatter-gather reads
	splits         *metrics.Counter // multi-user INSERTs split across shards
	denied         *metrics.Counter // statements the router refused to route
	retries        *metrics.Counter // per-statement retry attempts
	downErrors     *metrics.Counter // statements answered shard_down
	rejectedBusy   *metrics.Counter
	panics         *metrics.Counter
}

// shardMetrics is one backend shard's slice of the registry.
type shardMetrics struct {
	routed      *metrics.Counter // statements routed to this shard alone
	fanout      *metrics.Counter // fan-out legs sent to this shard
	retries     *metrics.Counter // retried attempts against this shard
	up          *metrics.Gauge   // 1 healthy, 0 down
	transitions *metrics.Counter // up<->down flips
	poolConns   *metrics.Gauge   // live pooled connections (pool depth)
}

func newRouterMetrics(r *metrics.Registry) routerMetrics {
	return routerMetrics{
		connsActive:    r.Gauge("shard.conns_active"),
		sessionsOpened: r.Counter("shard.sessions_opened"),
		sessionsClosed: r.Counter("shard.sessions_closed"),
		queries:        r.Counter("shard.queries"),
		queryNs:        r.Histogram("shard.query_ns"),
		routedUser:     r.Counter("shard.routed_user"),
		fanouts:        r.Counter("shard.fanout"),
		scatters:       r.Counter("shard.scatter"),
		splits:         r.Counter("shard.split_inserts"),
		denied:         r.Counter("shard.denied"),
		retries:        r.Counter("shard.retries"),
		downErrors:     r.Counter("shard.down_errors"),
		rejectedBusy:   r.Counter("shard.rejected_busy"),
		panics:         r.Counter("shard.panics"),
	}
}

func newShardMetrics(r *metrics.Registry, i int) shardMetrics {
	return shardMetrics{
		routed:      r.Counter(fmt.Sprintf("shard.%d.routed", i)),
		fanout:      r.Counter(fmt.Sprintf("shard.%d.fanout", i)),
		retries:     r.Counter(fmt.Sprintf("shard.%d.retries", i)),
		up:          r.Gauge(fmt.Sprintf("shard.%d.up", i)),
		transitions: r.Counter(fmt.Sprintf("shard.%d.health_transitions", i)),
		poolConns:   r.Gauge(fmt.Sprintf("shard.%d.pool_conns", i)),
	}
}

// MetricsHandler serves the router's metrics snapshot over HTTP in the
// same three shapes the engine's exporter uses (internal/server):
//
//	/metrics       sorted "name value" text lines
//	/metrics.json  expvar-style JSON
//	/debug/vars
func (r *Router) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.Metrics().String())
	})
	serveJSON := func(w http.ResponseWriter, req *http.Request) {
		snap := r.Metrics()
		vars := make(map[string]any, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for _, c := range snap.Counters {
			vars[c.Name] = c.Value
		}
		for _, g := range snap.Gauges {
			vars[g.Name] = g.Value
		}
		for _, h := range snap.Histograms {
			vars[h.Name] = map[string]any{
				"count": h.Count, "sum": h.Sum, "mean": h.Mean(),
				"p50": h.Quantile(0.50), "p99": h.Quantile(0.99),
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(vars)
	}
	mux.HandleFunc("/metrics.json", serveJSON)
	mux.HandleFunc("/debug/vars", serveJSON)
	return mux
}

// ServeMetrics starts the metrics HTTP listener on addr and returns the
// bound address and a stop function.
func (r *Router) ServeMetrics(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("shard: metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.MetricsHandler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
