package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"recdb/client"
	"recdb/internal/wire"
)

// ShardDownError reports that the shard a statement needed stayed
// unreachable past the router's bounded retries. It surfaces to clients
// as a wire error with code "shard_down"; statements owned by healthy
// shards keep serving.
type ShardDownError struct {
	Shard int    // shard index on the ring
	Addr  string // the shard's address
	Err   error  // the last transport failure
}

// Error implements error.
func (e *ShardDownError) Error() string {
	return fmt.Sprintf("shard %d (%s) is down: %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying transport failure.
func (e *ShardDownError) Unwrap() error { return e.Err }

// shardState is the router's view of one backend shard: a small pool of
// pipelined client connections plus a health flag the prober and the
// request path both maintain.
type shardState struct {
	shard int
	addr  string
	m     shardMetrics

	mu    sync.Mutex
	conns []*client.Conn // fixed-size slots; nil or poisoned slots redial
	next  int
	live  int
	up    bool
	done  bool
}

func newShardState(shard int, addr string, size int, m shardMetrics) *shardState {
	s := &shardState{shard: shard, addr: addr, m: m, conns: make([]*client.Conn, size)}
	// Optimistic start: the first failed request or probe flips it down.
	s.up = true
	m.up.Set(1)
	return s
}

// get returns a healthy pooled connection, redialing its slot if the
// previous occupant was poisoned. Slots are handed out round-robin so
// concurrent statements spread across the pool's pipelines.
func (s *shardState) get(ctx context.Context) (*client.Conn, error) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil, errors.New("shard: router closed")
	}
	i := s.next
	s.next = (s.next + 1) % len(s.conns)
	c := s.conns[i]
	s.mu.Unlock()

	if c != nil && !c.Closed() {
		return c, nil
	}
	nc, err := client.DialContext(ctx, s.addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		_ = nc.Close()
		return nil, errors.New("shard: router closed")
	}
	// Another caller may have refilled the slot first; keep the winner.
	if cur := s.conns[i]; cur != nil && !cur.Closed() {
		s.mu.Unlock()
		_ = nc.Close()
		return cur, nil
	}
	s.conns[i] = nc
	s.recountLocked()
	s.mu.Unlock()
	return nc, nil
}

// drop discards a poisoned connection so the next get redials its slot.
func (s *shardState) drop(c *client.Conn) {
	_ = c.Close()
	s.mu.Lock()
	s.recountLocked()
	s.mu.Unlock()
}

// recountLocked refreshes the pool-depth gauge. Callers hold s.mu.
func (s *shardState) recountLocked() {
	n := 0
	for _, c := range s.conns {
		if c != nil && !c.Closed() {
			n++
		}
	}
	s.live = n
	s.m.poolConns.Set(int64(n))
}

// markUp records a successful exchange with the shard.
func (s *shardState) markUp() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.up {
		s.up = true
		s.m.up.Set(1)
		s.m.transitions.Inc()
	}
}

// markDown records a transport failure against the shard.
func (s *shardState) markDown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.up {
		s.up = false
		s.m.up.Set(0)
		s.m.transitions.Inc()
	}
}

// healthy reports the shard's current health flag.
func (s *shardState) healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up
}

// close tears the pool down; subsequent gets fail.
func (s *shardState) close() {
	s.mu.Lock()
	s.done = true
	conns := s.conns
	s.conns = make([]*client.Conn, len(conns))
	s.live = 0
	s.m.poolConns.Set(0)
	s.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			_ = c.Close()
		}
	}
}

// probe pings the shard once and updates its health flag — the path by
// which a downed shard comes back without waiting for live traffic to
// risk it.
func (s *shardState) probe(ctx context.Context, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c, err := s.get(pctx)
	if err != nil {
		s.markDown()
		return
	}
	if err := c.Ping(pctx); err != nil {
		var se *client.ServerError
		if errors.As(err, &se) {
			// The shard answered, even if with an error: it is up.
			s.markUp()
			return
		}
		s.drop(c)
		s.markDown()
		return
	}
	s.markUp()
}

// do runs one statement against one shard with bounded retry. A typed
// server answer (including query errors) is returned as-is — the shard
// is alive and already gave its verdict. Transport failures poison the
// connection and retry with doubling backoff, but only when the attempt
// is safe to repeat: reads always are; writes only when the request
// never reached the wire (a dial failure), since a write that died
// mid-flight may have committed on the shard. Exhausted retries yield a
// ShardDownError, which sessions answer with wire code "shard_down".
func (r *Router) do(ctx context.Context, shard int, kind wire.Type, sqlText string) (wire.Complete, *client.Rows, error) {
	s := r.states[shard]
	readonly := kind == wire.TypeQuery || kind == wire.TypePing
	backoff := r.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		if attempt > 0 {
			s.m.retries.Inc()
			r.m.retries.Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return wire.Complete{}, nil, ctx.Err()
			}
			backoff *= 2
		}
		c, err := s.get(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return wire.Complete{}, nil, ctx.Err()
			}
			s.markDown()
			lastErr = err
			continue // never sent: safe to retry even for writes
		}
		var complete wire.Complete
		var rows *client.Rows
		switch kind {
		case wire.TypePing:
			err = c.Ping(ctx)
		case wire.TypeQuery:
			rows, err = c.Query(ctx, sqlText)
		default:
			var res client.Result
			res, err = c.Exec(ctx, sqlText)
			complete.Rows = res.RowsAffected
		}
		if err == nil {
			s.markUp()
			return complete, rows, nil
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			s.markUp()
			return wire.Complete{}, nil, err
		}
		if ctx.Err() != nil {
			return wire.Complete{}, nil, ctx.Err()
		}
		s.drop(c)
		s.markDown()
		lastErr = err
		if !readonly {
			break // the write may have landed; retrying could double-apply
		}
	}
	r.m.downErrors.Inc()
	return wire.Complete{}, nil, &ShardDownError{Shard: shard, Addr: s.addr, Err: lastErr}
}
