package shard

import (
	"recdb/client"
	"recdb/internal/types"
)

// result is one statement answer ready to stream to the client: either
// a row set (reads) or an affected count (writes).
type result struct {
	cols     []string
	strategy string
	rows     []types.Row
	affected int64
	isRows   bool
}

// mergeParts combines per-shard read answers. Each shard answers in the
// statement's own ORDER BY already, so an ordered merge — not a re-sort
// — recovers the global order; without merge keys (or when a key column
// is missing from the result) parts concatenate in shard order. LIMIT
// and OFFSET apply to the merged stream, so a cross-shard top-k keeps
// exactly k rows no matter how many shards contributed.
func mergeParts(parts []*client.Rows, spec *MergeSpec) result {
	res := result{isRows: true}
	for _, p := range parts {
		if p != nil {
			res.cols, res.strategy = p.Columns(), p.Strategy()
			break
		}
	}

	limit, offset := int64(-1), int64(0)
	if spec != nil {
		limit = spec.Limit
		if spec.Offset > 0 {
			offset = spec.Offset
		}
	}

	var keys []resolvedKey
	ordered := false
	if spec != nil && len(spec.Keys) > 0 {
		keys, ordered = resolveKeys(spec.Keys, res.cols)
	}

	if !ordered {
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, row := range p.All() {
				if offset > 0 {
					offset--
					continue
				}
				res.rows = append(res.rows, row)
				if limit >= 0 && int64(len(res.rows)) >= limit {
					return res
				}
			}
		}
		return res
	}

	// Ordered k-way merge. Shard counts are single digits, so a linear
	// scan over the heads beats heap bookkeeping; ties take the lowest
	// shard index, making the merged order deterministic.
	heads := make([]int, len(parts))
	for {
		best := -1
		var bestRow types.Row
		for i, p := range parts {
			if p == nil || heads[i] >= p.Len() {
				continue
			}
			row := p.All()[heads[i]]
			if best < 0 || compareRows(row, bestRow, keys) < 0 {
				best, bestRow = i, row
			}
		}
		if best < 0 {
			return res
		}
		heads[best]++
		if offset > 0 {
			offset--
			continue
		}
		res.rows = append(res.rows, bestRow)
		if limit >= 0 && int64(len(res.rows)) >= limit {
			return res
		}
	}
}
