// Package shard is the horizontal-scale serving tier: a router that
// speaks the wire protocol (internal/wire) on both sides — a
// server-style front end for clients and pooled client connections to N
// backend shard engines (plain recdb-server processes).
//
// Recommendation traffic partitions naturally by user id: the paper's
// workload is dominated by per-user statements (RECOMMEND ... WHERE uid
// = k, rating DML, point lookups on the user key), and the engine's own
// RecScoreIndex is already per-user. A consistent-hash ring over user
// ids sends each per-user statement to exactly one shard, preserving
// single-node latency, while aggregate throughput scales with shard
// count. Statements without a user key either replicate to every shard
// (DDL, model builds, writes to non-user tables) or scatter-gather with
// an ordered row merge at the router (cross-shard reads).
package shard

import (
	"fmt"
	"sort"
)

// vnodesPerShard is how many points each shard contributes to the ring.
// Enough replicas smooth the partition sizes to within a few percent;
// the count is fixed so a ring over N shards is the same function of
// user ids in every process that builds one.
const vnodesPerShard = 256

// Ring maps user ids onto shard indices by consistent hashing: each
// shard owns vnodesPerShard points on a 64-bit circle, and a user
// belongs to the shard owning the first point at or after the user's
// hash. Adding a shard moves only the keys that fall into its new
// arcs, which keeps resharding traffic proportional to 1/N.
//
// A Ring is immutable after New and safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring over n shards (n >= 1). The layout is a pure
// function of n, so every router over the same shard list routes every
// user identically.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", n)
	}
	r := &Ring{points: make([]ringPoint, 0, n*vnodesPerShard), shards: n}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between shards would make the layout depend on
		// sort stability; break it deterministically by shard index.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index owning a user id.
func (r *Ring) Owner(user int64) int {
	h := userHash(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// Owners returns the distinct shard indices owning the given users, in
// ascending order — the fan-out set for a user IN (...) statement.
func (r *Ring) Owners(users []int64) []int {
	seen := make(map[int]bool, len(users))
	var out []int
	for _, u := range users {
		s := r.Owner(u)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// mix64 is the splitmix64 finalizer: a multiply-xorshift chain that
// avalanches every input bit. Ring inputs — user ids, shard and vnode
// indices — are small consecutive integers, and a byte-stream hash over
// their mostly-zero encodings strides them into clusters; full
// avalanche makes neighboring inputs land independently on the circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// userHash hashes a user id onto the ring circle.
func userHash(user int64) uint64 {
	return mix64(uint64(user) + 0x9e3779b97f4a7c15)
}

// pointHash places virtual node v of shard s on the circle, in a
// keyspace distinct from user hashes.
func pointHash(s, v int) uint64 {
	return mix64(uint64(s)<<32 ^ uint64(v) ^ 0x5bd1e9955bd1e995)
}
