package shard

import (
	"fmt"
	"sort"
	"strings"

	"recdb/internal/sql"
	"recdb/internal/types"
)

// Action says where a statement must run.
type Action int

// Routing actions.
const (
	// RouteOwner sends the statement to the single shard owning its user
	// key — the common per-user case that preserves single-node latency.
	RouteOwner Action = iota
	// RouteOwners fans out to the subset of shards owning a user IN
	// (...) list, merging like RouteScatter.
	RouteOwners
	// RouteAny sends a read touching only replicated tables to one
	// healthy shard (every shard has the full copy).
	RouteAny
	// RouteScatter fans a read out to every shard and merges the rows
	// (ordered merge when the statement has a mergeable ORDER BY).
	RouteScatter
	// RouteBroadcast replicates a write/DDL/model build to every shard.
	RouteBroadcast
	// RouteSplit partitions a multi-user INSERT's rows among their
	// owning shards.
	RouteSplit
	// RouteDeny refuses the statement with a typed error: the router
	// cannot run it correctly across shards.
	RouteDeny
)

// Route is a classified statement: where it runs and how its answers
// combine.
type Route struct {
	Action Action
	// User is the owning key for RouteOwner; Users the distinct keys for
	// RouteOwners.
	User  int64
	Users []int64
	// Sum, for RouteBroadcast/RouteOwners writes: sum the shards' rows
	// affected (a partitioned table, each shard holds a disjoint slice)
	// instead of reporting one shard's count (a replicated table, every
	// shard reports the same number).
	Sum bool
	// Merge describes how scattered read answers combine (nil: plain
	// concatenation in shard order).
	Merge *MergeSpec
	// Insert carries the parsed statement for RouteSplit rendering.
	Insert *InsertPlan
	// Reason is the RouteDeny explanation.
	Reason string
}

// InsertPlan is a multi-user INSERT awaiting per-shard splitting:
// RowUsers[i] is the user key of Stmt.Rows[i].
type InsertPlan struct {
	Stmt     *sql.Insert
	RowUsers []int64
}

// MergeSpec describes the router-side merge of a scattered read.
type MergeSpec struct {
	// Keys are the ORDER BY columns; empty means concatenate. Each shard
	// answers in this order already, so the router runs an ordered
	// k-way merge rather than a re-sort.
	Keys []MergeKey
	// Limit and Offset apply after the merge (-1: absent).
	Limit, Offset int64
}

// MergeKey is one ORDER BY column (result-column name, lowercased).
type MergeKey struct {
	Col  string
	Desc bool
}

// catalog answers what the router has learned about table schemas from
// the DDL it replicated. columns returns lowercased column names;
// partitioned reports whether the table carries the user column (its
// rows live on the owning shard) as opposed to being replicated.
type catalog interface {
	columns(table string) ([]string, bool)
	partitioned(table string) (bool, bool) // (partitioned, known)
}

// classify decides where one parsed statement runs. userCol is the
// configured user-key column name, lowercased.
func classify(stmt sql.Statement, userCol string, cat catalog) Route {
	switch s := stmt.(type) {
	case *sql.Select:
		return classifySelect(s, userCol, cat)
	case *sql.Explain:
		// EXPLAIN routes like its query but never merges: plan text rows
		// concatenate, one plan per shard reached.
		r := classifySelect(s.Query, userCol, cat)
		r.Merge = nil
		return r
	case *sql.Insert:
		return classifyInsert(s, userCol, cat)
	case *sql.Update:
		return classifyWrite(s.Table, s.Where, userCol, cat)
	case *sql.Delete:
		return classifyWrite(s.Table, s.Where, userCol, cat)
	case *sql.CreateTable, *sql.DropTable, *sql.CreateIndex,
		*sql.CreateRecommender, *sql.DropRecommender:
		// Schema and model artifacts replicate: every shard gets the DDL,
		// and each builds/drops its model over its local partition.
		return Route{Action: RouteBroadcast}
	case *sql.Begin, *sql.Commit, *sql.Rollback:
		return Route{Action: RouteDeny,
			Reason: "transactions are not supported through the router (no cross-shard atomic commit); run them against a single shard"}
	default:
		return Route{Action: RouteDeny, Reason: fmt.Sprintf("router cannot route %T", stmt)}
	}
}

// classifySelect routes a read: user-key equality pins it to one shard,
// a user IN list to the owners' subset, a replicated-only FROM list to
// any one shard, and everything else scatter-gathers.
func classifySelect(s *sql.Select, userCol string, cat catalog) Route {
	// A RECOMMEND clause names its user column explicitly; trust it over
	// the router's configured default for this statement.
	if s.Recommend != nil && s.Recommend.User != nil {
		userCol = strings.ToLower(s.Recommend.User.Name)
	}
	if user, ok := userEquality(s.Where, userCol); ok {
		return Route{Action: RouteOwner, User: user}
	}
	if users, ok := userInList(s.Where, userCol); ok {
		r := Route{Action: RouteOwners, Users: users}
		r.Merge, r.Reason = mergeSpec(s)
		if r.Reason != "" {
			r.Action = RouteDeny
		}
		return r
	}
	if allReplicated(s.From, cat) {
		return Route{Action: RouteAny}
	}
	if reason := scatterUnsupported(s); reason != "" {
		return Route{Action: RouteDeny, Reason: reason}
	}
	r := Route{Action: RouteScatter}
	r.Merge, r.Reason = mergeSpec(s)
	if r.Reason != "" {
		r.Action = RouteDeny
	}
	return r
}

// classifyInsert routes an INSERT: rows with user keys go to their
// owners (split across shards when they differ); rows into tables
// without the user column replicate everywhere.
func classifyInsert(s *sql.Insert, userCol string, cat catalog) Route {
	idx, known, err := userColumnIndex(s, userCol, cat)
	if err != nil {
		return Route{Action: RouteDeny, Reason: err.Error()}
	}
	if !known {
		// No user column: a replicated table (items, cities, ...).
		return Route{Action: RouteBroadcast}
	}
	users := make([]int64, len(s.Rows))
	uniform := true
	for i, row := range s.Rows {
		if idx >= len(row) {
			return Route{Action: RouteDeny,
				Reason: fmt.Sprintf("INSERT row %d has %d values but the %s column is position %d", i+1, len(row), userCol, idx+1)}
		}
		u, ok := intLiteral(row[idx])
		if !ok {
			return Route{Action: RouteDeny,
				Reason: fmt.Sprintf("INSERT row %d: the %s value must be an integer literal for routing", i+1, userCol)}
		}
		users[i] = u
		if u != users[0] {
			uniform = false
		}
	}
	if uniform {
		return Route{Action: RouteOwner, User: users[0]}
	}
	return Route{Action: RouteSplit, Insert: &InsertPlan{Stmt: s, RowUsers: users}}
}

// classifyWrite routes UPDATE/DELETE: user-key equality to the owner, a
// user IN list to the owners (summing counts), otherwise to every shard
// — each applies it to its local slice of a partitioned table, or to
// its full copy of a replicated one.
func classifyWrite(table string, where sql.Expr, userCol string, cat catalog) Route {
	if user, ok := userEquality(where, userCol); ok {
		return Route{Action: RouteOwner, User: user}
	}
	part, known := cat.partitioned(table)
	sum := known && part
	if users, ok := userInList(where, userCol); ok {
		return Route{Action: RouteOwners, Users: users, Sum: true}
	}
	return Route{Action: RouteBroadcast, Sum: sum}
}

// scatterUnsupported names the reason a cross-shard read cannot merge
// correctly at the router, or "" when it can.
func scatterUnsupported(s *sql.Select) string {
	const hint = "; add a user-key predicate to pin the statement to one shard"
	if len(s.GroupBy) > 0 || s.Having != nil {
		return "cross-shard GROUP BY/HAVING is not supported (partial groups cannot be merged at the router)" + hint
	}
	if s.Distinct {
		return "cross-shard DISTINCT is not supported" + hint
	}
	for _, item := range s.Items {
		if item.Expr != nil && containsAggregate(item.Expr) {
			return "cross-shard aggregation is not supported (partial aggregates cannot be merged at the router)" + hint
		}
	}
	return ""
}

// mergeSpec derives the router-side merge from ORDER BY/LIMIT/OFFSET.
// The second result is a deny reason when the clause cannot be merged.
func mergeSpec(s *sql.Select) (*MergeSpec, string) {
	m := &MergeSpec{Limit: -1, Offset: -1}
	for _, o := range s.OrderBy {
		col, ok := o.Expr.(*sql.ColumnRef)
		if !ok {
			return nil, "cross-shard ORDER BY on an expression is not supported; order by a plain column or add a user-key predicate"
		}
		m.Keys = append(m.Keys, MergeKey{Col: strings.ToLower(col.Name), Desc: o.Desc})
	}
	if s.Limit != nil {
		n, ok := intLiteral(s.Limit)
		if !ok {
			return nil, "cross-shard LIMIT must be an integer literal"
		}
		m.Limit = n
	}
	if s.Offset != nil {
		n, ok := intLiteral(s.Offset)
		if !ok {
			return nil, "cross-shard OFFSET must be an integer literal"
		}
		m.Offset = n
	}
	if len(m.Keys) == 0 && m.Limit < 0 && m.Offset < 0 {
		return nil, ""
	}
	return m, ""
}

// allReplicated reports whether every FROM table is known to be
// replicated (schema learned, no user column), so any one shard can
// answer the read alone.
func allReplicated(from []sql.TableRef, cat catalog) bool {
	if len(from) == 0 {
		return false
	}
	for _, t := range from {
		part, known := cat.partitioned(t.Table)
		if !known || part {
			return false
		}
	}
	return true
}

// userColumnIndex locates the user column in an INSERT's value rows:
// by name when columns are listed, by the learned CREATE TABLE schema
// when positional. known=false means the table has no user column (a
// replicated table). An unknown table with positional values cannot be
// routed and errors.
func userColumnIndex(s *sql.Insert, userCol string, cat catalog) (idx int, known bool, err error) {
	if len(s.Cols) > 0 {
		for i, c := range s.Cols {
			if strings.EqualFold(c, userCol) {
				return i, true, nil
			}
		}
		return 0, false, nil
	}
	cols, ok := cat.columns(s.Table)
	if !ok {
		return 0, false, fmt.Errorf("router cannot route a positional INSERT into %q: its schema was not created through the router; name the columns (INSERT INTO %s (...) VALUES ...) or replay the CREATE TABLE", s.Table, s.Table)
	}
	for i, c := range cols {
		if c == userCol {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// conjuncts flattens an AND tree into its conjunct list.
func conjuncts(e sql.Expr, out []sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return conjuncts(b.R, conjuncts(b.L, out))
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}

// userEquality finds a `userCol = <int literal>` conjunct (either
// operand order, any qualifier).
func userEquality(where sql.Expr, userCol string) (int64, bool) {
	for _, c := range conjuncts(where, nil) {
		b, ok := c.(*sql.Binary)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		if isUserCol(b.L, userCol) {
			if v, ok := intLiteral(b.R); ok {
				return v, true
			}
		}
		if isUserCol(b.R, userCol) {
			if v, ok := intLiteral(b.L); ok {
				return v, true
			}
		}
	}
	return 0, false
}

// userInList finds a `userCol IN (int literals...)` conjunct and
// returns the distinct users sorted ascending.
func userInList(where sql.Expr, userCol string) ([]int64, bool) {
	for _, c := range conjuncts(where, nil) {
		in, ok := c.(*sql.In)
		if !ok || in.Negate || !isUserCol(in.X, userCol) {
			continue
		}
		seen := make(map[int64]bool, len(in.List))
		users := make([]int64, 0, len(in.List))
		allLits := true
		for _, e := range in.List {
			v, ok := intLiteral(e)
			if !ok {
				allLits = false
				break
			}
			if !seen[v] {
				seen[v] = true
				users = append(users, v)
			}
		}
		if allLits && len(users) > 0 {
			sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
			return users, true
		}
	}
	return nil, false
}

func isUserCol(e sql.Expr, userCol string) bool {
	c, ok := e.(*sql.ColumnRef)
	return ok && strings.EqualFold(c.Name, userCol)
}

// intLiteral unwraps an integer literal (including a unary minus).
func intLiteral(e sql.Expr) (int64, bool) {
	switch v := e.(type) {
	case *sql.Literal:
		return v.Value.AsInt()
	case *sql.Unary:
		if v.Op == "-" {
			if n, ok := intLiteral(v.X); ok {
				return -n, true
			}
		}
	}
	return 0, false
}

// containsAggregate walks an expression for COUNT/SUM/AVG/MIN/MAX calls.
func containsAggregate(e sql.Expr) bool {
	switch v := e.(type) {
	case *sql.Call:
		switch strings.ToLower(v.Name) {
		case "count", "sum", "avg", "min", "max":
			return true
		}
		for _, a := range v.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sql.Binary:
		return containsAggregate(v.L) || containsAggregate(v.R)
	case *sql.Unary:
		return containsAggregate(v.X)
	case *sql.In:
		if containsAggregate(v.X) {
			return true
		}
		for _, item := range v.List {
			if containsAggregate(item) {
				return true
			}
		}
	case *sql.IsNull:
		return containsAggregate(v.X)
	case *sql.Like:
		return containsAggregate(v.X) || containsAggregate(v.Pattern)
	case *sql.Between:
		return containsAggregate(v.X) || containsAggregate(v.Lo) || containsAggregate(v.Hi)
	}
	return false
}

// renderInsert renders the sub-INSERT carrying the given row indices of
// a split statement, preserving column list and value expressions.
func renderInsert(s *sql.Insert, rows []int) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(s.Table)
	if len(s.Cols) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(s.Cols, ", "))
		sb.WriteString(")")
	}
	sb.WriteString(" VALUES ")
	for i, ri := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, e := range s.Rows[ri] {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(sql.ExprString(e))
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// compareRows orders two result rows under the merge keys (resolved to
// column indices); ties break by shard index for determinism.
func compareRows(a, b types.Row, keys []resolvedKey) int {
	for _, k := range keys {
		if k.idx >= len(a) || k.idx >= len(b) {
			continue
		}
		c, err := types.Compare(a[k.idx], b[k.idx])
		if err != nil {
			continue // incomparable kinds keep input order
		}
		if c != 0 {
			if k.desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// resolvedKey is a MergeKey bound to a result-column index.
type resolvedKey struct {
	idx  int
	desc bool
}

// resolveKeys binds merge keys to result columns by (case-insensitive)
// name; ok=false when a key column is missing from the result, in which
// case the merge falls back to concatenation.
func resolveKeys(keys []MergeKey, cols []string) ([]resolvedKey, bool) {
	out := make([]resolvedKey, 0, len(keys))
	for _, k := range keys {
		found := -1
		for i, c := range cols {
			if strings.EqualFold(c, k.Col) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		out = append(out, resolvedKey{idx: found, desc: k.Desc})
	}
	return out, true
}
