package shard

import (
	"strings"
	"testing"

	"recdb/internal/sql"
)

// fakeCatalog is a route-test schema: ratings/users carry uid, items is
// replicated, anything else is unknown.
type fakeCatalog struct{}

func (fakeCatalog) columns(table string) ([]string, bool) {
	switch strings.ToLower(table) {
	case "ratings":
		return []string{"uid", "iid", "ratingval"}, true
	case "users":
		return []string{"uid", "name"}, true
	case "items":
		return []string{"iid", "name"}, true
	}
	return nil, false
}

func (fakeCatalog) partitioned(table string) (bool, bool) {
	switch strings.ToLower(table) {
	case "ratings", "users":
		return true, true
	case "items":
		return false, true
	}
	return false, false
}

func classifyText(t *testing.T, text string) Route {
	t.Helper()
	stmt, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return classify(stmt, "uid", fakeCatalog{})
}

func TestClassifyUserPointRead(t *testing.T) {
	r := classifyText(t, `SELECT iid FROM ratings WHERE uid = 7 AND ratingval > 3`)
	if r.Action != RouteOwner || r.User != 7 {
		t.Fatalf("got %+v, want RouteOwner user 7", r)
	}
	// Either operand order pins it.
	r = classifyText(t, `SELECT iid FROM ratings WHERE 7 = uid`)
	if r.Action != RouteOwner || r.User != 7 {
		t.Fatalf("reversed operands: got %+v", r)
	}
}

func TestClassifyRecommendUsesClauseUserColumn(t *testing.T) {
	// The RECOMMEND clause names its user column; routing must follow it
	// even when it differs from the configured default.
	stmt, err := sql.Parse(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.userid ON R.ratingval USING ItemCosCF
		WHERE R.userid = 42`)
	if err != nil {
		t.Fatal(err)
	}
	r := classify(stmt, "uid", fakeCatalog{})
	if r.Action != RouteOwner || r.User != 42 {
		t.Fatalf("got %+v, want RouteOwner user 42 via the RECOMMEND clause's column", r)
	}
}

func TestClassifyUserInList(t *testing.T) {
	r := classifyText(t, `SELECT iid FROM ratings WHERE uid IN (3, 1, 2, 1) ORDER BY ratingval DESC LIMIT 5`)
	if r.Action != RouteOwners {
		t.Fatalf("got %+v, want RouteOwners", r)
	}
	want := []int64{1, 2, 3}
	if len(r.Users) != len(want) {
		t.Fatalf("users = %v, want %v", r.Users, want)
	}
	for i := range want {
		if r.Users[i] != want[i] {
			t.Fatalf("users = %v, want %v", r.Users, want)
		}
	}
	if r.Merge == nil || len(r.Merge.Keys) != 1 || r.Merge.Keys[0].Col != "ratingval" ||
		!r.Merge.Keys[0].Desc || r.Merge.Limit != 5 {
		t.Fatalf("merge = %+v", r.Merge)
	}
}

func TestClassifyReplicatedOnlyReadRoutesAny(t *testing.T) {
	r := classifyText(t, `SELECT name FROM items WHERE iid = 9`)
	if r.Action != RouteAny {
		t.Fatalf("got %+v, want RouteAny", r)
	}
}

func TestClassifyScatterWithOrderedMerge(t *testing.T) {
	r := classifyText(t, `SELECT uid, ratingval FROM ratings ORDER BY ratingval DESC, uid LIMIT 10 OFFSET 2`)
	if r.Action != RouteScatter {
		t.Fatalf("got %+v, want RouteScatter", r)
	}
	m := r.Merge
	if m == nil || len(m.Keys) != 2 || m.Keys[0].Col != "ratingval" || !m.Keys[0].Desc ||
		m.Keys[1].Col != "uid" || m.Keys[1].Desc || m.Limit != 10 || m.Offset != 2 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestClassifyDenies(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT uid, COUNT(*) FROM ratings GROUP BY uid`, "GROUP BY"},
		{`SELECT DISTINCT uid FROM ratings`, "DISTINCT"},
		{`SELECT SUM(ratingval) FROM ratings`, "aggregation"},
		{`BEGIN`, "transactions"},
		{`SELECT uid FROM ratings ORDER BY uid + 1`, "expression"},
	}
	for _, c := range cases {
		r := classifyText(t, c.sql)
		if r.Action != RouteDeny {
			t.Errorf("%s: got action %v, want RouteDeny", c.sql, r.Action)
			continue
		}
		if !strings.Contains(r.Reason, c.want) {
			t.Errorf("%s: reason %q does not mention %q", c.sql, r.Reason, c.want)
		}
	}
	// But the same shapes pinned to one user are fine.
	r := classifyText(t, `SELECT SUM(ratingval) FROM ratings WHERE uid = 3`)
	if r.Action != RouteOwner {
		t.Fatalf("user-pinned aggregate: got %+v, want RouteOwner", r)
	}
}

func TestClassifyInsert(t *testing.T) {
	// Uniform user: one owner.
	r := classifyText(t, `INSERT INTO ratings VALUES (5, 1, 4.0), (5, 2, 3.0)`)
	if r.Action != RouteOwner || r.User != 5 {
		t.Fatalf("uniform insert: got %+v", r)
	}
	// Mixed users: split.
	r = classifyText(t, `INSERT INTO ratings (uid, iid, ratingval) VALUES (5, 1, 4.0), (6, 1, 2.0)`)
	if r.Action != RouteSplit || r.Insert == nil {
		t.Fatalf("mixed insert: got %+v", r)
	}
	if len(r.Insert.RowUsers) != 2 || r.Insert.RowUsers[0] != 5 || r.Insert.RowUsers[1] != 6 {
		t.Fatalf("row users = %v", r.Insert.RowUsers)
	}
	// No user column: replicated broadcast.
	r = classifyText(t, `INSERT INTO items VALUES (1, 'film')`)
	if r.Action != RouteBroadcast {
		t.Fatalf("replicated insert: got %+v", r)
	}
	// Positional insert into an unknown table cannot be routed.
	r = classifyText(t, `INSERT INTO mystery VALUES (1, 2)`)
	if r.Action != RouteDeny || !strings.Contains(r.Reason, "mystery") {
		t.Fatalf("unknown-table insert: got %+v", r)
	}
	// Non-literal user value cannot be routed.
	r = classifyText(t, `INSERT INTO ratings (uid, iid, ratingval) VALUES (1 + 1, 2, 3.0)`)
	if r.Action != RouteDeny {
		t.Fatalf("computed user insert: got %+v", r)
	}
}

func TestClassifyWrite(t *testing.T) {
	r := classifyText(t, `DELETE FROM ratings WHERE uid = 9`)
	if r.Action != RouteOwner || r.User != 9 {
		t.Fatalf("owner delete: got %+v", r)
	}
	r = classifyText(t, `UPDATE ratings SET ratingval = 1.0 WHERE uid IN (1, 2)`)
	if r.Action != RouteOwners || !r.Sum {
		t.Fatalf("owners update: got %+v", r)
	}
	// Partitioned table, no user predicate: broadcast summing disjoint
	// per-shard counts.
	r = classifyText(t, `DELETE FROM ratings WHERE ratingval < 1`)
	if r.Action != RouteBroadcast || !r.Sum {
		t.Fatalf("partitioned broadcast delete: got %+v", r)
	}
	// Replicated table: every shard reports the same count; take one.
	r = classifyText(t, `DELETE FROM items WHERE iid = 4`)
	if r.Action != RouteBroadcast || r.Sum {
		t.Fatalf("replicated broadcast delete: got %+v", r)
	}
}

func TestClassifyDDLBroadcasts(t *testing.T) {
	for _, text := range []string{
		`CREATE TABLE t (uid INT, x INT)`,
		`DROP TABLE ratings`,
		`CREATE INDEX ix ON ratings (iid)`,
		`CREATE RECOMMENDER rec ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`,
		`DROP RECOMMENDER rec`,
	} {
		if r := classifyText(t, text); r.Action != RouteBroadcast {
			t.Errorf("%s: got %+v, want RouteBroadcast", text, r)
		}
	}
}

func TestRenderInsertSubset(t *testing.T) {
	stmt, err := sql.Parse(`INSERT INTO ratings (uid, iid, ratingval) VALUES (1, 10, 4.5), (2, 20, 3.0), (1, 30, -2.0)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*sql.Insert)
	got := renderInsert(ins, []int{0, 2})
	reparsed, err := sql.Parse(got)
	if err != nil {
		t.Fatalf("rendered %q does not reparse: %v", got, err)
	}
	sub := reparsed.(*sql.Insert)
	if sub.Table != "ratings" || len(sub.Cols) != 3 || len(sub.Rows) != 2 {
		t.Fatalf("rendered %q -> %+v", got, sub)
	}
	if u, _ := intLiteral(sub.Rows[1][0]); u != 1 {
		t.Fatalf("second sub-row user = %v, want 1 (row order preserved)", sub.Rows[1][0])
	}
	if v, _ := intLiteral(sub.Rows[1][2]); v != -2 {
		t.Fatalf("negative literal lost: %q", got)
	}
}
