package shard

import (
	"testing"

	"recdb/client"
	"recdb/internal/types"
)

func rowsOf(cols []string, tuples ...[]any) *client.Rows {
	out := make([]types.Row, len(tuples))
	for i, t := range tuples {
		row := make(types.Row, len(t))
		for j, v := range t {
			switch x := v.(type) {
			case int:
				row[j] = types.NewInt(int64(x))
			case float64:
				row[j] = types.NewFloat(x)
			case string:
				row[j] = types.NewText(x)
			default:
				panic("unsupported fixture type")
			}
		}
		out[i] = row
	}
	return client.NewRows(cols, "", out)
}

func scores(res result) []float64 {
	out := make([]float64, len(res.rows))
	for i, r := range res.rows {
		f, _ := r[1].AsFloat()
		out[i] = f
	}
	return out
}

func TestMergeConcatWithoutKeys(t *testing.T) {
	cols := []string{"iid", "score"}
	res := mergeParts([]*client.Rows{
		rowsOf(cols, []any{1, 5.0}),
		nil, // a shard with no answer (e.g. skipped) just contributes nothing
		rowsOf(cols, []any{2, 1.0}, []any{3, 9.0}),
	}, nil)
	if !res.isRows || len(res.rows) != 3 {
		t.Fatalf("got %d rows", len(res.rows))
	}
	got := scores(res)
	want := []float64{5.0, 1.0, 9.0} // shard order, not score order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concat order: got %v, want %v", got, want)
		}
	}
}

func TestMergeOrderedTopK(t *testing.T) {
	cols := []string{"iid", "score"}
	// Each shard answers in DESC score order already, as the statement's
	// own ORDER BY guarantees.
	parts := []*client.Rows{
		rowsOf(cols, []any{1, 9.0}, []any{2, 4.0}, []any{3, 1.0}),
		rowsOf(cols, []any{4, 8.0}, []any{5, 7.0}),
		rowsOf(cols, []any{6, 5.0}, []any{7, 2.0}),
	}
	spec := &MergeSpec{Keys: []MergeKey{{Col: "score", Desc: true}}, Limit: 4, Offset: -1}
	res := mergeParts(parts, spec)
	got := scores(res)
	want := []float64{9.0, 8.0, 7.0, 5.0}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged order: got %v, want %v", got, want)
		}
	}
}

func TestMergeOffsetAppliesAfterMerge(t *testing.T) {
	cols := []string{"iid", "score"}
	parts := []*client.Rows{
		rowsOf(cols, []any{1, 1.0}, []any{3, 3.0}),
		rowsOf(cols, []any{2, 2.0}, []any{4, 4.0}),
	}
	spec := &MergeSpec{Keys: []MergeKey{{Col: "score"}}, Limit: 2, Offset: 1}
	res := mergeParts(parts, spec)
	got := scores(res)
	want := []float64{2.0, 3.0} // global offset 1, not per-shard
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeTieBreaksByShardIndex(t *testing.T) {
	cols := []string{"iid", "score"}
	parts := []*client.Rows{
		rowsOf(cols, []any{10, 5.0}),
		rowsOf(cols, []any{20, 5.0}),
	}
	spec := &MergeSpec{Keys: []MergeKey{{Col: "score", Desc: true}}, Limit: -1, Offset: -1}
	res := mergeParts(parts, spec)
	a, _ := res.rows[0][0].AsInt()
	b, _ := res.rows[1][0].AsInt()
	if a != 10 || b != 20 {
		t.Fatalf("tie order: got %d, %d — the lower shard index must win", a, b)
	}
}

func TestMergeMissingKeyColumnFallsBackToConcat(t *testing.T) {
	cols := []string{"iid"}
	parts := []*client.Rows{
		rowsOf(cols, []any{2}),
		rowsOf(cols, []any{1}),
	}
	spec := &MergeSpec{Keys: []MergeKey{{Col: "score"}}, Limit: -1, Offset: -1}
	res := mergeParts(parts, spec)
	a, _ := res.rows[0][0].AsInt()
	if len(res.rows) != 2 || a != 2 {
		t.Fatalf("fallback concat: got %+v", res.rows)
	}
}

func TestMergeEmptyParts(t *testing.T) {
	res := mergeParts([]*client.Rows{nil, nil}, nil)
	if !res.isRows || len(res.rows) != 0 {
		t.Fatalf("got %+v", res)
	}
}
