package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"recdb"
	"recdb/client"
	"recdb/internal/metrics"
	"recdb/internal/server"
	"recdb/internal/shard"
)

// startShard serves an in-memory engine on loopback and returns its
// address.
func startShard(t *testing.T) string {
	t.Helper()
	db := recdb.Open()
	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		db.Close()
	})
	return ln.Addr().String()
}

// startRouter builds a router over the given shard addresses, serves it
// on loopback, and returns it with a connected client.
func startRouter(t *testing.T, opts shard.Options) (*shard.Router, *client.Conn) {
	t.Helper()
	r, err := shard.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
	})
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return r, c
}

func cluster(t *testing.T, n int) (*shard.Router, *client.Conn) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startShard(t)
	}
	return startRouter(t, shard.Options{Shards: addrs})
}

func counter(snap metrics.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func gauge(snap metrics.Snapshot, name string) int64 {
	for _, g := range snap.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

const seedDDL = `CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
	CREATE TABLE items (iid INT, name TEXT)`

func TestRouterPartitionsByUser(t *testing.T) {
	r, c := cluster(t, 2)
	ctx := context.Background()

	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	// 40 users, one rating each, inserted one statement at a time so
	// every row takes the owner route.
	for u := 0; u < 40; u++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO ratings VALUES (%d, 1, 4.0)", u)); err != nil {
			t.Fatal(err)
		}
	}

	snap := r.Metrics()
	s0, s1 := counter(snap, "shard.0.routed"), counter(snap, "shard.1.routed")
	if s0+s1 < 40 {
		t.Fatalf("routed %d+%d statements, want >= 40", s0, s1)
	}
	if s0 == 0 || s1 == 0 {
		t.Fatalf("partitioning is degenerate: shard0=%d shard1=%d", s0, s1)
	}

	// Each user's read answers its own row, wherever it lives.
	for u := 0; u < 40; u++ {
		rows, err := c.Query(ctx, fmt.Sprintf("SELECT uid FROM ratings WHERE uid = %d", u))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 1 {
			t.Fatalf("user %d: %d rows, want 1", u, rows.Len())
		}
	}

	// The shards hold disjoint partitions: per-shard totals sum to 40.
	var total int64
	for _, addr := range r.Shards() {
		sc, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sc.Query(ctx, "SELECT uid FROM ratings")
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() == 0 || rows.Len() == 40 {
			t.Fatalf("shard %s holds %d of 40 rows — not partitioned", addr, rows.Len())
		}
		total += int64(rows.Len())
		_ = sc.Close()
	}
	if total != 40 {
		t.Fatalf("shards hold %d rows total, want 40", total)
	}
}

func TestRouterSplitInsertAndScatterMerge(t *testing.T) {
	r, c := cluster(t, 3)
	ctx := context.Background()

	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO ratings VALUES ")
	for u := 0; u < 30; u++ {
		if u > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d.5)", u, u%7, u%5)
	}
	res, err := c.Exec(ctx, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 30 {
		t.Fatalf("split insert affected %d rows, want 30", res.RowsAffected)
	}
	if n := counter(r.Metrics(), "shard.split_inserts"); n != 1 {
		t.Fatalf("split_inserts = %d, want 1", n)
	}

	// Cross-shard top-k: the merged stream must be globally ordered and
	// exactly k long.
	rows, err := c.Query(ctx, "SELECT uid, ratingval FROM ratings ORDER BY ratingval DESC, uid LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 7 {
		t.Fatalf("top-7 returned %d rows", rows.Len())
	}
	prev := 1e18
	prevUID := int64(-1)
	for rows.Next() {
		var uid int64
		var score float64
		if err := rows.Scan(&uid, &score); err != nil {
			t.Fatal(err)
		}
		if score > prev || (score == prev && uid < prevUID) {
			t.Fatalf("merge out of order: (%d, %v) after (%d, %v)", uid, score, prevUID, prev)
		}
		prev, prevUID = score, uid
	}
	if n := counter(r.Metrics(), "shard.scatter"); n == 0 {
		t.Fatal("scatter counter did not move")
	}

	// An unordered scatter concatenates every shard's rows.
	rows, err = c.Query(ctx, "SELECT uid FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 30 {
		t.Fatalf("full scatter returned %d rows, want 30", rows.Len())
	}
}

func TestRouterReplicatesDDLAndBroadcastTables(t *testing.T) {
	r, c := cluster(t, 2)
	ctx := context.Background()

	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	// items has no user column: its rows replicate to every shard.
	if _, err := c.Exec(ctx, "INSERT INTO items VALUES (1, 'a'), (2, 'b')"); err != nil {
		t.Fatal(err)
	}
	for _, addr := range r.Shards() {
		sc, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sc.Query(ctx, "SELECT iid FROM items")
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 2 {
			t.Fatalf("shard %s holds %d items rows, want the full copy (2)", addr, rows.Len())
		}
		_ = sc.Close()
	}

	// A replicated-only read is answered by one shard, not a fan-out.
	before := counter(r.Metrics(), "shard.fanout")
	rows, err := c.Query(ctx, "SELECT name FROM items WHERE iid = 2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("replicated read returned %d rows", rows.Len())
	}
	if after := counter(r.Metrics(), "shard.fanout"); after != before {
		t.Fatal("replicated-only read fanned out")
	}

	// Replicated DELETE reports one copy's count, not the sum.
	res, err := c.Exec(ctx, "DELETE FROM items WHERE iid = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("replicated delete affected %d, want 1 (not the per-shard sum)", res.RowsAffected)
	}
}

func TestRouterBuildsModelsOnEveryShard(t *testing.T) {
	r, c := cluster(t, 2)
	ctx := context.Background()

	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 24; u++ {
		stmt := fmt.Sprintf("INSERT INTO ratings VALUES (%d, %d, %d.0), (%d, %d, %d.0)",
			u, u%6, 1+u%5, u, (u+1)%6, 1+(u+2)%5)
		if _, err := c.Exec(ctx, stmt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec(ctx, `CREATE RECOMMENDER rec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		t.Fatal(err)
	}

	// Every shard must own a model artifact over its local partition: a
	// RECOMMEND against each shard directly answers with a plan.
	for _, addr := range r.Shards() {
		sc, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sc.Query(ctx, `SELECT R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
			WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 3`)
		if err != nil {
			t.Fatalf("shard %s: %v", addr, err)
		}
		if rows.Strategy() == "" {
			t.Fatalf("shard %s answered without a recommender plan", addr)
		}
		_ = sc.Close()
	}

	// And through the router the per-user RECOMMEND routes to one owner.
	before := counter(r.Metrics(), "shard.routed_user")
	rows, err := c.Query(ctx, `SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 3 ORDER BY R.ratingval DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Strategy() == "" {
		t.Fatal("routed RECOMMEND lost its plan strategy")
	}
	if after := counter(r.Metrics(), "shard.routed_user"); after != before+1 {
		t.Fatalf("RECOMMEND did not take the owner route (%d -> %d)", before, after)
	}
}

func TestRouterDeniesWithTypedErrors(t *testing.T) {
	r, c := cluster(t, 2)
	ctx := context.Background()
	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}

	for _, stmt := range []string{
		"SELECT uid, COUNT(*) FROM ratings GROUP BY uid",
		"BEGIN",
	} {
		_, err := c.Query(ctx, stmt)
		if stmt == "BEGIN" {
			_, err = c.Exec(ctx, stmt)
		}
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != "query" {
			t.Fatalf("%s: got %v, want a typed query error", stmt, err)
		}
	}
	if n := counter(r.Metrics(), "shard.denied"); n < 2 {
		t.Fatalf("denied = %d, want >= 2", n)
	}

	// A query error from the shard itself passes through untouched.
	_, err := c.Query(ctx, "SELECT nope FROM ratings WHERE uid = 1")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "query" {
		t.Fatalf("shard query error: got %v", err)
	}
}

func TestRouterUserTablesOptionSeedsCatalog(t *testing.T) {
	addrs := []string{startShard(t), startShard(t)}
	_, c := startRouter(t, shard.Options{Shards: addrs, UserTables: []string{"ratings"}})
	ctx := context.Background()

	// Create the schema directly on the shards, bypassing the router's
	// DDL learning; UserTables must still mark ratings partitioned.
	for _, addr := range addrs {
		sc, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Exec(ctx, "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)"); err != nil {
			t.Fatal(err)
		}
		_ = sc.Close()
	}
	// Partitioned-table write without a user predicate: counts must sum.
	if _, err := c.Exec(ctx, "INSERT INTO ratings (uid, iid, ratingval) VALUES (1, 1, 1.0)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(ctx, "DELETE FROM ratings WHERE ratingval > 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("partitioned delete affected %d, want the summed 1", res.RowsAffected)
	}
}

func TestRouterPoolGaugeAndPing(t *testing.T) {
	r, c := cluster(t, 2)
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	snap := r.Metrics()
	if g := gauge(snap, "shard.0.pool_conns"); g < 1 {
		t.Fatalf("shard.0.pool_conns = %d, want >= 1 after traffic", g)
	}
	if g := gauge(snap, "shard.0.up"); g != 1 {
		t.Fatalf("shard.0.up = %d, want 1", g)
	}
}
