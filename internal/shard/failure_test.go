package shard_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"recdb/client"
	"recdb/internal/shard"
)

// flakyProxy sits between the router and one shard so tests can kill
// the shard's network mid-query: stall() holds responses in flight,
// kill() severs every connection and refuses new ones, revive() heals.
type flakyProxy struct {
	ln      net.Listener
	backend string

	mu      sync.Mutex
	down    bool
	stalled bool
	release chan struct{} // closed to lift a stall
	conns   map[net.Conn]struct{}
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend,
		release: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			_ = c.Close()
			continue
		}
		p.mu.Unlock()
		go p.pipe(c)
	}
}

func (p *flakyProxy) pipe(c net.Conn) {
	b, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = c.Close()
		return
	}
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		_ = c.Close()
		_ = b.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.conns[b] = struct{}{}
	p.mu.Unlock()
	go func() {
		_, _ = io.Copy(b, c) // requests flow freely
		_ = b.Close()
	}()
	// Responses honor the stall gate, so a test can guarantee a query is
	// in flight when the kill lands.
	buf := make([]byte, 4096)
	for {
		n, err := b.Read(buf)
		if n > 0 {
			p.gate()
			if _, werr := c.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	_ = c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	delete(p.conns, b)
	p.mu.Unlock()
}

// gate blocks while the proxy is stalled.
func (p *flakyProxy) gate() {
	for {
		p.mu.Lock()
		if !p.stalled {
			p.mu.Unlock()
			return
		}
		ch := p.release
		p.mu.Unlock()
		<-ch
	}
}

// stall holds all responses in flight until kill or revive.
func (p *flakyProxy) stall() {
	p.mu.Lock()
	p.stalled = true
	p.mu.Unlock()
}

// kill severs every live connection and refuses new ones: the shard is
// down as far as the router can tell.
func (p *flakyProxy) kill() {
	p.mu.Lock()
	p.down = true
	p.stalled = false
	close(p.release)
	p.release = make(chan struct{})
	for c := range p.conns {
		_ = c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// revive lets connections through again.
func (p *flakyProxy) revive() {
	p.mu.Lock()
	p.down = false
	if p.stalled {
		p.stalled = false
		close(p.release)
		p.release = make(chan struct{})
	}
	p.mu.Unlock()
}

// proxiedCluster is two healthy shards with the second reachable only
// through a flaky proxy, plus a router over them with fast retries.
func proxiedCluster(t *testing.T) (*shard.Router, *client.Conn, *flakyProxy) {
	t.Helper()
	direct := startShard(t)
	backend := startShard(t)
	proxy := newFlakyProxy(t, backend)
	r, c := startRouterWith(t, shard.Options{
		Shards:         []string{direct, proxy.addr()},
		Retries:        2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
	})
	return r, c, proxy
}

func startRouterWith(t *testing.T, opts shard.Options) (*shard.Router, *client.Conn) {
	t.Helper()
	return startRouter(t, opts)
}

// shardUser finds a user id owned by the given shard by watching the
// per-shard routed counter move.
func shardUser(t *testing.T, r *shard.Router, c *client.Conn, shardIdx int) int64 {
	t.Helper()
	name := fmt.Sprintf("shard.%d.routed", shardIdx)
	for u := int64(0); u < 64; u++ {
		before := counter(r.Metrics(), name)
		if _, err := c.Query(context.Background(),
			fmt.Sprintf("SELECT uid FROM ratings WHERE uid = %d", u)); err != nil {
			t.Fatal(err)
		}
		if counter(r.Metrics(), name) > before {
			return u
		}
	}
	t.Fatalf("no user in [0,64) routed to shard %d", shardIdx)
	return 0
}

func isShardDown(err error) bool {
	var se *client.ServerError
	return errors.As(err, &se) && se.Code == "shard_down"
}

func TestShardDeathMidQuery(t *testing.T) {
	r, c, proxy := proxiedCluster(t)
	ctx := context.Background()
	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	victim := shardUser(t, r, c, 1)
	survivor := shardUser(t, r, c, 0)

	// Hold the victim's response in flight, then sever the shard under
	// the running query.
	proxy.stall()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, fmt.Sprintf("SELECT uid FROM ratings WHERE uid = %d", victim))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // the query is now stalled in the proxy
	proxy.kill()

	if err := <-errc; !isShardDown(err) {
		t.Fatalf("mid-query kill: got %v, want a typed shard_down error", err)
	}
	// The healthy shard keeps serving the same session.
	if _, err := c.Query(ctx, fmt.Sprintf("SELECT uid FROM ratings WHERE uid = %d", survivor)); err != nil {
		t.Fatalf("healthy shard stopped serving: %v", err)
	}
	if g := gauge(r.Metrics(), "shard.1.up"); g != 0 {
		t.Fatalf("shard.1.up = %d after kill, want 0", g)
	}
	if g := gauge(r.Metrics(), "shard.0.up"); g != 1 {
		t.Fatalf("shard.0.up = %d, want 1", g)
	}
}

func TestShardDeathMidFanout(t *testing.T) {
	r, c, proxy := proxiedCluster(t)
	ctx := context.Background()
	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO ratings VALUES (%d, 1, 2.0)", u)); err != nil {
			t.Fatal(err)
		}
	}

	// Sever the shard with a scatter-gather in flight: the stalled leg
	// dies mid-fan-out while the healthy leg has already answered.
	proxy.stall()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, "SELECT uid, ratingval FROM ratings ORDER BY ratingval DESC LIMIT 5")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	proxy.kill()
	if err := <-errc; !isShardDown(err) {
		t.Fatalf("mid-fan-out kill: got %v, want shard_down", err)
	}
	if n := counter(r.Metrics(), "shard.down_errors"); n == 0 {
		t.Fatal("down_errors did not move")
	}
	if n := counter(r.Metrics(), "shard.retries"); n == 0 {
		t.Fatal("retries did not move — the fan-out gave up without retrying")
	}

	// Statements that never need the dead shard keep working: writes to
	// users owned by the healthy shard, and replicated-only reads.
	survivor := shardUser(t, r, c, 0)
	if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO ratings VALUES (%d, 9, 1.0)", survivor)); err != nil {
		t.Fatalf("owner write to the healthy shard failed: %v", err)
	}
}

func TestShardRevivalHealthTransitions(t *testing.T) {
	r, c, proxy := proxiedCluster(t)
	ctx := context.Background()
	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	victim := shardUser(t, r, c, 1)

	proxy.kill()
	_, err := c.Query(ctx, fmt.Sprintf("SELECT uid FROM ratings WHERE uid = %d", victim))
	if !isShardDown(err) {
		t.Fatalf("got %v, want shard_down", err)
	}
	transAfterKill := counter(r.Metrics(), "shard.1.health_transitions")
	if transAfterKill == 0 {
		t.Fatal("no health transition recorded on kill")
	}

	// Revive and wait for the prober to flip the shard back up.
	proxy.revive()
	deadline := time.Now().Add(3 * time.Second)
	for gauge(r.Metrics(), "shard.1.up") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("shard.1.up never returned to 1 after revival")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := counter(r.Metrics(), "shard.1.health_transitions"); n <= transAfterKill {
		t.Fatalf("health_transitions stuck at %d after revival", n)
	}
	// Traffic flows again without touching the router or client.
	if _, err := c.Query(ctx, fmt.Sprintf("SELECT uid FROM ratings WHERE uid = %d", victim)); err != nil {
		t.Fatalf("revived shard still failing: %v", err)
	}
}

func TestWriteToDeadShardDoesNotBlindlyRetry(t *testing.T) {
	r, c, proxy := proxiedCluster(t)
	ctx := context.Background()
	if _, err := c.Exec(ctx, seedDDL); err != nil {
		t.Fatal(err)
	}
	victim := shardUser(t, r, c, 1)

	// Stall, then kill with the write in flight: the router cannot know
	// whether it landed, so it must fail shard_down rather than resend.
	proxy.stall()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO ratings VALUES (%d, 1, 3.0)", victim))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	proxy.kill()
	retriesBefore := counter(r.Metrics(), "shard.1.retries")
	if err := <-errc; !isShardDown(err) {
		t.Fatalf("in-flight write on killed shard: got %v, want shard_down", err)
	}
	if n := counter(r.Metrics(), "shard.1.retries"); n != retriesBefore {
		t.Fatalf("an in-flight write was retried (%d -> %d) — it may have double-applied", retriesBefore, n)
	}
}
