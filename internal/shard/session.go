package shard

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"recdb/client"
	"recdb/internal/sql"
	"recdb/internal/types"
	"recdb/internal/wire"
)

// pipelineDepth bounds how many decoded requests may sit between a
// front-end session's reader and worker, matching recdb-server's bound
// so clients see identical backpressure behind the router.
const pipelineDepth = 16

// request is one decoded Query or Exec frame awaiting routing.
type request struct {
	kind wire.Type
	req  wire.Request
}

// rsession is one client connection on the router's front end. It runs
// the same two-goroutine shape as a recdb-server session — a reader
// that answers Ping and Cancel immediately and a worker that executes
// requests one at a time in arrival order — but the worker routes each
// statement to backend shards instead of an embedded engine.
type rsession struct {
	r    *Router
	id   uint64
	conn net.Conn
	in   *trackReader
	out  *frameWriter
	reqs chan request

	mu        sync.Mutex
	pending   int
	curID     uint32
	curCancel context.CancelFunc
	draining  bool
}

func newRSession(r *Router, id uint64, conn net.Conn) *rsession {
	return &rsession{
		r:    r,
		id:   id,
		conn: conn,
		in:   &trackReader{r: conn},
		out:  newFrameWriter(conn, r.opts.WriteTimeout),
		reqs: make(chan request, pipelineDepth),
	}
}

// run drives the session to completion: handshake, then reader and
// worker until the connection ends.
func (s *rsession) run() {
	defer s.closeConn()
	if err := s.handshake(); err != nil {
		s.r.logf("session %d: %v", s.id, err)
		return
	}
	done := make(chan struct{})
	go func() {
		s.worker()
		close(done)
	}()
	s.reader()
	s.cancelCurrent()
	close(s.reqs)
	<-done
}

// handshake consumes the client's magic preamble and answers Hello.
func (s *rsession) handshake() error {
	_ = s.conn.SetReadDeadline(time.Now().Add(s.r.opts.IdleTimeout))
	var magic [len(wire.Magic)]byte
	if _, err := io.ReadFull(s.in, magic[:]); err != nil {
		return fmt.Errorf("reading magic: %w", err)
	}
	if string(magic[:]) != wire.Magic {
		_ = s.out.writeError(wire.ErrorMsg{Code: wire.CodeProtocol, Message: "bad protocol magic"})
		return errors.New("bad protocol magic")
	}
	return s.out.write(wire.TypeHello,
		wire.AppendHello(nil, wire.Hello{SessionID: s.id, Server: s.r.opts.Name}), true)
}

// reader decodes frames until the connection ends or breaks protocol,
// re-arming the idle deadline while a routed statement runs.
func (s *rsession) reader() {
	buf := make([]byte, 512)
	for {
		_ = s.conn.SetReadDeadline(time.Now().Add(s.r.opts.IdleTimeout))
		before := s.in.n
		t, payload, nbuf, err := wire.ReadFrame(s.in, buf)
		buf = nbuf
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && s.in.n == before && s.hasPending() {
				continue
			}
			var fe *wire.FrameError
			if errors.As(err, &fe) {
				_ = s.out.writeError(wire.ErrorMsg{Code: wire.CodeProtocol, Message: fe.Error()})
			}
			return
		}
		switch t {
		case wire.TypePing:
			id, err := wire.DecodeID(payload)
			if err != nil {
				s.protocolFault(err)
				return
			}
			// The router answers liveness itself; shard health is the
			// prober's job and is visible in the metrics.
			_ = s.out.write(wire.TypePong, wire.AppendID(nil, id), true)
		case wire.TypeCancel:
			id, err := wire.DecodeID(payload)
			if err != nil {
				s.protocolFault(err)
				return
			}
			s.cancelRequest(id)
		case wire.TypeQuery, wire.TypeExec:
			req, err := wire.DecodeRequest(payload)
			if err != nil {
				s.protocolFault(err)
				return
			}
			s.enqueue(request{kind: t, req: req})
		default:
			s.protocolFault(fmt.Errorf("unexpected frame type %q", byte(t)))
			return
		}
	}
}

// protocolFault answers a malformed frame; the caller then drops the
// connection, since framing state can no longer be trusted.
func (s *rsession) protocolFault(err error) {
	_ = s.out.writeError(wire.ErrorMsg{Code: wire.CodeProtocol, Message: err.Error()})
}

// enqueue hands a request to the worker, or answers it directly when
// the session is draining or the pipeline is full.
func (s *rsession) enqueue(r request) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeShutdown,
			Message: "router is shutting down"})
		return
	}
	if s.pending >= pipelineDepth {
		s.mu.Unlock()
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeBusy,
			Message: fmt.Sprintf("pipeline limit of %d requests reached", pipelineDepth)})
		return
	}
	s.pending++
	s.mu.Unlock()
	// Never blocks: pending (bounded above by pipelineDepth) counts every
	// request between enqueue and its finishRequest.
	s.reqs <- r
}

// worker executes requests in arrival order.
func (s *rsession) worker() {
	for r := range s.reqs {
		s.serve(r)
	}
}

// serve routes one request and writes its response frames. A panic is
// confined to this session, exactly as on recdb-server.
func (s *rsession) serve(r request) {
	defer s.finishRequest()
	defer func() {
		if p := recover(); p != nil {
			s.r.m.panics.Inc()
			s.r.logf("session %d: panic serving %q: %v", s.id, r.req.SQL, p)
			_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeInternal,
				Message: fmt.Sprintf("internal error: %v", p)})
			s.closeConn()
		}
	}()
	if s.isDraining() {
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeShutdown,
			Message: "router is shutting down"})
		return
	}
	ctx, cancel := s.beginRequest(r.req)
	defer s.endRequest(cancel)

	start := time.Now()
	script, err := sql.ParseScript(r.req.SQL)
	if err != nil {
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeQuery, Message: err.Error()})
		return
	}
	switch r.kind {
	case wire.TypeQuery:
		if len(script) != 1 {
			_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeQuery,
				Message: fmt.Sprintf("query must be a single statement, got %d", len(script))})
			return
		}
		res, err := s.r.execute(ctx, wire.TypeQuery, script[0].Text, script[0].Stmt)
		if err != nil {
			s.writeFailure(r.req.ID, err)
			return
		}
		if err := s.out.writeResult(r.req.ID, res); err != nil {
			return // connection-level failure; reader will notice too
		}
	case wire.TypeExec:
		var affected int64
		for _, st := range script {
			res, err := s.r.execute(ctx, wire.TypeExec, st.Text, st.Stmt)
			if err != nil {
				s.writeFailure(r.req.ID, err)
				return
			}
			affected += res.affected
		}
		if err := s.out.write(wire.TypeComplete,
			wire.AppendComplete(nil, wire.Complete{ID: r.req.ID, Rows: affected}), true); err != nil {
			return
		}
	}
	s.r.m.queries.Inc()
	s.r.m.queryNs.ObserveSince(start)
}

// beginRequest publishes the statement as cancellable and derives its
// context: the router's QueryTimeout, tightened — never loosened — by
// the request's own TimeoutMillis.
func (s *rsession) beginRequest(r wire.Request) (context.Context, context.CancelFunc) {
	timeout := s.r.opts.QueryTimeout
	if d := time.Duration(r.TimeoutMillis) * time.Millisecond; d > 0 && (timeout == 0 || d < timeout) {
		timeout = d
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	s.mu.Lock()
	s.curID, s.curCancel = r.ID, cancel
	s.mu.Unlock()
	return ctx, cancel
}

func (s *rsession) endRequest(cancel context.CancelFunc) {
	s.mu.Lock()
	s.curCancel = nil
	s.mu.Unlock()
	cancel()
}

// finishRequest retires one pending request; during a drain, the last
// answer closes the connection.
func (s *rsession) finishRequest() {
	s.mu.Lock()
	s.pending--
	closeNow := s.draining && s.pending == 0
	s.mu.Unlock()
	if closeNow {
		s.closeConn()
	}
}

// writeFailure answers a failed statement with a typed error code. A
// shard that stayed unreachable answers "shard_down"; an error the
// shard itself produced keeps the shard's own code, so busy/timeout/
// query verdicts pass through the router unchanged.
func (s *rsession) writeFailure(id uint32, err error) {
	var sde *ShardDownError
	var se *client.ServerError
	var de *denyError
	code := wire.CodeQuery
	msg := err.Error()
	switch {
	case errors.As(err, &sde):
		code = wire.CodeShardDown
	case errors.As(err, &se):
		code, msg = se.Code, se.Message
	case errors.As(err, &de):
		code = wire.CodeQuery
	case errors.Is(err, context.DeadlineExceeded):
		code = wire.CodeTimeout
	case errors.Is(err, context.Canceled):
		code = wire.CodeCanceled
	}
	_ = s.out.writeError(wire.ErrorMsg{ID: id, Code: code, Message: msg})
}

// cancelRequest interrupts the in-flight statement if it matches id.
func (s *rsession) cancelRequest(id uint32) {
	s.mu.Lock()
	cancel := s.curCancel
	match := cancel != nil && s.curID == id
	s.mu.Unlock()
	if match {
		cancel()
	}
}

// cancelCurrent interrupts whatever statement is running.
func (s *rsession) cancelCurrent() {
	s.mu.Lock()
	cancel := s.curCancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// beginDrain stops the session admitting requests; if none is pending
// the connection closes now, otherwise the worker closes it after the
// last pending answer.
func (s *rsession) beginDrain() {
	s.mu.Lock()
	s.draining = true
	idle := s.pending == 0
	s.mu.Unlock()
	if idle {
		s.closeConn()
	}
}

func (s *rsession) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *rsession) hasPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending > 0
}

// closeConn is safe to call from any goroutine, repeatedly.
func (s *rsession) closeConn() {
	_ = s.conn.Close()
}

// trackReader counts bytes so the reader goroutine can distinguish an
// idle timeout from one that interrupted a partial frame.
type trackReader struct {
	r io.Reader
	n int64
}

func (tr *trackReader) Read(p []byte) (int, error) {
	n, err := tr.r.Read(p)
	tr.n += int64(n)
	return n, err
}

// frameWriter serializes response frames from the worker and the
// reader (Pong, protocol errors) onto one buffered connection.
type frameWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

func newFrameWriter(conn net.Conn, timeout time.Duration) *frameWriter {
	return &frameWriter{conn: conn, bw: bufio.NewWriter(conn), timeout: timeout}
}

func (w *frameWriter) write(t wire.Type, payload []byte, flush bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := wire.WriteFrame(w.bw, t, payload); err != nil {
		return err
	}
	if flush {
		return w.flushLocked()
	}
	return nil
}

func (w *frameWriter) writeError(e wire.ErrorMsg) error {
	return w.write(wire.TypeError, wire.AppendError(nil, e), true)
}

// rowBatchTarget is the encoded-tuple budget per RowBatch frame, the
// same budget recdb-server streams with.
const rowBatchTarget = 32 << 10

// writeResult streams a merged read answer: RowDescription, the data
// rows coalesced into RowBatch frames, then CommandComplete — exactly
// the frame shapes recdb-server emits, so clients cannot tell a router
// answer from a single server's.
func (w *frameWriter) writeResult(id uint32, res result) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	desc := wire.RowDesc{ID: id, Strategy: res.strategy, Columns: res.cols}
	if err := wire.WriteFrame(w.bw, wire.TypeRowDesc, wire.AppendRowDesc(nil, desc)); err != nil {
		return err
	}
	count := 0
	tuples := make([]byte, 0, 4096)
	scratch := make([]byte, 0, 256)
	flushBatch := func() error {
		if count == 0 {
			return nil
		}
		t := wire.TypeDataRow
		scratch = wire.AppendID(scratch[:0], id)
		if count > 1 {
			t = wire.TypeRowBatch
			scratch = binary.AppendUvarint(scratch, uint64(count))
		}
		scratch = append(scratch, tuples...)
		tuples, count = tuples[:0], 0
		if err := wire.WriteFrame(w.bw, t, scratch); err != nil {
			return err
		}
		if w.bw.Buffered() > 1<<16 {
			return w.flushLocked()
		}
		return nil
	}
	for _, row := range res.rows {
		tuples = types.EncodeRow(tuples, row)
		count++
		if len(tuples) >= rowBatchTarget {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	if err := flushBatch(); err != nil {
		return err
	}
	done := wire.AppendComplete(scratch[:0], wire.Complete{ID: id, Rows: int64(len(res.rows))})
	if err := wire.WriteFrame(w.bw, wire.TypeComplete, done); err != nil {
		return err
	}
	return w.flushLocked()
}

func (w *frameWriter) flushLocked() error {
	_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	return w.bw.Flush()
}
