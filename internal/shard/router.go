package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"recdb/client"
	"recdb/internal/metrics"
	"recdb/internal/sql"
	"recdb/internal/wire"
)

// Options tunes a Router. The zero value of every field but Shards
// serves with the defaults noted on each.
type Options struct {
	// Shards are the backend recdb-server addresses, in ring order. The
	// list (and its order) must match across routers for them to route
	// users identically.
	Shards []string
	// UserCol is the user-key column statements are partitioned on
	// (default "uid"). A RECOMMEND clause's own user column overrides it
	// per statement.
	UserCol string
	// UserTables pre-seeds tables known to carry the user column, for
	// deployments whose schema was not created through the router.
	// CREATE TABLE statements routed through the router supersede it.
	UserTables []string
	// PoolSize is the number of pipelined connections kept per shard
	// (default 2; each carries 16 in-flight requests).
	PoolSize int
	// Retries is how many times a failed attempt is retried against a
	// shard before the statement fails shard_down (default 2). Only
	// attempts that are safe to repeat retry: reads, and writes whose
	// request never reached the wire.
	Retries int
	// RetryBackoff is the first retry's delay; each further retry doubles
	// it (default 25ms).
	RetryBackoff time.Duration
	// HealthInterval is the probe cadence per shard (default 1s); probing
	// is how a downed shard comes back without live traffic risking it.
	HealthInterval time.Duration
	// MaxConns caps live client sessions on the front end; further
	// connections are rejected with a "busy" Error frame (0 = 64).
	MaxConns int
	// QueryTimeout bounds each statement end to end, fan-out included. A
	// request's own TimeoutMillis tightens but never loosens it (0 = no
	// router bound).
	QueryTimeout time.Duration
	// IdleTimeout closes a front-end session with no request in flight
	// and no bytes arriving (0 = 5 minutes).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response flush (0 = 30 seconds).
	WriteTimeout time.Duration
	// Name is the server string sent in the Hello frame (default
	// "recdb-router").
	Name string
	// Logf receives connection-level diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.UserCol == "" {
		o.UserCol = "uid"
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.MaxConns <= 0 {
		o.MaxConns = 64
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.Name == "" {
		o.Name = "recdb-router"
	}
	return o
}

// tableInfo is what the router has learned about one table from the DDL
// it replicated.
type tableInfo struct {
	cols        []string // lowercased; nil when only partitioned-ness is known
	partitioned bool     // carries the user column
}

// denyError is a statement the router refused to route; it surfaces as
// a wire "query" error, since the statement itself is at fault.
type denyError struct{ reason string }

func (e *denyError) Error() string { return e.reason }

// Router is the sharded serving tier's front door: it speaks the wire
// protocol to clients exactly as recdb-server does, and fans statements
// out to backend shards over pooled, pipelined client connections.
type Router struct {
	opts Options
	ring *Ring
	reg  *metrics.Registry
	m    routerMetrics

	states []*shardState

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*rsession
	nextSID  uint64
	draining bool
	schema   map[string]tableInfo
	rrAny    int // round-robin cursor for RouteAny

	stopProbe chan struct{}
	wg        sync.WaitGroup // front-end sessions
	probeWG   sync.WaitGroup
}

// New builds a Router over the given shards and starts its health
// prober. Call Shutdown to release it.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(len(opts.Shards))
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	r := &Router{
		opts:      opts,
		ring:      ring,
		reg:       reg,
		m:         newRouterMetrics(reg),
		sessions:  make(map[uint64]*rsession),
		schema:    make(map[string]tableInfo),
		stopProbe: make(chan struct{}),
	}
	for i, addr := range opts.Shards {
		r.states = append(r.states, newShardState(i, addr, opts.PoolSize, newShardMetrics(reg, i)))
	}
	for _, t := range opts.UserTables {
		r.schema[strings.ToLower(t)] = tableInfo{partitioned: true}
	}
	r.probeWG.Add(1)
	go r.probeLoop()
	return r, nil
}

// probeLoop pings every shard each HealthInterval until Shutdown.
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopProbe:
			return
		case <-t.C:
		}
		for _, s := range r.states {
			s.probe(context.Background(), r.opts.HealthInterval)
		}
	}
}

// Metrics snapshots the router's registry.
func (r *Router) Metrics() metrics.Snapshot { return r.reg.Snapshot() }

// Shards returns the backend addresses in ring order.
func (r *Router) Shards() []string { return append([]string(nil), r.opts.Shards...) }

// Healthy reports each shard's current health flag, in ring order.
func (r *Router) Healthy() []bool {
	out := make([]bool, len(r.states))
	for i, s := range r.states {
		out[i] = s.healthy()
	}
	return out
}

// ListenAndServe listens on addr and serves until Shutdown.
func (r *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	return r.Serve(ln)
}

// Serve accepts client connections on ln until it fails or Shutdown
// closes it. It returns nil after a Shutdown, the accept error
// otherwise.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		_ = ln.Close()
		return errors.New("shard: router already shut down")
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			draining := r.draining
			r.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("shard: accept: %w", err)
		}
		r.dispatch(conn)
	}
}

// Addr returns the listening address ("" before Serve).
func (r *Router) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// dispatch admits conn as a session or rejects it with a typed error
// frame when the router is at capacity or draining.
func (r *Router) dispatch(conn net.Conn) {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		r.rejectConn(conn, wire.CodeShutdown, "router is shutting down")
		return
	}
	if len(r.sessions) >= r.opts.MaxConns {
		r.mu.Unlock()
		r.m.rejectedBusy.Inc()
		r.rejectConn(conn, wire.CodeBusy,
			fmt.Sprintf("router at its %d-connection limit", r.opts.MaxConns))
		return
	}
	r.nextSID++
	sess := newRSession(r, r.nextSID, conn)
	r.sessions[sess.id] = sess
	r.mu.Unlock()

	r.m.connsActive.Add(1)
	r.m.sessionsOpened.Inc()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		sess.run()
		r.mu.Lock()
		delete(r.sessions, sess.id)
		r.mu.Unlock()
		r.m.connsActive.Add(-1)
		r.m.sessionsClosed.Inc()
	}()
}

// rejectConn answers a connection the router will not admit, off the
// accept loop so a slow or dead peer cannot stall other accepts.
func (r *Router) rejectConn(conn net.Conn, code, msg string) {
	go func() {
		_ = conn.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
		_ = wire.WriteFrame(conn, wire.TypeError,
			wire.AppendError(nil, wire.ErrorMsg{Code: code, Message: msg}))
		_ = conn.Close()
	}()
}

// Shutdown drains the router: stop accepting, let in-flight statements
// finish, answer queued-but-unstarted requests "shutdown", stop the
// health prober, then close every shard pool. If ctx expires first,
// remaining client connections are closed hard and ctx's error is
// returned.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	already := r.draining
	r.draining = true
	ln := r.ln
	live := make([]*rsession, 0, len(r.sessions))
	for _, sess := range r.sessions {
		live = append(live, sess)
	}
	r.mu.Unlock()
	if already {
		return errors.New("shard: router already shut down")
	}
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range live {
		sess.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("shard: drain interrupted: %w", ctx.Err())
		for _, sess := range live {
			sess.closeConn()
		}
		<-done
	}

	close(r.stopProbe)
	r.probeWG.Wait()
	for _, s := range r.states {
		s.close()
	}
	return drainErr
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// routerCatalog adapts the router's learned schema to route
// classification. Methods take r.mu.
type routerCatalog struct{ r *Router }

func (c routerCatalog) columns(table string) ([]string, bool) {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	info, ok := c.r.schema[strings.ToLower(table)]
	if !ok || info.cols == nil {
		return nil, false
	}
	return info.cols, true
}

func (c routerCatalog) partitioned(table string) (bool, bool) {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	info, ok := c.r.schema[strings.ToLower(table)]
	if !ok {
		return false, false
	}
	return info.partitioned, true
}

// learnTable records a CREATE TABLE the router replicated, so later
// positional INSERTs into it can locate the user column.
func (r *Router) learnTable(ct *sql.CreateTable) {
	cols := make([]string, len(ct.Cols))
	part := false
	for i, c := range ct.Cols {
		cols[i] = strings.ToLower(c.Name)
		if strings.EqualFold(c.Name, r.opts.UserCol) {
			part = true
		}
	}
	r.mu.Lock()
	r.schema[strings.ToLower(ct.Name)] = tableInfo{cols: cols, partitioned: part}
	r.mu.Unlock()
}

// forgetTable drops a replicated DROP TABLE's schema entry.
func (r *Router) forgetTable(name string) {
	r.mu.Lock()
	delete(r.schema, strings.ToLower(name))
	r.mu.Unlock()
}

// anyShard picks a healthy shard round-robin for RouteAny reads; when
// every shard looks down it still picks one, letting the retry path —
// and its typed shard_down verdict — decide.
func (r *Router) anyShard() int {
	r.mu.Lock()
	start := r.rrAny
	r.rrAny++
	r.mu.Unlock()
	n := len(r.states)
	for i := 0; i < n; i++ {
		s := (start + i) % n
		if r.states[s].healthy() {
			return s
		}
	}
	return start % n
}

// allShards is the broadcast/scatter target list: every ring index.
func (r *Router) allShards() []int {
	out := make([]int, len(r.states))
	for i := range out {
		out[i] = i
	}
	return out
}

// execute runs one classified statement and returns its combined
// answer. kind distinguishes Query (rows) from Exec (count) requests.
func (r *Router) execute(ctx context.Context, kind wire.Type, text string, stmt sql.Statement) (result, error) {
	rt := classify(stmt, strings.ToLower(r.opts.UserCol), routerCatalog{r})
	switch rt.Action {
	case RouteDeny:
		r.m.denied.Inc()
		return result{}, &denyError{reason: rt.Reason}

	case RouteOwner:
		owner := r.ring.Owner(rt.User)
		r.m.routedUser.Inc()
		r.states[owner].m.routed.Inc()
		return r.one(ctx, owner, kind, text)

	case RouteAny:
		s := r.anyShard()
		r.states[s].m.routed.Inc()
		return r.one(ctx, s, kind, text)

	case RouteOwners:
		targets := r.ring.Owners(rt.Users)
		if kind == wire.TypeQuery {
			r.m.scatters.Inc()
			return r.fanQuery(ctx, targets, text, rt.Merge)
		}
		r.m.fanouts.Inc()
		return r.fanExec(ctx, targets, text, rt.Sum)

	case RouteScatter:
		if kind != wire.TypeQuery {
			// An Exec'd SELECT: run it like a query but report the count.
			r.m.scatters.Inc()
			res, err := r.fanQuery(ctx, r.allShards(), text, rt.Merge)
			if err != nil {
				return result{}, err
			}
			return result{affected: int64(len(res.rows))}, nil
		}
		r.m.scatters.Inc()
		return r.fanQuery(ctx, r.allShards(), text, rt.Merge)

	case RouteBroadcast:
		r.m.fanouts.Inc()
		res, err := r.fanExec(ctx, r.allShards(), text, rt.Sum)
		if err != nil {
			return result{}, err
		}
		// Schema changes the whole fleet accepted teach the catalog.
		switch s := stmt.(type) {
		case *sql.CreateTable:
			r.learnTable(s)
		case *sql.DropTable:
			r.forgetTable(s.Name)
		}
		return res, nil

	case RouteSplit:
		r.m.splits.Inc()
		return r.splitInsert(ctx, rt.Insert)

	default:
		return result{}, &denyError{reason: fmt.Sprintf("unhandled route action %d", rt.Action)}
	}
}

// one runs a single-shard statement.
func (r *Router) one(ctx context.Context, shard int, kind wire.Type, text string) (result, error) {
	complete, rows, err := r.do(ctx, shard, kind, text)
	if err != nil {
		return result{}, err
	}
	if kind == wire.TypeQuery {
		return result{cols: rows.Columns(), strategy: rows.Strategy(), rows: rows.All(), isRows: true}, nil
	}
	return result{affected: complete.Rows}, nil
}

// fanQuery scatters a read to targets concurrently and merges the parts
// (ordered when spec has keys). Any leg's failure fails the statement;
// server-answered errors win over transport ones so the client sees the
// most specific verdict.
func (r *Router) fanQuery(ctx context.Context, targets []int, text string, spec *MergeSpec) (result, error) {
	parts := make([]*client.Rows, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		r.states[shard].m.fanout.Inc()
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			_, rows, err := r.do(ctx, shard, wire.TypeQuery, text)
			parts[i], errs[i] = rows, err
		}(i, shard)
	}
	wg.Wait()
	if err := pickError(errs); err != nil {
		return result{}, err
	}
	return mergeParts(parts, spec), nil
}

// fanExec broadcasts a write to targets concurrently. sum adds the
// shards' counts (disjoint partitions); otherwise the first shard's
// count stands for the fleet (replicated copies all report the same).
func (r *Router) fanExec(ctx context.Context, targets []int, text string, sum bool) (result, error) {
	counts := make([]int64, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		r.states[shard].m.fanout.Inc()
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			complete, _, err := r.do(ctx, shard, wire.TypeExec, text)
			counts[i], errs[i] = complete.Rows, err
		}(i, shard)
	}
	wg.Wait()
	if err := pickError(errs); err != nil {
		return result{}, err
	}
	if sum {
		var total int64
		for _, c := range counts {
			total += c
		}
		return result{affected: total}, nil
	}
	return result{affected: counts[0]}, nil
}

// splitInsert partitions a multi-user INSERT's rows among their owning
// shards and runs the sub-INSERTs concurrently, summing the counts.
func (r *Router) splitInsert(ctx context.Context, plan *InsertPlan) (result, error) {
	groups := make(map[int][]int)
	for i, u := range plan.RowUsers {
		owner := r.ring.Owner(u)
		groups[owner] = append(groups[owner], i)
	}
	targets := make([]int, 0, len(groups))
	for s := range groups {
		targets = append(targets, s)
	}
	sort.Ints(targets)

	counts := make([]int64, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		r.states[shard].m.fanout.Inc()
		sub := renderInsert(plan.Stmt, groups[shard])
		wg.Add(1)
		go func(i, shard int, sub string) {
			defer wg.Done()
			complete, _, err := r.do(ctx, shard, wire.TypeExec, sub)
			counts[i], errs[i] = complete.Rows, err
		}(i, shard, sub)
	}
	wg.Wait()
	if err := pickError(errs); err != nil {
		return result{}, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return result{affected: total}, nil
}

// pickError selects the error a fan-out answers with: a server-answered
// error first (the statement itself is at fault everywhere it ran),
// then the first failure in target order.
func pickError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}
