// Package expr compiles parsed SQL expressions against a row schema into
// evaluable closures. It implements SQL three-valued logic for AND/OR/NOT,
// NULL propagation in arithmetic and comparisons, and the scalar function
// registry (including the PostGIS-style spatial functions the case study
// uses: ST_Contains, ST_DWithin, ST_Distance, and the combined-score
// function CScore from Query 8).
package expr

import (
	"fmt"
	"math"
	"strings"

	"recdb/internal/geo"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// Compiled is an expression evaluable against a row.
type Compiled func(row types.Row) (types.Value, error)

// Compile resolves column references in e against schema and returns an
// evaluator. Compilation fails on unknown or ambiguous columns and unknown
// functions, so errors surface at plan time rather than per row.
func Compile(e sql.Expr, schema *types.Schema) (Compiled, error) {
	switch v := e.(type) {
	case *sql.Literal:
		val := v.Value
		return func(types.Row) (types.Value, error) { return val, nil }, nil

	case *sql.ColumnRef:
		idx, err := schema.Resolve(v.Qualifier, v.Name)
		if err != nil {
			return nil, err
		}
		return func(row types.Row) (types.Value, error) {
			if idx >= len(row) {
				return types.Null(), fmt.Errorf("expr: row too short for column %s", v)
			}
			return row[idx], nil
		}, nil

	case *sql.Unary:
		x, err := Compile(v.X, schema)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "NOT":
			return func(row types.Row) (types.Value, error) {
				val, err := x(row)
				if err != nil {
					return types.Null(), err
				}
				if val.IsNull() {
					return types.Null(), nil
				}
				if val.Kind() != types.KindBool {
					return types.Null(), fmt.Errorf("expr: NOT applied to %s", val.Kind())
				}
				return types.NewBool(!val.Bool()), nil
			}, nil
		case "-":
			return func(row types.Row) (types.Value, error) {
				val, err := x(row)
				if err != nil {
					return types.Null(), err
				}
				if val.IsNull() {
					return types.Null(), nil
				}
				switch val.Kind() {
				case types.KindInt:
					return types.NewInt(-val.Int()), nil
				case types.KindFloat:
					return types.NewFloat(-val.Float()), nil
				}
				return types.Null(), fmt.Errorf("expr: unary minus on %s", val.Kind())
			}, nil
		default:
			return nil, fmt.Errorf("expr: unknown unary operator %q", v.Op)
		}

	case *sql.Binary:
		l, err := Compile(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(v.R, schema)
		if err != nil {
			return nil, err
		}
		return compileBinary(v.Op, l, r)

	case *sql.In:
		x, err := Compile(v.X, schema)
		if err != nil {
			return nil, err
		}
		list := make([]Compiled, len(v.List))
		for i, item := range v.List {
			if list[i], err = Compile(item, schema); err != nil {
				return nil, err
			}
		}
		neg := v.Negate
		return func(row types.Row) (types.Value, error) {
			val, err := x(row)
			if err != nil {
				return types.Null(), err
			}
			if val.IsNull() {
				return types.Null(), nil
			}
			sawNull := false
			for _, item := range list {
				iv, err := item(row)
				if err != nil {
					return types.Null(), err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if types.Equal(val, iv) {
					return types.NewBool(!neg), nil
				}
			}
			if sawNull {
				return types.Null(), nil
			}
			return types.NewBool(neg), nil
		}, nil

	case *sql.IsNull:
		x, err := Compile(v.X, schema)
		if err != nil {
			return nil, err
		}
		neg := v.Negate
		return func(row types.Row) (types.Value, error) {
			val, err := x(row)
			if err != nil {
				return types.Null(), err
			}
			return types.NewBool(val.IsNull() != neg), nil
		}, nil

	case *sql.Like:
		x, err := Compile(v.X, schema)
		if err != nil {
			return nil, err
		}
		pat, err := Compile(v.Pattern, schema)
		if err != nil {
			return nil, err
		}
		neg := v.Negate
		return func(row types.Row) (types.Value, error) {
			xv, err := x(row)
			if err != nil {
				return types.Null(), err
			}
			pv, err := pat(row)
			if err != nil {
				return types.Null(), err
			}
			if xv.IsNull() || pv.IsNull() {
				return types.Null(), nil
			}
			if xv.Kind() != types.KindText || pv.Kind() != types.KindText {
				return types.Null(), fmt.Errorf("expr: LIKE needs text operands")
			}
			return types.NewBool(likeMatch(xv.Text(), pv.Text()) != neg), nil
		}, nil

	case *sql.Between:
		x, err := Compile(v.X, schema)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(v.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(v.Hi, schema)
		if err != nil {
			return nil, err
		}
		neg := v.Negate
		return func(row types.Row) (types.Value, error) {
			xv, err := x(row)
			if err != nil {
				return types.Null(), err
			}
			lov, err := lo(row)
			if err != nil {
				return types.Null(), err
			}
			hiv, err := hi(row)
			if err != nil {
				return types.Null(), err
			}
			if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
				return types.Null(), nil
			}
			cl, err := types.Compare(xv, lov)
			if err != nil {
				return types.Null(), err
			}
			ch, err := types.Compare(xv, hiv)
			if err != nil {
				return types.Null(), err
			}
			return types.NewBool((cl >= 0 && ch <= 0) != neg), nil
		}, nil

	case *sql.Call:
		fn, ok := functions[strings.ToLower(v.Name)]
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %q", v.Name)
		}
		if fn.arity >= 0 && fn.arity != len(v.Args) {
			return nil, fmt.Errorf("expr: %s expects %d arguments, got %d", v.Name, fn.arity, len(v.Args))
		}
		args := make([]Compiled, len(v.Args))
		var err error
		for i, a := range v.Args {
			if args[i], err = Compile(a, schema); err != nil {
				return nil, err
			}
		}
		impl := fn.impl
		name := v.Name
		return func(row types.Row) (types.Value, error) {
			vals := make([]types.Value, len(args))
			for i, a := range args {
				if vals[i], err = a(row); err != nil {
					return types.Null(), err
				}
			}
			out, err := impl(vals)
			if err != nil {
				return types.Null(), fmt.Errorf("expr: %s: %w", name, err)
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported expression node %T", e)
}

func compileBinary(op sql.BinaryOp, l, r Compiled) (Compiled, error) {
	switch op {
	case sql.OpAnd:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			// Three-valued AND with short circuit on FALSE.
			if !lv.IsNull() && lv.Kind() == types.KindBool && !lv.Bool() {
				return types.NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			lb, lok := boolOrNull(lv)
			rb, rok := boolOrNull(rv)
			if !lok || !rok {
				return types.Null(), fmt.Errorf("expr: AND over non-boolean operands")
			}
			switch {
			case lb == tvFalse || rb == tvFalse:
				return types.NewBool(false), nil
			case lb == tvNull || rb == tvNull:
				return types.Null(), nil
			default:
				return types.NewBool(true), nil
			}
		}, nil
	case sql.OpOr:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			if !lv.IsNull() && lv.Kind() == types.KindBool && lv.Bool() {
				return types.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			lb, lok := boolOrNull(lv)
			rb, rok := boolOrNull(rv)
			if !lok || !rok {
				return types.Null(), fmt.Errorf("expr: OR over non-boolean operands")
			}
			switch {
			case lb == tvTrue || rb == tvTrue:
				return types.NewBool(true), nil
			case lb == tvNull || rb == tvNull:
				return types.Null(), nil
			default:
				return types.NewBool(false), nil
			}
		}, nil
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			c, err := types.Compare(lv, rv)
			if err != nil {
				return types.Null(), err
			}
			var out bool
			switch op {
			case sql.OpEq:
				out = c == 0
			case sql.OpNe:
				out = c != 0
			case sql.OpLt:
				out = c < 0
			case sql.OpLe:
				out = c <= 0
			case sql.OpGt:
				out = c > 0
			case sql.OpGe:
				out = c >= 0
			}
			return types.NewBool(out), nil
		}, nil
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			// Text concatenation with +.
			if op == sql.OpAdd && lv.Kind() == types.KindText && rv.Kind() == types.KindText {
				return types.NewText(lv.Text() + rv.Text()), nil
			}
			lf, lok := lv.AsFloat()
			rf, rok := rv.AsFloat()
			if !lok || !rok {
				return types.Null(), fmt.Errorf("expr: arithmetic %s over %s and %s", op, lv.Kind(), rv.Kind())
			}
			bothInt := lv.Kind() == types.KindInt && rv.Kind() == types.KindInt
			switch op {
			case sql.OpAdd:
				if bothInt {
					return types.NewInt(lv.Int() + rv.Int()), nil
				}
				return types.NewFloat(lf + rf), nil
			case sql.OpSub:
				if bothInt {
					return types.NewInt(lv.Int() - rv.Int()), nil
				}
				return types.NewFloat(lf - rf), nil
			case sql.OpMul:
				if bothInt {
					return types.NewInt(lv.Int() * rv.Int()), nil
				}
				return types.NewFloat(lf * rf), nil
			default: // OpDiv
				if rf == 0 {
					return types.Null(), fmt.Errorf("expr: division by zero")
				}
				if bothInt {
					return types.NewInt(lv.Int() / rv.Int()), nil
				}
				return types.NewFloat(lf / rf), nil
			}
		}, nil
	}
	return nil, fmt.Errorf("expr: unknown binary operator %v", op)
}

type tv int

const (
	tvFalse tv = iota
	tvTrue
	tvNull
)

func boolOrNull(v types.Value) (tv, bool) {
	if v.IsNull() {
		return tvNull, true
	}
	if v.Kind() != types.KindBool {
		return tvFalse, false
	}
	if v.Bool() {
		return tvTrue, true
	}
	return tvFalse, true
}

// Truthy reports whether a WHERE-style predicate value admits the row
// (NULL and FALSE both reject).
func Truthy(v types.Value) bool {
	return !v.IsNull() && v.Kind() == types.KindBool && v.Bool()
}

// likeMatch implements SQL LIKE: '%' matches any run (including empty),
// '_' matches exactly one byte. Matching is case-sensitive, like
// PostgreSQL's LIKE.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matcher with backtracking on the last '%'.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// ---- Scalar function registry ----

type function struct {
	arity int // -1 = variadic
	impl  func(args []types.Value) (types.Value, error)
}

var functions = map[string]function{
	"abs": {1, func(a []types.Value) (types.Value, error) {
		if a[0].IsNull() {
			return types.Null(), nil
		}
		switch a[0].Kind() {
		case types.KindInt:
			v := a[0].Int()
			if v < 0 {
				v = -v
			}
			return types.NewInt(v), nil
		case types.KindFloat:
			return types.NewFloat(math.Abs(a[0].Float())), nil
		}
		return types.Null(), fmt.Errorf("ABS of %s", a[0].Kind())
	}},
	"lower": {1, textFn(strings.ToLower)},
	"upper": {1, textFn(strings.ToUpper)},
	"length": {1, func(a []types.Value) (types.Value, error) {
		if a[0].IsNull() {
			return types.Null(), nil
		}
		if a[0].Kind() != types.KindText {
			return types.Null(), fmt.Errorf("LENGTH of %s", a[0].Kind())
		}
		return types.NewInt(int64(len(a[0].Text()))), nil
	}},
	"round": {1, func(a []types.Value) (types.Value, error) {
		f, ok := a[0].AsFloat()
		if !ok {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("ROUND of %s", a[0].Kind())
		}
		return types.NewFloat(math.Round(f)), nil
	}},
	"sqrt": {1, func(a []types.Value) (types.Value, error) {
		f, ok := a[0].AsFloat()
		if !ok {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("SQRT of %s", a[0].Kind())
		}
		if f < 0 {
			return types.Null(), fmt.Errorf("SQRT of negative value")
		}
		return types.NewFloat(math.Sqrt(f)), nil
	}},
	"coalesce": {-1, func(a []types.Value) (types.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return types.Null(), nil
	}},
	"floor": {1, numericFn("FLOOR", math.Floor)},
	"ceil":  {1, numericFn("CEIL", math.Ceil)},
	"exp":   {1, numericFn("EXP", math.Exp)},
	"ln": {1, func(a []types.Value) (types.Value, error) {
		f, ok := a[0].AsFloat()
		if !ok {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("LN of %s", a[0].Kind())
		}
		if f <= 0 {
			return types.Null(), fmt.Errorf("LN of non-positive value")
		}
		return types.NewFloat(math.Log(f)), nil
	}},
	"power": {2, func(a []types.Value) (types.Value, error) {
		x, xo := a[0].AsFloat()
		y, yo := a[1].AsFloat()
		if !xo || !yo {
			if a[0].IsNull() || a[1].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("POWER needs numeric arguments")
		}
		return types.NewFloat(math.Pow(x, y)), nil
	}},
	"sign": {1, func(a []types.Value) (types.Value, error) {
		f, ok := a[0].AsFloat()
		if !ok {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("SIGN of %s", a[0].Kind())
		}
		switch {
		case f > 0:
			return types.NewInt(1), nil
		case f < 0:
			return types.NewInt(-1), nil
		default:
			return types.NewInt(0), nil
		}
	}},
	"greatest": {-1, extremeFn("GREATEST", 1)},
	"least":    {-1, extremeFn("LEAST", -1)},

	// Geometry constructors.
	"st_point": {2, func(a []types.Value) (types.Value, error) {
		x, xo := a[0].AsFloat()
		y, yo := a[1].AsFloat()
		if !xo || !yo {
			return types.Null(), fmt.Errorf("ST_Point needs numeric coordinates")
		}
		return types.NewGeometry(geo.Point{X: x, Y: y}), nil
	}},
	"st_geomfromtext": {1, func(a []types.Value) (types.Value, error) {
		if a[0].Kind() != types.KindText {
			return types.Null(), fmt.Errorf("ST_GeomFromText needs a text argument")
		}
		g, err := geo.Parse(a[0].Text())
		if err != nil {
			return types.Null(), err
		}
		return types.NewGeometry(g), nil
	}},

	// Spatial predicates and measures (planar stand-ins for PostGIS).
	"st_contains": {2, func(a []types.Value) (types.Value, error) {
		ga, gb, err := twoGeoms(a)
		if err != nil {
			return types.Null(), err
		}
		if ga == nil || gb == nil {
			return types.Null(), nil
		}
		return types.NewBool(geo.Contains(ga, gb)), nil
	}},
	"st_distance": {2, func(a []types.Value) (types.Value, error) {
		ga, gb, err := twoGeoms(a)
		if err != nil {
			return types.Null(), err
		}
		if ga == nil || gb == nil {
			return types.Null(), nil
		}
		return types.NewFloat(geo.Distance(ga, gb)), nil
	}},
	"st_dwithin": {3, func(a []types.Value) (types.Value, error) {
		ga, gb, err := twoGeoms(a[:2])
		if err != nil {
			return types.Null(), err
		}
		d, ok := a[2].AsFloat()
		if !ok {
			return types.Null(), fmt.Errorf("ST_DWithin needs a numeric distance")
		}
		if ga == nil || gb == nil {
			return types.Null(), nil
		}
		return types.NewBool(geo.DWithin(ga, gb, d)), nil
	}},

	// CScore(rating, distance) is the combined rank score of Query 8: the
	// predicted rating damped by spatial distance. Higher is better.
	"cscore": {2, func(a []types.Value) (types.Value, error) {
		rating, ro := a[0].AsFloat()
		dist, do := a[1].AsFloat()
		if !ro || !do {
			if a[0].IsNull() || a[1].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("CScore needs numeric arguments")
		}
		if dist < 0 {
			return types.Null(), fmt.Errorf("CScore distance must be non-negative")
		}
		return types.NewFloat(rating / (1 + dist)), nil
	}},
}

func numericFn(name string, f func(float64) float64) func([]types.Value) (types.Value, error) {
	return func(a []types.Value) (types.Value, error) {
		v, ok := a[0].AsFloat()
		if !ok {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.Null(), fmt.Errorf("%s of %s", name, a[0].Kind())
		}
		return types.NewFloat(f(v)), nil
	}
}

// extremeFn implements GREATEST (dir=1) and LEAST (dir=-1): the extreme of
// any comparable values; NULL inputs are skipped, all-NULL yields NULL.
func extremeFn(name string, dir int) func([]types.Value) (types.Value, error) {
	return func(a []types.Value) (types.Value, error) {
		if len(a) == 0 {
			return types.Null(), fmt.Errorf("%s needs at least one argument", name)
		}
		best := types.Null()
		for _, v := range a {
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			c, err := types.Compare(v, best)
			if err != nil {
				return types.Null(), err
			}
			if c*dir > 0 {
				best = v
			}
		}
		return best, nil
	}
}

func textFn(f func(string) string) func([]types.Value) (types.Value, error) {
	return func(a []types.Value) (types.Value, error) {
		if a[0].IsNull() {
			return types.Null(), nil
		}
		if a[0].Kind() != types.KindText {
			return types.Null(), fmt.Errorf("text function over %s", a[0].Kind())
		}
		return types.NewText(f(a[0].Text())), nil
	}
}

func twoGeoms(a []types.Value) (geo.Geometry, geo.Geometry, error) {
	var out [2]geo.Geometry
	for i := 0; i < 2; i++ {
		switch a[i].Kind() {
		case types.KindNull:
			out[i] = nil
		case types.KindGeometry:
			out[i] = a[i].Geometry()
		case types.KindText:
			g, err := geo.Parse(a[i].Text())
			if err != nil {
				return nil, nil, err
			}
			out[i] = g
		default:
			return nil, nil, fmt.Errorf("argument %d is %s, not a geometry", i+1, a[i].Kind())
		}
	}
	return out[0], out[1], nil
}
