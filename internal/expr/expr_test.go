package expr

import (
	"math"
	"strings"
	"testing"

	"recdb/internal/geo"
	"recdb/internal/sql"
	"recdb/internal/types"
)

// evalWhere parses "SELECT a FROM t WHERE <cond>" and evaluates the WHERE
// expression against row under schema.
func evalWhere(t *testing.T, cond string, schema *types.Schema, row types.Row) types.Value {
	t.Helper()
	stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	c, err := Compile(stmt.(*sql.Select).Where, schema)
	if err != nil {
		t.Fatalf("compile %q: %v", cond, err)
	}
	v, err := c(row)
	if err != nil {
		t.Fatalf("eval %q: %v", cond, err)
	}
	return v
}

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Qualifier: "t", Name: "a", Kind: types.KindInt},
		types.Column{Qualifier: "t", Name: "b", Kind: types.KindFloat},
		types.Column{Qualifier: "t", Name: "s", Kind: types.KindText},
		types.Column{Qualifier: "t", Name: "n", Kind: types.KindInt},
		types.Column{Qualifier: "t", Name: "g", Kind: types.KindGeometry},
	)
}

func testRow() types.Row {
	return types.Row{
		types.NewInt(10),
		types.NewFloat(2.5),
		types.NewText("Action"),
		types.Null(),
		types.NewGeometry(geo.Point{X: 3, Y: 4}),
	}
}

func TestComparisons(t *testing.T) {
	s, r := testSchema(), testRow()
	cases := map[string]bool{
		"a = 10":       true,
		"a <> 10":      false,
		"a != 9":       true,
		"a < 11":       true,
		"a <= 10":      true,
		"a > 10":       false,
		"a >= 10":      true,
		"b = 2.5":      true,
		"a > b":        true,
		"s = 'Action'": true,
		"s = 'action'": false,
		"t.a = 10":     true,
	}
	for cond, want := range cases {
		v := evalWhere(t, cond, s, r)
		if !Truthy(v) != !want {
			t.Errorf("%s = %v, want %v", cond, v, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	s, r := testSchema(), testRow()
	cases := map[string]bool{
		"a + 5 = 15":          true,
		"a - 5 = 5":           true,
		"a * 2 = 20":          true,
		"a / 3 = 3":           true, // integer division
		"a / 4.0 = 2.5":       true,
		"b * 2 = 5.0":         true,
		"-a = -10":            true,
		"s + '!' = 'Action!'": true,
	}
	for cond, want := range cases {
		v := evalWhere(t, cond, s, r)
		if Truthy(v) != want {
			t.Errorf("%s = %v, want %v", cond, v, want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	s, r := testSchema(), testRow()
	stmt, _ := sql.Parse("SELECT x FROM t WHERE a / 0 = 1")
	c, err := Compile(stmt.(*sql.Select).Where, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c(r); err == nil {
		t.Fatal("division by zero should error")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	s, r := testSchema(), testRow()
	// n is NULL.
	null := func(cond string) {
		t.Helper()
		if v := evalWhere(t, cond, s, r); !v.IsNull() {
			t.Errorf("%s = %v, want NULL", cond, v)
		}
	}
	truev := func(cond string) {
		t.Helper()
		if v := evalWhere(t, cond, s, r); !Truthy(v) {
			t.Errorf("%s = %v, want TRUE", cond, v)
		}
	}
	falsev := func(cond string) {
		t.Helper()
		if v := evalWhere(t, cond, s, r); v.IsNull() || v.Bool() {
			t.Errorf("%s = %v, want FALSE", cond, v)
		}
	}
	null("n = 1")
	null("n + 1 = 2")
	null("NOT n = 1")
	null("n = 1 AND a = 10")
	falsev("n = 1 AND a = 11")
	truev("n = 1 OR a = 10")
	null("n = 1 OR a = 11")
	truev("n IS NULL")
	falsev("n IS NOT NULL")
	truev("a IS NOT NULL")
	null("n IN (1, 2)")
	null("a IN (1, n)")   // no match, null present
	truev("a IN (10, n)") // match wins over null
	truev("a NOT IN (1, 2)")
	falsev("a NOT IN (10)")
}

func TestInList(t *testing.T) {
	s, r := testSchema(), testRow()
	if !Truthy(evalWhere(t, "a IN (1, 5, 10)", s, r)) {
		t.Error("IN should match")
	}
	if Truthy(evalWhere(t, "a IN (1, 5, 11)", s, r)) {
		t.Error("IN should not match")
	}
	if !Truthy(evalWhere(t, "s IN ('Action', 'Drama')", s, r)) {
		t.Error("text IN should match")
	}
}

func TestFunctions(t *testing.T) {
	s, r := testSchema(), testRow()
	cases := map[string]bool{
		"ABS(-5) = 5":           true,
		"ABS(-2.5) = 2.5":       true,
		"LOWER(s) = 'action'":   true,
		"UPPER(s) = 'ACTION'":   true,
		"LENGTH(s) = 6":         true,
		"ROUND(2.4) = 2.0":      true,
		"SQRT(16) = 4.0":        true,
		"COALESCE(n, a) = 10":   true,
		"COALESCE(n, n, 7) = 7": true,
	}
	for cond, want := range cases {
		if Truthy(evalWhere(t, cond, s, r)) != want {
			t.Errorf("%s: want %v", cond, want)
		}
	}
}

func TestSpatialFunctions(t *testing.T) {
	s, r := testSchema(), testRow() // g = POINT(3 4)
	cases := map[string]bool{
		"ST_Distance(g, ST_Point(0, 0)) = 5.0":                              true,
		"ST_DWithin(g, ST_Point(0, 0), 5)":                                  true,
		"ST_DWithin(g, ST_Point(0, 0), 4.9)":                                false,
		"ST_Contains(ST_GeomFromText('POLYGON((0 0,10 0,10 10,0 10))'), g)": true,
		"ST_Contains(ST_GeomFromText('POLYGON((5 5,10 5,10 10,5 10))'), g)": false,
	}
	for cond, want := range cases {
		if Truthy(evalWhere(t, cond, s, r)) != want {
			t.Errorf("%s: want %v", cond, want)
		}
	}
}

func TestCScore(t *testing.T) {
	s, r := testSchema(), testRow()
	// CScore(rating, dist) = rating / (1 + dist).
	v := evalWhere(t, "CScore(4.0, 1.0) = 2.0", s, r)
	if !Truthy(v) {
		t.Error("CScore(4,1) should be 2")
	}
	v = evalWhere(t, "CScore(4.0, 0) = 4.0", s, r)
	if !Truthy(v) {
		t.Error("CScore at distance 0 should equal the rating")
	}
}

func TestCompileErrors(t *testing.T) {
	s := testSchema()
	bad := []string{
		"nope = 1",        // unknown column
		"t.nope = 1",      // unknown qualified column
		"NOSUCHFN(1) = 1", // unknown function
		"ABS(1, 2) = 1",   // wrong arity
	}
	for _, cond := range bad {
		stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, err := Compile(stmt.(*sql.Select).Where, s); err == nil {
			t.Errorf("Compile(%q): expected error", cond)
		}
	}
}

func TestEvalTypeErrors(t *testing.T) {
	s, r := testSchema(), testRow()
	bad := []string{
		"s + 1 = 2",   // text + int
		"s < 5",       // text vs int comparison
		"NOT a",       // NOT over non-boolean
		"a AND b = 1", // AND over non-boolean
	}
	for _, cond := range bad {
		stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
		if err != nil {
			t.Fatalf("parse %q: %v", cond, err)
		}
		c, err := Compile(stmt.(*sql.Select).Where, s)
		if err != nil {
			continue // compile-time rejection is fine too
		}
		if _, err := c(r); err == nil {
			t.Errorf("eval %q: expected error", cond)
		}
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(types.Null()) || Truthy(types.NewBool(false)) || Truthy(types.NewInt(1)) {
		t.Error("only TRUE is truthy")
	}
	if !Truthy(types.NewBool(true)) {
		t.Error("TRUE is truthy")
	}
}

func TestShortCircuit(t *testing.T) {
	// FALSE AND <error> must not error (short circuit), matching the
	// planner's reliance on cheap-first predicate ordering.
	s, r := testSchema(), testRow()
	stmt, _ := sql.Parse("SELECT x FROM t WHERE a = 11 AND a / 0 = 1")
	c, err := Compile(stmt.(*sql.Select).Where, s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c(r)
	if err != nil || Truthy(v) {
		t.Fatalf("short-circuit AND: %v %v", v, err)
	}
	stmt, _ = sql.Parse("SELECT x FROM t WHERE a = 10 OR a / 0 = 1")
	c, _ = Compile(stmt.(*sql.Select).Where, s)
	v, err = c(r)
	if err != nil || !Truthy(v) {
		t.Fatalf("short-circuit OR: %v %v", v, err)
	}
}

func TestFloatFormattingStability(t *testing.T) {
	v := types.NewFloat(math.Pi)
	if !strings.HasPrefix(v.String(), "3.14159") {
		t.Fatalf("float format: %s", v)
	}
}

func TestMathFunctions(t *testing.T) {
	s, r := testSchema(), testRow()
	cases := map[string]bool{
		"FLOOR(2.7) = 2.0":         true,
		"CEIL(2.1) = 3.0":          true,
		"POWER(2, 10) = 1024.0":    true,
		"EXP(0) = 1.0":             true,
		"LN(EXP(1)) = 1.0":         true,
		"SIGN(-7) = -1":            true,
		"SIGN(0) = 0":              true,
		"SIGN(2.5) = 1":            true,
		"GREATEST(1, 5, 3) = 5":    true,
		"LEAST(1, 5, 3) = 1":       true,
		"GREATEST(n, 4) = 4":       true, // NULLs skipped
		"GREATEST('a', 'b') = 'b'": true,
	}
	for cond, want := range cases {
		if Truthy(evalWhere(t, cond, s, r)) != want {
			t.Errorf("%s: want %v", cond, want)
		}
	}
	// All-NULL GREATEST is NULL.
	if v := evalWhere(t, "GREATEST(n, n) IS NULL", s, r); !Truthy(v) {
		t.Error("GREATEST of NULLs should be NULL")
	}
	// LN of non-positive errors.
	stmt, _ := sql.Parse("SELECT x FROM t WHERE LN(0) = 1")
	c, err := Compile(stmt.(*sql.Select).Where, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c(r); err == nil {
		t.Error("LN(0) should error")
	}
}

func TestLikeAndBetween(t *testing.T) {
	s, r := testSchema(), testRow() // s = 'Action', a = 10
	cases := map[string]bool{
		"s LIKE 'Action'":         true,
		"s LIKE 'Act%'":           true,
		"s LIKE '%ion'":           true,
		"s LIKE '%cti%'":          true,
		"s LIKE 'A_tion'":         true,
		"s LIKE 'a%'":             false, // case sensitive
		"s LIKE '_'":              false,
		"s LIKE '%'":              true,
		"s NOT LIKE 'Dra%'":       true,
		"a BETWEEN 5 AND 15":      true,
		"a BETWEEN 10 AND 10":     true,
		"a BETWEEN 11 AND 20":     false,
		"a NOT BETWEEN 11 AND 20": true,
		"b BETWEEN 2 AND 3":       true, // float across ints
		"s BETWEEN 'A' AND 'B'":   true,
	}
	for cond, want := range cases {
		if Truthy(evalWhere(t, cond, s, r)) != want {
			t.Errorf("%s: want %v", cond, want)
		}
	}
	// NULL propagation.
	if v := evalWhere(t, "n LIKE '%'", s, r); !v.IsNull() {
		t.Error("NULL LIKE should be NULL")
	}
	if v := evalWhere(t, "n BETWEEN 1 AND 2", s, r); !v.IsNull() {
		t.Error("NULL BETWEEN should be NULL")
	}
	// Type errors.
	stmt, _ := sql.Parse("SELECT x FROM t WHERE a LIKE 'x'")
	c, err := Compile(stmt.(*sql.Select).Where, s)
	if err == nil {
		if _, err := c(r); err == nil {
			t.Error("LIKE over int should error")
		}
	}
}

func TestLikeMatcherEdgeCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%", true},
		{"abc", "abc%", true},
		{"ab", "a_b", false},
	}
	for _, c := range cases {
		if likeMatch(c.s, c.p) != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, !c.want, c.want)
		}
	}
}

func TestFunctionNullAndErrorBranches(t *testing.T) {
	s, r := testSchema(), testRow()
	// NULL propagation through functions.
	for _, cond := range []string{
		"FLOOR(n) IS NULL", "CEIL(n) IS NULL", "EXP(n) IS NULL",
		"LN(n) IS NULL", "POWER(n, 2) IS NULL", "SIGN(n) IS NULL",
		"ABS(n) IS NULL", "ROUND(n) IS NULL", "SQRT(n) IS NULL",
		"LOWER(n) IS NULL", "LENGTH(n) IS NULL",
	} {
		if !Truthy(evalWhere(t, cond, s, r)) {
			t.Errorf("%s should be TRUE", cond)
		}
	}
	// Type errors at evaluation time.
	for _, cond := range []string{
		"FLOOR(s) = 1", "LN(s) = 1", "POWER(s, 2) = 1", "SIGN(s) = 1",
		"LOWER(a) = 'x'", "LENGTH(a) = 1", "SQRT(-1) = 1",
		"ST_Contains(a, g)", "ST_Distance(g, a) = 1", "ST_DWithin(g, g, s)",
		"ST_GeomFromText(a) IS NULL", "ST_Point(s, 1) IS NULL",
		"CScore(s, 1) = 1", "CScore(1, -1) = 1",
		"ST_GeomFromText('JUNK(1)') IS NULL",
	} {
		stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
		if err != nil {
			t.Fatalf("parse %q: %v", cond, err)
		}
		c, err := Compile(stmt.(*sql.Select).Where, s)
		if err != nil {
			continue
		}
		if _, err := c(r); err == nil {
			t.Errorf("eval %q: expected error", cond)
		}
	}
	// Spatial functions with NULL geometry arguments yield NULL.
	for _, cond := range []string{
		"ST_Contains(n, g) IS NULL",
		"ST_Distance(g, n) IS NULL",
		"ST_DWithin(n, g, 5) IS NULL",
	} {
		if !Truthy(evalWhere(t, cond, s, r)) {
			t.Errorf("%s should be TRUE", cond)
		}
	}
	// WKT text accepted as geometry argument.
	if !Truthy(evalWhere(t, "ST_DWithin(g, 'POINT(3 4)', 0.5)", s, r)) {
		t.Error("WKT text should be accepted as geometry")
	}
}
