package ontop

import (
	"fmt"
	"math"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/rec"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, genre TEXT);
		INSERT INTO movies VALUES
			(1, 'Spartacus', 'Action'), (2, 'Inception', 'Suspense'), (3, 'The Matrix', 'Sci-Fi');
		INSERT INTO ratings VALUES
			(1, 1, 1.5),
			(2, 2, 3.5), (2, 1, 4.5), (2, 3, 2),
			(3, 2, 1), (3, 1, 2),
			(4, 2, 1);
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCreateAndDrop(t *testing.T) {
	e := newEngine(t)
	c := New(e)
	if err := c.CreateRecommender("r", "ratings", "uid", "iid", "ratingval", "ItemCosCF", rec.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateRecommender("r", "ratings", "uid", "iid", "ratingval", "", rec.BuildOptions{}); err == nil {
		t.Fatal("duplicate should fail")
	}
	if err := c.DropRecommender("R"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropRecommender("r"); err == nil {
		t.Fatal("double drop should fail")
	}
	if err := c.CreateRecommender("x", "missing", "uid", "iid", "ratingval", "", rec.BuildOptions{}); err == nil {
		t.Fatal("missing table should fail")
	}
	if err := c.CreateRecommender("x", "ratings", "uid", "iid", "ratingval", "Quantum", rec.BuildOptions{}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestQueryMatchesInDBMSResults(t *testing.T) {
	e := newEngine(t)

	// In-DBMS recommender.
	if _, err := e.Exec(`CREATE RECOMMENDER GeneralRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		t.Fatal(err)
	}
	inDB, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC`)
	if err != nil {
		t.Fatal(err)
	}

	// OnTopDB client over the same engine.
	c := New(e)
	if err := c.CreateRecommender("r", "ratings", "uid", "iid", "ratingval", "ItemCosCF", rec.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	onTop, err := c.Query("r", []int64{1}, fmt.Sprintf(
		`SELECT s.iid, s.ratingval FROM %s s WHERE s.uid = 1 ORDER BY s.ratingval DESC`, ScoresTable))
	if err != nil {
		t.Fatal(err)
	}

	if len(inDB.Rows) != len(onTop.Rows) {
		t.Fatalf("row counts differ: in-DBMS %d vs on-top %d", len(inDB.Rows), len(onTop.Rows))
	}
	for i := range inDB.Rows {
		if math.Abs(inDB.Rows[i][1].Float()-onTop.Rows[i][1].Float()) > 1e-9 {
			t.Fatalf("scores differ at %d: %v vs %v", i, inDB.Rows[i], onTop.Rows[i])
		}
	}
}

func TestQueryJoinShape(t *testing.T) {
	e := newEngine(t)
	c := New(e)
	if err := c.CreateRecommender("r", "ratings", "uid", "iid", "ratingval", "SVD", rec.BuildOptions{SVDSeed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("r", []int64{3}, fmt.Sprintf(
		`SELECT s.uid, m.name, s.ratingval FROM %s s, movies m
		 WHERE s.uid = 3 AND m.mid = s.iid AND m.genre = 'Sci-Fi'
		 ORDER BY s.ratingval DESC`, ScoresTable))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Text() != "The Matrix" {
		t.Fatalf("on-top join: %v", res.Rows)
	}
}

func TestScopedGeneration(t *testing.T) {
	e := newEngine(t)
	c := New(e)
	if err := c.CreateRecommender("r", "ratings", "uid", "iid", "ratingval", "", rec.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	// The generous variant restricted to one user produces the same
	// answer for that user's query.
	c.PredictAllUsers = false
	scoped, err := c.Query("r", []int64{1}, fmt.Sprintf(
		`SELECT s.iid FROM %s s WHERE s.uid = 1`, ScoresTable))
	if err != nil {
		t.Fatal(err)
	}
	c.PredictAllUsers = true
	full, err := c.Query("r", []int64{1}, fmt.Sprintf(
		`SELECT s.iid FROM %s s WHERE s.uid = 1`, ScoresTable))
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped.Rows) != len(full.Rows) {
		t.Fatalf("scoped %d vs full %d", len(scoped.Rows), len(full.Rows))
	}
}

func TestScoresTableIsTransient(t *testing.T) {
	e := newEngine(t)
	c := New(e)
	if err := c.CreateRecommender("r", "ratings", "uid", "iid", "ratingval", "", rec.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("r", nil, "SELECT * FROM "+ScoresTable); err != nil {
		t.Fatal(err)
	}
	if e.Catalog().Has(ScoresTable) {
		t.Fatal("scores table should be dropped after the query")
	}
	if _, err := c.Query("missing", nil, "SELECT * FROM "+ScoresTable); err == nil {
		t.Fatal("missing recommender should fail")
	}
}
