// Package ontop implements the paper's baseline, OnTopDB (§I, §VI): the
// recommendation functionality built in the application layer on top of
// the SQL engine instead of inside it. Per query, the client
//
//  1. extracts the ratings from the database with plain SQL,
//     (at recommender-creation time, mirroring the specialized library
//     the paper describes, e.g. LensKit),
//  2. generates the full recommendation — predicted ratings for every
//     (user, item) pair — in application memory,
//  3. loads the produced recommendations back into the database as a
//     scores table, and
//  4. runs the application's filter/join/top-k SQL over that table.
//
// Steps 2-3 run on every query regardless of how selective the query is,
// which is exactly the overhead the in-DBMS operators avoid.
package ontop

import (
	"fmt"
	"strings"
	"sync"

	"recdb/internal/engine"
	"recdb/internal/rec"
	"recdb/internal/types"
)

// ScoresTable is the name of the transient table the client loads
// generated recommendations into. Queries passed to Query must read from
// it; its schema is (uid INT, iid INT, ratingval FLOAT).
const ScoresTable = "_ontop_scores"

// Client is an OnTopDB application: a recommender library living outside
// the database kernel.
type Client struct {
	eng *engine.Engine

	mu     sync.Mutex
	models map[string]*appRecommender
	// PredictAllUsers controls step 2's scope: true (default) generates
	// recommendations for every user, as the paper describes; false
	// restricts generation to the users passed to Query, a generous
	// variant of the baseline.
	PredictAllUsers bool
}

type appRecommender struct {
	name             string
	table            string
	uCol, iCol, rCol string
	algo             rec.Algorithm
	model            rec.Model
}

// New creates an OnTopDB client over the engine.
func New(eng *engine.Engine) *Client {
	return &Client{
		eng:             eng,
		models:          make(map[string]*appRecommender),
		PredictAllUsers: true,
	}
}

// CreateRecommender extracts the ratings table through SQL and builds the
// model in application memory (the library side of the OnTopDB split).
func (c *Client) CreateRecommender(name, table, userCol, itemCol, ratingCol, algoName string, opts rec.BuildOptions) error {
	algo, err := rec.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	// Step 1: extract the data from the database.
	res, err := c.eng.Query(fmt.Sprintf("SELECT %s, %s, %s FROM %s", userCol, itemCol, ratingCol, table))
	if err != nil {
		return err
	}
	ratings := make([]rec.Rating, 0, len(res.Rows))
	for _, row := range res.Rows {
		u, uok := row[0].AsInt()
		i, iok := row[1].AsInt()
		v, vok := row[2].AsFloat()
		if !uok || !iok || !vok {
			continue
		}
		ratings = append(ratings, rec.Rating{User: u, Item: i, Value: v})
	}
	model, err := rec.Build(ratings, algo, opts)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.models[key]; exists {
		return fmt.Errorf("ontop: recommender %q already exists", name)
	}
	c.models[key] = &appRecommender{
		name: name, table: table,
		uCol: userCol, iCol: itemCol, rCol: ratingCol,
		algo: algo, model: model,
	}
	return nil
}

// DropRecommender discards an application-side model.
func (c *Client) DropRecommender(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.models[key]; !exists {
		return fmt.Errorf("ontop: recommender %q does not exist", name)
	}
	delete(c.models, key)
	return nil
}

func (c *Client) get(name string) (*appRecommender, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.models[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("ontop: recommender %q does not exist", name)
	}
	return r, nil
}

// Query runs one OnTopDB recommendation query: generate → load → query.
// queryUsers narrows generation when PredictAllUsers is false (and is
// otherwise ignored). selectSQL must read from ScoresTable.
func (c *Client) Query(recommender string, queryUsers []int64, selectSQL string) (*engine.QueryResult, error) {
	r, err := c.get(recommender)
	if err != nil {
		return nil, err
	}

	// Step 2: generate recommendations in application memory.
	users := r.model.Users()
	if !c.PredictAllUsers && len(queryUsers) > 0 {
		users = queryUsers
	}
	items := r.model.Items()
	scores := make([]rec.Rating, 0, len(users)*len(items)/2)
	for _, u := range users {
		for _, i := range items {
			if _, rated := r.model.Seen(u, i); rated {
				continue
			}
			s, ok := r.model.Predict(u, i)
			if !ok {
				s = 0
			}
			scores = append(scores, rec.Rating{User: u, Item: i, Value: s})
		}
	}

	// Step 3: load the produced recommendations back into the database.
	if c.eng.Catalog().Has(ScoresTable) {
		if err := c.eng.Catalog().DropTable(ScoresTable); err != nil {
			return nil, err
		}
	}
	tab, err := c.eng.Catalog().CreateTable(ScoresTable, types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	), -1)
	if err != nil {
		return nil, err
	}
	for _, s := range scores {
		if _, err := tab.Insert(types.Row{
			types.NewInt(s.User), types.NewInt(s.Item), types.NewFloat(s.Value),
		}); err != nil {
			return nil, err
		}
	}

	// Step 4: run the application's SQL over the loaded scores.
	defer func() { _ = c.eng.Catalog().DropTable(ScoresTable) }()
	return c.eng.Query(selectSQL)
}
