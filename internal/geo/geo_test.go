package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointWKTRoundTrip(t *testing.T) {
	p := Point{X: -122.25, Y: 37.5}
	g, err := Parse(p.WKT())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.WKT(), err)
	}
	if g != p {
		t.Fatalf("round trip: got %v want %v", g, p)
	}
}

func TestPolygonWKTRoundTrip(t *testing.T) {
	pg := Rect(0, 0, 10, 5)
	g, err := Parse(pg.WKT())
	if err != nil {
		t.Fatalf("Parse(%q): %v", pg.WKT(), err)
	}
	got, ok := g.(Polygon)
	if !ok {
		t.Fatalf("got %T, want Polygon", g)
	}
	if len(got.Ring) != len(pg.Ring) {
		t.Fatalf("ring length: got %d want %d", len(got.Ring), len(pg.Ring))
	}
	for i := range got.Ring {
		if got.Ring[i] != pg.Ring[i] {
			t.Fatalf("vertex %d: got %v want %v", i, got.Ring[i], pg.Ring[i])
		}
	}
}

func TestParseClosedRing(t *testing.T) {
	g, err := Parse("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n := len(g.(Polygon).Ring); n != 4 {
		t.Fatalf("closing vertex not dropped: ring has %d vertices", n)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"", "CIRCLE(1 2)", "POINT(1)", "POINT(a b)",
		"POLYGON((0 0, 1 1))", "POLYGON(0 0, 1 1, 2 2)", "POINT 1 2",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", s)
		}
	}
}

func TestContainsPointInRect(t *testing.T) {
	r := Rect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},  // corner on boundary
		{Point{10, 5}, true}, // edge on boundary
		{Point{-1, 5}, false},
		{Point{11, 5}, false},
		{Point{5, 10.0001}, false},
	}
	for _, c := range cases {
		if got := Contains(r, c.p); got != c.want {
			t.Errorf("Contains(rect, %v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestContainsConcavePolygon(t *testing.T) {
	// An L-shape: the notch at the top-right is outside.
	l := Polygon{Ring: []Point{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}}
	if !Contains(l, Point{1, 3}) {
		t.Error("point in the vertical arm should be inside")
	}
	if !Contains(l, Point{3, 1}) {
		t.Error("point in the horizontal arm should be inside")
	}
	if Contains(l, Point{3, 3}) {
		t.Error("point in the notch should be outside")
	}
}

func TestContainsPolygonInPolygon(t *testing.T) {
	outer := Rect(0, 0, 10, 10)
	inner := Rect(2, 2, 4, 4)
	if !Contains(outer, inner) {
		t.Error("outer should contain inner")
	}
	if Contains(inner, outer) {
		t.Error("inner should not contain outer")
	}
	straddling := Rect(8, 8, 12, 12)
	if Contains(outer, straddling) {
		t.Error("outer should not contain a straddling rect")
	}
}

func TestPointContainsOnlyItself(t *testing.T) {
	p := Point{1, 2}
	if !Contains(p, Point{1, 2}) {
		t.Error("point should contain an equal point")
	}
	if Contains(p, Point{1, 3}) {
		t.Error("point should not contain a different point")
	}
	if Contains(p, Rect(0, 0, 1, 1)) {
		t.Error("point should not contain a polygon")
	}
}

func TestDistancePointPoint(t *testing.T) {
	d := Distance(Point{0, 0}, Point{3, 4})
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("got %v, want 5", d)
	}
}

func TestDistancePointPolygon(t *testing.T) {
	r := Rect(0, 0, 10, 10)
	if d := Distance(Point{5, 5}, r); d != 0 {
		t.Errorf("inside point: distance %v, want 0", d)
	}
	if d := Distance(Point{13, 14}, r); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner distance %v, want 5", d)
	}
	if d := Distance(Point{5, -2}, r); math.Abs(d-2) > 1e-12 {
		t.Errorf("edge distance %v, want 2", d)
	}
	if d := Distance(r, Point{5, -2}); math.Abs(d-2) > 1e-12 {
		t.Errorf("distance should be symmetric, got %v", d)
	}
}

func TestDWithin(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if !DWithin(a, b, 5) {
		t.Error("exactly at range should be within")
	}
	if DWithin(a, b, 4.999) {
		t.Error("just outside range should not be within")
	}
}

func TestBounds(t *testing.T) {
	pg := Polygon{Ring: []Point{{3, -1}, {-2, 5}, {7, 2}}}
	minX, minY, maxX, maxY := pg.Bounds()
	if minX != -2 || minY != -1 || maxX != 7 || maxY != 5 {
		t.Fatalf("bounds = (%v,%v,%v,%v)", minX, minY, maxX, maxY)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		d1, d2 := Distance(a, b), Distance(b, a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsCentroidProperty(t *testing.T) {
	// The centroid of any rectangle is inside it.
	f := func(x, y float64, w, h uint8) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		fw, fh := float64(w)+1, float64(h)+1
		r := Rect(x, y, x+fw, y+fh)
		return Contains(r, Point{x + fw/2, y + fh/2})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseWKTRoundTripProperty(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := Point{x, y}
		g, err := Parse(p.WKT())
		return err == nil && g == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
