package geo

import "testing"

func BenchmarkRTreeInsert(b *testing.B) {
	tr := NewRTree(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Point{float64(i % 1000), float64(i / 1000)}, i)
	}
}

func BenchmarkRTreeSearchWindow(b *testing.B) {
	tr := NewRTree(0)
	for i := 0; i < 100000; i++ {
		tr.Insert(Point{float64(i % 1000), float64(i / 1000)}, i)
	}
	q := Rect(400, 30, 450, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.SearchIntersecting(q, func(Geometry, any) bool {
			count++
			return true
		})
	}
}

func BenchmarkPolygonContains(b *testing.B) {
	pg := Polygon{Ring: []Point{{0, 0}, {10, 0}, {12, 5}, {10, 10}, {0, 10}, {-2, 5}}}
	p := Point{5, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contains(pg, p)
	}
}
