package geo

// RTree is an in-memory Guttman R-tree with quadratic split, the spatial
// index that stands in for PostGIS's GiST indexes in the location-aware
// case study (§V). It indexes geometries by bounding box; exact predicate
// checks are the caller's job (the executor re-verifies ST_Contains /
// ST_DWithin on candidates).
type RTree struct {
	root       *rnode
	maxEntries int
	size       int
}

type rect struct {
	minX, minY, maxX, maxY float64
}

func rectOf(g Geometry) rect {
	minX, minY, maxX, maxY := g.Bounds()
	return rect{minX, minY, maxX, maxY}
}

func (r rect) intersects(o rect) bool {
	return r.minX <= o.maxX && o.minX <= r.maxX && r.minY <= o.maxY && o.minY <= r.maxY
}

func (r rect) union(o rect) rect {
	return rect{
		minX: minf(r.minX, o.minX), minY: minf(r.minY, o.minY),
		maxX: maxf(r.maxX, o.maxX), maxY: maxf(r.maxY, o.maxY),
	}
}

func (r rect) area() float64 { return (r.maxX - r.minX) * (r.maxY - r.minY) }

func (r rect) enlargement(o rect) float64 { return r.union(o).area() - r.area() }

func (r rect) expandBy(d float64) rect {
	return rect{r.minX - d, r.minY - d, r.maxX + d, r.maxY + d}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// rentry is one slot of a node: a child pointer for internal nodes, or a
// stored geometry + payload for leaves.
type rentry struct {
	box   rect
	child *rnode
	geom  Geometry
	data  any
}

type rnode struct {
	entries []rentry
	leaf    bool
}

func (n *rnode) box() rect {
	b := n.entries[0].box
	for _, e := range n.entries[1:] {
		b = b.union(e.box)
	}
	return b
}

// DefaultRTreeFanout is the node capacity used when NewRTree gets a value
// below 4.
const DefaultRTreeFanout = 16

// NewRTree creates an empty tree with the given node capacity.
func NewRTree(maxEntries int) *RTree {
	if maxEntries < 4 {
		maxEntries = DefaultRTreeFanout
	}
	return &RTree{root: &rnode{leaf: true}, maxEntries: maxEntries}
}

// Len returns the number of stored entries.
func (t *RTree) Len() int { return t.size }

// Insert stores a geometry with an associated payload.
func (t *RTree) Insert(g Geometry, data any) {
	e := rentry{box: rectOf(g), geom: g, data: data}
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &rnode{
			leaf: false,
			entries: []rentry{
				{box: old.box(), child: old},
				{box: split.box(), child: split},
			},
		}
	}
	t.size++
}

func (t *RTree) insert(n *rnode, e rentry) *rnode {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	// Choose the child needing least enlargement (ties by smaller area).
	best := 0
	bestEnl := n.entries[0].box.enlargement(e.box)
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].box.enlargement(e.box)
		if enl < bestEnl || (enl == bestEnl && n.entries[i].box.area() < n.entries[best].box.area()) {
			best, bestEnl = i, enl
		}
	}
	split := t.insert(n.entries[best].child, e)
	n.entries[best].box = n.entries[best].child.box()
	if split != nil {
		n.entries = append(n.entries, rentry{box: split.box(), child: split})
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

// splitNode performs a quadratic split, mutating n in place and returning
// the new sibling.
func (t *RTree) splitNode(n *rnode) *rnode {
	entries := n.entries
	// Pick the pair wasting the most area as seeds.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].box.union(entries[j].box).area() -
				entries[i].box.area() - entries[j].box.area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := []rentry{entries[s1]}
	g2 := []rentry{entries[s2]}
	b1, b2 := entries[s1].box, entries[s2].box
	minFill := (t.maxEntries + 1) / 2
	var rest []rentry
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when a group must take everything to reach
		// minimum fill.
		if len(g1)+len(rest) == minFill {
			g1 = append(g1, rest...)
			for _, e := range rest {
				b1 = b1.union(e.box)
			}
			break
		}
		if len(g2)+len(rest) == minFill {
			g2 = append(g2, rest...)
			for _, e := range rest {
				b2 = b2.union(e.box)
			}
			break
		}
		// Pick the entry with maximal preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := b1.enlargement(e.box)
			d2 := b2.enlargement(e.box)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1, d2 := b1.enlargement(e.box), b2.enlargement(e.box)
		if d1 < d2 || (d1 == d2 && b1.area() <= b2.area()) {
			g1 = append(g1, e)
			b1 = b1.union(e.box)
		} else {
			g2 = append(g2, e)
			b2 = b2.union(e.box)
		}
	}
	n.entries = g1
	return &rnode{entries: g2, leaf: n.leaf}
}

// Delete removes one entry whose payload equals data (compared with ==).
// It returns false when no such entry exists. Nodes are not rebalanced;
// like the B+-tree, empty nodes are tolerated and pruned opportunistically.
func (t *RTree) Delete(g Geometry, data any) bool {
	if t.remove(t.root, rectOf(g), data) {
		t.size--
		// Collapse a root with a single internal child.
		for !t.root.leaf && len(t.root.entries) == 1 {
			t.root = t.root.entries[0].child
		}
		return true
	}
	return false
}

func (t *RTree) remove(n *rnode, box rect, data any) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.data == data {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := 0; i < len(n.entries); i++ {
		e := n.entries[i]
		if !e.box.intersects(box) {
			continue
		}
		if t.remove(e.child, box, data) {
			if len(e.child.entries) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				n.entries[i].box = e.child.box()
			}
			return true
		}
	}
	return false
}

// SearchIntersecting visits every entry whose bounding box intersects the
// bounding box of q, stopping when fn returns false.
func (t *RTree) SearchIntersecting(q Geometry, fn func(g Geometry, data any) bool) {
	t.searchRect(rectOf(q), fn)
}

// SearchWithin visits every entry whose bounding box lies within dist of
// q's bounding box (the candidate set for ST_DWithin).
func (t *RTree) SearchWithin(q Geometry, dist float64, fn func(g Geometry, data any) bool) {
	t.searchRect(rectOf(q).expandBy(dist), fn)
}

func (t *RTree) searchRect(q rect, fn func(Geometry, any) bool) {
	var walk func(n *rnode) bool
	walk = func(n *rnode) bool {
		for _, e := range n.entries {
			if !e.box.intersects(q) {
				continue
			}
			if n.leaf {
				if !fn(e.geom, e.data) {
					return false
				}
			} else if !walk(e.child) {
				return false
			}
		}
		return true
	}
	if t.size > 0 {
		walk(t.root)
	}
}
