package geo

import (
	"testing"
	"testing/quick"
)

func TestRTreeInsertSearch(t *testing.T) {
	tr := NewRTree(4)
	// A 10×10 grid of points.
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			tr.Insert(Point{float64(x), float64(y)}, x*10+y)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Query a 3×3 window.
	var got []int
	tr.SearchIntersecting(Rect(2, 2, 4, 4), func(g Geometry, data any) bool {
		got = append(got, data.(int))
		return true
	})
	if len(got) != 9 {
		t.Fatalf("window hits = %d, want 9: %v", len(got), got)
	}
	// Empty window.
	count := 0
	tr.SearchIntersecting(Rect(50, 50, 60, 60), func(Geometry, any) bool {
		count++
		return true
	})
	if count != 0 {
		t.Fatalf("empty window hits = %d", count)
	}
}

func TestRTreeSearchWithin(t *testing.T) {
	tr := NewRTree(8)
	tr.Insert(Point{0, 0}, "origin")
	tr.Insert(Point{10, 0}, "east")
	tr.Insert(Point{0, 10}, "north")
	var got []string
	tr.SearchWithin(Point{1, 1}, 2, func(_ Geometry, data any) bool {
		got = append(got, data.(string))
		return true
	})
	// Bounding-box candidates within distance 2 of (1,1): only the origin.
	if len(got) != 1 || got[0] != "origin" {
		t.Fatalf("within hits: %v", got)
	}
	// Widening the distance picks up the others (bbox filter only).
	got = nil
	tr.SearchWithin(Point{1, 1}, 10, func(_ Geometry, data any) bool {
		got = append(got, data.(string))
		return true
	})
	if len(got) != 3 {
		t.Fatalf("wide within hits: %v", got)
	}
}

func TestRTreeEarlyStop(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 50; i++ {
		tr.Insert(Point{float64(i % 7), float64(i / 7)}, i)
	}
	count := 0
	tr.SearchIntersecting(Rect(-1, -1, 10, 10), func(Geometry, any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRTreeDelete(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 40; i++ {
		tr.Insert(Point{float64(i), float64(i)}, i)
	}
	for i := 0; i < 40; i += 2 {
		if !tr.Delete(Point{float64(i), float64(i)}, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(Point{0, 0}, 0) {
		t.Fatal("double delete should fail")
	}
	if tr.Len() != 20 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	var got []int
	tr.SearchIntersecting(Rect(-1, -1, 100, 100), func(_ Geometry, data any) bool {
		got = append(got, data.(int))
		return true
	})
	if len(got) != 20 {
		t.Fatalf("surviving entries: %d", len(got))
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("deleted entry %d still present", v)
		}
	}
}

func TestRTreeDeleteAllReinsert(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 30; i++ {
		tr.Insert(Point{float64(i), 0}, i)
	}
	for i := 0; i < 30; i++ {
		if !tr.Delete(Point{float64(i), 0}, i) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Insert(Point{5, 5}, "back")
	found := false
	tr.SearchIntersecting(Point{5, 5}, func(_ Geometry, data any) bool {
		found = data.(string) == "back"
		return false
	})
	if !found {
		t.Fatal("reinsert after drain failed")
	}
}

func TestRTreePolygonEntries(t *testing.T) {
	tr := NewRTree(8)
	tr.Insert(Rect(0, 0, 10, 10), "A")
	tr.Insert(Rect(20, 20, 30, 30), "B")
	tr.Insert(Rect(5, 5, 25, 25), "C") // overlaps both
	var got []string
	tr.SearchIntersecting(Point{7, 7}, func(_ Geometry, data any) bool {
		got = append(got, data.(string))
		return true
	})
	if len(got) != 2 { // A and C contain (7,7) in bbox terms
		t.Fatalf("polygon hits: %v", got)
	}
}

func TestRTreeMatchesLinearScanProperty(t *testing.T) {
	f := func(pts []struct{ X, Y int8 }, qx, qy, qw, qh int8) bool {
		tr := NewRTree(4)
		for i, p := range pts {
			tr.Insert(Point{float64(p.X), float64(p.Y)}, i)
		}
		w := float64(qw)
		if w < 0 {
			w = -w
		}
		h := float64(qh)
		if h < 0 {
			h = -h
		}
		q := Rect(float64(qx), float64(qy), float64(qx)+w, float64(qy)+h)
		want := map[int]bool{}
		for i, p := range pts {
			if float64(p.X) >= float64(qx) && float64(p.X) <= float64(qx)+w &&
				float64(p.Y) >= float64(qy) && float64(p.Y) <= float64(qy)+h {
				want[i] = true
			}
		}
		got := map[int]bool{}
		tr.SearchIntersecting(q, func(_ Geometry, data any) bool {
			got[data.(int)] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
