// Package geo implements the planar geometry primitives that back the
// spatial SQL functions (ST_Contains, ST_Distance, ST_DWithin) used by the
// location-aware recommendation case study. It is a deliberately small
// stand-in for PostGIS: points and simple polygons on a Euclidean plane.
package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Geometry is a planar shape. The two concrete kinds are Point and Polygon.
type Geometry interface {
	// Kind returns "POINT" or "POLYGON".
	Kind() string
	// WKT renders the geometry in a WKT-like textual form that Parse accepts.
	WKT() string
	// Bounds returns the axis-aligned bounding box (minX, minY, maxX, maxY).
	Bounds() (minX, minY, maxX, maxY float64)
}

// Point is a location on the plane. For the POI datasets X is longitude-like
// and Y is latitude-like, but all math is planar Euclidean.
type Point struct {
	X, Y float64
}

// Kind implements Geometry.
func (p Point) Kind() string { return "POINT" }

// WKT implements Geometry.
func (p Point) WKT() string {
	return fmt.Sprintf("POINT(%s %s)", fmtFloat(p.X), fmtFloat(p.Y))
}

// Bounds implements Geometry.
func (p Point) Bounds() (float64, float64, float64, float64) { return p.X, p.Y, p.X, p.Y }

// Polygon is a simple (non-self-intersecting) ring of vertices. The ring is
// implicitly closed: the last vertex connects back to the first.
type Polygon struct {
	Ring []Point
}

// Kind implements Geometry.
func (pg Polygon) Kind() string { return "POLYGON" }

// WKT implements Geometry.
func (pg Polygon) WKT() string {
	var sb strings.Builder
	sb.WriteString("POLYGON((")
	for i, p := range pg.Ring {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmtFloat(p.X))
		sb.WriteByte(' ')
		sb.WriteString(fmtFloat(p.Y))
	}
	sb.WriteString("))")
	return sb.String()
}

// Bounds implements Geometry.
func (pg Polygon) Bounds() (minX, minY, maxX, maxY float64) {
	if len(pg.Ring) == 0 {
		return 0, 0, 0, 0
	}
	minX, minY = pg.Ring[0].X, pg.Ring[0].Y
	maxX, maxY = minX, minY
	for _, p := range pg.Ring[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, minY, maxX, maxY
}

// Rect returns the rectangle polygon with the given opposite corners.
func Rect(minX, minY, maxX, maxY float64) Polygon {
	return Polygon{Ring: []Point{
		{minX, minY}, {maxX, minY}, {maxX, maxY}, {minX, maxY},
	}}
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Distance returns the Euclidean distance between the closest points of a
// and b. Point-point and point-polygon pairs are supported; polygon-polygon
// distance is approximated by the minimum vertex-to-edge distance (adequate
// for the filters in the case study, which only ever use points on one side).
func Distance(a, b Geometry) float64 {
	switch ga := a.(type) {
	case Point:
		switch gb := b.(type) {
		case Point:
			return math.Hypot(ga.X-gb.X, ga.Y-gb.Y)
		case Polygon:
			return pointPolygonDistance(ga, gb)
		}
	case Polygon:
		switch gb := b.(type) {
		case Point:
			return pointPolygonDistance(gb, ga)
		case Polygon:
			d := math.Inf(1)
			for _, p := range ga.Ring {
				d = math.Min(d, pointPolygonDistance(p, gb))
			}
			for _, p := range gb.Ring {
				d = math.Min(d, pointPolygonDistance(p, ga))
			}
			return d
		}
	}
	return math.NaN()
}

// DWithin reports whether a and b are within dist of each other.
func DWithin(a, b Geometry, dist float64) bool {
	return Distance(a, b) <= dist
}

// Contains reports whether the outer geometry contains the inner one.
// A polygon contains a point when the point is inside or on the ring
// (ray-casting with an explicit boundary check). A polygon contains a
// polygon when it contains every vertex. A point contains only itself.
func Contains(outer, inner Geometry) bool {
	switch o := outer.(type) {
	case Point:
		if i, ok := inner.(Point); ok {
			return o == i
		}
		return false
	case Polygon:
		switch i := inner.(type) {
		case Point:
			return polygonContainsPoint(o, i)
		case Polygon:
			for _, p := range i.Ring {
				if !polygonContainsPoint(o, p) {
					return false
				}
			}
			return len(i.Ring) > 0
		}
	}
	return false
}

func polygonContainsPoint(pg Polygon, p Point) bool {
	n := len(pg.Ring)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Ring[i], pg.Ring[j]
		if onSegment(a, b, p) {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y) + a.X
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

const segEps = 1e-12

func onSegment(a, b, p Point) bool {
	cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
	if math.Abs(cross) > segEps*math.Max(1, math.Hypot(b.X-a.X, b.Y-a.Y)) {
		return false
	}
	dot := (p.X-a.X)*(b.X-a.X) + (p.Y-a.Y)*(b.Y-a.Y)
	if dot < 0 {
		return false
	}
	return dot <= (b.X-a.X)*(b.X-a.X)+(b.Y-a.Y)*(b.Y-a.Y)
}

func pointPolygonDistance(p Point, pg Polygon) float64 {
	if polygonContainsPoint(pg, p) {
		return 0
	}
	n := len(pg.Ring)
	d := math.Inf(1)
	for i := 0; i < n; i++ {
		a, b := pg.Ring[i], pg.Ring[(i+1)%n]
		d = math.Min(d, pointSegmentDistance(p, a, b))
	}
	return d
}

func pointSegmentDistance(p, a, b Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	len2 := dx*dx + dy*dy
	if len2 == 0 {
		return math.Hypot(p.X-a.X, p.Y-a.Y)
	}
	t := ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / len2
	t = math.Max(0, math.Min(1, t))
	return math.Hypot(p.X-(a.X+t*dx), p.Y-(a.Y+t*dy))
}

// Parse parses the WKT-like forms produced by WKT:
//
//	POINT(x y)
//	POLYGON((x1 y1, x2 y2, ...))
func Parse(s string) (Geometry, error) {
	t := strings.TrimSpace(s)
	upper := strings.ToUpper(t)
	switch {
	case strings.HasPrefix(upper, "POINT"):
		body, err := parens(t[len("POINT"):])
		if err != nil {
			return nil, fmt.Errorf("geo: parse %q: %w", s, err)
		}
		p, err := parsePoint(body)
		if err != nil {
			return nil, fmt.Errorf("geo: parse %q: %w", s, err)
		}
		return p, nil
	case strings.HasPrefix(upper, "POLYGON"):
		body, err := parens(t[len("POLYGON"):])
		if err != nil {
			return nil, fmt.Errorf("geo: parse %q: %w", s, err)
		}
		ring, err := parens(body)
		if err != nil {
			return nil, fmt.Errorf("geo: parse %q: %w", s, err)
		}
		var pg Polygon
		for _, part := range strings.Split(ring, ",") {
			p, err := parsePoint(part)
			if err != nil {
				return nil, fmt.Errorf("geo: parse %q: %w", s, err)
			}
			pg.Ring = append(pg.Ring, p)
		}
		// Drop an explicit closing vertex equal to the first one.
		if n := len(pg.Ring); n > 1 && pg.Ring[0] == pg.Ring[n-1] {
			pg.Ring = pg.Ring[:n-1]
		}
		if len(pg.Ring) < 3 {
			return nil, fmt.Errorf("geo: parse %q: polygon needs at least 3 vertices", s)
		}
		return pg, nil
	}
	return nil, fmt.Errorf("geo: parse %q: unknown geometry kind", s)
}

func parens(s string) (string, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "(") || !strings.HasSuffix(t, ")") {
		return "", fmt.Errorf("expected parenthesized body, got %q", s)
	}
	return t[1 : len(t)-1], nil
}

func parsePoint(s string) (Point, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) != 2 {
		return Point{}, fmt.Errorf("expected \"x y\", got %q", s)
	}
	x, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Point{}, err
	}
	y, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Point{}, err
	}
	return Point{X: x, Y: y}, nil
}
