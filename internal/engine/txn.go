package engine

import (
	"context"
	"fmt"
	"strings"

	"recdb/internal/catalog"
	"recdb/internal/sql"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// Mutation kinds, mirroring the WAL's logical record kinds: the recdb
// layer translates a committed statement's or transaction's mutations
// one-to-one into wal.Record entries.
const (
	// MutInsert records that Row was inserted into Table.
	MutInsert byte = 'I'
	// MutDelete records that Old was deleted from Table.
	MutDelete byte = 'D'
	// MutUpdate records that Old became Row in Table.
	MutUpdate byte = 'U'
	// MutStmt records a DDL statement by its source text. DDL is
	// autocommit-only (refused inside explicit transactions), so it is
	// never undone — only replayed.
	MutStmt byte = 'S'
)

// Mutation is one applied tuple-level change (or, for DDL, the statement
// text). Rows are carried by value, not by RID: row identity on the undo
// and replay paths is content — RIDs are not stable across a snapshot
// reload, which re-inserts rows compacting slots.
type Mutation struct {
	Kind  byte
	Table string
	Row   types.Row // inserted / post-update row (MutInsert, MutUpdate)
	Old   types.Row // deleted / pre-update row (MutDelete, MutUpdate)
	Text  string    // statement source text (MutStmt)
}

// rowsEqual compares two rows by content.
func rowsEqual(a, b types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// findRow locates a live row by content and returns its RID. Callers
// hold the table's write lock (recdb layer), so the location stays valid
// until the caller acts on it.
func findRow(tab *catalog.Table, want types.Row) (storage.RID, bool, error) {
	it := tab.Heap.Scan()
	defer it.Close()
	for {
		row, rid, ok, err := it.Next()
		if err != nil {
			return storage.RID{}, false, err
		}
		if !ok {
			return storage.RID{}, false, nil
		}
		if rowsEqual(row, want) {
			return rid, true, nil
		}
	}
}

// ApplyInsert applies a logical insert record directly to the heap and
// indexes — no parse, no plan. Crash recovery replays with this.
func (e *Engine) ApplyInsert(table string, row types.Row) error {
	tab, err := e.cat.Get(table)
	if err != nil {
		return err
	}
	if _, err := tab.Insert(row); err != nil {
		return err
	}
	return e.maintainTable(table, tab, []types.Row{row}, 1)
}

// ApplyDelete applies a logical delete record: the victim is located by
// content (any one of content-equal duplicates is interchangeable).
func (e *Engine) ApplyDelete(table string, old types.Row) error {
	tab, err := e.cat.Get(table)
	if err != nil {
		return err
	}
	rid, ok, err := findRow(tab, old)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("engine: delete of missing row in %q", table)
	}
	if err := tab.Delete(rid); err != nil {
		return err
	}
	return e.maintainTable(table, tab, nil, 1)
}

// ApplyUpdate applies a logical update record, locating the pre-image by
// content.
func (e *Engine) ApplyUpdate(table string, old, row types.Row) error {
	tab, err := e.cat.Get(table)
	if err != nil {
		return err
	}
	rid, ok, err := findRow(tab, old)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("engine: update of missing row in %q", table)
	}
	if _, err := tab.Update(rid, row); err != nil {
		return err
	}
	return e.maintainTable(table, tab, nil, 1)
}

// undoMutations reverses applied mutations in reverse order: the inverse
// of each tuple change, located by row content. It powers both statement
// atomicity (a multi-row statement that fails mid-way is backed out) and
// transaction ROLLBACK.
func (e *Engine) undoMutations(muts []Mutation) error {
	for i := len(muts) - 1; i >= 0; i-- {
		m := muts[i]
		tab, err := e.cat.Get(m.Table)
		if err != nil {
			return fmt.Errorf("engine: undo: %w", err)
		}
		switch m.Kind {
		case MutInsert:
			rid, ok, err := findRow(tab, m.Row)
			if err != nil {
				return fmt.Errorf("engine: undo insert in %q: %w", m.Table, err)
			}
			if !ok {
				return fmt.Errorf("engine: undo insert in %q: inserted row vanished", m.Table)
			}
			if err := tab.Delete(rid); err != nil {
				return fmt.Errorf("engine: undo insert in %q: %w", m.Table, err)
			}
		case MutDelete:
			if _, err := tab.Insert(m.Old); err != nil {
				return fmt.Errorf("engine: undo delete in %q: %w", m.Table, err)
			}
		case MutUpdate:
			rid, ok, err := findRow(tab, m.Row)
			if err != nil {
				return fmt.Errorf("engine: undo update in %q: %w", m.Table, err)
			}
			if !ok {
				return fmt.Errorf("engine: undo update in %q: updated row vanished", m.Table)
			}
			if _, err := tab.Update(rid, m.Old); err != nil {
				return fmt.Errorf("engine: undo update in %q: %w", m.Table, err)
			}
		default:
			return fmt.Errorf("engine: cannot undo %q mutation", m.Kind)
		}
	}
	return nil
}

// runMaintenance feeds the recommendation layer the changes a committed
// statement or transaction made: item-update statistics for inserted
// ratings, then the N% rebuild policy per table. Autocommit statements
// run it right after applying; transactions stage their mutations and
// run it once at COMMIT, so an eventually rolled-back transaction never
// perturbs model maintenance.
func (e *Engine) runMaintenance(muts []Mutation) error {
	type agg struct {
		name  string
		rows  []types.Row
		count int
	}
	var order []string
	per := make(map[string]*agg)
	for _, m := range muts {
		if m.Kind == MutStmt {
			continue
		}
		key := strings.ToLower(m.Table)
		a := per[key]
		if a == nil {
			a = &agg{name: m.Table}
			per[key] = a
			order = append(order, key)
		}
		if m.Kind == MutInsert {
			a.rows = append(a.rows, m.Row)
		}
		a.count++
	}
	for _, key := range order {
		a := per[key]
		tab, err := e.cat.Get(a.name)
		if err != nil {
			continue // table dropped since; nothing to maintain
		}
		if err := e.maintainTable(a.name, tab, a.rows, a.count); err != nil {
			return err
		}
	}
	return nil
}

// maintainTable records inserted items with every recommender cache on
// the table and counts changed rows toward the N% rebuild threshold.
func (e *Engine) maintainTable(table string, tab *catalog.Table, inserted []types.Row, count int) error {
	for _, r := range e.rec.List() {
		if !strings.EqualFold(r.Table, table) {
			continue
		}
		cache := e.cacheOf(r.Name)
		if cache == nil {
			continue
		}
		_, itemIdx, _, err := r.ResolveRatingColumns(tab.Schema)
		if err != nil {
			continue
		}
		for _, row := range inserted {
			if id, ok := row[itemIdx].AsInt(); ok {
				cache.RecordUpdate(id)
			}
		}
	}
	if count == 0 {
		return nil
	}
	return e.rec.NotifyInsert(table, count)
}

// Txn is one open multi-statement transaction. Statements apply eagerly
// — the transaction reads its own writes — while every change is also
// recorded as a Mutation for the commit-time WAL group append and for
// content-based undo on rollback. The first touch of each table pins a
// heap snapshot (the begin-state generation), so PR 7's copy-on-write
// machinery keeps every pre-image page reachable until the transaction
// resolves; Close/Commit/Rollback release the pins.
//
// A Txn is not safe for concurrent use; the recdb layer serializes
// explicit transactions and holds each touched table's write lock from
// first touch to resolution, which is what keeps eager apply sound:
// nothing else can mutate a touched table while the transaction is open.
type Txn struct {
	e    *Engine
	id   uint64
	muts []Mutation
	pins map[string]*storage.Snapshot
	done bool
}

// BeginTxn opens a transaction. The id is unique within this engine
// instance and tags the transaction's WAL records.
func (e *Engine) BeginTxn() *Txn {
	return &Txn{e: e, id: e.txnSeq.Add(1), pins: make(map[string]*storage.Snapshot)}
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Done reports whether the transaction has committed or rolled back.
func (t *Txn) Done() bool { return t.done }

// Tables returns the tables the transaction has touched (lower-cased),
// in no particular order.
func (t *Txn) Tables() []string {
	out := make([]string, 0, len(t.pins))
	for name := range t.pins {
		out = append(out, name)
	}
	return out
}

// pinTable pins the heap snapshot of a table on first touch.
func (t *Txn) pinTable(name string) error {
	key := strings.ToLower(name)
	if _, ok := t.pins[key]; ok {
		return nil
	}
	tab, err := t.e.cat.Get(name)
	if err != nil {
		return err
	}
	t.pins[key] = tab.Heap.Snapshot()
	return nil
}

func (t *Txn) releasePins() {
	for key, s := range t.pins {
		s.Close()
		delete(t.pins, key)
	}
}

// ExecParsed runs one statement inside the transaction.
func (t *Txn) ExecParsed(stmt sql.Statement, text string) (Result, error) {
	return t.ExecParsedCtx(context.Background(), stmt, text)
}

// ExecParsedCtx runs one statement inside the transaction. DML applies
// eagerly and is staged for the commit-time WAL append; SELECT/EXPLAIN
// read through the current state and therefore see the transaction's own
// writes. DDL and nested transaction control are refused. A statement
// that fails mid-way is backed out; the transaction stays open with its
// earlier statements intact.
func (t *Txn) ExecParsedCtx(ctx context.Context, stmt sql.Statement, text string) (Result, error) {
	if t.done {
		return Result{}, fmt.Errorf("engine: transaction already resolved")
	}
	switch s := stmt.(type) {
	case *sql.Select:
		res, err := t.e.queryCtx(ctx, s)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(res.Rows))}, nil
	case *sql.Explain:
		res, err := t.e.explain(s)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(res.Rows))}, nil
	case *sql.Insert, *sql.Delete, *sql.Update:
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("engine: statement not started: %w", err)
		}
		if err := t.pinTable(dmlTable(stmt)); err != nil {
			return Result{}, err
		}
		res, muts, err := t.e.execMutation(stmt)
		if err != nil {
			if uerr := t.e.undoMutations(muts); uerr != nil {
				return res, fmt.Errorf("%w (and undo failed: %w)", err, uerr)
			}
			return res, err
		}
		t.muts = append(t.muts, muts...)
		return res, nil
	case *sql.Begin:
		return Result{}, fmt.Errorf("engine: BEGIN inside an open transaction")
	default:
		_ = s
		return Result{}, fmt.Errorf("engine: %s is not allowed inside a transaction", stmtName(stmt))
	}
}

// Query runs a SELECT inside the transaction (it sees the transaction's
// own writes, since writes apply eagerly).
func (t *Txn) QueryCtx(ctx context.Context, sel *sql.Select) (*QueryResult, error) {
	if t.done {
		return nil, fmt.Errorf("engine: transaction already resolved")
	}
	return t.e.queryCtx(ctx, sel)
}

// Commit resolves the transaction: the staged mutations go to the commit
// hook as one group (the recdb hook appends them to the WAL as a single
// atomic batch), then staged model maintenance runs. An empty
// transaction commits without touching the hook. On a hook error the
// writes remain applied in memory but are not durable — the same
// applied-but-not-logged ambiguity an autocommit statement reports.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("engine: transaction already resolved")
	}
	t.done = true
	defer t.releasePins()
	if len(t.muts) == 0 {
		return nil
	}
	if t.e.commitHook != nil {
		if err := t.e.commitHook(t.id, t.muts); err != nil {
			return err
		}
	}
	return t.e.runMaintenance(t.muts)
}

// Rollback undoes every staged mutation in reverse order and releases
// the snapshot pins. Rolling back an already-resolved transaction is a
// no-op, so teardown paths can call it unconditionally.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	defer t.releasePins()
	return t.e.undoMutations(t.muts)
}

// dmlTable names the target table of a DML statement.
func dmlTable(stmt sql.Statement) string {
	switch s := stmt.(type) {
	case *sql.Insert:
		return s.Table
	case *sql.Delete:
		return s.Table
	case *sql.Update:
		return s.Table
	}
	return ""
}

// stmtName renders a statement kind for error messages.
func stmtName(stmt sql.Statement) string {
	switch stmt.(type) {
	case *sql.CreateTable:
		return "CREATE TABLE"
	case *sql.DropTable:
		return "DROP TABLE"
	case *sql.CreateIndex:
		return "CREATE INDEX"
	case *sql.CreateRecommender:
		return "CREATE RECOMMENDER"
	case *sql.DropRecommender:
		return "DROP RECOMMENDER"
	case *sql.Commit:
		return "COMMIT"
	case *sql.Rollback:
		return "ROLLBACK"
	case *sql.Begin:
		return "BEGIN"
	}
	return fmt.Sprintf("%T", stmt)
}
