package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReaders exercises parallel recommendation queries against
// one engine (run with -race to check synchronization).
func TestConcurrentReaders(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				user := 1 + (worker+i)%4
				q, err := e.Query(fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R
					RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
					WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 3`, user))
				if err != nil {
					errs <- err
					return
				}
				_ = q
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWithWrites mixes rating inserts (which can trigger
// model rebuilds and cache invalidation) with recommendation queries.
func TestConcurrentReadersWithWrites(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if err := e.Materialize("GeneralRec"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				_, err := e.Query(`SELECT R.iid FROM ratings R
					RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
					WHERE R.uid = 1`)
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Writer: inserts trigger maintenance counting (and possibly rebuilds).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			_, err := e.Exec(fmt.Sprintf("INSERT INTO ratings VALUES (%d, %d, %d)",
				10+i, 1+i%3, 1+i%5))
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	// Maintenance runner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := e.RunCacheMaintenance("GeneralRec"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The engine remains consistent: a final query works.
	q, err := e.Query(`SELECT COUNT(*) FROM ratings`)
	if err != nil || q.Rows[0][0].Int() != 22 {
		t.Fatalf("final state: %v %v", q, err)
	}
}
