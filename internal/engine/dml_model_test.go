package engine

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

// TestDMLAgainstModel runs random INSERT/UPDATE/DELETE sequences against
// the engine and an in-memory map model, then checks that SELECTs agree:
// end-to-end validation of the heap, indexes, predicate evaluation, and
// DML statement execution.
func TestDMLAgainstModel(t *testing.T) {
	type op struct {
		Kind byte // insert/update/delete selector
		Key  uint8
		Val  int8
	}
	f := func(ops []op) bool {
		e := New(Config{})
		if _, err := e.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
			return false
		}
		model := map[int64]int64{}
		for _, o := range ops {
			k := int64(o.Key % 32)
			v := int64(o.Val)
			switch o.Kind % 3 {
			case 0: // INSERT (duplicate pk must fail and change nothing)
				_, err := e.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", k, v))
				if _, exists := model[k]; exists {
					if err == nil {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					model[k] = v
				}
			case 1: // UPDATE
				res, err := e.Exec(fmt.Sprintf("UPDATE kv SET v = %d WHERE k = %d", v, k))
				if err != nil {
					return false
				}
				if _, exists := model[k]; exists {
					if res.RowsAffected != 1 {
						return false
					}
					model[k] = v
				} else if res.RowsAffected != 0 {
					return false
				}
			case 2: // DELETE
				res, err := e.Exec(fmt.Sprintf("DELETE FROM kv WHERE k = %d", k))
				if err != nil {
					return false
				}
				if _, exists := model[k]; exists {
					if res.RowsAffected != 1 {
						return false
					}
					delete(model, k)
				} else if res.RowsAffected != 0 {
					return false
				}
			}
		}
		// Full scan agrees with the model.
		q, err := e.Query("SELECT k, v FROM kv ORDER BY k")
		if err != nil || len(q.Rows) != len(model) {
			return false
		}
		var keys []int64
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for i, k := range keys {
			if q.Rows[i][0].Int() != k || q.Rows[i][1].Int() != model[k] {
				return false
			}
		}
		// Point lookups agree too (exercises the pk index after churn).
		for k, v := range model {
			q, err := e.Query(fmt.Sprintf("SELECT v FROM kv WHERE k = %d", k))
			if err != nil || len(q.Rows) != 1 || q.Rows[0][0].Int() != v {
				return false
			}
		}
		// COUNT matches.
		q, err = e.Query("SELECT COUNT(*) FROM kv")
		if err != nil || q.Rows[0][0].Int() != int64(len(model)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
