package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"recdb/internal/rec"
)

// TestDifferentialSQLVsModel cross-checks the whole SQL path (parser →
// planner → operators → model tables) against the in-memory model: for
// random rating matrices, the RECOMMEND clause must return exactly the
// model's predictions for every user's unseen items, under every plan
// variant.
func TestDifferentialSQLVsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func() int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 33) & 0x7FFFFFFF
			return v
		}
		// Random sparse matrix: up to 12 users × 16 items.
		var ratings []rec.Rating
		var rows []string
		seen := map[[2]int64]bool{}
		n := 10 + int(next()%40)
		for len(ratings) < n {
			u := 1 + next()%12
			i := 1 + next()%16
			if seen[[2]int64{u, i}] {
				continue
			}
			seen[[2]int64{u, i}] = true
			v := float64(1 + next()%5)
			ratings = append(ratings, rec.Rating{User: u, Item: i, Value: v})
			rows = append(rows, fmt.Sprintf("(%d, %d, %g)", u, i, v))
		}

		e := New(Config{})
		if _, err := e.Exec("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)"); err != nil {
			return false
		}
		if _, err := e.Exec("INSERT INTO ratings VALUES " + strings.Join(rows, ", ")); err != nil {
			return false
		}
		if _, err := e.Exec(`CREATE RECOMMENDER DiffRec ON ratings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
			return false
		}
		model, err := rec.Build(ratings, rec.ItemCosCF, rec.BuildOptions{})
		if err != nil {
			return false
		}

		check := func() bool {
			q, err := e.Query(`SELECT R.uid, R.iid, R.ratingval FROM ratings R
				RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF`)
			if err != nil {
				return false
			}
			want := map[[2]int64]float64{}
			for _, u := range model.Users() {
				for _, i := range model.Items() {
					if _, rated := model.Seen(u, i); rated {
						continue
					}
					p, ok := model.Predict(u, i)
					if !ok {
						p = 0
					}
					want[[2]int64{u, i}] = p
				}
			}
			if len(q.Rows) != len(want) {
				return false
			}
			for _, r := range q.Rows {
				key := [2]int64{r[0].Int(), r[1].Int()}
				w, ok := want[key]
				if !ok || math.Abs(r[2].Float()-w) > 1e-9 {
					return false
				}
			}
			return true
		}

		// Plain plan.
		if !check() {
			return false
		}
		// Pushdown-disabled plan must agree.
		e.Planner().DisableFilterPushdown = true
		ok := check()
		e.Planner().DisableFilterPushdown = false
		if !ok {
			return false
		}
		// Per-user FilterRecommend plans must agree with the model too.
		for _, u := range model.Users() {
			q, err := e.Query(fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R
				RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
				WHERE R.uid = %d`, u))
			if err != nil {
				return false
			}
			for _, r := range q.Rows {
				p, ok := model.Predict(u, r[0].Int())
				if !ok {
					p = 0
				}
				if math.Abs(r[1].Float()-p) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexRecommendWithItemFilter checks iid pushdown through the
// RecScoreIndex path (Phase III of Algorithm 3) at the SQL level.
func TestIndexRecommendWithItemFilter(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if err := e.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND R.iid IN (2, 99)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "IndexRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 2 {
		t.Fatalf("item filter through index: %v", q.Rows)
	}
}
