package engine

import (
	"strings"
	"testing"

	"recdb/internal/types"
)

func TestGroupByAggregates(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT uid, COUNT(*), SUM(ratingval), AVG(ratingval),
		MIN(ratingval), MAX(ratingval)
		FROM ratings GROUP BY uid ORDER BY uid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 4 {
		t.Fatalf("groups: %v", q.Rows)
	}
	// User 2: 3 ratings summing to 10.
	r := q.Rows[1]
	if r[0].Int() != 2 || r[1].Int() != 3 || r[2].Float() != 10 {
		t.Fatalf("user 2 row: %v", r)
	}
	if r[3].Float() != 10.0/3 || r[4].Float() != 2 || r[5].Float() != 4.5 {
		t.Fatalf("user 2 avg/min/max: %v", r)
	}
	// Output column names are friendly.
	names := make([]string, q.Schema.Len())
	for i, c := range q.Schema.Columns {
		names[i] = c.Name
	}
	if names[0] != "uid" || names[1] != "count" || names[3] != "avg" {
		t.Fatalf("names: %v", names)
	}
}

func TestGlobalAggregate(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT COUNT(*), AVG(ratingval) FROM ratings`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 7 {
		t.Fatalf("global: %v", q.Rows)
	}
}

func TestHaving(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT uid, COUNT(*) AS n FROM ratings
		GROUP BY uid HAVING COUNT(*) >= 2 ORDER BY uid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 { // users 2 (3 ratings) and 3 (2 ratings)
		t.Fatalf("having: %v", q.Rows)
	}
	if q.Rows[0][0].Int() != 2 || q.Rows[1][0].Int() != 3 {
		t.Fatalf("having rows: %v", q.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT iid, COUNT(*) FROM ratings
		GROUP BY iid ORDER BY COUNT(*) DESC, iid ASC`)
	if err != nil {
		t.Fatal(err)
	}
	// Items 1 and 2 have 3 and 4 ratings... item 2: users 2,3,4 → wait,
	// count: item 1 rated by 1,2,3 (3), item 2 by 2,3,4 (3), item 3 by 2 (1).
	if len(q.Rows) != 3 || q.Rows[0][1].Int() != 3 || q.Rows[2][1].Int() != 1 {
		t.Fatalf("order by count: %v", q.Rows)
	}
	// Tie broken by iid ascending.
	if q.Rows[0][0].Int() != 1 || q.Rows[1][0].Int() != 2 {
		t.Fatalf("tie order: %v", q.Rows)
	}
}

// TestNonPersonalizedRecommendation expresses the paper's §II
// "non-personalized" recommender class in plain SQL: recommend the most
// highly rated items to everyone.
func TestNonPersonalizedRecommendation(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT iid, AVG(ratingval) AS score, COUNT(*) AS support
		FROM ratings
		GROUP BY iid
		HAVING COUNT(*) >= 2
		ORDER BY AVG(ratingval) DESC
		LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("non-personalized: %v", q.Rows)
	}
	// Item 1 avg (1.5+4.5+2)/3 ≈ 2.67 beats item 2 avg (3.5+1+1)/3 ≈ 1.83.
	if q.Rows[0][0].Int() != 1 || q.Rows[1][0].Int() != 2 {
		t.Fatalf("ranking: %v", q.Rows)
	}
}

func TestAggregateOverRecommend(t *testing.T) {
	// Aggregates compose with the RECOMMEND clause: the average predicted
	// rating per user.
	e := newMovieDB(t)
	createGeneralRec(t, e)
	q, err := e.Query(`SELECT R.uid, COUNT(*), AVG(R.ratingval) FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		GROUP BY R.uid ORDER BY R.uid`)
	if err != nil {
		t.Fatal(err)
	}
	// Users 1, 3, 4 have unseen items (user 2 rated everything).
	if len(q.Rows) != 3 {
		t.Fatalf("agg over recommend: %v", q.Rows)
	}
	if q.Rows[0][0].Int() != 1 || q.Rows[0][1].Int() != 2 {
		t.Fatalf("user 1 unseen count: %v", q.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT DISTINCT genre FROM movies ORDER BY genre`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 3 || q.Rows[0][0].Text() != "Action" {
		t.Fatalf("distinct: %v", q.Rows)
	}
	// DISTINCT with LIMIT dedups before limiting.
	q, err = e.Query(`SELECT DISTINCT uid FROM ratings ORDER BY uid LIMIT 2`)
	if err != nil || len(q.Rows) != 2 || q.Rows[1][0].Int() != 2 {
		t.Fatalf("distinct+limit: %v %v", q, err)
	}
}

func TestAggregateErrors(t *testing.T) {
	e := newMovieDB(t)
	bad := []string{
		`SELECT uid, ratingval FROM ratings GROUP BY uid`, // ungrouped column
		`SELECT COUNT(SUM(ratingval)) FROM ratings`,       // nested aggregate
		`SELECT * FROM ratings GROUP BY uid`,              // star with group by
		`SELECT SUM(*) FROM ratings`,                      // * outside COUNT
		`SELECT SUM(ratingval, uid) FROM ratings`,         // arity
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q): expected error", q)
		}
	}
}

func TestOrderByProjectionAlias(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT uid, ratingval * 2 AS dbl FROM ratings ORDER BY dbl DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][1].Float() != 9 {
		t.Fatalf("alias order: %v", q.Rows)
	}
}

func TestExplainPlain(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`EXPLAIN SELECT u.name, m.name FROM users u, movies m
		WHERE u.uid = m.mid AND u.age > 20`)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(q.Rows)
	for _, want := range []string{"Project", "HashJoin", "SeqScan on users", "SeqScan on movies", "Filter"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

func TestExplainRecommend(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	q, err := e.Query(`EXPLAIN SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(q.Rows)
	if !strings.Contains(text, "strategy: FilterRecommend") ||
		!strings.Contains(text, "FilterRecommend [ItemCosCF] (1 users, all items)") {
		t.Fatalf("explain:\n%s", text)
	}

	// After materialization the plan shows the index path with the pushed
	// limit.
	if err := e.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	q, err = e.Query(`EXPLAIN SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	text = planText(q.Rows)
	if !strings.Contains(text, "IndexRecommend on RecScoreIndex (1 users, limit 10 pushed down)") {
		t.Fatalf("explain after materialize:\n%s", text)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	e.Stats().Reset()
	if _, err := e.Query(`EXPLAIN SELECT R.uid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval`); err != nil {
		t.Fatal(err)
	}
	// Planning touches no heap pages for this query shape.
	reads, _, _ := e.Stats().Snapshot()
	if reads > 0 {
		t.Fatalf("EXPLAIN read %d pages", reads)
	}
}

func planText(rows []types.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r[0].Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestPopularityRecommenderEndToEnd(t *testing.T) {
	e := newMovieDB(t)
	if _, err := e.Exec(`CREATE RECOMMENDER PopRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING Popularity`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING Popularity
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	// User 1 rated item 1; items 2 and 3 are recommended by damped mean.
	if len(q.Rows) != 2 {
		t.Fatalf("popularity recommend: %v", q.Rows)
	}
	// Every user gets identical scores for the same unseen item.
	q4, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING Popularity
		WHERE R.uid = 4 AND R.iid = 3`)
	if err != nil || len(q4.Rows) != 1 {
		t.Fatalf("user 4: %v %v", q4, err)
	}
	q1, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING Popularity
		WHERE R.uid = 1 AND R.iid = 3`)
	if err != nil || len(q1.Rows) != 1 {
		t.Fatalf("user 1: %v %v", q1, err)
	}
	if q1.Rows[0][1].Float() != q4.Rows[0][1].Float() {
		t.Fatal("popularity scores should be user-independent")
	}
	// Composes with joins like any other algorithm.
	qj, err := e.Query(`SELECT M.name, R.ratingval FROM ratings R, movies M
		RECOMMEND R.iid TO R.uid ON R.ratingval USING Popularity
		WHERE R.uid = 1 AND M.mid = R.iid AND M.genre = 'Sci-Fi'`)
	if err != nil || len(qj.Rows) != 1 || qj.Rows[0][0].Text() != "The Matrix" {
		t.Fatalf("popularity join: %v %v", qj, err)
	}
	// Works with the RecScoreIndex too.
	if err := e.MaterializeUser("PopRec", 1); err != nil {
		t.Fatal(err)
	}
	qi, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING Popularity
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if qi.Explain.Strategy != "IndexRecommend" || len(qi.Rows) != 2 {
		t.Fatalf("popularity via index: %q %v", qi.Explain.Strategy, qi.Rows)
	}
}

func TestLikeBetweenInQueries(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT name FROM movies WHERE name LIKE 'The %'`)
	if err != nil || len(q.Rows) != 1 || q.Rows[0][0].Text() != "The Matrix" {
		t.Fatalf("LIKE: %v %v", q, err)
	}
	q, err = e.Query(`SELECT name FROM users WHERE age BETWEEN 20 AND 40 ORDER BY age`)
	if err != nil || len(q.Rows) != 2 {
		t.Fatalf("BETWEEN: %v %v", q, err)
	}
	// LIKE in HAVING via grouped text (max of genre).
	q, err = e.Query(`SELECT genre, COUNT(*) FROM movies GROUP BY genre HAVING genre LIKE 'S%' ORDER BY genre`)
	if err != nil || len(q.Rows) != 2 {
		t.Fatalf("LIKE in HAVING: %v %v", q, err)
	}
	// NOT BETWEEN composed with RECOMMEND rating predicate pushdown.
	createGeneralRec(t, e)
	q, err = e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND R.ratingval BETWEEN 1.0 AND 5.0`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "FilterRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	for _, r := range q.Rows {
		if r[1].Float() < 1 || r[1].Float() > 5 {
			t.Fatalf("rating pushdown leaked: %v", r)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query(`SELECT uid, iid FROM ratings ORDER BY uid, iid LIMIT 2 OFFSET 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("limit/offset: %v", q.Rows)
	}
	// Full ordering: (1,1),(2,1),(2,2),(2,3),(3,1),(3,2),(4,2); offset 3
	// starts at (2,3).
	if q.Rows[0][0].Int() != 2 || q.Rows[0][1].Int() != 3 {
		t.Fatalf("offset start: %v", q.Rows[0])
	}
	// OFFSET without LIMIT.
	q, err = e.Query(`SELECT uid, iid FROM ratings ORDER BY uid, iid OFFSET 5`)
	if err != nil || len(q.Rows) != 2 {
		t.Fatalf("offset only: %v %v", q, err)
	}
	// OFFSET past the end yields nothing.
	q, err = e.Query(`SELECT uid FROM ratings OFFSET 100`)
	if err != nil || len(q.Rows) != 0 {
		t.Fatalf("offset beyond: %v %v", q, err)
	}
	// With RECOMMEND + materialized index, OFFSET disables limit pushdown
	// but still answers correctly.
	createGeneralRec(t, e)
	if err := e.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	all, err := e.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval
		WHERE R.uid = 1 ORDER BY R.ratingval DESC, R.iid ASC`)
	if err != nil {
		t.Fatal(err)
	}
	page, err := e.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval
		WHERE R.uid = 1 ORDER BY R.ratingval DESC, R.iid ASC LIMIT 1 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Rows) != 1 || page.Rows[0][0].Int() != all.Rows[1][0].Int() {
		t.Fatalf("paged recommend: %v vs all %v", page.Rows, all.Rows)
	}
}

func TestIndexRecommendRatingBoundPushdown(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if err := e.MaterializeUser("GeneralRec", 2); err != nil {
		t.Fatal(err)
	}
	// User 2 rated everything, so materialization stores nothing; use a
	// user with unseen items instead.
	if err := e.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND R.ratingval <= 2.0
		ORDER BY R.ratingval DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "IndexRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	for _, r := range q.Rows {
		if r[1].Float() > 2.0 {
			t.Fatalf("bound leaked: %v", r)
		}
	}
	// Same answer as the online path.
	e.Planner().DisableIndexRecommend = true
	q2, err := e.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND R.ratingval <= 2.0
		ORDER BY R.ratingval DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != len(q2.Rows) {
		t.Fatalf("bound pushdown changed results: %d vs %d", len(q.Rows), len(q2.Rows))
	}
}
