// Package engine wires the subsystems into a working database: it
// dispatches SQL statements (DDL, DML, CREATE/DROP RECOMMENDER, and
// recommendation-aware SELECTs), owns the per-recommender cache managers,
// and connects rating inserts to model maintenance and histogram
// statistics.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recdb/internal/catalog"
	"recdb/internal/exec"
	"recdb/internal/expr"
	"recdb/internal/metrics"
	"recdb/internal/plan"
	"recdb/internal/rec"
	"recdb/internal/reccache"
	"recdb/internal/recindex"
	"recdb/internal/sql"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// Config tunes a new engine.
type Config struct {
	// PoolPages is the buffer-pool capacity per table (0 = default).
	PoolPages int
	// Rec configures model building and maintenance.
	Rec rec.Options
	// HotnessThreshold is the cache manager's HOTNESS-THRESHOLD (§IV-D).
	// The zero value selects 0.5.
	HotnessThreshold float64
	// CacheClock overrides the cache managers' clock (tests).
	CacheClock reccache.Clock
	// WALSyncEvery is consumed by the recdb layer's durable open paths:
	// it is the write-ahead log's group-commit factor (1 = fsync every
	// commit). The engine itself does not read it.
	WALSyncEvery int
	// WALSyncInterval bounds group-commit latency: with WALSyncEvery > 1,
	// the log fsyncs after that many commits or this long after the first
	// unsynced one, whichever comes first. Consumed by the recdb layer;
	// the engine itself does not read it.
	WALSyncInterval time.Duration
	// SnapshotRetain is consumed by the recdb layer's checkpoint path: how
	// many snapshot generations to keep on disk (0 = default 2). The
	// engine itself does not read it.
	SnapshotRetain int
}

// Engine is one embedded database instance.
type Engine struct {
	cat     *catalog.Catalog
	stats   *storage.Stats
	rec     *rec.Manager
	planner *plan.Planner
	cfg     Config
	reg     *metrics.Registry
	em      engineMetrics

	mu     sync.RWMutex
	caches map[string]*reccache.Manager // by lower-case recommender name

	// txnSeq issues transaction ids: explicit transactions and autocommit
	// statements whose WAL group spans more than one record.
	txnSeq atomic.Uint64

	commitHook CommitHook
}

// engineMetrics holds the engine-level instruments, resolved once at New
// so the query path never touches the registry's lock.
type engineMetrics struct {
	queries        *metrics.Counter
	rowsReturned   *metrics.Counter
	queryNanos     *metrics.Histogram
	recommend      *metrics.Counter // full-scan RECOMMEND plans
	filterRec      *metrics.Counter
	joinRec        *metrics.Counter
	indexRec       *metrics.Counter // RecScoreIndex probe plans
	vectorRec      *metrics.Counter // IVF probe plans
	cache          reccache.Metrics // shared by every recommender's cache
	analyzeQueries *metrics.Counter
}

// CommitHook observes every successfully applied group of mutations: an
// autocommit statement's tuple changes, or a whole transaction's at
// COMMIT. recdb.DB installs one that appends the group to the
// write-ahead log as a single atomic batch; a hook error is returned
// from Exec/ExecScript/Commit so the caller learns the changes are
// applied in memory but not yet durable. txn is 0 for a group that needs
// no transactional framing (a single-record statement); a non-zero id
// tells the hook to wrap the group in TxnBegin/TxnCommit records.
type CommitHook func(txn uint64, muts []Mutation) error

// SetCommitHook installs (or, with nil, removes) the commit hook. It is
// not synchronized with in-flight statements: install it before serving.
func (e *Engine) SetCommitHook(h CommitHook) { e.commitHook = h }

// Mutates reports whether a statement changes durable state (anything
// but SELECT/EXPLAIN and transaction control) and therefore must reach
// the commit hook. The recdb layer also uses it to pick its lock mode:
// mutating statements hold their table's write lock so the write-ahead
// log records same-table changes in apply order.
func Mutates(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Select, *sql.Explain, *sql.Begin, *sql.Commit, *sql.Rollback:
		return false
	}
	return true
}

// IsDML reports whether a statement is a tuple-level write
// (INSERT/DELETE/UPDATE) — the statements allowed inside a transaction,
// which the recdb layer serializes per table rather than globally.
func IsDML(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Insert, *sql.Delete, *sql.Update:
		return true
	}
	return false
}

// commitMuts routes an autocommit statement's applied mutations to the
// hook. A group of more than one record gets a transaction id so the
// hook's WAL batch is framed TxnBegin..TxnCommit and recovery applies it
// all-or-nothing — a multi-row INSERT stays as atomic under the logical
// WAL as it was as one statement-text record.
func (e *Engine) commitMuts(muts []Mutation) error {
	if e.commitHook == nil || len(muts) == 0 {
		return nil
	}
	var txn uint64
	if len(muts) > 1 {
		txn = e.txnSeq.Add(1)
	}
	return e.commitHook(txn, muts)
}

// New creates an empty engine.
func New(cfg Config) *Engine {
	if cfg.HotnessThreshold == 0 {
		cfg.HotnessThreshold = 0.5
	}
	reg := metrics.NewRegistry()
	stats := &storage.Stats{}
	bridgeStorageStats(reg, stats)
	cfg.Rec.Metrics = rec.Metrics{
		Builds:            reg.Counter("rec.builds"),
		BuildFailures:     reg.Counter("rec.build_failures"),
		BuildNanos:        reg.Histogram("rec.build_ns"),
		HealthTransitions: reg.Counter("rec.health_transitions"),
	}
	cat := catalog.New(stats, cfg.PoolPages)
	mgr := rec.NewManager(cat, cfg.Rec)
	e := &Engine{
		cat:    cat,
		stats:  stats,
		rec:    mgr,
		cfg:    cfg,
		reg:    reg,
		caches: make(map[string]*reccache.Manager),
	}
	e.em = engineMetrics{
		queries:        reg.Counter("exec.queries"),
		rowsReturned:   reg.Counter("exec.rows_returned"),
		queryNanos:     reg.Histogram("exec.query_ns"),
		recommend:      reg.Counter("plan.recommend"),
		filterRec:      reg.Counter("plan.filter_recommend"),
		joinRec:        reg.Counter("plan.join_recommend"),
		indexRec:       reg.Counter("plan.index_recommend"),
		vectorRec:      reg.Counter("plan.vector_recommend"),
		analyzeQueries: reg.Counter("exec.analyze_queries"),
		cache: reccache.Metrics{
			Queries:           reg.Counter("reccache.queries"),
			Updates:           reg.Counter("reccache.updates"),
			Runs:              reg.Counter("reccache.runs"),
			RunFailures:       reg.Counter("reccache.run_failures"),
			Admitted:          reg.Counter("reccache.admitted"),
			Evicted:           reg.Counter("reccache.evicted"),
			HealthTransitions: reg.Counter("reccache.health_transitions"),
		},
	}
	e.planner = &plan.Planner{
		Catalog: cat,
		Rec:     mgr,
		IndexFor: func(r *rec.Recommender) *recindex.Index {
			if c := e.cacheOf(r.Name); c != nil {
				return c.Index()
			}
			return nil
		},
		RecordQuery: func(r *rec.Recommender, users []int64) {
			if c := e.cacheOf(r.Name); c != nil {
				for _, u := range users {
					c.RecordQuery(u)
				}
			}
		},
		VecMetrics: &exec.VectorMetrics{
			ProbedCentroids: reg.Counter("ann.probed_centroids"),
			Candidates:      reg.Counter("ann.candidates"),
			ExactFallbacks:  reg.Counter("ann.exact_fallbacks"),
			Widenings:       reg.Counter("ann.widenings"),
			DecodeFailures:  reg.Counter("ann.decode_failures"),
		},
	}
	mgr.OnRebuild(func(r *rec.Recommender) {
		if c := e.cacheOf(r.Name); c != nil {
			c.Invalidate()
		}
	})
	return e
}

// Catalog exposes the table registry (examples and benches).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Recommenders exposes the recommender manager.
func (e *Engine) Recommenders() *rec.Manager { return e.rec }

// Planner exposes the planner (ablation benchmarks flip its switches).
func (e *Engine) Planner() *plan.Planner { return e.planner }

// Stats exposes the shared page-I/O counters.
func (e *Engine) Stats() *storage.Stats { return e.stats }

// Metrics exposes the engine-wide instrument registry. It is always
// non-nil; subsystems record into it with atomic operations only, so
// reading a Snapshot at any time is race-free.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// bridgeStorageStats reports the shared page-I/O atomics through the
// registry without double-counting: the bridge reads the live values at
// snapshot time.
func bridgeStorageStats(reg *metrics.Registry, stats *storage.Stats) {
	reg.RegisterFunc("bufferpool.page_reads", stats.PageReads.Load)
	reg.RegisterFunc("bufferpool.page_misses", stats.PageMisses.Load)
	reg.RegisterFunc("bufferpool.page_hits", func() int64 {
		return stats.PageReads.Load() - stats.PageMisses.Load()
	})
	reg.RegisterFunc("bufferpool.page_writes", stats.PageWrites.Load)
	reg.RegisterFunc("bufferpool.evictions", stats.Evictions.Load)
	// Per-stripe traffic of the lock-partitioned pools. Every pool of the
	// database aggregates into the same MaxPartitions slots, so these read
	// as engine-wide per-stripe contention indicators.
	for i := range stats.Partitions {
		p := &stats.Partitions[i]
		reg.RegisterFunc(fmt.Sprintf("bufferpool.partition%02d.hits", i), p.Hits.Load)
		reg.RegisterFunc(fmt.Sprintf("bufferpool.partition%02d.misses", i), p.Misses.Load)
		reg.RegisterFunc(fmt.Sprintf("bufferpool.partition%02d.evictions", i), p.Evictions.Load)
	}
}

// countStrategy tallies which recommendation path the planner chose: an
// IndexRecommend plan probes pre-computed RecScoreIndex entries, the
// others fall back to full model scans.
func (e *Engine) countStrategy(strategy string) {
	switch strategy {
	case "Recommend":
		e.em.recommend.Inc()
	case "FilterRecommend":
		e.em.filterRec.Inc()
	case "JoinRecommend":
		e.em.joinRec.Inc()
	case "IndexRecommend":
		e.em.indexRec.Inc()
	case "VectorRecommend":
		e.em.vectorRec.Inc()
	}
}

func (e *Engine) cacheOf(name string) *reccache.Manager {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.caches[strings.ToLower(name)]
}

// CacheOf returns the cache manager for a recommender.
func (e *Engine) CacheOf(name string) (*reccache.Manager, error) {
	if c := e.cacheOf(name); c != nil {
		return c, nil
	}
	return nil, fmt.Errorf("engine: no recommender %q", name)
}

// Result reports the effect of a non-query statement.
type Result struct {
	RowsAffected int64
}

// QueryResult is a fully materialized SELECT result.
type QueryResult struct {
	Schema  *types.Schema
	Rows    []types.Row
	Explain *plan.Explain
}

// Exec runs a single statement of any kind. SELECTs are allowed and
// report their row count.
func (e *Engine) Exec(query string) (Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return Result{}, err
	}
	return e.ExecParsed(stmt, query)
}

// ExecParsed runs an already-parsed statement and, on success, routes it
// through the commit hook with the given source text. Callers that need
// to inspect the statement before executing (the recdb layer parses
// first to choose its lock mode) use this to avoid parsing twice.
func (e *Engine) ExecParsed(stmt sql.Statement, text string) (Result, error) {
	return e.ExecParsedCtx(context.Background(), stmt, text)
}

// ExecParsedCtx is ExecParsed under a context: a read-only statement
// observes cancellation between rows; a mutating statement checks the
// context once before starting and then runs to completion — an applied
// mutation is never half-aborted, so the WAL and the in-memory state
// cannot diverge on a timeout. A mutating statement that fails mid-way
// (say, a primary-key violation on the third row of a multi-row INSERT)
// is backed out before the error returns: autocommit statements are
// atomic in memory, not just in the log.
func (e *Engine) ExecParsedCtx(ctx context.Context, stmt sql.Statement, text string) (Result, error) {
	if !Mutates(stmt) {
		return e.execReadOnlyCtx(ctx, stmt)
	}
	// Refuse to start a mutation on a dead context, but never abort one
	// mid-flight: partial applies would be unrecoverable.
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("engine: statement not started: %w", err)
	}
	res, muts, err := e.execMutation(stmt)
	if err != nil {
		if uerr := e.undoMutations(muts); uerr != nil {
			return res, fmt.Errorf("%w (and undo failed: %w)", err, uerr)
		}
		return res, err
	}
	for i := range muts {
		if muts[i].Kind == MutStmt {
			muts[i].Text = text
		}
	}
	if err := e.runMaintenance(muts); err != nil {
		return res, err
	}
	if err := e.commitMuts(muts); err != nil {
		return res, err
	}
	return res, nil
}

// ExecStmt runs a parsed statement (autocommit, with no source text for
// the log — callers with a write-ahead log attached use ExecParsed).
func (e *Engine) ExecStmt(stmt sql.Statement) (Result, error) {
	return e.ExecParsedCtx(context.Background(), stmt, "")
}

// execReadOnlyCtx runs the non-mutating statement kinds.
func (e *Engine) execReadOnlyCtx(ctx context.Context, stmt sql.Statement) (Result, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		res, err := e.queryCtx(ctx, s)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(res.Rows))}, nil
	case *sql.Explain:
		res, err := e.explain(s)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(res.Rows))}, nil
	case *sql.Begin, *sql.Commit, *sql.Rollback:
		return Result{}, fmt.Errorf("engine: %s requires a transaction-aware session (recdb.DB.Begin or NewSession)", stmtName(stmt))
	default:
		return Result{}, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// execMutation dispatches the mutating statement kinds and returns the
// tuple-level mutations applied (for DDL, one MutStmt record whose Text
// the caller stamps with the statement source). On error the returned
// mutations are the changes applied before the failure — the caller
// undoes them.
func (e *Engine) execMutation(stmt sql.Statement) (Result, []Mutation, error) {
	ddl := []Mutation{{Kind: MutStmt}}
	switch s := stmt.(type) {
	case *sql.CreateTable:
		r, err := e.execCreateTable(s)
		if err != nil {
			return r, nil, err
		}
		return r, ddl, nil
	case *sql.DropTable:
		if s.IfExists && !e.cat.Has(s.Name) {
			return Result{}, ddl, nil
		}
		if err := e.cat.DropTable(s.Name); err != nil {
			return Result{}, nil, err
		}
		return Result{}, ddl, nil
	case *sql.CreateIndex:
		tab, err := e.cat.Get(s.Table)
		if err != nil {
			return Result{}, nil, err
		}
		if _, err := tab.CreateIndex(s.Name, s.Column); err != nil {
			return Result{}, nil, err
		}
		return Result{}, ddl, nil
	case *sql.Insert:
		return e.execInsert(s)
	case *sql.Delete:
		return e.execDelete(s)
	case *sql.Update:
		return e.execUpdate(s)
	case *sql.CreateRecommender:
		r, err := e.execCreateRecommender(s)
		if err != nil {
			return r, nil, err
		}
		return r, ddl, nil
	case *sql.DropRecommender:
		name := strings.ToLower(s.Name)
		if s.IfExists {
			if _, ok := e.rec.Get(name); !ok {
				return Result{}, ddl, nil
			}
		}
		if err := e.rec.Drop(s.Name); err != nil {
			return Result{}, nil, err
		}
		e.mu.Lock()
		if c := e.caches[name]; c != nil {
			c.Stop()
			delete(e.caches, name)
		}
		e.mu.Unlock()
		return Result{}, ddl, nil
	default:
		return Result{}, nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// Query runs a SELECT and materializes its result.
func (e *Engine) Query(query string) (*QueryResult, error) {
	return e.QueryCtx(context.Background(), query)
}

// QueryCtx runs a SELECT under a context: the executor checks ctx between
// rows in every operator of the plan, so a canceled or deadline-expired
// query stops promptly even inside a blocking sort or join build. The
// returned error wraps ctx.Err() when cancellation cut the query short.
func (e *Engine) QueryCtx(ctx context.Context, query string) (*QueryResult, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.Select:
		return e.queryCtx(ctx, s)
	case *sql.Explain:
		return e.explain(s)
	default:
		return nil, fmt.Errorf("engine: Query expects a SELECT or EXPLAIN statement")
	}
}

// explain plans the wrapped query and renders the operator tree. Plain
// EXPLAIN never executes; EXPLAIN ANALYZE instruments every operator,
// runs the query to completion, and annotates each plan line with actual
// rows, loops, inclusive wall time, and buffer-pool hits/misses.
func (e *Engine) explain(s *sql.Explain) (*QueryResult, error) {
	op, explain, err := e.planner.PlanSelect(s.Query)
	if err != nil {
		return nil, err
	}
	var lines []string
	if s.Analyze {
		root := exec.Instrument(op, e.stats)
		start := time.Now()
		resultRows, err := exec.Collect(root)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		e.em.analyzeQueries.Inc()
		e.em.rowsReturned.Add(int64(len(resultRows)))
		e.countStrategy(explain.Strategy)
		lines = plan.DescribePlan(root)
		lines = append(lines, fmt.Sprintf("Execution time: %s", elapsed))
	} else {
		lines = plan.DescribePlan(op)
	}
	rows := make([]types.Row, 0, len(lines)+1)
	if explain.Strategy != "" {
		rows = append(rows, types.Row{types.NewText("strategy: " + explain.Strategy)})
	}
	for _, l := range lines {
		rows = append(rows, types.Row{types.NewText(l)})
	}
	return &QueryResult{
		Schema:  types.NewSchema(types.Column{Name: "plan", Kind: types.KindText}),
		Rows:    rows,
		Explain: explain,
	}, nil
}

func (e *Engine) query(sel *sql.Select) (*QueryResult, error) {
	return e.queryCtx(context.Background(), sel)
}

func (e *Engine) queryCtx(ctx context.Context, sel *sql.Select) (*QueryResult, error) {
	op, explain, err := e.planner.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := exec.Collect(exec.WithContext(ctx, op))
	if err != nil {
		return nil, err
	}
	e.em.queries.Inc()
	e.em.rowsReturned.Add(int64(len(rows)))
	e.em.queryNanos.ObserveSince(start)
	e.countStrategy(explain.Strategy)
	return &QueryResult{Schema: op.Schema(), Rows: rows, Explain: explain}, nil
}

// ExecScript runs a semicolon-separated script, stopping at the first
// error. It returns the sum of affected rows.
func (e *Engine) ExecScript(script string) (Result, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return Result{}, err
	}
	return e.ExecScriptParsed(stmts)
}

// ExecScriptParsed runs pre-parsed script statements, stopping at the
// first error.
func (e *Engine) ExecScriptParsed(stmts []sql.ScriptStmt) (Result, error) {
	return e.ExecScriptParsedCtx(context.Background(), stmts)
}

// ExecScriptParsedCtx is ExecScriptParsed under a context: cancellation is
// observed between statements (and between rows of read-only statements),
// never mid-mutation, so every statement is either fully applied and
// logged or not started.
func (e *Engine) ExecScriptParsedCtx(ctx context.Context, stmts []sql.ScriptStmt) (Result, error) {
	var total Result
	for _, s := range stmts {
		r, err := e.ExecParsedCtx(ctx, s.Stmt, s.Text)
		if err != nil {
			return total, err
		}
		total.RowsAffected += r.RowsAffected
	}
	return total, nil
}

func (e *Engine) execCreateTable(s *sql.CreateTable) (Result, error) {
	if s.IfNotExists && e.cat.Has(s.Name) {
		return Result{}, nil
	}
	cols := make([]types.Column, len(s.Cols))
	pk := -1
	for i, c := range s.Cols {
		kind, err := types.KindFromName(c.TypeName)
		if err != nil {
			return Result{}, err
		}
		cols[i] = types.Column{Name: c.Name, Kind: kind}
		if c.PrimaryKey {
			if pk >= 0 {
				return Result{}, fmt.Errorf("engine: multiple primary keys on %q", s.Name)
			}
			pk = i
		}
	}
	_, err := e.cat.CreateTable(s.Name, types.NewSchema(cols...), pk)
	return Result{}, err
}

func (e *Engine) execInsert(s *sql.Insert) (Result, []Mutation, error) {
	tab, err := e.cat.Get(s.Table)
	if err != nil {
		return Result{}, nil, err
	}
	// Map the column list (or identity).
	colIdx := make([]int, 0, tab.Schema.Len())
	if len(s.Cols) == 0 {
		for i := 0; i < tab.Schema.Len(); i++ {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Cols {
			idx, err := tab.Schema.Resolve("", name)
			if err != nil {
				return Result{}, nil, err
			}
			colIdx = append(colIdx, idx)
		}
	}
	empty := types.NewSchema()
	var inserted int64
	var muts []Mutation
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(colIdx) {
			return Result{RowsAffected: inserted}, muts, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(exprRow), len(colIdx))
		}
		row := make(types.Row, tab.Schema.Len())
		for i := range row {
			row[i] = types.Null()
		}
		for i, ex := range exprRow {
			c, err := expr.Compile(ex, empty)
			if err != nil {
				return Result{RowsAffected: inserted}, muts, err
			}
			v, err := c(nil)
			if err != nil {
				return Result{RowsAffected: inserted}, muts, err
			}
			// Parse text literals destined for geometry columns.
			if v.Kind() == types.KindText && tab.Schema.Columns[colIdx[i]].Kind == types.KindGeometry {
				g, err := expr.Compile(&sql.Call{Name: "ST_GeomFromText", Args: []sql.Expr{ex}}, empty)
				if err == nil {
					if gv, gerr := g(nil); gerr == nil {
						v = gv
					}
				}
			}
			row[colIdx[i]] = v
		}
		if _, err := tab.Insert(row); err != nil {
			return Result{RowsAffected: inserted}, muts, err
		}
		muts = append(muts, Mutation{Kind: MutInsert, Table: s.Table, Row: row})
		inserted++
	}
	return Result{RowsAffected: inserted}, muts, nil
}

func (e *Engine) execDelete(s *sql.Delete) (Result, []Mutation, error) {
	tab, err := e.cat.Get(s.Table)
	if err != nil {
		return Result{}, nil, err
	}
	schema := tab.Schema.WithQualifier(s.Table)
	var pred expr.Compiled
	if s.Where != nil {
		if pred, err = expr.Compile(s.Where, schema); err != nil {
			return Result{}, nil, err
		}
	}
	rids, err := matchRIDs(tab, pred)
	if err != nil {
		return Result{}, nil, err
	}
	var muts []Mutation
	var affected int64
	for _, rid := range rids {
		// Remember the victim's content: the logical WAL record carries it
		// (replay locates rows by content) and rollback re-inserts it.
		row, err := tab.Heap.Get(rid)
		if err != nil {
			return Result{RowsAffected: affected}, muts, err
		}
		if err := tab.Delete(rid); err != nil {
			return Result{RowsAffected: affected}, muts, err
		}
		muts = append(muts, Mutation{Kind: MutDelete, Table: s.Table, Old: row})
		affected++
	}
	return Result{RowsAffected: affected}, muts, nil
}

func (e *Engine) execUpdate(s *sql.Update) (Result, []Mutation, error) {
	tab, err := e.cat.Get(s.Table)
	if err != nil {
		return Result{}, nil, err
	}
	schema := tab.Schema.WithQualifier(s.Table)
	var pred expr.Compiled
	if s.Where != nil {
		if pred, err = expr.Compile(s.Where, schema); err != nil {
			return Result{}, nil, err
		}
	}
	type setter struct {
		col int
		val expr.Compiled
	}
	setters := make([]setter, len(s.Set))
	for i, a := range s.Set {
		col, err := schema.Resolve("", a.Column)
		if err != nil {
			return Result{}, nil, err
		}
		val, err := expr.Compile(a.Value, schema)
		if err != nil {
			return Result{}, nil, err
		}
		setters[i] = setter{col, val}
	}
	rids, err := matchRIDs(tab, pred)
	if err != nil {
		return Result{}, nil, err
	}
	var muts []Mutation
	var affected int64
	for _, rid := range rids {
		row, err := tab.Heap.Get(rid)
		if err != nil {
			return Result{RowsAffected: affected}, muts, err
		}
		updated := row.Clone()
		for _, st := range setters {
			v, err := st.val(row)
			if err != nil {
				return Result{RowsAffected: affected}, muts, err
			}
			updated[st.col] = v
		}
		if _, err := tab.Update(rid, updated); err != nil {
			return Result{RowsAffected: affected}, muts, err
		}
		muts = append(muts, Mutation{Kind: MutUpdate, Table: s.Table, Row: updated, Old: row})
		affected++
	}
	return Result{RowsAffected: affected}, muts, nil
}

func matchRIDs(tab *catalog.Table, pred expr.Compiled) ([]storage.RID, error) {
	var rids []storage.RID
	it := tab.Heap.Scan()
	defer it.Close()
	for {
		row, rid, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rids, nil
		}
		if pred != nil {
			v, err := pred(row)
			if err != nil {
				return nil, err
			}
			if !expr.Truthy(v) {
				continue
			}
		}
		rids = append(rids, rid)
	}
}

func (e *Engine) execCreateRecommender(s *sql.CreateRecommender) (Result, error) {
	_, err := e.rec.CreateFromSpec(rec.CreateSpec{
		Name: s.Name, Table: s.Table,
		UserCol: s.UserCol, ItemCol: s.ItemCol, RatingCol: s.RatingCol,
		Algorithm: s.Algorithm, Workers: s.Workers,
	})
	if err != nil {
		return Result{}, err
	}
	cache := reccache.New(recindex.New(), e.cfg.HotnessThreshold, e.cfg.CacheClock)
	cache.Metrics = e.em.cache
	// The recommender's WORKERS setting also bounds cache materialization;
	// with none given, fall back to the engine-wide build parallelism.
	cache.Workers = s.Workers
	if cache.Workers == 0 {
		cache.Workers = e.cfg.Rec.Build.Workers
	}
	e.mu.Lock()
	e.caches[strings.ToLower(s.Name)] = cache
	e.mu.Unlock()
	return Result{}, nil
}

// RunCacheMaintenance triggers Algorithm 4 for one recommender.
func (e *Engine) RunCacheMaintenance(recommender string) (reccache.Decision, error) {
	r, ok := e.rec.Get(recommender)
	if !ok {
		return reccache.Decision{}, fmt.Errorf("engine: no recommender %q", recommender)
	}
	c := e.cacheOf(recommender)
	if c == nil {
		return reccache.Decision{}, fmt.Errorf("engine: no cache manager for %q", recommender)
	}
	return c.Run(r.Store())
}

// Materialize fully pre-computes the RecScoreIndex for a recommender
// (HOTNESS-THRESHOLD = 0 behaviour; the warm state of §VI-C).
func (e *Engine) Materialize(recommender string) error {
	r, ok := e.rec.Get(recommender)
	if !ok {
		return fmt.Errorf("engine: no recommender %q", recommender)
	}
	c := e.cacheOf(recommender)
	if c == nil {
		return fmt.Errorf("engine: no cache manager for %q", recommender)
	}
	return c.MaterializeAll(r.Store())
}

// MaterializeUser pre-computes one user's RecTree.
func (e *Engine) MaterializeUser(recommender string, user int64) error {
	r, ok := e.rec.Get(recommender)
	if !ok {
		return fmt.Errorf("engine: no recommender %q", recommender)
	}
	c := e.cacheOf(recommender)
	if c == nil {
		return fmt.Errorf("engine: no cache manager for %q", recommender)
	}
	return c.MaterializeUser(r.Store(), user)
}

// Close stops background cache managers.
func (e *Engine) Close() {
	e.mu.Lock()
	caches := make([]*reccache.Manager, 0, len(e.caches))
	for _, c := range e.caches {
		caches = append(caches, c)
	}
	e.mu.Unlock()
	for _, c := range caches {
		c.Stop()
	}
}
