package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func newPOIDB(t *testing.T, withIndex bool) *Engine {
	t.Helper()
	e := New(Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE pois (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY);
	`); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for i := 0; i < 200; i++ {
		x := float64((i * 37) % 100)
		y := float64((i * 53) % 100)
		rows = append(rows, fmt.Sprintf("(%d, 'poi %d', 'POINT(%g %g)')", i, i, x, y))
	}
	if _, err := e.Exec("INSERT INTO pois VALUES " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	if withIndex {
		if _, err := e.Exec("CREATE INDEX pois_geom ON pois (geom)"); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestSpatialIndexScanChosen(t *testing.T) {
	e := newPOIDB(t, true)
	q, err := e.Query(`EXPLAIN SELECT name FROM pois
		WHERE ST_DWithin(geom, ST_Point(50, 50), 10)`)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(q.Rows)
	if !strings.Contains(text, "SpatialIndexScan on pois") || !strings.Contains(text, "ST_DWithin") {
		t.Fatalf("plan:\n%s", text)
	}
	// Contains form, both argument orders.
	q, err = e.Query(`EXPLAIN SELECT name FROM pois
		WHERE ST_Contains(ST_GeomFromText('POLYGON((0 0,20 0,20 20,0 20))'), geom)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText(q.Rows), "SpatialIndexScan") {
		t.Fatalf("contains plan:\n%s", planText(q.Rows))
	}
}

func TestSpatialIndexScanMatchesSeqScan(t *testing.T) {
	withIdx := newPOIDB(t, true)
	noIdx := newPOIDB(t, false)
	queries := []string{
		`SELECT vid FROM pois WHERE ST_DWithin(geom, ST_Point(50, 50), 15) ORDER BY vid`,
		`SELECT vid FROM pois WHERE ST_DWithin(ST_Point(10, 90), geom, 25) ORDER BY vid`,
		`SELECT vid FROM pois WHERE ST_Contains(ST_GeomFromText('POLYGON((0 0,30 0,30 30,0 30))'), geom) ORDER BY vid`,
		`SELECT vid FROM pois WHERE ST_Contains('POLYGON((40 40,70 40,70 70,40 70))', geom) ORDER BY vid`,
	}
	for _, q := range queries {
		a, err := withIdx.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := noIdx.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: indexed %d rows vs seq %d rows", q, len(a.Rows), len(b.Rows))
		}
		if len(a.Rows) == 0 {
			t.Fatalf("%s: empty result makes the test vacuous", q)
		}
		for i := range a.Rows {
			if a.Rows[i][0].Int() != b.Rows[i][0].Int() {
				t.Fatalf("%s row %d: %v vs %v", q, i, a.Rows[i], b.Rows[i])
			}
		}
	}
}

func TestSpatialIndexMaintainedOnDML(t *testing.T) {
	e := newPOIDB(t, true)
	query := `SELECT vid FROM pois WHERE ST_DWithin(geom, ST_Point(500, 500), 5)`
	q, err := e.Query(query)
	if err != nil || len(q.Rows) != 0 {
		t.Fatalf("far window should be empty: %v %v", q, err)
	}
	// Insert a point in the window.
	if _, err := e.Exec("INSERT INTO pois VALUES (900, 'new', 'POINT(501 499)')"); err != nil {
		t.Fatal(err)
	}
	q, _ = e.Query(query)
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 900 {
		t.Fatalf("inserted point not indexed: %v", q.Rows)
	}
	// Move it away via UPDATE.
	if _, err := e.Exec("UPDATE pois SET geom = ST_Point(0, 0) WHERE vid = 900"); err != nil {
		t.Fatal(err)
	}
	q, _ = e.Query(query)
	if len(q.Rows) != 0 {
		t.Fatalf("moved point still in window: %v", q.Rows)
	}
	// Delete removes index entries.
	if _, err := e.Exec("DELETE FROM pois WHERE vid = 900"); err != nil {
		t.Fatal(err)
	}
	q, _ = e.Query(`SELECT vid FROM pois WHERE ST_DWithin(geom, ST_Point(0, 0), 1)`)
	for _, r := range q.Rows {
		if r[0].Int() == 900 {
			t.Fatalf("deleted point still indexed: %v", q.Rows)
		}
	}
}

func TestSpatialWithRecommend(t *testing.T) {
	// Query 7 shape with a spatial index on the POI table: the spatial scan
	// feeds JOINRECOMMEND's outer side.
	e := newPOIDB(t, true)
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES
			(1, 10, 5), (1, 20, 3), (2, 10, 4), (2, 30, 2), (3, 20, 1), (3, 30, 4);
		CREATE RECOMMENDER PoiRec ON ratings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
	`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`SELECT P.name, R.ratingval FROM ratings R, pois P
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND P.vid = R.iid AND ST_DWithin(P.geom, ST_Point(50, 50), 100)
		ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "JoinRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	// User 1 rated items 10 and 20; item 30 is the only unseen candidate.
	if len(q.Rows) != 1 || q.Rows[0][0].Text() != "poi 30" {
		t.Fatalf("spatial recommend: %v", q.Rows)
	}
}

func TestSpatialScanNotUsedWithoutIndexOrConst(t *testing.T) {
	e := newPOIDB(t, false)
	q, err := e.Query(`EXPLAIN SELECT name FROM pois
		WHERE ST_DWithin(geom, ST_Point(50, 50), 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(planText(q.Rows), "SpatialIndexScan") {
		t.Fatal("no index: spatial scan should not be chosen")
	}
	// Two-column predicate (Query 6 shape) stays a filter even with the
	// index present.
	e2 := newPOIDB(t, true)
	if _, err := e2.Exec(`CREATE TABLE regions (name TEXT, geom GEOMETRY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Exec(`INSERT INTO regions VALUES ('r', 'POLYGON((0 0,50 0,50 50,0 50))')`); err != nil {
		t.Fatal(err)
	}
	q, err = e2.Query(`EXPLAIN SELECT p.name FROM pois p, regions g
		WHERE ST_Contains(g.geom, p.geom)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(planText(q.Rows), "SpatialIndexScan") {
		t.Fatal("two-column spatial predicate should not use the index")
	}
}

// TestQuery6ThreeTableSpatialJoin reproduces the paper's Query 6 shape:
// ratings ⋈ hotels ⋈ cities with a two-column ST_Contains predicate.
func TestQuery6ThreeTableSpatialJoin(t *testing.T) {
	e := New(Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE HotelRatings (uid INT, iid INT, ratingval FLOAT);
		CREATE TABLE Hotels (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY);
		CREATE TABLE City (name TEXT, geom GEOMETRY);
		INSERT INTO City VALUES
			('San Diego', 'POLYGON((0 0, 100 0, 100 100, 0 100))'),
			('Austin',    'POLYGON((200 0, 300 0, 300 100, 200 100))');
		INSERT INTO Hotels VALUES
			(1, 'SD Hotel A', 'POINT(10 10)'),
			(2, 'SD Hotel B', 'POINT(90 90)'),
			(3, 'Austin Hotel', 'POINT(250 50)');
		INSERT INTO HotelRatings VALUES
			(1, 1, 5), (1, 3, 4),
			(2, 1, 4), (2, 2, 5),
			(3, 2, 3), (3, 3, 2);
		CREATE RECOMMENDER HotelRec ON HotelRatings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
	`); err != nil {
		t.Fatal(err)
	}
	// Query 6: hotels in San Diego for user 1 (user 1 rated hotels 1 and 3,
	// so only hotel 2 — which is in San Diego — is recommendable).
	q, err := e.Query(`SELECT H.name, R.ratingval
		FROM HotelRatings AS R, Hotels AS H, City AS C
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND R.iid = H.vid AND C.name = 'San Diego'
		  AND ST_Contains(C.geom, H.geom)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "JoinRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].Text() != "SD Hotel B" {
		t.Fatalf("query 6: %v", q.Rows)
	}
	if q.Rows[0][1].Float() == 0 {
		t.Fatal("prediction should have a basis")
	}
	// Changing the city flips the answer.
	q, err = e.Query(`SELECT H.name, R.ratingval
		FROM HotelRatings AS R, Hotels AS H, City AS C
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 3 AND R.iid = H.vid AND C.name = 'Austin'
		  AND ST_Contains(C.geom, H.geom)`)
	if err != nil {
		t.Fatal(err)
	}
	// User 3 rated hotels 2 and 3; the only Austin hotel (3) is seen, so
	// nothing is recommendable there.
	if len(q.Rows) != 0 {
		t.Fatalf("austin for user 3: %v", q.Rows)
	}
}

// TestQuery8CombinedScoreRanking checks CScore-based ordering (Query 8):
// rank by predicted rating damped by spatial distance.
func TestQuery8CombinedScoreRanking(t *testing.T) {
	e := New(Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE RestRatings (uid INT, iid INT, ratingval FLOAT);
		CREATE TABLE Restaurants (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY);
		INSERT INTO Restaurants VALUES
			(1, 'near-poor', 'POINT(1 0)'),
			(2, 'far-great', 'POINT(50 0)'),
			(3, 'mid-good',  'POINT(5 0)');
		INSERT INTO RestRatings VALUES
			(1, 1, 2), (1, 3, 4),
			(2, 1, 1), (2, 2, 5), (2, 3, 4),
			(3, 1, 2), (3, 2, 5),
			(4, 2, 5), (4, 3, 4);
		CREATE RECOMMENDER RestRec ON RestRatings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING UserPearCF;
	`); err != nil {
		t.Fatal(err)
	}
	// User 1 has not rated restaurant 2. Query its combined score ordering
	// from the origin: even a great far restaurant is damped by distance.
	q, err := e.Query(`SELECT V.name, R.ratingval,
			CScore(R.ratingval, ST_Distance(V.geom, ST_Point(0, 0))) AS combined
		FROM RestRatings AS R, Restaurants AS V
		RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF
		WHERE R.uid = 1 AND R.iid = V.vid
		ORDER BY CScore(R.ratingval, ST_Distance(V.geom, ST_Point(0, 0))) DESC
		LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 { // only restaurant 2 is unseen by user 1
		t.Fatalf("query 8 rows: %v", q.Rows)
	}
	name := q.Rows[0][0].Text()
	rating := q.Rows[0][1].Float()
	combined := q.Rows[0][2].Float()
	if name != "far-great" {
		t.Fatalf("unseen restaurant: %q", name)
	}
	// combined = rating / (1 + distance) with distance 50.
	want := rating / 51
	if math.Abs(combined-want) > 1e-9 {
		t.Fatalf("combined = %v, want %v", combined, want)
	}

	// Ordering sanity with a user who has several unseen POIs: scores must
	// be non-increasing in the combined column.
	q, err = e.Query(`SELECT V.vid,
			CScore(R.ratingval, ST_Distance(V.geom, ST_Point(0, 0))) AS combined
		FROM RestRatings AS R, Restaurants AS V
		RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF
		WHERE R.uid = 4 AND R.iid = V.vid
		ORDER BY CScore(R.ratingval, ST_Distance(V.geom, ST_Point(0, 0))) DESC`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(q.Rows); i++ {
		if q.Rows[i][1].Float() > q.Rows[i-1][1].Float() {
			t.Fatalf("combined ordering broken: %v", q.Rows)
		}
	}
}
