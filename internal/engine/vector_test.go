package engine

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"recdb/internal/rec"
)

// newVectorDB builds an engine with a synthetic ratings table big enough
// to push the IVF path out of exact-fallback (items ≫ the exact
// threshold) and an SVD recommender trained deterministically under seed.
func newVectorDB(t *testing.T, seed int64) *Engine {
	t.Helper()
	const users, items, perUser = 40, 300, 40
	e := New(Config{Rec: rec.Options{Build: rec.BuildOptions{SVDSeed: seed, Workers: 2}}})
	if _, err := e.Exec("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)"); err != nil {
		t.Fatal(err)
	}
	rng := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng = rng*2862933555777941757 + 3037000493
		return int((rng >> 33) % uint64(n))
	}
	// Genre-structured ratings: users and items each belong to one of six
	// genres, and ratings are high on a match. Pure-noise ratings would
	// yield unclustered latent factors, which makes IVF recall a coin
	// flip; structure is what the index exists to exploit.
	var rows []string
	for u := 1; u <= users; u++ {
		seen := map[int]bool{}
		for len(seen) < perUser {
			i := 1 + next(items)
			if seen[i] {
				continue
			}
			seen[i] = true
			v := 2
			if u%6 == i%6 {
				v = 5
			}
			v += next(2)
			rows = append(rows, fmt.Sprintf("(%d, %d, %d)", u, i, v))
		}
	}
	if _, err := e.Exec("INSERT INTO ratings VALUES " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`CREATE RECOMMENDER VecRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD`); err != nil {
		t.Fatal(err)
	}
	return e
}

const vecTopK = `SELECT R.uid, R.iid, R.ratingval FROM ratings R
	RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
	WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 10`

// queryExact runs q with the vector path disabled (the exact-scan
// baseline plan).
func queryExact(t *testing.T, e *Engine, q string) *QueryResult {
	t.Helper()
	e.Planner().DisableVectorRecommend = true
	defer func() { e.Planner().DisableVectorRecommend = false }()
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// queryVectorExact runs q through VECTORRECOMMEND at full probe width.
func queryVectorExact(t *testing.T, e *Engine, q string) *QueryResult {
	t.Helper()
	e.Planner().VectorExact = true
	defer func() { e.Planner().VectorExact = false }()
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVectorRecommendFullProbeEquivalence is the end-to-end backbone
// invariant: for every seeded model, the full-probe (nprobe = all
// centroids) vector plan returns byte-identical rows to the exact
// FilterRecommend plan, across single-user, multi-user, offset, and
// rating-predicate shapes.
func TestVectorRecommendFullProbeEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newVectorDB(t, seed)
			queries := []string{
				fmt.Sprintf(vecTopK, 1),
				fmt.Sprintf(vecTopK, 7),
				`SELECT R.uid, R.iid, R.ratingval FROM ratings R
					RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
					WHERE R.uid IN (3, 1, 9) ORDER BY R.ratingval DESC LIMIT 25`,
				`SELECT R.uid, R.iid, R.ratingval FROM ratings R
					RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
					WHERE R.uid = 2 AND R.ratingval > 1.5
					ORDER BY R.ratingval DESC LIMIT 10`,
				`SELECT R.uid, R.iid, R.ratingval FROM ratings R
					RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
					WHERE R.uid = 4 ORDER BY R.ratingval DESC LIMIT 10 OFFSET 5`,
			}
			for _, q := range queries {
				vec := queryVectorExact(t, e, q)
				if vec.Explain.Strategy != "VectorRecommend" {
					t.Fatalf("strategy %q for %s", vec.Explain.Strategy, q)
				}
				exact := queryExact(t, e, q)
				if exact.Explain.Strategy != "FilterRecommend" {
					t.Fatalf("baseline strategy %q", exact.Explain.Strategy)
				}
				if len(vec.Rows) == 0 {
					t.Fatalf("empty result makes the test vacuous: %s", q)
				}
				if !reflect.DeepEqual(vec.Rows, exact.Rows) {
					t.Fatalf("full-probe vector plan diverges from exact plan for %s:\nvector: %v\nexact:  %v",
						q, vec.Rows, exact.Rows)
				}
			}
		})
	}
}

// TestVectorRecommendDefaultProbeRecall measures end-to-end recall@10 at
// the default probe width across 3 seeds: ≥ 0.9 averaged over users.
func TestVectorRecommendDefaultProbeRecall(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newVectorDB(t, seed)
			hits, want := 0, 0
			for u := 1; u <= 20; u++ {
				q := fmt.Sprintf(vecTopK, u)
				approx, err := e.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				if approx.Explain.Strategy != "VectorRecommend" {
					t.Fatalf("strategy %q", approx.Explain.Strategy)
				}
				exact := queryExact(t, e, q)
				in := make(map[int64]bool, len(approx.Rows))
				for _, r := range approx.Rows {
					in[r[1].Int()] = true
				}
				for _, r := range exact.Rows {
					want++
					if in[r[1].Int()] {
						hits++
					}
				}
			}
			recall := float64(hits) / float64(want)
			t.Logf("recall@10 = %.3f", recall)
			if recall < 0.9 {
				t.Fatalf("recall@10 = %.3f < 0.9 at default nprobe", recall)
			}
		})
	}
}

// TestVectorRecommendSelectiveFilter: a selective IN-list shrinks the
// candidate universe below the exact threshold, so the recall mode is
// exact-fallback and the rows must equal the exact plan's exactly.
func TestVectorRecommendSelectiveFilter(t *testing.T) {
	e := newVectorDB(t, 1)
	q := `SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
		WHERE R.uid = 1 AND R.iid IN (5, 20, 35, 50, 65, 80, 95)
		ORDER BY R.ratingval DESC LIMIT 5`
	vec, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Explain.Strategy != "VectorRecommend" {
		t.Fatalf("strategy %q", vec.Explain.Strategy)
	}
	exact := queryExact(t, e, q)
	if len(vec.Rows) == 0 || !reflect.DeepEqual(vec.Rows, exact.Rows) {
		t.Fatalf("selective filter diverges:\nvector: %v\nexact:  %v", vec.Rows, exact.Rows)
	}
	// The recall mode is visible in EXPLAIN ANALYZE.
	an, err := e.Query("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(an.Rows)
	if !strings.Contains(text, "mode exact-fallback") {
		t.Fatalf("selective plan not in exact-fallback mode:\n%s", text)
	}
	if e.Metrics().Counter("ann.exact_fallbacks").Value() == 0 {
		t.Fatalf("ann.exact_fallbacks not incremented")
	}
}

// TestVectorRecommendNonSelectiveFilter: a rating predicate that eats most
// candidates forces over-fetch + recheck (probe widening); no returned row
// may violate the predicate, and the full-probe mode stays byte-identical
// to the exact plan.
func TestVectorRecommendNonSelectiveFilter(t *testing.T) {
	e := newVectorDB(t, 2)
	// Probe one centroid at a time so the widening loop has to work.
	e.Planner().VectorProbe = 1
	q := `SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
		WHERE R.uid = 3 AND R.ratingval > 2.0
		ORDER BY R.ratingval DESC LIMIT 10`
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != "VectorRecommend" {
		t.Fatalf("strategy %q", res.Explain.Strategy)
	}
	for _, r := range res.Rows {
		if r[2].Float() <= 2.0 {
			t.Fatalf("returned row violates pushed-down predicate: %v", r)
		}
	}
	e.Planner().VectorProbe = 0
	vec := queryVectorExact(t, e, q)
	exact := queryExact(t, e, q)
	if !reflect.DeepEqual(vec.Rows, exact.Rows) {
		t.Fatalf("full-probe with rating predicate diverges from exact plan")
	}
}

// TestVectorRecommendNeverLeaksFilteredItems: in every mode — default
// probe, widened probe, full probe — an item outside the pushed-down
// IN-list must never be returned.
func TestVectorRecommendNeverLeaksFilteredItems(t *testing.T) {
	e := newVectorDB(t, 3)
	// 100 allowed items: above the exact threshold, so this runs in probe
	// mode with a posting-list pre-filter.
	var ids []string
	allowed := map[int64]bool{}
	for i := 1; i <= 100; i++ {
		ids = append(ids, fmt.Sprintf("%d", i*3))
		allowed[int64(i*3)] = true
	}
	q := fmt.Sprintf(`SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
		WHERE R.uid = 5 AND R.iid IN (%s)
		ORDER BY R.ratingval DESC LIMIT 10`, strings.Join(ids, ", "))
	for _, mode := range []string{"default", "narrow", "exact"} {
		switch mode {
		case "default":
			e.Planner().VectorProbe, e.Planner().VectorExact = 0, false
		case "narrow":
			e.Planner().VectorProbe, e.Planner().VectorExact = 1, false
		case "exact":
			e.Planner().VectorProbe, e.Planner().VectorExact = 0, true
		}
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.Strategy != "VectorRecommend" {
			t.Fatalf("%s: strategy %q", mode, res.Explain.Strategy)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: empty result makes the test vacuous", mode)
		}
		for _, r := range res.Rows {
			if !allowed[r[1].Int()] {
				t.Fatalf("%s mode leaked filtered-out item %d", mode, r[1].Int())
			}
		}
	}
	e.Planner().VectorProbe, e.Planner().VectorExact = 0, false
}

// TestVectorRecommendSpatialPath: the spatial/polygon filtered search —
// RECOMMEND joined to a geometry table under an R-tree predicate —
// composes with the probe (the outer side becomes the candidate filter)
// and matches the exact join plan when the mode is exact.
func TestVectorRecommendSpatialPath(t *testing.T) {
	e := newVectorDB(t, 1)
	if _, err := e.Exec("CREATE TABLE pois (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY)"); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for i := 1; i <= 300; i++ {
		x := float64((i * 37) % 100)
		y := float64((i * 53) % 100)
		rows = append(rows, fmt.Sprintf("(%d, 'poi %d', 'POINT(%g %g)')", i, i, x, y))
	}
	if _, err := e.Exec("INSERT INTO pois VALUES " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("CREATE INDEX pois_geom ON pois (geom)"); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, polygon string
	}{
		// A tight polygon: few POIs survive → exact-fallback mode.
		{"selective", "POLYGON((0 0,25 0,25 25,0 25))"},
		// A wide polygon: most POIs survive → probe mode.
		{"wide", "POLYGON((0 0,95 0,95 95,0 95))"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := fmt.Sprintf(`SELECT P.name, R.ratingval FROM ratings R, pois P
				RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
				WHERE R.uid = 1 AND P.vid = R.iid
				AND ST_Contains(ST_GeomFromText('%s'), P.geom)
				ORDER BY R.ratingval DESC LIMIT 10`, tc.polygon)
			vec := queryVectorExact(t, e, q)
			if vec.Explain.Strategy != "VectorRecommend" {
				t.Fatalf("strategy %q", vec.Explain.Strategy)
			}
			exact := queryExact(t, e, q)
			if exact.Explain.Strategy != "JoinRecommend" {
				t.Fatalf("baseline strategy %q", exact.Explain.Strategy)
			}
			if len(vec.Rows) == 0 {
				t.Fatalf("empty result makes the test vacuous")
			}
			if !reflect.DeepEqual(vec.Rows, exact.Rows) {
				t.Fatalf("spatial vector plan diverges from exact join plan:\nvector: %v\nexact:  %v",
					vec.Rows, exact.Rows)
			}
			// Approximate mode must never emit a POI outside the polygon:
			// every returned name must appear in the exact (unlimited)
			// polygon membership.
			inPoly := map[string]bool{}
			all, err := e.Query(fmt.Sprintf(
				`SELECT name FROM pois WHERE ST_Contains(ST_GeomFromText('%s'), geom)`, tc.polygon))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range all.Rows {
				inPoly[r[0].Text()] = true
			}
			approx, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range approx.Rows {
				if !inPoly[r[0].Text()] {
					t.Fatalf("approximate spatial probe leaked %q from outside the polygon", r[0].Text())
				}
			}
		})
	}
}

// TestVectorRecommendStrategyGates: shapes the vector path must decline.
func TestVectorRecommendStrategyGates(t *testing.T) {
	e := newVectorDB(t, 1)
	cases := []struct {
		q, want string
	}{
		// No LIMIT: the operator cannot bound its per-user row target.
		{`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
			WHERE R.uid = 1 ORDER BY R.ratingval DESC`, "FilterRecommend"},
		// No user predicate.
		{`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
			ORDER BY R.ratingval DESC LIMIT 10`, "Recommend"},
		// Ascending order: the probe serves descending top-k only.
		{`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
			WHERE R.uid = 1 ORDER BY R.ratingval LIMIT 10`, "FilterRecommend"},
		// Aggregation consumes all rows; a bounded probe would undercount.
		{`SELECT R.uid, COUNT(*) FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
			WHERE R.uid = 1 GROUP BY R.uid LIMIT 10`, "FilterRecommend"},
	}
	for _, tc := range cases {
		res, err := e.Query(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.Strategy != tc.want {
			t.Fatalf("strategy %q, want %q for %s", res.Explain.Strategy, tc.want, tc.q)
		}
	}
	if e.Metrics().Counter("plan.vector_recommend").Value() != 0 {
		t.Fatalf("gated queries still counted as vector plans")
	}
	if _, err := e.Query(fmt.Sprintf(vecTopK, 1)); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().Counter("plan.vector_recommend").Value() != 1 {
		t.Fatalf("vector plan not counted")
	}
	if e.Metrics().Counter("ann.probed_centroids").Value() == 0 {
		t.Fatalf("ann.probed_centroids not recorded")
	}
}

// TestVectorRecommendModelSwapUnderLiveQueries hammers the vector path
// while the model is rebuilt and swapped underneath it: queries must keep
// succeeding (the old store and its index stay readable until released),
// and the reccache generation machinery must invalidate cleanly.
func TestVectorRecommendModelSwapUnderLiveQueries(t *testing.T) {
	e := newVectorDB(t, 1)
	const workers, queriesEach, rebuilds = 4, 40, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*queriesEach)
	stop := make(chan struct{})
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Query(fmt.Sprintf(vecTopK, 1+(w*queriesEach+i)%40))
				if err != nil {
					errs <- err
					return
				}
				if res.Explain.Strategy != "VectorRecommend" {
					errs <- fmt.Errorf("strategy %q under swap", res.Explain.Strategy)
					return
				}
			}
		}(w)
	}
	for r := 0; r < rebuilds; r++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO ratings VALUES (%d, %d, 3)", 1+r, 200+r)); err != nil {
			t.Fatal(err)
		}
		if err := e.Recommenders().Rebuild("VecRec"); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestVectorRecommendCacheGenerationAcrossSwap: materializing a user's
// RecScoreIndex outranks the vector path (strategy 1 beats strategy 2),
// a model rebuild invalidates that cache generation, and the query then
// lands back on the vector plan serving the NEW model — never stale
// cached scores, never a stale index.
func TestVectorRecommendCacheGenerationAcrossSwap(t *testing.T) {
	e := newVectorDB(t, 1)
	q := fmt.Sprintf(vecTopK, 1)

	if err := e.MaterializeUser("VecRec", 1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != "IndexRecommend" {
		t.Fatalf("materialized user not served from RecScoreIndex: %q", res.Explain.Strategy)
	}

	// Shift the model: user 1 gains strong new ratings, then rebuild.
	if _, err := e.Exec("INSERT INTO ratings VALUES (1, 299, 5), (1, 298, 5), (1, 297, 5)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Recommenders().Rebuild("VecRec"); err != nil {
		t.Fatal(err)
	}

	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != "VectorRecommend" {
		t.Fatalf("after rebuild, stale cache generation still serving: %q", res.Explain.Strategy)
	}
	// The swapped-in index serves the new model: full probe must equal the
	// new model's exact scan.
	vec := queryVectorExact(t, e, q)
	exact := queryExact(t, e, q)
	if !reflect.DeepEqual(vec.Rows, exact.Rows) {
		t.Fatalf("post-swap vector plan diverges from post-swap exact plan")
	}
}
