package engine

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Golden-file coverage for EXPLAIN and EXPLAIN ANALYZE output: the plan
// shapes the paper's query classes produce (heap scan + filter, join,
// RECOMMEND with and without the RecScoreIndex, spatial predicates) are
// pinned verbatim, with only wall-clock times normalized away. Regenerate
// with:
//
//	go test ./internal/engine -run TestExplainGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite EXPLAIN golden files")

var (
	planTimeRE = regexp.MustCompile(`(time|self)=[^ )]+`)
	execTimeRE = regexp.MustCompile(`Execution time: .+`)
)

// normalizePlan strips the only nondeterministic parts of EXPLAIN ANALYZE
// output — wall-clock durations. Rows, loops, and buffer hit/miss counts
// are deterministic for a fixed dataset and stay pinned.
func normalizePlan(s string) string {
	s = planTimeRE.ReplaceAllString(s, "$1=<dur>")
	s = execTimeRE.ReplaceAllString(s, "Execution time: <dur>")
	return s
}

func explainText(t *testing.T, e *Engine, q string) string {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var sb strings.Builder
	for _, r := range res.Rows {
		sb.WriteString(r[0].Text())
		sb.WriteByte('\n')
	}
	return normalizePlan(sb.String())
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("plan drifted from %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

func TestExplainGolden(t *testing.T) {
	movie := newMovieDB(t)
	createGeneralRec(t, movie)
	warm := newMovieDB(t)
	createGeneralRec(t, warm)
	if err := warm.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	poi := newPOIDB(t, true)
	vec := newVectorDB(t, 1)

	cases := []struct {
		name string
		eng  *Engine
		q    string
	}{
		{"scan_filter", movie,
			`SELECT name FROM movies WHERE genre = 'Action'`},
		{"join", movie,
			`SELECT u.name, m.name FROM ratings r, users u, movies m
			 WHERE r.uid = u.uid AND r.iid = m.mid AND r.ratingval > 2`},
		{"recommend_scan", movie,
			`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
			 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 2`},
		{"recommend_index", warm,
			`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
			 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 2`},
		{"spatial", poi,
			`SELECT name FROM pois WHERE ST_DWithin(geom, ST_Point(50, 50), 10)`},
		{"recommend_vector", vec,
			`SELECT R.uid, R.iid, R.ratingval FROM ratings R
			 RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
			 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkGolden(t, "explain_"+c.name, explainText(t, c.eng, "EXPLAIN "+c.q))
			checkGolden(t, "analyze_"+c.name, explainText(t, c.eng, "EXPLAIN ANALYZE "+c.q))
		})
	}
}
