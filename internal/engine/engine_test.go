package engine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"recdb/internal/rec"
)

// newMovieDB builds the paper's running example (Figure 1): users, movies,
// and ratings tables.
func newMovieDB(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{})
	script := `
		CREATE TABLE users (uid INT PRIMARY KEY, name TEXT, city TEXT, age INT, gender TEXT);
		CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, director TEXT, genre TEXT);
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO users VALUES
			(1, 'Alice', 'Minneapolis, MN', 18, 'Female'),
			(2, 'Bob', 'Austin, TX', 27, 'Male'),
			(3, 'Carol', 'Minneapolis, MN', 45, 'Female'),
			(4, 'Eve', 'San Diego, CA', 34, 'Female');
		INSERT INTO movies VALUES
			(1, 'Spartacus', 'Stanley Kubrick', 'Action'),
			(2, 'Inception', 'Christopher Nolan', 'Suspense'),
			(3, 'The Matrix', 'Lana Wachowski', 'Sci-Fi');
		INSERT INTO ratings VALUES
			(1, 1, 1.5),
			(2, 2, 3.5), (2, 1, 4.5), (2, 3, 2),
			(3, 2, 1), (3, 1, 2),
			(4, 2, 1);
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return e
}

func createGeneralRec(t *testing.T, e *Engine) {
	t.Helper()
	// Recommender 1 from the paper.
	_, err := e.Exec(`Create Recommender GeneralRec On ratings
		Users From uid Items From iid Ratings From ratingval
		Using ItemCosCF`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDDLAndDML(t *testing.T) {
	e := newMovieDB(t)
	res, err := e.Exec("SELECT * FROM ratings")
	if err != nil || res.RowsAffected != 7 {
		t.Fatalf("select count: %v %v", res, err)
	}
	// UPDATE.
	res, err = e.Exec("UPDATE ratings SET ratingval = 5.0 WHERE uid = 1 AND iid = 1")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	q, err := e.Query("SELECT ratingval FROM ratings WHERE uid = 1")
	if err != nil || len(q.Rows) != 1 || q.Rows[0][0].Float() != 5 {
		t.Fatalf("after update: %v %v", q, err)
	}
	// DELETE.
	res, err = e.Exec("DELETE FROM ratings WHERE uid = 4")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("delete: %v %v", res, err)
	}
	res, _ = e.Exec("SELECT * FROM ratings")
	if res.RowsAffected != 6 {
		t.Fatalf("after delete: %d rows", res.RowsAffected)
	}
	// DROP TABLE / IF EXISTS.
	if _, err := e.Exec("DROP TABLE movies"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("DROP TABLE movies"); err == nil {
		t.Fatal("double drop should fail")
	}
	if _, err := e.Exec("DROP TABLE IF EXISTS movies"); err != nil {
		t.Fatal(err)
	}
	// CREATE TABLE IF NOT EXISTS.
	if _, err := e.Exec("CREATE TABLE IF NOT EXISTS ratings (a INT)"); err != nil {
		t.Fatal(err)
	}
}

func TestPlainSelects(t *testing.T) {
	e := newMovieDB(t)
	q, err := e.Query("SELECT name FROM users WHERE age > 25 ORDER BY age DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 3 || q.Rows[0][0].Text() != "Carol" {
		t.Fatalf("plain select: %v", q.Rows)
	}
	// Join without RECOMMEND.
	q, err = e.Query(`SELECT u.name, m.name FROM users u, movies m
		WHERE u.uid = m.mid`)
	if err != nil || len(q.Rows) != 3 {
		t.Fatalf("plain join: %v %v", q, err)
	}
	// Projection aliases and expressions.
	q, err = e.Query("SELECT age * 2 AS dbl FROM users WHERE uid = 1")
	if err != nil || q.Rows[0][0].Int() != 36 {
		t.Fatalf("expr projection: %v %v", q, err)
	}
	if q.Schema.Columns[0].Name != "dbl" {
		t.Fatalf("alias: %v", q.Schema.Columns)
	}
}

func TestCreateRecommenderAndQuery1(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)

	// Query 1 from the paper: top-10 movies for user 1 (only unseen items
	// are returned, so at most 2 here).
	q, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid = 1
		Order By R.ratingval Desc Limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("query 1: %v", q.Rows)
	}
	if q.Explain.Strategy != "FilterRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	for _, row := range q.Rows {
		if row[0].Int() != 1 {
			t.Fatalf("wrong user in %v", row)
		}
		if row[1].Int() == 1 {
			t.Fatalf("seen item leaked: %v", row)
		}
	}
	if q.Rows[0][2].Float() < q.Rows[1][2].Float() {
		t.Fatal("not sorted by predicted rating")
	}
}

func TestQuery2FullRecommend(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	q, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "Recommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	// 12 pairs total, 7 rated → 5 unseen pairs.
	if len(q.Rows) != 5 {
		t.Fatalf("query 2: %d rows", len(q.Rows))
	}
}

func TestQuery3SelectionPushdown(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	q, err := e.Query(`Select R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid = 1 And R.iid In (2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "FilterRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("query 3: %v", q.Rows)
	}
}

func TestQuery4JoinRecommend(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	// User 3 has not rated item 3; genre filter keeps only Sci-Fi.
	q, err := e.Query(`Select R.uid, M.name, R.ratingval From ratings as R, movies as M
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid = 3 And M.mid = R.iid And M.genre = 'Sci-Fi'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "JoinRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	if len(q.Rows) != 1 || q.Rows[0][1].Text() != "The Matrix" {
		t.Fatalf("query 4: %v", q.Rows)
	}
	if q.Rows[0][0].Int() != 3 {
		t.Fatalf("user: %v", q.Rows[0])
	}
	if q.Rows[0][2].Float() == 0 {
		t.Fatal("prediction should be non-zero")
	}
}

func TestQuery5TopKWithJoin(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	_, err := e.Exec(`Create Recommender SVDRec On ratings
		Users From uid Items From iid Ratings From ratingval Using SVD`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`Select M.name, R.ratingval From ratings as R, movies M
		Recommend R.iid To R.uid On R.ratingval Using SVD
		Where R.uid = 1 And M.mid = R.iid
		Order By R.ratingval Desc Limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	// User 1 rated only item 1 → items 2 and 3 recommended.
	if len(q.Rows) != 2 {
		t.Fatalf("query 5: %v", q.Rows)
	}
	if q.Rows[0][1].Float() < q.Rows[1][1].Float() {
		t.Fatal("not sorted")
	}
}

func TestIndexRecommendStrategy(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if err := e.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid = 1
		Order By R.ratingval Desc Limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "IndexRecommend" {
		t.Fatalf("strategy: %q", q.Explain.Strategy)
	}
	if !q.Explain.SortSkipped {
		t.Fatal("sort should be skipped for ratingval DESC")
	}
	if len(q.Rows) != 2 {
		t.Fatalf("index recommend: %v", q.Rows)
	}

	// Results agree with the online FilterRecommend path.
	e.Planner().DisableIndexRecommend = true
	q2, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid = 1
		Order By R.ratingval Desc Limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Explain.Strategy != "FilterRecommend" {
		t.Fatalf("disabled index strategy: %q", q2.Explain.Strategy)
	}
	if len(q.Rows) != len(q2.Rows) {
		t.Fatalf("plans disagree: %v vs %v", q.Rows, q2.Rows)
	}
	// Scores must match pairwise (tie order between equal scores may
	// differ between the two plans), and the item sets must agree.
	items1, items2 := map[int64]float64{}, map[int64]float64{}
	for i := range q.Rows {
		if math.Abs(q.Rows[i][2].Float()-q2.Rows[i][2].Float()) > 1e-9 {
			t.Fatalf("plans disagree at %d: %v vs %v", i, q.Rows[i], q2.Rows[i])
		}
		items1[q.Rows[i][1].Int()] = q.Rows[i][2].Float()
		items2[q2.Rows[i][1].Int()] = q2.Rows[i][2].Float()
	}
	for item, score := range items1 {
		if s2, ok := items2[item]; !ok || math.Abs(score-s2) > 1e-9 {
			t.Fatalf("item sets disagree: %v vs %v", items1, items2)
		}
	}
}

func TestIndexRecommendNotUsedForUncoveredUser(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if err := e.MaterializeUser("GeneralRec", 1); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval
		Where R.uid = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain.Strategy != "FilterRecommend" {
		t.Fatalf("uncovered user should fall back: %q", q.Explain.Strategy)
	}
}

func TestRecommendDefaultsToItemCosCF(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	// No USING clause → default algorithm.
	q, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval
		Where R.uid = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("default algorithm: %v", q.Rows)
	}
}

func TestRecommendWithoutRecommenderFails(t *testing.T) {
	e := newMovieDB(t)
	_, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF`)
	if err == nil || !strings.Contains(err.Error(), "CREATE RECOMMENDER") {
		t.Fatalf("expected helpful error, got %v", err)
	}
}

func TestDropRecommender(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if _, err := e.Exec("DROP RECOMMENDER GeneralRec"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("DROP RECOMMENDER GeneralRec"); err == nil {
		t.Fatal("double drop should fail")
	}
	if _, err := e.Exec("DROP RECOMMENDER IF EXISTS GeneralRec"); err != nil {
		t.Fatal(err)
	}
	// Queries now fail.
	if _, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
		Recommend R.iid To R.uid On R.ratingval`); err == nil {
		t.Fatal("query after drop should fail")
	}
}

func TestMaintenanceRebuildOnInserts(t *testing.T) {
	e := New(Config{Rec: rec.Options{RebuildThresholdPct: 20}})
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4),(2,2,2),(3,1,1);
	`); err != nil {
		t.Fatal(err)
	}
	createGeneralRec(t, e)
	r, _ := e.Recommenders().Get("GeneralRec")
	// 5 ratings × 20% = 1: next insert triggers a rebuild.
	if _, err := e.Exec("INSERT INTO ratings VALUES (3, 2, 4.5)"); err != nil {
		t.Fatal(err)
	}
	if r.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d, want 1", r.Rebuilds())
	}
	if _, found, _ := r.Store().Seen(3, 2); !found {
		t.Fatal("rebuilt model missing the new rating")
	}
}

func TestRebuildInvalidatesCache(t *testing.T) {
	e := New(Config{Rec: rec.Options{RebuildThresholdPct: 10}})
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4),(2,3,2);
	`); err != nil {
		t.Fatal(err)
	}
	createGeneralRec(t, e)
	if err := e.Materialize("GeneralRec"); err != nil {
		t.Fatal(err)
	}
	cache, _ := e.CacheOf("GeneralRec")
	if cache.Index().Len() == 0 {
		t.Fatal("index should be materialized")
	}
	if _, err := e.Exec("INSERT INTO ratings VALUES (1, 3, 1.0)"); err != nil {
		t.Fatal(err)
	}
	if cache.Index().Len() != 0 {
		t.Fatal("rebuild should invalidate the RecScoreIndex")
	}
}

func TestCacheMaintenanceEndToEnd(t *testing.T) {
	ts := 0.0
	e := New(Config{HotnessThreshold: 0.5, CacheClock: func() float64 { return ts }})
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4),(2,3,2),(3,2,1);
	`); err != nil {
		t.Fatal(err)
	}
	createGeneralRec(t, e)

	ts = 1
	// User 1 queries a lot → high demand.
	for i := 0; i < 50; i++ {
		if _, err := e.Query(`Select R.uid, R.iid, R.ratingval From ratings as R
			Recommend R.iid To R.uid On R.ratingval Where R.uid = 1`); err != nil {
			t.Fatal(err)
		}
	}
	// Item 3 gets updates → high consumption. (Small enough not to trigger
	// rebuild: threshold is 10% default... 5 ratings → 1. Use manual stat.)
	cache, _ := e.CacheOf("GeneralRec")
	for i := 0; i < 50; i++ {
		cache.RecordUpdate(3)
	}
	ts = 2
	dec, err := e.RunCacheMaintenance("GeneralRec")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted == 0 {
		t.Fatalf("hot pair should be admitted: %+v", dec)
	}
	if _, ok := cache.Index().Get(1, 3); !ok {
		t.Fatal("pair (1,3) should be materialized")
	}
}

func TestExecErrors(t *testing.T) {
	e := New(Config{})
	bad := []string{
		"SELECT * FROM missing",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE t (a BLOB)",
		"CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)",
		"NONSENSE",
	}
	for _, q := range bad {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	if _, err := e.Query("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("Query of non-SELECT should fail")
	}
	if _, err := e.RunCacheMaintenance("nope"); err == nil {
		t.Error("maintenance of missing recommender should fail")
	}
	if err := e.Materialize("nope"); err == nil {
		t.Error("materialize of missing recommender should fail")
	}
}

func TestInsertColumnListAndNulls(t *testing.T) {
	e := New(Config{})
	if _, err := e.ExecScript(`CREATE TABLE t (a INT, b TEXT, c FLOAT);`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("INSERT INTO t (c, a) VALUES (1.5, 7)"); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("SELECT a, b, c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	row := q.Rows[0]
	if row[0].Int() != 7 || !row[1].IsNull() || row[2].Float() != 1.5 {
		t.Fatalf("column-list insert: %v", row)
	}
}

func TestGeometryInsertAndSpatialQuery(t *testing.T) {
	e := New(Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE pois (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY);
		INSERT INTO pois VALUES
			(1, 'near', 'POINT(1 1)'),
			(2, 'far', 'POINT(100 100)');
	`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query(`SELECT name FROM pois WHERE ST_DWithin(geom, ST_Point(0, 0), 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].Text() != "near" {
		t.Fatalf("spatial query: %v", q.Rows)
	}
}

func TestMaintenanceCountsUpdatesAndDeletes(t *testing.T) {
	e := New(Config{Rec: rec.Options{RebuildThresholdPct: 30}})
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4),(2,2,2),(3,1,1),(3,2,2);
	`); err != nil {
		t.Fatal(err)
	}
	createGeneralRec(t, e)
	r, _ := e.Recommenders().Get("GeneralRec")
	// Threshold: 30% of 6 = 1 (int truncation)... 1.8 → 1. One UPDATE
	// suffices to trigger a rebuild.
	if _, err := e.Exec("UPDATE ratings SET ratingval = 5 WHERE uid = 3 AND iid = 1"); err != nil {
		t.Fatal(err)
	}
	if r.Rebuilds() != 1 {
		t.Fatalf("rebuilds after update = %d", r.Rebuilds())
	}
	if v, found, _ := r.Store().Seen(3, 1); !found || v != 5 {
		t.Fatalf("rebuilt model missing updated rating: %v %v", v, found)
	}
	if _, err := e.Exec("DELETE FROM ratings WHERE uid = 3"); err != nil {
		t.Fatal(err)
	}
	if r.Rebuilds() != 2 {
		t.Fatalf("rebuilds after delete = %d", r.Rebuilds())
	}
	if _, found, _ := r.Store().Seen(3, 1); found {
		t.Fatal("deleted rating still in rebuilt model")
	}
}

func TestCreateRecommenderOnEmptyTable(t *testing.T) {
	e := New(Config{})
	if _, err := e.Exec("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)"); err != nil {
		t.Fatal(err)
	}
	createGeneralRec(t, e)
	q, err := e.Query(`SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 0 {
		t.Fatalf("empty model should recommend nothing: %v", q.Rows)
	}
}

func TestOrderByMixedDirections(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	q, err := e.Query(`SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval
		ORDER BY R.uid ASC, R.ratingval DESC`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(q.Rows); i++ {
		a, b := q.Rows[i-1], q.Rows[i]
		if a[0].Int() > b[0].Int() {
			t.Fatalf("uid order broken at %d", i)
		}
		if a[0].Int() == b[0].Int() && a[2].Float() < b[2].Float() {
			t.Fatalf("rating order broken at %d", i)
		}
	}
}

func TestCreateIndexStatement(t *testing.T) {
	e := newMovieDB(t)
	if _, err := e.Exec("CREATE INDEX ratings_uid ON ratings (uid)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("CREATE INDEX dup ON ratings (uid)"); err == nil {
		t.Fatal("duplicate index should fail")
	}
	if _, err := e.Exec("CREATE INDEX x ON nosuch (uid)"); err == nil {
		t.Fatal("index on missing table should fail")
	}
	tab, _ := e.Catalog().Get("ratings")
	if _, ok := tab.IndexOn("uid"); !ok {
		t.Fatal("index not registered")
	}
}

func TestDuplicateRecommenderViaSQL(t *testing.T) {
	e := newMovieDB(t)
	createGeneralRec(t, e)
	if _, err := e.Exec(`CREATE RECOMMENDER GeneralRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval`); err == nil {
		t.Fatal("duplicate recommender should fail")
	}
	// A second recommender with the same algorithm on the same table is
	// allowed (ForQuery picks one), but under a different name.
	if _, err := e.Exec(`CREATE RECOMMENDER SecondRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemPearCF`); err != nil {
		t.Fatal(err)
	}
	if len(e.Recommenders().List()) != 2 {
		t.Fatal("expected two recommenders")
	}
}

func TestCreateRecommenderWithWorkers(t *testing.T) {
	e := newMovieDB(t)
	if _, err := e.Exec(`CREATE RECOMMENDER ParRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval
		USING ItemCosCF WITH WORKERS 3`); err != nil {
		t.Fatal(err)
	}
	r, ok := e.Recommenders().Get("ParRec")
	if !ok {
		t.Fatal("recommender not registered")
	}
	if r.Workers != 3 {
		t.Fatalf("recommender workers = %d, want 3", r.Workers)
	}
	c, err := e.CacheOf("ParRec")
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != 3 {
		t.Fatalf("cache workers = %d, want 3", c.Workers)
	}
	// The parallel build must serve queries exactly like the serial one.
	if err := e.Materialize("ParRec"); err != nil {
		t.Fatal(err)
	}
	if c.Index().Len() == 0 {
		t.Fatal("materialization produced no entries")
	}
}

func TestInsertArityError(t *testing.T) {
	e := newMovieDB(t)
	if _, err := e.Exec("INSERT INTO ratings (uid, iid) VALUES (1, 2, 3)"); err == nil {
		t.Fatal("value/column arity mismatch should fail")
	}
	if _, err := e.Exec("INSERT INTO ratings (uid, nosuch) VALUES (1, 2)"); err == nil {
		t.Fatal("unknown column should fail")
	}
}

func TestCommitHookSeesMutations(t *testing.T) {
	e := New(Config{})
	type commit struct {
		txn  uint64
		muts []Mutation
	}
	var logged []commit
	e.SetCommitHook(func(txn uint64, muts []Mutation) error {
		logged = append(logged, commit{txn, muts})
		return nil
	})
	if _, err := e.ExecScript(`
		CREATE TABLE t (a INT PRIMARY KEY);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("INSERT INTO t VALUES (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 3 {
		t.Fatalf("logged %d commits: %+v", len(logged), logged)
	}
	// DDL commits as one statement record carrying its source text.
	if c := logged[0]; len(c.muts) != 1 || c.muts[0].Kind != MutStmt ||
		c.muts[0].Text != "CREATE TABLE t (a INT PRIMARY KEY)" {
		t.Fatalf("DDL commit = %+v", c)
	}
	// A single-row insert commits as one bare tuple record (no txn id).
	if c := logged[1]; c.txn != 0 || len(c.muts) != 1 || c.muts[0].Kind != MutInsert ||
		c.muts[0].Table != "t" || len(c.muts[0].Row) != 1 {
		t.Fatalf("single-row commit = %+v", c)
	}
	// A multi-row insert gets a transaction id so the WAL frames its
	// records as one atomic group.
	if c := logged[2]; c.txn == 0 || len(c.muts) != 2 ||
		c.muts[0].Kind != MutInsert || c.muts[1].Kind != MutInsert {
		t.Fatalf("multi-row commit = %+v", c)
	}
	// A failed statement must not reach the hook.
	logged = nil
	if _, err := e.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("duplicate pk should fail")
	}
	if len(logged) != 0 {
		t.Fatalf("failed statement reached the hook: %+v", logged)
	}
}

func TestCommitHookErrorSurfaces(t *testing.T) {
	e := New(Config{})
	if _, err := e.Exec("CREATE TABLE t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	hookErr := fmt.Errorf("wal full")
	e.SetCommitHook(func(uint64, []Mutation) error { return hookErr })
	if _, err := e.Exec("INSERT INTO t VALUES (1)"); !errors.Is(err, hookErr) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
}
