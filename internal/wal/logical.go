package wal

import (
	"encoding/binary"
	"fmt"
)

// This file defines the logical (tuple-level) record payloads carried by
// v2 segments. A v1 segment's payloads are raw SQL statement text; a v2
// segment's payloads are one Record each, encoded by EncodeRecord. The
// outer framing (length + CRC32-C + sequence) is identical in both
// versions — only the payload interpretation differs, which is why
// Replay hands the segment's format version to its callback.
//
// Record kinds:
//
//	'B' TxnBegin    opens transaction Txn
//	'I' Insert      Row was inserted into Table
//	'D' Delete      Old was deleted from Table
//	'U' Update      Old became Row in Table
//	'C' TxnCommit   transaction Txn is committed
//	'A' TxnAbort    transaction Txn rolled back (its records are void)
//	'S' Stmt        a DDL statement, recorded as source text (Text)
//
// Recovery applies a bare tuple record (Txn == 0) immediately; records
// with Txn != 0 are buffered and applied only when the matching
// TxnCommit arrives. A buffered transaction whose commit record never
// made it to disk — a crash mid-commit — is discarded wholesale: that is
// the all-or-nothing guarantee the atomicity sweep asserts.
const (
	RecTxnBegin  byte = 'B'
	RecInsert    byte = 'I'
	RecDelete    byte = 'D'
	RecUpdate    byte = 'U'
	RecTxnCommit byte = 'C'
	RecTxnAbort  byte = 'A'
	RecStmt      byte = 'S'
)

// Record is one logical WAL entry. Row and Old hold rows pre-encoded
// with types.EncodeRow by the caller, so the wal package stays free of
// value-layer dependencies. Rows are matched by content on replay (RIDs
// are not stable across a snapshot reload, which compacts slots).
type Record struct {
	Kind  byte
	Txn   uint64 // transaction id; 0 = autocommit (applied standalone)
	Table string // target table ('I'/'D'/'U')
	Row   []byte // inserted / post-update row ('I'/'U')
	Old   []byte // deleted / pre-update row ('D'/'U')
	Text  string // statement source text ('S')
}

// validKind reports whether k names a defined record kind.
func validKind(k byte) bool {
	switch k {
	case RecTxnBegin, RecInsert, RecDelete, RecUpdate, RecTxnCommit, RecTxnAbort, RecStmt:
		return true
	}
	return false
}

// EncodeRecord appends the record's payload encoding to buf and returns
// the extended slice. Layout: kind byte, then uvarint txn id, then the
// four variable fields (table, row, old, text), each length-prefixed
// with a uvarint. Unused fields encode as a zero length.
func EncodeRecord(buf []byte, r Record) []byte {
	buf = append(buf, r.Kind)
	buf = binary.AppendUvarint(buf, r.Txn)
	buf = binary.AppendUvarint(buf, uint64(len(r.Table)))
	buf = append(buf, r.Table...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Row)))
	buf = append(buf, r.Row...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Old)))
	buf = append(buf, r.Old...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Text)))
	buf = append(buf, r.Text...)
	return buf
}

// DecodeRecord parses one logical record payload (the inverse of
// EncodeRecord). The returned record's byte slices alias payload.
func DecodeRecord(payload []byte) (Record, error) {
	var r Record
	if len(payload) == 0 {
		return r, fmt.Errorf("wal: empty logical record")
	}
	r.Kind = payload[0]
	if !validKind(r.Kind) {
		return r, fmt.Errorf("wal: unknown logical record kind %q", r.Kind)
	}
	rest := payload[1:]
	txn, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, fmt.Errorf("wal: truncated logical record txn id")
	}
	r.Txn = txn
	rest = rest[n:]
	field := func(name string) ([]byte, error) {
		ln, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < ln {
			return nil, fmt.Errorf("wal: truncated logical record %s", name)
		}
		b := rest[n : n+int(ln)]
		rest = rest[n+int(ln):]
		return b, nil
	}
	table, err := field("table")
	if err != nil {
		return r, err
	}
	if r.Row, err = field("row"); err != nil {
		return r, err
	}
	if r.Old, err = field("old"); err != nil {
		return r, err
	}
	text, err := field("text")
	if err != nil {
		return r, err
	}
	r.Table, r.Text = string(table), string(text)
	if len(rest) != 0 {
		return r, fmt.Errorf("wal: %d trailing bytes after logical record", len(rest))
	}
	return r, nil
}
