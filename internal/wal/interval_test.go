package wal

import (
	"testing"
	"time"

	"recdb/internal/fault"
	"recdb/internal/metrics"
)

// fakeClock captures SyncInterval timer callbacks so tests can fire them
// deterministically instead of sleeping.
type fakeClock struct {
	delays    []time.Duration
	callbacks []func()
}

func (c *fakeClock) afterFunc(d time.Duration, f func()) {
	c.delays = append(c.delays, d)
	c.callbacks = append(c.callbacks, f)
}

// fire runs the i-th scheduled callback.
func (c *fakeClock) fire(i int) { c.callbacks[i]() }

func openIntervalLog(t *testing.T, every int, ivl time.Duration) (*Log, *fakeClock, *metrics.Counter) {
	t.Helper()
	clk := &fakeClock{}
	syncs := metrics.NewRegistry().Counter("wal.syncs")
	l, err := Open(fault.NewMemFS(), "wal", 0, Options{
		SyncEvery:    every,
		SyncInterval: ivl,
		Metrics:      Metrics{Syncs: syncs},
		afterFunc:    clk.afterFunc,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Segment-header syncs go through f.Sync directly, not fsyncLocked, so
	// the Syncs counter observes only group-commit flushes and starts at 0.
	if got := syncs.Value(); got != 0 {
		t.Fatalf("fresh log reports %d syncs", got)
	}
	return l, clk, syncs
}

func TestSyncIntervalFlushesStrandedTail(t *testing.T) {
	l, clk, syncs := openIntervalLog(t, 1000, 5*time.Millisecond)
	appendN(t, l, 3, "rec")

	// Only the first append of the group arms a timer, at the interval.
	if len(clk.callbacks) != 1 {
		t.Fatalf("armed %d timers, want 1", len(clk.callbacks))
	}
	if clk.delays[0] != 5*time.Millisecond {
		t.Fatalf("timer delay = %v", clk.delays[0])
	}

	clk.fire(0)
	if got := syncs.Value(); got != 1 {
		t.Fatalf("after timer: %d syncs, want 1", got)
	}
	l.mu.Lock()
	unsynced := l.unsynced
	l.mu.Unlock()
	if unsynced != 0 {
		t.Fatalf("after timer: %d unsynced records", unsynced)
	}

	// Firing the same (now stale) timer again must not fsync twice.
	clk.fire(0)
	if got := syncs.Value(); got != 1 {
		t.Fatalf("stale re-fire synced again: %d syncs", got)
	}

	// The next burst starts a new group and arms a fresh timer.
	appendN(t, l, 1, "more")
	if len(clk.callbacks) != 2 {
		t.Fatalf("second burst armed %d timers total, want 2", len(clk.callbacks))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalTimerStaleAfterExplicitSync(t *testing.T) {
	l, clk, syncs := openIntervalLog(t, 1000, time.Second)
	appendN(t, l, 2, "rec")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := syncs.Value(); got != 1 {
		t.Fatalf("explicit Sync: %d syncs, want 1", got)
	}
	// The batch the timer was armed for already reached disk; its
	// generation is gone, so firing is a no-op.
	clk.fire(0)
	if got := syncs.Value(); got != 1 {
		t.Fatalf("stale timer after Sync added a sync: %d total", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalTimerStaleAfterGroupSync(t *testing.T) {
	l, clk, syncs := openIntervalLog(t, 2, time.Second)
	appendN(t, l, 1, "rec") // arms the timer
	if len(clk.callbacks) != 1 {
		t.Fatalf("armed %d timers, want 1", len(clk.callbacks))
	}
	appendN(t, l, 1, "rec") // completes the group: syncs inline
	if got := syncs.Value(); got != 1 {
		t.Fatalf("group commit: %d syncs, want 1", got)
	}
	clk.fire(0)
	if got := syncs.Value(); got != 1 {
		t.Fatalf("stale timer after group sync added a sync: %d total", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalDisabledUnderPerCommitSync(t *testing.T) {
	l, clk, _ := openIntervalLog(t, 1, time.Second)
	appendN(t, l, 3, "rec")
	if len(clk.callbacks) != 0 {
		t.Fatalf("per-commit sync armed %d timers", len(clk.callbacks))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalRealClock(t *testing.T) {
	// Integration check with the real time.AfterFunc path: a stranded
	// tail becomes durable without any further appends or explicit Sync.
	syncs := metrics.NewRegistry().Counter("wal.syncs")
	l, err := Open(fault.NewMemFS(), "wal", 0, Options{
		SyncEvery:    100,
		SyncInterval: 5 * time.Millisecond,
		Metrics:      Metrics{Syncs: syncs},
	})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, "rec")
	deadline := time.Now().Add(5 * time.Second)
	for syncs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
