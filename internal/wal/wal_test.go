package wal

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"recdb/internal/fault"
)

func appendN(t *testing.T, l *Log, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%d", prefix, i))); err != nil {
			t.Fatal(err)
		}
	}
}

func collect(t *testing.T, fs fault.FS, dir string, afterSeq uint64) (map[uint64]string, uint64) {
	t.Helper()
	got := map[uint64]string{}
	last, err := Replay(fs, dir, afterSeq, func(seq uint64, _ int, payload []byte) error {
		got[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, last
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, "rec")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, last := collect(t, fs, "wal", 0)
	if last != 5 || len(got) != 5 {
		t.Fatalf("last = %d, records = %d", last, len(got))
	}
	if got[3] != "rec-2" {
		t.Fatalf("seq 3 payload = %q", got[3])
	}
}

func TestReplaySkipsCheckpointedRecords(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6, "rec")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, last := collect(t, fs, "wal", 4)
	if last != 6 || len(got) != 2 {
		t.Fatalf("after 4: last = %d, records = %v", last, got)
	}
	if _, dup := got[4]; dup {
		t.Fatal("record at the replay floor was not skipped")
	}
	// Replaying twice gives the same records: idempotent.
	again, _ := collect(t, fs, "wal", 4)
	if len(again) != len(got) {
		t.Fatalf("second replay: %v vs %v", again, got)
	}
}

func TestSeqMonotonicAcrossReset(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, "a")
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("seq after reset = %d, want 4", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the post-reset record remains on disk.
	got, last := collect(t, fs, "wal", 3)
	if last != 4 || len(got) != 1 || got[4] != "after" {
		t.Fatalf("post-reset replay: last = %d, %v", last, got)
	}
}

func TestSegmentRolling(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, "record-payload")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	got, last := collect(t, fs, "wal", 0)
	if last != 20 || len(got) != 20 {
		t.Fatalf("rolled replay: last = %d, records = %d", last, len(got))
	}
}

func TestTornTailTruncation(t *testing.T) {
	fs := fault.NewMemFS()
	inj := fault.NewInject(fs)
	l, err := Open(inj, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, "good")
	// Tear the next record's write in half and power-cut.
	inj.SetPlan(fault.ModeTorn, 1)
	if _, err := l.Append([]byte("torn-record-payload-that-is-long")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append err = %v", err)
	}
	fs.Restart()
	got, last := collect(t, fs, "wal", 0)
	if last != 3 || len(got) != 3 {
		t.Fatalf("after torn tail: last = %d, records = %v", last, got)
	}
}

func TestPowerCutLosesOnlyUnsyncedTail(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, "durable")
	fs.Crash()
	fs.Restart()
	got, last := collect(t, fs, "wal", 0)
	if last != 4 || len(got) != 4 {
		t.Fatalf("per-commit sync lost records: last = %d, %v", last, got)
	}
}

func TestGroupedSyncCanLoseTail(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, "rec") // 3 synced as a group, the 4th pending
	fs.Crash()
	fs.Restart()
	got, last := collect(t, fs, "wal", 0)
	if last != 3 || len(got) != 3 {
		t.Fatalf("grouped sync: last = %d, records = %v", last, got)
	}

	// An explicit Sync makes the pending tail durable.
	fs2 := fault.NewMemFS()
	l2, err := Open(fs2, "wal", 0, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 4, "rec")
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2.Crash()
	fs2.Restart()
	_, last = collect(t, fs2, "wal", 0)
	if last != 4 {
		t.Fatalf("explicit sync: last = %d, want 4", last)
	}
}

func TestMidSegmentCorruptionFailsReplay(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, "record-payload")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %v", segs)
	}
	// Flip a payload byte in the FIRST (non-final) segment: that is
	// corruption, not a torn tail, and replay must fail loudly.
	if err := fs.Corrupt("wal/"+segs[0], int64(len(segmentMagic)+recordHeaderSize+2), 0x10); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(fs, "wal", 0, func(uint64, int, []byte) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-segment corruption: err = %v, want *CorruptError", err)
	}
}

func TestFinalSegmentCorruptTailTruncates(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, "rec")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fs, "wal")
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	// Corrupt the LAST record's payload: replay keeps the first two and
	// treats the damaged tail as torn.
	blob, err := fs.ReadFile("wal/" + segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Corrupt("wal/"+segs[0], int64(len(blob)-1), 0x01); err != nil {
		t.Fatal(err)
	}
	got, last := collect(t, fs, "wal", 0)
	if last != 2 || len(got) != 2 {
		t.Fatalf("corrupt tail: last = %d, records = %v", last, got)
	}
}

func TestBadSegmentMagicIsCorruption(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, "rec")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Corrupt("wal/"+segName(1), 0, 0xFF); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(fs, "wal", 0, func(uint64, int, []byte) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("bad magic: err = %v, want *CorruptError", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	fs := fault.NewMemFS()
	l, err := Open(fs, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := l.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	if _, err := l.Append(make([]byte, maxRecordSize+1)); err == nil {
		t.Fatal("oversize record should be rejected")
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	fs := fault.NewMemFS()
	last, err := Replay(fs, "nope", 7, func(uint64, int, []byte) error { return nil })
	if err != nil || last != 7 {
		t.Fatalf("missing dir: last = %d, err = %v", last, err)
	}
	if err := fs.MkdirAll("empty"); err != nil {
		t.Fatal(err)
	}
	last, err = Replay(fs, "empty", 7, func(uint64, int, []byte) error { return nil })
	if err != nil || last != 7 {
		t.Fatalf("empty dir: last = %d, err = %v", last, err)
	}
}

func TestOpenOnOSFS(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(fault.OS, dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, "os")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, last := collect(t, fault.OS, dir, 0)
	if last != 3 || len(got) != 3 {
		t.Fatalf("os-backed replay: last = %d, %v", last, got)
	}
}

func TestPoisonedLogNeverFlushesFailedAppend(t *testing.T) {
	mem := fault.NewMemFS()
	inj := fault.NewInject(mem)
	l, err := Open(inj, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, "acked")
	// Fail the sync of the next append (op 1 is the record write, op 2 the
	// sync): the statement is reported failed, but its bytes are in the
	// segment.
	inj.SetPlan(fault.ModeFail, 2)
	if _, err := l.Append([]byte("reported-failed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append with failing sync: err = %v", err)
	}
	// The sequence is burned regardless.
	if got := l.Seq(); got != 3 {
		t.Fatalf("Seq() = %d, want 3", got)
	}
	// The log is poisoned: no further appends or syncs, which could flush
	// the failed record to durability behind the caller's back.
	if _, err := l.Append([]byte("after")); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("append on poisoned log: err = %v", err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync on poisoned log succeeded")
	}
	// Close skips the final sync; a crash then discards the ambiguous tail.
	if err := l.Close(); err != nil {
		t.Fatalf("close poisoned log: %v", err)
	}
	mem.Crash()
	mem.Restart()
	got, last := collect(t, mem, "wal", 0)
	if last != 2 || len(got) != 2 {
		t.Fatalf("failed append became durable: last = %d, records = %v", last, got)
	}
}

func TestResetClearsPoison(t *testing.T) {
	mem := fault.NewMemFS()
	inj := fault.NewInject(mem)
	l, err := Open(inj, "wal", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, "acked")
	inj.SetPlan(fault.ModeFail, 2)
	if _, err := l.Append([]byte("reported-failed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append with failing sync: err = %v", err)
	}
	// A checkpoint removes every segment — the ambiguous bytes with them —
	// so the log is clean again.
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("fresh")); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, last := collect(t, mem, "wal", 2)
	if last != 3 || len(got) != 1 || got[3] != "fresh" {
		t.Fatalf("after reset: last = %d, records = %v", last, got)
	}
}
